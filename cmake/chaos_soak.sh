#!/usr/bin/env bash
# Chaos soak for the durable serving stack, driven through the real
# binaries (rdcn_sim / rdcn_serve / rdcn_serve_client):
#
#   round 1  SIGKILL the daemon mid-run — the write-ahead journal is the
#            only survivor.
#   round 2  restart on the same dirs: the orphaned run is recovered and
#            recomputed; ATTACH by its original id streams a result
#            bit-identical to a direct rdcn_sim run; a resubmission is
#            answered from the disk cache with the same bytes; SIGTERM
#            with a run in flight drains gracefully (run finishes, exit 0).
#   round 3  restart again with a randomly chosen (but per-choice
#            deterministic) fault spec armed: the client's retry loop
#            must still land an ok run with identical bytes, and SIGTERM
#            must still exit 0.
#   round 4  multi-tenant overload: two greedy clients hammer a
#            one-executor daemon under per-client quotas while a light
#            priority-2 tenant submits one small run — everyone's retry
#            loops must land ok runs (the light one without starving),
#            the per-client admission metrics must be exposed, and the
#            daemon must still drain to exit 0.
#
# Registered as the tier2 ctest rdcn_chaos_soak (release CI job only);
# the ctest TIMEOUT is the no-hang backstop.
#
# Usage: chaos_soak.sh <rdcn_sim> <rdcn_serve> <rdcn_serve_client> <workdir>
set -u

SIM=$1
SERVE=$2
CLIENT=$3
WORK=$4

# Long enough that SIGKILL lands with most of the run still ahead (the
# first of 16 checkpoints is ~6% in), matching the serve test suites.
SPEC='workload=zipf:skew=1.1;algorithms=bma;b=4;racks=16;requests=1600000;trials=1;checkpoints=16;seed=3'

rm -rf "$WORK"
mkdir -p "$WORK"
JOURNAL=$WORK/journal
CACHE=$WORK/cache

fail() {
  echo "chaos_soak: FAIL: $*" >&2
  # Leave nothing behind to outlive the test.
  [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null
  exit 1
}

# Polls for $2 to appear in file $1 (the daemon binding, a checkpoint
# reaching the client, ...) for up to ~20 s.
wait_for() {
  for _ in $(seq 1 200); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  fail "timed out waiting for '$2' in $1: $(cat "$1" 2>/dev/null)"
}

# ---- ground truth: direct in-process run ------------------------------
TRUTH=$WORK/truth.csv
"$SIM" --workload=zipf:skew=1.1 --algorithms=bma --b=4 --racks=16 \
  --requests=1600000 --trials=1 --checkpoints=16 --seed=3 \
  --csv="$TRUTH" >/dev/null || fail "direct rdcn_sim run failed"

# ---- round 1: SIGKILL mid-run -----------------------------------------
"$SERVE" --socket="$WORK/a.sock" --journal="$JOURNAL" --disk-cache="$CACHE" \
  --executors=1 --threads=1 >"$WORK/daemon_a.log" 2>&1 &
DAEMON_PID=$!
wait_for "$WORK/daemon_a.log" "listening"

"$CLIENT" --socket="$WORK/a.sock" --retries=2 "--spec=$SPEC" \
  >"$WORK/client_a.log" 2>&1 &
CLIENT_A=$!
# The run is provably mid-flight once a checkpoint reaches the client.
wait_for "$WORK/client_a.log" "CHECKPOINT"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
wait "$CLIENT_A" 2>/dev/null  # dies with the daemon; outcome irrelevant
echo "chaos_soak: round 1 ok (daemon SIGKILLed mid-run)"

# ---- round 2: recovery, ATTACH, cached resubmit, graceful drain -------
"$SERVE" --socket="$WORK/b.sock" --journal="$JOURNAL" --disk-cache="$CACHE" \
  --executors=1 --threads=1 >"$WORK/daemon_b.log" 2>&1 &
DAEMON_PID=$!
wait_for "$WORK/daemon_b.log" "listening"

# The first admission of round 1 deterministically got id 1; the
# restarted daemon must still answer for it.
"$CLIENT" --socket="$WORK/b.sock" --attach=1 --csv="$WORK/attached.csv" \
  >"$WORK/attach.log" 2>&1 || fail "ATTACH client failed: $(cat "$WORK/attach.log")"
grep -q "attached: id=1" "$WORK/attach.log" ||
  fail "missing ATTACH acknowledgement: $(cat "$WORK/attach.log")"
grep -q "run: status=ok" "$WORK/attach.log" ||
  fail "recovered run did not finish ok: $(cat "$WORK/attach.log")"
cmp -s "$TRUTH" "$WORK/attached.csv" ||
  fail "recovered run's CSV differs from the direct run"

# The recovered result landed in the disk cache: a resubmission is a hit
# with the same bytes.
"$CLIENT" --socket="$WORK/b.sock" "--spec=$SPEC" --csv="$WORK/resub.csv" \
  --quiet >"$WORK/resub.log" 2>&1 || fail "resubmit failed: $(cat "$WORK/resub.log")"
grep -q "cached=1" "$WORK/resub.log" ||
  fail "resubmission was not served from cache: $(cat "$WORK/resub.log")"
cmp -s "$TRUTH" "$WORK/resub.csv" ||
  fail "cached resubmission's CSV differs from the direct run"

# Graceful drain: SIGTERM with a fresh (different-seed, so uncached) run
# in flight — the run must finish ok and the daemon must exit 0.
DRAIN_SPEC=${SPEC/seed=3/seed=4}
"$CLIENT" --socket="$WORK/b.sock" --retries=1 "--spec=$DRAIN_SPEC" \
  >"$WORK/drain.log" 2>&1 &
DRAIN_CLIENT=$!
wait_for "$WORK/drain.log" "CHECKPOINT"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
[ "$rc" -eq 0 ] || fail "SIGTERM drain exited $rc: $(cat "$WORK/daemon_b.log")"
wait "$DRAIN_CLIENT" || fail "drained run failed: $(cat "$WORK/drain.log")"
grep -q "run: status=ok" "$WORK/drain.log" ||
  fail "in-flight run was not drained to completion: $(cat "$WORK/drain.log")"
echo "chaos_soak: round 2 ok (recovered, attached, cached, drained)"

# ---- round 3: randomized (deterministic-per-choice) fault soak --------
FAULTS=(
  ""
  "serve.send.drop=after:1,times:2"
  "serve.send.short_write=after:2,times:2"
  "serve.disk_cache.write_fail=times:1"
)
RANDOM=$$
FAULT=${FAULTS[RANDOM % ${#FAULTS[@]}]}
echo "chaos_soak: round 3 fault spec: '${FAULT:-none}'"

"$SERVE" --socket="$WORK/c.sock" --journal="$JOURNAL" --disk-cache="$CACHE" \
  --executors=1 --threads=1 ${FAULT:+--faults="$FAULT"} \
  >"$WORK/daemon_c.log" 2>&1 &
DAEMON_PID=$!
wait_for "$WORK/daemon_c.log" "listening"

# The armed faults tear connections / drop cache writes; the client's
# retry-and-ATTACH loop must still land an ok run with identical bytes.
"$CLIENT" --socket="$WORK/c.sock" "--spec=$SPEC" --csv="$WORK/soak.csv" \
  --retries=8 --quiet >"$WORK/soak.log" 2>&1 ||
  fail "soak run failed under faults '$FAULT': $(cat "$WORK/soak.log")"
grep -q "run: status=ok" "$WORK/soak.log" ||
  fail "soak run did not finish ok: $(cat "$WORK/soak.log")"
cmp -s "$TRUTH" "$WORK/soak.csv" ||
  fail "soak run's CSV differs from the direct run (faults '$FAULT')"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
[ "$rc" -eq 0 ] || fail "round 3 SIGTERM exited $rc: $(cat "$WORK/daemon_c.log")"
echo "chaos_soak: round 3 ok (faults '${FAULT:-none}')"

# ---- round 4: multi-tenant overload under quotas ----------------------
# Fresh dirs: cached results from earlier rounds would answer the greedy
# submissions instantly and there would be no contention to survive.
# quota-rps=1 guarantees each greedy client's second submission is
# REJECTed (reason=quota) at least once and must come back through the
# retry loop; the light tenant has its own untouched bucket and lane.
GSPEC='workload=zipf:skew=1.1;algorithms=bma;b=4;racks=16;requests=400000;trials=1;checkpoints=8'
LSPEC='workload=zipf:skew=1.1;algorithms=bma;b=2;racks=8;requests=4000;trials=1;checkpoints=2;seed=9'
"$SERVE" --socket="$WORK/d.sock" --executors=1 --threads=1 --queue=8 \
  --quota-rps=1 --quota-burst=1 --quota-concurrent=4 --max-rss-mb=8192 \
  --progress-timeout-ms=60000 >"$WORK/daemon_d.log" 2>&1 &
DAEMON_PID=$!
wait_for "$WORK/daemon_d.log" "listening"

"$CLIENT" --socket="$WORK/d.sock" --client=greedy1 --retries=10 \
  "--spec=${GSPEC};seed=5" "--spec2=${GSPEC};seed=6" --quiet \
  >"$WORK/greedy1.log" 2>&1 &
GREEDY1=$!
"$CLIENT" --socket="$WORK/d.sock" --client=greedy2 --retries=10 \
  "--spec=${GSPEC};seed=7" "--spec2=${GSPEC};seed=8" --quiet \
  >"$WORK/greedy2.log" 2>&1 &
GREEDY2=$!

# The light tenant arrives behind the greedy backlog and must still get
# served promptly: fair admission + priority 2 keep its lane alive.
"$CLIENT" --socket="$WORK/d.sock" --client=light --priority=2 --retries=10 \
  "--spec=$LSPEC" --metrics-out="$WORK/overload_metrics.txt" --quiet \
  >"$WORK/light.log" 2>&1 || fail "light tenant failed: $(cat "$WORK/light.log")"
grep -q "run: status=ok" "$WORK/light.log" ||
  fail "light tenant's run did not finish ok: $(cat "$WORK/light.log")"
grep -q 'client="light"' "$WORK/overload_metrics.txt" ||
  fail "per-client admission metrics missing the light tenant"

wait "$GREEDY1" || fail "greedy1 failed: $(cat "$WORK/greedy1.log")"
wait "$GREEDY2" || fail "greedy2 failed: $(cat "$WORK/greedy2.log")"
grep -q "run: status=ok" "$WORK/greedy1.log" ||
  fail "greedy1's runs did not finish ok: $(cat "$WORK/greedy1.log")"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
[ "$rc" -eq 0 ] || fail "round 4 SIGTERM exited $rc: $(cat "$WORK/daemon_d.log")"
echo "chaos_soak: round 4 ok (two greedy tenants + one light, quotas honored)"

echo "chaos_soak: OK"
