# End-to-end smoke sweep for the rdcn_sim CLI: a tiny scenario (two
# algorithm specs, two cache sizes) must run through the registries and
# write a well-formed CSV — header naming every column, one row per
# checkpoint.  Registered as a tier1 ctest so the CLI can never silently
# rot.
#
# Usage: cmake -DSIM=<rdcn_sim binary> -DCSV=<output csv> -P check_sim_smoke.cmake
execute_process(
  COMMAND ${SIM}
    --topology=torus:rows=3,cols=3 --racks=9
    --workload=flow_pool:pairs=30,skew=1.1 --requests=3000
    --algorithms=r_bma:engine=lru,bma --b=2,4
    --trials=2 --checkpoints=4 --seed=7
    --csv=${CSV}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdcn_sim exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

if(NOT EXISTS ${CSV})
  message(FATAL_ERROR "rdcn_sim did not write ${CSV}")
endif()
file(STRINGS ${CSV} lines)
list(LENGTH lines line_count)
# 1 header + one row per checkpoint.
if(NOT line_count EQUAL 5)
  message(FATAL_ERROR "expected 5 CSV lines (header + 4 checkpoints), got ${line_count}:\n${lines}")
endif()

list(GET lines 0 header)
set(expected_header "requests,r_bma:engine=lru(b=2),r_bma:engine=lru(b=4),bma(b=2),bma(b=4)")
if(NOT header STREQUAL expected_header)
  message(FATAL_ERROR "CSV header mismatch:\n  got:  ${header}\n  want: ${expected_header}")
endif()

# Every data row carries one value per column.
foreach(i RANGE 1 4)
  list(GET lines ${i} row)
  string(REGEX MATCHALL "," commas "${row}")
  list(LENGTH commas comma_count)
  if(NOT comma_count EQUAL 4)
    message(FATAL_ERROR "CSV row ${i} malformed (want 5 fields): ${row}")
  endif()
endforeach()

message(STATUS "rdcn_sim smoke sweep OK: ${line_count} lines, header + 4 checkpoint rows")
