# End-to-end smoke sweep for the rdcn_sim CLI: a tiny scenario (two
# algorithm specs, two cache sizes) must run through the registries and
# write a well-formed CSV — header naming every column, one row per
# checkpoint.  Registered as a tier1 ctest so the CLI can never silently
# rot.
#
# Usage: cmake -DSIM=<rdcn_sim binary> -DCSV=<output csv> -P check_sim_smoke.cmake
execute_process(
  COMMAND ${SIM}
    --topology=torus:rows=3,cols=3 --racks=9
    --workload=flow_pool:pairs=30,skew=1.1 --requests=3000
    --algorithms=r_bma:engine=lru,bma --b=2,4
    --trials=2 --checkpoints=4 --seed=7
    --csv=${CSV}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdcn_sim exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

if(NOT EXISTS ${CSV})
  message(FATAL_ERROR "rdcn_sim did not write ${CSV}")
endif()
file(STRINGS ${CSV} lines)
list(LENGTH lines line_count)
# 1 header + one row per checkpoint.
if(NOT line_count EQUAL 5)
  message(FATAL_ERROR "expected 5 CSV lines (header + 4 checkpoints), got ${line_count}:\n${lines}")
endif()

list(GET lines 0 header)
set(expected_header "requests,r_bma:engine=lru(b=2),r_bma:engine=lru(b=4),bma(b=2),bma(b=4)")
if(NOT header STREQUAL expected_header)
  message(FATAL_ERROR "CSV header mismatch:\n  got:  ${header}\n  want: ${expected_header}")
endif()

# Every data row carries one value per column.
foreach(i RANGE 1 4)
  list(GET lines ${i} row)
  string(REGEX MATCHALL "," commas "${row}")
  list(LENGTH commas comma_count)
  if(NOT comma_count EQUAL 4)
    message(FATAL_ERROR "CSV row ${i} malformed (want 5 fields): ${row}")
  endif()
endforeach()

message(STATUS "rdcn_sim smoke sweep OK: ${line_count} lines, header + 4 checkpoint rows")

# Streamed twin of the sweep above: same scenario replayed through
# --stream (constant-memory TraceStream path).  The ledger columns must be
# bit-identical to the materialized run — stream twins replay the same
# requests — so beyond being well-formed, the CSV must match the
# materialized CSV line for line.
execute_process(
  COMMAND ${SIM}
    --topology=torus:rows=3,cols=3 --racks=9
    --workload=flow_pool:pairs=30,skew=1.1 --requests=3000
    --algorithms=r_bma:engine=lru,bma --b=2,4
    --trials=2 --checkpoints=4 --seed=7
    --stream
    --csv=${CSV}.streamed
  RESULT_VARIABLE stream_rc
  OUTPUT_VARIABLE stream_out
  ERROR_VARIABLE stream_err)
if(NOT stream_rc EQUAL 0)
  message(FATAL_ERROR "rdcn_sim --stream exited with ${stream_rc}\nstdout:\n${stream_out}\nstderr:\n${stream_err}")
endif()
if(NOT stream_out MATCHES "streamed")
  message(FATAL_ERROR "rdcn_sim --stream did not report streamed replay:\n${stream_out}")
endif()

file(STRINGS ${CSV}.streamed stream_lines)
if(NOT stream_lines STREQUAL lines)
  message(FATAL_ERROR "streamed CSV differs from materialized CSV:\n  materialized: ${lines}\n  streamed:     ${stream_lines}")
endif()

message(STATUS "rdcn_sim --stream smoke sweep OK: CSV bit-identical to materialized run")
