# End-to-end smoke for the install/export rules: stage `cmake --install`
# into a scratch prefix, then configure, build, and run a minimal
# downstream project that uses `find_package(rdcn CONFIG REQUIRED)` and
# links `rdcn::rdcn` — proving the exported targets, the relocated
# header tree (include/rdcn), and the Threads dependency all survive
# outside the build tree.  Registered as a tier1 ctest.
#
# Usage: cmake -DBUILD_DIR=<build tree> -DWORKDIR=<scratch dir>
#              -DGENERATOR=<cmake generator> -DCXX=<compiler>
#              -P check_install_smoke.cmake

set(prefix ${WORKDIR}/prefix)
set(app ${WORKDIR}/app)
file(REMOVE_RECURSE ${prefix} ${app})

# 1. Stage the install.
execute_process(
  COMMAND ${CMAKE_COMMAND} --install ${BUILD_DIR} --prefix ${prefix}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cmake --install failed (${rc})\nstdout:\n${out}\nstderr:\n${err}")
endif()
foreach(expected IN ITEMS
    include/rdcn/rdcn.hpp
    include/rdcn/common/fault.hpp
    include/rdcn/obs/metrics.hpp)
  if(NOT EXISTS ${prefix}/${expected})
    message(FATAL_ERROR "install prefix is missing ${expected}")
  endif()
endforeach()
# Only rdcn may land in the prefix — a vendored test/bench dependency
# leaking install rules would show up as a foreign include directory.
file(GLOB include_entries RELATIVE ${prefix}/include ${prefix}/include/*)
if(NOT include_entries STREQUAL "rdcn")
  message(FATAL_ERROR "unexpected entries in ${prefix}/include: ${include_entries}")
endif()

# 2. A downstream consumer: find_package + link rdcn::rdcn, include the
# umbrella header, run a tiny scenario, and touch the obs registry.
file(WRITE ${app}/CMakeLists.txt [[
cmake_minimum_required(VERSION 3.24)
project(rdcn_downstream CXX)
set(CMAKE_CXX_STANDARD 20)
set(CMAKE_CXX_STANDARD_REQUIRED ON)
find_package(rdcn CONFIG REQUIRED)
add_executable(smoke main.cpp)
target_link_libraries(smoke PRIVATE rdcn::rdcn)
]])
file(WRITE ${app}/main.cpp [[
#include <cstdio>
#include "rdcn.hpp"
int main() {
  using namespace rdcn;
  obs::Registry::global().counter("downstream_smoke_total", "smoke").inc();
  const scenario::ScenarioResult result =
      scenario::run_scenario(scenario::ScenarioSpec::parse(
          "workload=flow_pool:pairs=10,skew=1.1;algorithms=bma;b=4;"
          "racks=8;requests=500;trials=1;checkpoints=2;seed=3"));
  if (result.runs.empty()) return 1;
  std::printf("downstream ok: %zu runs, chunks=%llu\n", result.runs.size(),
              (unsigned long long)obs::Registry::global().counter_value(
                  "rdcn_sim_chunks_total"));
  return 0;
}
]])

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${app} -B ${app}/build -G ${GENERATOR}
    -DCMAKE_PREFIX_PATH=${prefix} -DCMAKE_CXX_COMPILER=${CXX}
    -DCMAKE_BUILD_TYPE=Release
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "downstream configure failed (${rc})\nstdout:\n${out}\nstderr:\n${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${app}/build
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "downstream build failed (${rc})\nstdout:\n${out}\nstderr:\n${err}")
endif()
execute_process(
  COMMAND ${app}/build/smoke
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "downstream ok: 1 runs")
  message(FATAL_ERROR "downstream smoke run failed (${rc})\nstdout:\n${out}\nstderr:\n${err}")
endif()

message(STATUS "rdcn install smoke OK: staged prefix consumed via find_package(rdcn)")
