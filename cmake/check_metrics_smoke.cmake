# End-to-end smoke for the observability surface: a spawned rdcn_serve
# daemon runs the tiny smoke scenario twice (second submission with
# component parameters reordered — a results-cache hit), then the client
# scrapes the METRICS endpoint.  The scrape must be syntactically valid
# Prometheus text exposition (every line a # HELP / # TYPE comment or a
# `name{labels} value` sample) and must carry the core metric families:
# runs by status, admission/run latency histograms, cache hit/miss,
# fault-point counters, and the process-wide pool/simulator counters.
# Registered as a tier1 ctest.
#
# Usage: cmake -DSERVE=<rdcn_serve> -DCLIENT=<rdcn_serve_client>
#              -DWORKDIR=<scratch dir> -P check_metrics_smoke.cmake

set(spec "topology=torus:rows=3,cols=3;workload=flow_pool:pairs=30,skew=1.1;algorithms=r_bma:engine=lru,bma;b=2,4;racks=9;requests=3000;trials=2;checkpoints=4;seed=7")
set(spec2 "topology=torus:cols=3,rows=3;workload=flow_pool:skew=1.1,pairs=30;algorithms=r_bma:engine=lru,bma;b=2,4;racks=9;requests=3000;trials=2;checkpoints=4;seed=7")
set(metrics_file ${WORKDIR}/metrics_smoke.txt)
execute_process(
  COMMAND ${CLIENT}
    --daemon=${SERVE} --socket=${WORKDIR}/metrics_smoke.sock
    # quoted: the specs contain semicolons, which bare ${} expansion would
    # split into separate list items / arguments
    "--spec=${spec}" "--spec2=${spec2}"
    --metrics-out=${metrics_file}
    --quiet
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdcn_serve_client exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# 1. Syntax: every non-empty line is a # HELP/# TYPE comment or a sample.
file(STRINGS ${metrics_file} lines)
list(LENGTH lines n_lines)
if(n_lines LESS 10)
  message(FATAL_ERROR "METRICS scrape suspiciously short (${n_lines} lines):\n${lines}")
endif()
set(metric_name "[a-zA-Z_:][a-zA-Z0-9_:]*")
set(number "[-+]?[0-9]+(\\.[0-9]+)?([eE][-+]?[0-9]+)?")
foreach(line IN LISTS lines)
  if(line MATCHES "^# HELP ${metric_name} .+$")
    continue()
  endif()
  if(line MATCHES "^# TYPE ${metric_name} (counter|gauge|histogram)$")
    continue()
  endif()
  if(line MATCHES "^${metric_name}(\\{[^{}]*\\})? ${number}$")
    continue()
  endif()
  message(FATAL_ERROR "invalid exposition line: '${line}'")
endforeach()

# 2. Coverage: the core families are present — and the ones this scenario
# must have moved are nonzero (two ok runs, one cache hit, >= 1 serve
# chunk).  Fault counters are eagerly registered by the daemon, so they
# appear (at zero) even though nothing was armed.
file(READ ${metrics_file} text)
foreach(required IN ITEMS
    "rdcn_serve_runs_total{status=\"ok\"} [1-9]"
    "rdcn_serve_runs_total{status=\"error\"} "
    "rdcn_serve_admission_wait_seconds_bucket"
    "rdcn_serve_admission_wait_seconds_count"
    "rdcn_serve_run_seconds_bucket"
    "rdcn_serve_cache_hits_total [1-9]"
    "rdcn_serve_cache_misses_total [1-9]"
    "rdcn_serve_queue_depth"
    "rdcn_serve_active_runs"
    "rdcn_serve_rejected_total"
    "rdcn_serve_quarantined_total"
    "rdcn_serve_shed_total"
    "rdcn_serve_brownout_level"
    "rdcn_serve_queue_wait_seconds_bucket"
    "rdcn_serve_runs_total{status=\"stalled\"} "
    "rdcn_serve_client_admitted_total{client=\"anon\"} [1-9]"
    "rdcn_fault_fires_total"
    "rdcn_journal_appends_total"
    "rdcn_journal_replayed_total"
    "rdcn_journal_corrupt_total"
    "rdcn_runs_recovered_total"
    "rdcn_attach_total"
    "rdcn_serve_drain_seconds_bucket"
    "rdcn_sim_chunks_total [1-9]"
    "rdcn_sim_requests_total [1-9]"
    "rdcn_pool_workers"
    "# TYPE rdcn_serve_run_seconds histogram")
  string(REPLACE "{" "\\{" pattern "${required}")
  string(REPLACE "}" "\\}" pattern "${pattern}")
  if(NOT text MATCHES "${pattern}")
    message(FATAL_ERROR "METRICS scrape is missing '${required}':\n${text}")
  endif()
endforeach()

message(STATUS "rdcn metrics smoke OK: ${n_lines} valid exposition lines, core families covered")
