# End-to-end smoke for the serving daemon: the same tiny scenario the
# rdcn_sim smoke sweep runs is submitted through a spawned rdcn_serve
# daemon, and the CSV that comes back over the socket must be
# bit-identical to a direct `rdcn_sim --csv` run.  A second submission
# with every component's parameters reordered must be answered from the
# results cache (cached=1) with the same bytes — proving canonical-spec
# keying end to end.  Registered as a tier1 ctest (so it also runs under
# the sanitizer CI job).
#
# Usage: cmake -DSIM=<rdcn_sim> -DSERVE=<rdcn_serve> -DCLIENT=<rdcn_serve_client>
#              -DWORKDIR=<scratch dir> -P check_serve_smoke.cmake

# 1. Ground truth: direct in-process run.
set(direct_csv ${WORKDIR}/serve_smoke_direct.csv)
execute_process(
  COMMAND ${SIM}
    --topology=torus:rows=3,cols=3 --racks=9
    --workload=flow_pool:pairs=30,skew=1.1 --requests=3000
    --algorithms=r_bma:engine=lru,bma --b=2,4
    --trials=2 --checkpoints=4 --seed=7
    --csv=${direct_csv}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdcn_sim exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# 2. The same scenario through the daemon (client spawns + reaps it).
# spec2 is the same experiment with component parameters reordered
# (torus cols before rows, flow_pool skew before pairs) — the canonical
# cache key must make it a hit.
set(spec "topology=torus:rows=3,cols=3;workload=flow_pool:pairs=30,skew=1.1;algorithms=r_bma:engine=lru,bma;b=2,4;racks=9;requests=3000;trials=2;checkpoints=4;seed=7")
set(spec2 "topology=torus:cols=3,rows=3;workload=flow_pool:skew=1.1,pairs=30;algorithms=r_bma:engine=lru,bma;b=2,4;racks=9;requests=3000;trials=2;checkpoints=4;seed=7")
set(served_csv ${WORKDIR}/serve_smoke_served.csv)
set(served2_csv ${WORKDIR}/serve_smoke_served2.csv)
execute_process(
  COMMAND ${CLIENT}
    --daemon=${SERVE} --socket=${WORKDIR}/serve_smoke.sock
    # quoted: the specs contain semicolons, which bare ${} expansion would
    # split into separate list items / arguments
    "--spec=${spec}" --csv=${served_csv}
    "--spec2=${spec2}" --csv2=${served2_csv}
    --quiet
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rdcn_serve_client exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

# 3. Served CSV == direct CSV, byte for byte.
foreach(served IN ITEMS ${served_csv} ${served2_csv})
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${direct_csv} ${served}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    file(READ ${direct_csv} direct_text)
    file(READ ${served} served_text)
    message(FATAL_ERROR "served CSV ${served} differs from direct run:\n"
      "--- direct ---\n${direct_text}\n--- served ---\n${served_text}")
  endif()
endforeach()

# 4. First submission executed (cached=0), reordered resubmission was a
# cache hit (cached=1).
if(NOT out MATCHES "run: status=ok cached=0")
  message(FATAL_ERROR "first submission did not report an executed ok run:\n${out}")
endif()
if(NOT out MATCHES "run: status=ok cached=1")
  message(FATAL_ERROR "reordered resubmission was not served from cache:\n${out}")
endif()

message(STATUS "rdcn_serve smoke OK: served CSV bit-identical to direct run, reordered resubmit cached")
