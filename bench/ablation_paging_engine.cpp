// Ablation: the paging engine inside R-BMA.  Theorem 2 accepts any paging
// algorithm; the competitive constant (and the practical routing cost)
// depends on the engine.  Randomized marking is the theory-backed default;
// LRU/CLOCK are the strongest deterministic heuristics on
// temporally-local traces; flush-when-full shows the failure mode.
#include <cstdio>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 150'000;
  const std::size_t racks = 100, b = 12;
  const net::Topology topo = net::make_fat_tree(racks);

  std::printf("== ablation: paging engine inside R-BMA (b=%zu) ==\n", b);
  std::printf("%18s %14s %14s %14s %12s\n", "engine", "routing", "reconfig",
              "total", "direct_frac");
  for (const char* workload : {"database", "web"}) {
    Xoshiro256 rng(workload[0]);
    const trace::Trace t = trace::generate_facebook_like(
        workload[0] == 'd' ? trace::FacebookCluster::kDatabase
                           : trace::FacebookCluster::kWebService,
        racks, num_requests, rng);
    std::printf("-- workload: %s --\n", workload);
    for (const char* engine : {"marking", "lru", "clock", "arc", "lfu",
                               "fifo", "random", "flush_when_full"}) {
      core::Instance inst;
      inst.distances = &topo.distances;
      inst.b = b;
      inst.alpha = 60;
      double routing = 0, reconfig = 0, direct = 0;
      const int seeds = 3;
      for (int s = 1; s <= seeds; ++s) {
        core::RBmaOptions opts;
        opts.engine = paging::parse_engine(engine);
        opts.seed = static_cast<std::uint64_t>(s);
        core::RBma alg(inst, opts);
        for (const core::Request& r : t) alg.serve(r);
        routing += static_cast<double>(alg.costs().routing_cost);
        reconfig += static_cast<double>(alg.costs().reconfig_cost);
        direct += alg.costs().direct_fraction();
      }
      std::printf("%18s %14.0f %14.0f %14.0f %12.3f\n", engine,
                  routing / seeds, reconfig / seeds,
                  (routing + reconfig) / seeds, direct / seeds);
    }
  }
  std::printf(
      "shape: marking/lru/clock cluster together; flush_when_full pays a "
      "visible\n"
      "       reconfiguration penalty (mass teardown on every phase "
      "boundary).\n");
  return 0;
}
