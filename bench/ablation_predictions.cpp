// Ablation: learning-augmented R-BMA (the paper's §5 future work).
//
// Sweeps prediction quality (oracle error rate) and trust, reporting the
// consistency/robustness trade-off: good predictions push routing cost
// toward the offline behaviour, while the uniform-random hedge bounds the
// damage of bad predictions.
#include <cstdio>
#include <memory>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 120'000;
  const std::size_t racks = 64, b = 8;
  const net::Topology topo = net::make_fat_tree(racks);

  Xoshiro256 rng(13);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, racks, num_requests, rng);

  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = b;
  inst.alpha = 60;

  auto mean_routing = [&](auto make_options) {
    double total = 0.0;
    const int seeds = 3;
    for (int s = 1; s <= seeds; ++s) {
      core::RBmaOptions opts = make_options();
      opts.seed = static_cast<std::uint64_t>(s);
      core::RBma alg(inst, opts);
      for (const core::Request& r : t) alg.serve(r);
      total += static_cast<double>(alg.costs().routing_cost);
    }
    return total / seeds;
  };

  const double plain =
      mean_routing([] { return core::RBmaOptions{}; });
  std::printf("== ablation: learning-augmented R-BMA (b=%zu) ==\n", b);
  std::printf("plain marking baseline routing: %.0f\n\n", plain);

  std::printf("-- prediction quality sweep (trust = 1.0) --\n");
  std::printf("%22s %14s %10s\n", "predictor", "routing", "vs plain");
  for (double err : {0.0, 0.1, 0.3, 0.6, 0.9}) {
    const double cost = mean_routing([&] {
      core::RBmaOptions opts;
      opts.predictor = std::make_shared<core::NoisyOraclePredictor>(
          t, err, Xoshiro256(99));
      opts.prediction_trust = 1.0;
      return opts;
    });
    std::printf("        oracle(err=%.1f) %14.0f %9.1f%%\n", err, cost,
                100.0 * (cost / plain - 1.0));
  }
  {
    const double cost = mean_routing([&] {
      core::RBmaOptions opts;
      opts.predictor = std::make_shared<core::EwmaPredictor>(2000.0);
      opts.prediction_trust = 1.0;
      return opts;
    });
    std::printf("%22s %14.0f %9.1f%%\n", "ewma(half-life 2k)", cost,
                100.0 * (cost / plain - 1.0));
  }

  std::printf("\n-- trust sweep (perfect oracle) --\n");
  std::printf("%10s %14s %10s\n", "trust", "routing", "vs plain");
  for (double trust : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double cost = mean_routing([&] {
      core::RBmaOptions opts;
      opts.predictor = std::make_shared<core::OraclePredictor>(t);
      opts.prediction_trust = trust;
      return opts;
    });
    std::printf("%10.2f %14.0f %9.1f%%\n", trust, cost,
                100.0 * (cost / plain - 1.0));
  }
  std::printf(
      "\nshape: perfect advice with full trust gives the best routing "
      "cost;\n"
      "       quality degradation decays gracefully toward (and is capped "
      "near)\n"
      "       the plain-marking baseline thanks to the random hedge.\n");
  return 0;
}
