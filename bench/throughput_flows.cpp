// Extension bench: flow-level throughput consequences of the matchings.
//
// The paper's cost model argues (§1.1, citing Mars/Cerberus) that routing
// cost is a "bandwidth tax" and throughput is inversely proportional to
// route length.  This bench closes the loop: take the matchings each
// algorithm converges to on a Facebook-like workload, run a fluid max-min
// flow simulation of a fresh traffic sample over fabric + optical links,
// and report mean/p99 flow completion times, aggregate throughput, and the
// measured bandwidth tax.
#include <cstdio>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t warmup_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 120'000;
  const std::size_t flow_count = 4'000;
  const std::size_t racks = 64, b = 8;
  const net::Topology topo = net::make_fat_tree(racks);

  // Warm up each algorithm on the workload to obtain its matching.
  Xoshiro256 rng(21);
  const trace::Trace warmup = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, racks, warmup_requests, rng);
  // Fresh sample from the same distribution for the flow study.
  const trace::Trace sample = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, racks, flow_count, rng);
  const auto specs = flowsim::flows_from_trace(sample, 40.0, 8.0);

  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = b;
  inst.alpha = 60;

  std::printf(
      "== flow-level throughput of converged matchings (racks=%zu, b=%zu, "
      "%zu flows) ==\n",
      racks, b, flow_count);
  std::printf("%14s %12s %12s %14s %14s\n", "algorithm", "mean_fct",
              "p99_fct", "throughput", "bandwidth_tax");

  double oblivious_fct = 0.0, rbma_fct = 0.0;
  for (const char* algo : {"oblivious", "rotor", "greedy", "bma", "r_bma", "so_bma"}) {
    auto matcher = scenario::make_algorithm(algo, inst, &warmup, /*seed=*/3);
    for (const core::Request& r : warmup) matcher->serve(r);

    const flowsim::FlowNetwork network(topo, matcher->matching(),
                                       /*fixed=*/10.0, /*optical=*/10.0);
    const flowsim::SimulationResult r =
        flowsim::simulate_flows(network, specs);
    std::printf("%14s %12.3f %12.3f %14.1f %14.3f\n", algo, r.mean_fct,
                r.p99_fct, r.aggregate_throughput, r.bandwidth_tax);
    if (std::string(algo) == "oblivious") oblivious_fct = r.mean_fct;
    if (std::string(algo) == "r_bma") rbma_fct = r.mean_fct;
  }
  std::printf(
      "\nSHAPE-CHECK optical shortcuts cut mean FCT: R-BMA %.3f vs "
      "Oblivious %.3f: %s\n",
      rbma_fct, oblivious_fct, rbma_fct < oblivious_fct ? "PASS" : "FAIL");
  std::printf(
      "shape: demand-aware matchings lower the bandwidth tax toward 1 and "
      "shorten\n"
      "       completion times — the premise connecting the paper's "
      "hop-count cost\n"
      "       to throughput.\n");
  return 0;
}
