// Ablation: reconfiguration-cost sensitivity.  γ = 1 + ℓmax/α governs the
// reduction overhead (Theorem 1); the paper remarks that in practice α is
// orders of magnitude above ℓmax so γ ≈ 1.  This bench sweeps α across
// four decades and reports cost composition and reconfiguration rates.
#include <cstdio>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 150'000;
  const std::size_t racks = 100, b = 12;
  const net::Topology topo = net::make_fat_tree(racks);

  Xoshiro256 rng(10);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, racks, num_requests, rng);

  std::printf("== ablation: alpha sweep (R-BMA, b=%zu, lmax=%u) ==\n", b,
              topo.distances.max_distance());
  std::printf("%8s %8s %14s %14s %14s %12s\n", "alpha", "gamma", "routing",
              "reconfig", "total", "reconf_ops");
  for (std::uint64_t alpha : {2ull, 8ull, 32ull, 128ull, 512ull, 2048ull}) {
    core::Instance inst;
    inst.distances = &topo.distances;
    inst.b = b;
    inst.alpha = alpha;
    double routing = 0, reconfig = 0, ops = 0;
    const int seeds = 3;
    for (int s = 1; s <= seeds; ++s) {
      core::RBma alg(inst, {.seed = static_cast<std::uint64_t>(s)});
      for (const core::Request& r : t) alg.serve(r);
      routing += static_cast<double>(alg.costs().routing_cost);
      reconfig += static_cast<double>(alg.costs().reconfig_cost);
      ops += static_cast<double>(alg.costs().edge_adds +
                                 alg.costs().edge_removals);
    }
    std::printf("%8llu %8.3f %14.0f %14.0f %14.0f %12.0f\n",
                static_cast<unsigned long long>(alpha), inst.gamma(),
                routing / seeds, reconfig / seeds,
                (routing + reconfig) / seeds, ops / seeds);
  }
  std::printf(
      "shape: reconfiguration ops fall ~linearly in alpha (the ke = "
      "ceil(a/l) cadence);\n"
      "       total cost is U-shaped — thrash at tiny alpha, sluggish "
      "adaptation at huge alpha.\n");
  return 0;
}
