// Ablation: fixed-network topology sensitivity (§3.1: "our experiments
// only consider the fat-tree topology because of its wide adoption ...
// network topologies with shorter paths would result in lower costs").
// Same workload over fat-tree, leaf-spine, expander, torus, star, ring.
#include <cstdio>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 100'000;
  const std::size_t racks = 64, b = 8;

  Xoshiro256 topo_rng(11);
  std::vector<net::Topology> topologies;
  topologies.push_back(net::make_fat_tree(racks));
  topologies.push_back(net::make_leaf_spine(racks, 8));
  topologies.push_back(net::make_random_regular(racks, 4, topo_rng));
  topologies.push_back(net::make_torus(8, 8));
  topologies.push_back(net::make_star(racks));
  topologies.push_back(net::make_ring(racks));

  Xoshiro256 rng(12);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, racks, num_requests, rng);

  std::printf("== ablation: topology sensitivity (R-BMA, b=%zu) ==\n", b);
  std::printf("%20s %10s %14s %14s %12s\n", "topology", "mean_dist",
              "oblivious", "r_bma", "reduction%");
  for (const net::Topology& topo : topologies) {
    core::Instance inst;
    inst.distances = &topo.distances;
    inst.b = b;
    inst.alpha = 60;

    core::Oblivious obl(inst);
    for (const core::Request& r : t) obl.serve(r);

    double rbma = 0.0;
    const int seeds = 3;
    for (int s = 1; s <= seeds; ++s) {
      core::RBma alg(inst, {.seed = static_cast<std::uint64_t>(s)});
      for (const core::Request& r : t) alg.serve(r);
      rbma += static_cast<double>(alg.costs().routing_cost);
    }
    rbma /= seeds;
    const auto obl_cost = static_cast<double>(obl.costs().routing_cost);
    std::printf("%20s %10.2f %14.0f %14.0f %12.1f\n", topo.name.c_str(),
                topo.distances.mean_distance(), obl_cost, rbma,
                100.0 * (1.0 - rbma / obl_cost));
  }
  std::printf(
      "shape: longer fixed-network paths (ring) leave more for "
      "reconfigurable links\n"
      "       to save; short-diameter fabrics (leaf-spine) cap the "
      "achievable reduction.\n");
  return 0;
}
