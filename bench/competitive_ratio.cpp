// Theory bench (LB-1/LB-2 in DESIGN.md): empirical competitive ratios on
// the paper's lower-bound constructions.
//
// Table 1: paging layer — cruel adversary vs deterministic engines shows
//          the Θ(b) wall; uniform adversary vs marking shows O(log b).
// Table 2: matching layer — adversarial round-robin star traffic, the
//          Lemma 1 embedding: deterministic BMA's cost rate grows with b
//          while R-BMA's stays near the log-curve.
#include <cmath>
#include <cstdio>

#include "rdcn.hpp"

namespace {

using namespace rdcn;

void paging_table() {
  std::printf("== paging competitive ratios vs OPT (universe = b+1) ==\n");
  std::printf("%6s %14s %14s %14s %14s\n", "b", "lru_cruel", "fifo_cruel",
              "marking_unif", "2(ln b + 1)");
  const std::size_t steps = 60000;
  for (std::size_t b : {2ul, 4ul, 8ul, 16ul, 32ul, 64ul}) {
    // Deterministic engines against their personal worst case.
    auto ratio_cruel = [&](paging::EngineKind kind) {
      auto engine = paging::make_engine(kind, b, Xoshiro256(1));
      const paging::CruelAdversary adv(b + 1);
      const auto seq = adv.drive(*engine, steps);
      const auto opt = paging::Belady::optimal_faults(b, seq);
      return opt == 0 ? 0.0
                      : static_cast<double>(engine->faults()) /
                            static_cast<double>(opt);
    };
    // Marking against the oblivious uniform adversary.
    paging::UniformAdversary uadv(b + 1, Xoshiro256(2));
    const auto useq = uadv.sequence(steps);
    paging::Marking marking(b, Xoshiro256(3));
    std::vector<paging::Key> ev;
    for (paging::Key k : useq) {
      ev.clear();
      marking.request(k, ev);
    }
    const auto uopt = paging::Belady::optimal_faults(b, useq);
    const double marking_ratio =
        uopt == 0 ? 0.0
                  : static_cast<double>(marking.faults()) /
                        static_cast<double>(uopt);
    std::printf("%6zu %14.2f %14.2f %14.2f %14.2f\n", b,
                ratio_cruel(paging::EngineKind::kLru),
                ratio_cruel(paging::EngineKind::kFifo), marking_ratio,
                2.0 * (std::log(static_cast<double>(b)) + 1.0));
  }
  std::printf(
      "shape: cruel columns grow linearly in b (deterministic Theta(b));\n"
      "       marking column tracks the 2(ln b + 1) curve (randomized "
      "O(log b)).\n\n");
}

void matching_table() {
  std::printf(
      "== matching layer on the Lemma-1 star embedding "
      "(adaptive adversary chasing BMA over b+1 hub pairs) ==\n");
  std::printf("%6s %16s %16s %16s\n", "b", "BMA_cost/req", "RBMA_cost/req",
              "Oblivious/req");
  const std::size_t racks = 80;
  const std::uint64_t alpha = 6;
  const net::Topology star = net::make_star(racks);
  for (std::size_t b : {2ul, 4ul, 8ul, 16ul, 32ul}) {
    const std::size_t steps = 40000;
    core::Instance inst;
    inst.distances = &star.distances;
    inst.b = b;
    inst.alpha = alpha;

    // Adaptive adversary, compiled against a deterministic victim copy.
    core::Bma victim(inst);
    const trace::Trace t =
        core::generate_chasing_trace(victim, racks, b, steps);

    core::Bma bma(inst);
    for (const core::Request& r : t) bma.serve(r);

    double rbma_total = 0.0;
    const int seeds = 5;
    for (int s = 1; s <= seeds; ++s) {
      core::RBma rbma(inst, {.seed = static_cast<std::uint64_t>(s)});
      for (const core::Request& r : t) rbma.serve(r);
      rbma_total += static_cast<double>(rbma.costs().total_cost());
    }
    core::Oblivious obl(inst);
    for (const core::Request& r : t) obl.serve(r);

    const auto per = [&](double total) {
      return total / static_cast<double>(steps);
    };
    std::printf("%6zu %16.3f %16.3f %16.3f\n", b,
                per(static_cast<double>(bma.costs().total_cost())),
                per(rbma_total / seeds),
                per(static_cast<double>(obl.costs().total_cost())));
  }
  std::printf(
      "shape: the chase pins BMA at the 2-hop fixed-network rate plus "
      "churn for every b\n"
      "       (it never serves a request on a matching edge); R-BMA's "
      "random evictions\n"
      "       decorrelate from the (BMA-specific) chase and pay far less "
      "per request.\n\n");
}

}  // namespace

int main() {
  paging_table();
  matching_table();
  return 0;
}
