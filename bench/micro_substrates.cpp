// Google-benchmark micro measurements of the substrate layers: the flat
// hash containers on the per-request hot path, the paging engines, the
// b-matching structure, and topology/APSP construction.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "legacy_flat_map.hpp"
#include "rdcn.hpp"

namespace {

using namespace rdcn;

// Mixed insert/erase/find churn over a bounded key space — the access
// pattern of the matching algorithms' per-pair maps.  Run for the tagged
// FlatMap, the pre-overhaul untagged layout, and std::unordered_map.
template <typename Map>
void churn_mix(benchmark::State& state) {
  Xoshiro256 rng(12);
  Map map;
  for (auto _ : state) {
    const std::uint64_t k = 1 + rng.next_below(1 << 14);
    switch (rng.next_below(4)) {
      case 0:
        map[k] = k;
        break;
      case 1:
        map.erase(k);
        break;
      default:
        benchmark::DoNotOptimize(map.find(k));
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatMapChurn(benchmark::State& state) {
  churn_mix<FlatMap<std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapChurn);

void BM_LegacyFlatMapChurn(benchmark::State& state) {
  churn_mix<bench::LegacyFlatMap<std::uint64_t>>(state);
}
BENCHMARK(BM_LegacyFlatMapChurn);

void BM_StdUnorderedChurn(benchmark::State& state) {
  churn_mix<std::unordered_map<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_StdUnorderedChurn);

// Miss-heavy lookups are where the tag array pays off: a miss scans tags
// only (64 per cache line) instead of the wide slot array.
void BM_FlatMapLookupMiss(benchmark::State& state) {
  Xoshiro256 rng(13);
  FlatMap<std::uint64_t> map;
  for (std::uint64_t k = 1; k <= (1 << 16); ++k) map[k] = k;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find((1 << 20) + rng.next_below(1 << 16)));
  }
}
BENCHMARK(BM_FlatMapLookupMiss);

void BM_FlatMapUpsert(benchmark::State& state) {
  Xoshiro256 rng(1);
  FlatMap<std::uint64_t> map;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++map[1 + rng.next_below(1 << 16)]);
  }
}
BENCHMARK(BM_FlatMapUpsert);

void BM_StdUnorderedUpsert(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++map[1 + rng.next_below(1 << 16)]);
  }
}
BENCHMARK(BM_StdUnorderedUpsert);

void BM_FlatMapLookupHit(benchmark::State& state) {
  Xoshiro256 rng(2);
  FlatMap<std::uint64_t> map;
  for (std::uint64_t k = 1; k <= (1 << 16); ++k) map[k] = k;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(1 + rng.next_below(1 << 16)));
  }
}
BENCHMARK(BM_FlatMapLookupHit);

void BM_FlatSetChurn(benchmark::State& state) {
  Xoshiro256 rng(3);
  FlatSet set;
  for (auto _ : state) {
    const std::uint64_t k = 1 + rng.next_below(4096);
    if (!set.insert(k)) set.erase(k);
  }
}
BENCHMARK(BM_FlatSetChurn);

void BM_PagingEngineRequest(benchmark::State& state) {
  const auto kind = static_cast<paging::EngineKind>(state.range(0));
  auto engine = paging::make_engine(kind, 18, Xoshiro256(4));
  Xoshiro256 rng(5);
  std::vector<paging::Key> evicted;
  for (auto _ : state) {
    evicted.clear();
    engine->request(1 + rng.next_below(64), evicted);
  }
  state.SetLabel(paging::engine_name(kind));
}
BENCHMARK(BM_PagingEngineRequest)
    ->Arg(static_cast<int>(paging::EngineKind::kMarking))
    ->Arg(static_cast<int>(paging::EngineKind::kLru))
    ->Arg(static_cast<int>(paging::EngineKind::kFifo))
    ->Arg(static_cast<int>(paging::EngineKind::kClock))
    ->Arg(static_cast<int>(paging::EngineKind::kRandom));

void BM_BMatchingChurn(benchmark::State& state) {
  const std::size_t n = 100, b = 18;
  core::BMatching m(n, b);
  Xoshiro256 rng(6);
  for (auto _ : state) {
    const auto u = static_cast<core::Rack>(rng.next_below(n));
    auto v = static_cast<core::Rack>(rng.next_below(n - 1));
    if (v >= u) ++v;
    if (m.has(u, v)) {
      m.remove(u, v);
    } else if (!m.full(u) && !m.full(v)) {
      m.add(u, v);
    }
  }
}
BENCHMARK(BM_BMatchingChurn);

void BM_FatTreeConstruction(benchmark::State& state) {
  const auto racks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const net::Topology t = net::make_fat_tree(racks);
    benchmark::DoNotOptimize(t.distances.max_distance());
  }
}
BENCHMARK(BM_FatTreeConstruction)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_TraceGenerationFacebook(benchmark::State& state) {
  Xoshiro256 rng(7);
  for (auto _ : state) {
    const trace::Trace t = trace::generate_facebook_like(
        trace::FacebookCluster::kDatabase, 100, 50'000, rng);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_TraceGenerationFacebook)->Unit(benchmark::kMillisecond);

void BM_TraceGenerationMicrosoft(benchmark::State& state) {
  Xoshiro256 rng(8);
  for (auto _ : state) {
    const trace::Trace t =
        trace::generate_microsoft_like(50, 50'000, {}, rng);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_TraceGenerationMicrosoft)->Unit(benchmark::kMillisecond);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf(4950, 1.2);
  Xoshiro256 rng(9);
  for (auto _ : state) benchmark::DoNotOptimize(zipf(rng));
}
BENCHMARK(BM_ZipfSample);

void BM_AliasSample(benchmark::State& state) {
  std::vector<double> w(4950);
  Xoshiro256 init(10);
  for (auto& x : w) x = init.next_double() + 1e-9;
  const AliasSampler alias(w);
  Xoshiro256 rng(11);
  for (auto _ : state) benchmark::DoNotOptimize(alias(rng));
}
BENCHMARK(BM_AliasSample);

}  // namespace

BENCHMARK_MAIN();
