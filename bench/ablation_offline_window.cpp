// Ablation: window size of the epoch-based dynamic offline comparator.
//
// W -> trace length recovers SO-BMA (one static matching); tiny W adapts
// per-burst but pays α on every boundary.  The sweet spot depends on the
// workload's temporal structure — bursty Facebook-like traffic rewards
// adaptivity, the i.i.d. Microsoft-like trace does not (its demand is
// stationary, so switching is pure waste).
#include <cstdio>

#include "rdcn.hpp"

namespace {

using namespace rdcn;

void sweep(const char* label, const trace::Trace& t,
           const net::Topology& topo, std::size_t b) {
  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = b;
  inst.alpha = 60;

  std::printf("-- %s --\n", label);
  std::printf("%10s %14s %14s %14s %10s\n", "window", "routing", "reconfig",
              "total", "windows");
  for (std::size_t w : {2000ul, 10000ul, 50000ul, 200000ul, 1000000ul}) {
    if (w > 4 * t.size()) continue;
    core::OfflineDynamicOptions opts;
    opts.window = w;
    core::OfflineDynamic alg(inst, t, opts);
    for (const core::Request& r : t) alg.serve(r);
    std::printf("%10zu %14llu %14llu %14llu %10zu\n", w,
                static_cast<unsigned long long>(alg.costs().routing_cost),
                static_cast<unsigned long long>(alg.costs().reconfig_cost),
                static_cast<unsigned long long>(alg.costs().total_cost()),
                alg.num_windows());
  }
  // SO-BMA reference (the W = infinity point).
  core::SoBma so(inst, t);
  for (const core::Request& r : t) so.serve(r);
  std::printf("%10s %14llu %14llu %14llu %10d\n\n", "static",
              static_cast<unsigned long long>(so.costs().routing_cost),
              static_cast<unsigned long long>(so.costs().reconfig_cost),
              static_cast<unsigned long long>(so.costs().total_cost()), 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 200'000;

  std::printf("== ablation: offline-dynamic window size ==\n");
  {
    const std::size_t racks = 100;
    const net::Topology topo = net::make_fat_tree(racks);
    Xoshiro256 rng(14);
    const trace::Trace t = trace::generate_facebook_like(
        trace::FacebookCluster::kHadoop, racks, num_requests, rng);
    sweep("facebook-hadoop (bursty, drifting)", t, topo, 12);
  }
  {
    const std::size_t racks = 50;
    const net::Topology topo = net::make_fat_tree(racks);
    Xoshiro256 rng(15);
    const trace::Trace t =
        trace::generate_microsoft_like(racks, num_requests, {}, rng);
    sweep("microsoft (i.i.d., stationary)", t, topo, 9);
  }
  std::printf(
      "shape: on drifting traffic, moderate windows beat the static "
      "matching;\n"
      "       on stationary i.i.d. traffic the static matching is optimal "
      "and\n"
      "       every reconfiguration is wasted cost.\n");
  return 0;
}
