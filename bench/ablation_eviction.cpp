// Ablation: lazy vs eager matching eviction in R-BMA (footnote 2 of the
// paper).  Lazy keeps evicted-but-still-useful optical links alive until a
// rack actually needs the degree slot, saving both reconfiguration cost
// and routing cost from resurrected edges.
#include <cstdio>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 150'000;
  const std::size_t racks = 100;
  const net::Topology topo = net::make_fat_tree(racks);

  Xoshiro256 rng(7);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, racks, num_requests, rng);

  std::printf("== ablation: lazy vs eager eviction in R-BMA ==\n");
  std::printf("%4s %8s %14s %14s %10s %10s\n", "b", "mode", "routing",
              "reconfig", "adds", "removals");
  for (std::size_t b : {6ul, 12ul, 18ul}) {
    for (bool lazy : {true, false}) {
      core::Instance inst;
      inst.distances = &topo.distances;
      inst.b = b;
      inst.alpha = 60;
      double routing = 0, reconfig = 0, adds = 0, removals = 0;
      const int seeds = 5;
      for (int s = 1; s <= seeds; ++s) {
        core::RBma alg(inst, {.lazy_eviction = lazy,
                              .seed = static_cast<std::uint64_t>(s)});
        for (const core::Request& r : t) alg.serve(r);
        routing += static_cast<double>(alg.costs().routing_cost);
        reconfig += static_cast<double>(alg.costs().reconfig_cost);
        adds += static_cast<double>(alg.costs().edge_adds);
        removals += static_cast<double>(alg.costs().edge_removals);
      }
      std::printf("%4zu %8s %14.0f %14.0f %10.0f %10.0f\n", b,
                  lazy ? "lazy" : "eager", routing / seeds, reconfig / seeds,
                  adds / seeds, removals / seeds);
    }
  }
  std::printf(
      "shape: lazy mode performs fewer removals (and hence fewer re-adds) "
      "at equal\n"
      "       or better routing cost — the paper's experimental default.\n");
  return 0;
}
