// Reproduces Figure 2 of the paper: Facebook web-service cluster.
// 100 racks, b in {6, 12, 18}, 4.0e5 requests (panels a, b, c).
//
// Trace substitution: synthetic web-service model (mild skew, short
// bursts, wide working set) — see DESIGN.md §3.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 400'000;

  bench::FigureSetup setup;
  setup.figure = "Fig2";
  setup.num_racks = 100;
  setup.cache_sizes = {6, 12, 18};
  setup.alpha = 60;

  Xoshiro256 rng(42);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kWebService, setup.num_racks, num_requests,
      rng);
  bench::run_figure(setup, t);
  return 0;
}
