// Micro-benchmarks for the hot-kernel library (common/simd.hpp): the
// scalar reference vs the runtime-dispatched SIMD variant of each kernel,
// at the row lengths the serve pipeline actually sees — b ∈ {4, 16, 64,
// 256} for the BMA eviction-scan argmin and membership find, and serve
// blocks of 256 for the distance gathers.
//
// The scalar side calls simd::scalar::* directly (not the dispatcher with
// forcing flipped), so one run reports both columns without mutating
// global dispatch state.  Note the dispatched wrappers keep rows of n <= 4
// (argmin/find_u64) on an inline scalar fast path by design — at b=4 the
// two columns are expected to tie.
//
// Build/run: cmake --build build --target bench_micro_kernels &&
//            build/bench/micro_kernels
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "net/distance_matrix.hpp"

namespace {

using namespace rdcn;

/// One set of fuzzed rows per benchmark repetition pool: 64 rows per
/// length so the kernel does not just replay one branch-predicted row.
struct ArgminRows {
  std::vector<std::vector<std::uint64_t>> primary;
  std::vector<std::vector<std::uint64_t>> secondary;
};

ArgminRows make_argmin_rows(std::size_t n) {
  Xoshiro256 rng(77 + n);
  ArgminRows rows;
  for (int r = 0; r < 64; ++r) {
    std::vector<std::uint64_t> p(n), s(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = rng.next_below(4);   // usage-counter shape: heavy ties
      s[i] = 1 + rng.next_below(1u << 20);  // admission ticks: distinct-ish
    }
    rows.primary.push_back(std::move(p));
    rows.secondary.push_back(std::move(s));
  }
  return rows;
}

void BM_ArgminPairScalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ArgminRows rows = make_argmin_rows(n);
  std::size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::scalar::argmin_u64_pair(
        rows.primary[r].data(), rows.secondary[r].data(), n));
    r = (r + 1) & 63;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArgminPairScalar)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ArgminPairSimd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ArgminRows rows = make_argmin_rows(n);
  std::size_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::argmin_u64_pair(
        rows.primary[r].data(), rows.secondary[r].data(), n));
    r = (r + 1) & 63;
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArgminPairSimd)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

std::vector<std::uint64_t> make_keys(std::size_t n) {
  Xoshiro256 rng(99 + n);
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = rng.next();
  return keys;
}

void BM_FindKeyScalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint64_t> keys = make_keys(n);
  // Worst case (and BMA's common case): needle absent — full row walk.
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::scalar::find_u64(keys.data(), n, 1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FindKeyScalar)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FindKeySimd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint64_t> keys = make_keys(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::find_u64(keys.data(), n, 1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FindKeySimd)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

struct GatherInput {
  std::vector<std::uint16_t> base;
  std::vector<std::uint32_t> idx;
};

GatherInput make_gather_input(std::size_t n) {
  // A 100-rack distance matrix (the perf_gate shape), padded per the
  // gather contract, indexed by a fuzzed request block.
  constexpr std::size_t kRacks = 100;
  Xoshiro256 rng(55);
  GatherInput in;
  in.base.assign(kRacks * kRacks + net::DistanceMatrix::kGatherPadding, 0);
  for (std::size_t i = 0; i < kRacks * kRacks; ++i)
    in.base[i] = static_cast<std::uint16_t>(1 + rng.next_below(6));
  in.idx.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    in.idx[i] = static_cast<std::uint32_t>(rng.next_below(kRacks * kRacks));
  return in;
}

void BM_GatherSumScalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const GatherInput in = make_gather_input(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::scalar::gather_sum_u16(in.base.data(), in.idx.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GatherSumScalar)->Arg(64)->Arg(256)->Arg(4096);

void BM_GatherSumSimd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const GatherInput in = make_gather_input(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::gather_sum_u16(in.base.data(), in.idx.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GatherSumSimd)->Arg(64)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
