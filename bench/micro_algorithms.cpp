// Google-benchmark micro measurements: per-request latency of each
// algorithm as a function of the cache size b.  This is the mechanism
// behind Figs 1b-4b: BMA's eviction scan is Θ(b) while R-BMA's paging step
// is O(1) amortized, so BMA's per-request cost grows with b.
#include <benchmark/benchmark.h>

#include "rdcn.hpp"

namespace {

using namespace rdcn;

const net::Topology& shared_topology() {
  static const net::Topology topo = net::make_fat_tree(100);
  return topo;
}

const trace::Trace& shared_trace() {
  static const trace::Trace t = [] {
    Xoshiro256 rng(77);
    return trace::generate_facebook_like(trace::FacebookCluster::kDatabase,
                                         100, 200'000, rng);
  }();
  return t;
}

core::Instance instance_with_b(std::size_t b) {
  core::Instance inst;
  inst.distances = &shared_topology().distances;
  inst.b = b;
  inst.alpha = 60;
  return inst;
}

void BM_RBmaServe(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  core::RBma alg(instance_with_b(b), {.seed = 5});
  const trace::Trace& t = shared_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    alg.serve(t[i]);
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RBmaServe)->Arg(3)->Arg(6)->Arg(12)->Arg(18)->Arg(36);

void BM_BmaServe(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  core::Bma alg(instance_with_b(b));
  const trace::Trace& t = shared_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    alg.serve(t[i]);
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BmaServe)->Arg(3)->Arg(6)->Arg(12)->Arg(18)->Arg(36);

void BM_GreedyServe(benchmark::State& state) {
  core::GreedyOnline alg(instance_with_b(12));
  const trace::Trace& t = shared_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    alg.serve(t[i]);
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GreedyServe);

void BM_ObliviousServe(benchmark::State& state) {
  core::Oblivious alg(instance_with_b(12));
  const trace::Trace& t = shared_trace();
  std::size_t i = 0;
  for (auto _ : state) {
    alg.serve(t[i]);
    if (++i == t.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObliviousServe);

void BM_SoBmaConstruction(benchmark::State& state) {
  const trace::Trace& t = shared_trace();
  const core::Instance inst = instance_with_b(12);
  for (auto _ : state) {
    core::SoBma so(inst, t);
    benchmark::DoNotOptimize(so.matching().size());
  }
}
BENCHMARK(BM_SoBmaConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
