// Pre-overhaul FlatMap (untagged, key-sentinel-only probing), preserved
// verbatim as the comparison point for the micro_substrates churn bench:
// the "old vs tagged layout" numbers in BENCH output refer to this class
// vs rdcn::FlatMap.  Bench-only — nothing in src/ may include this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_hash.hpp"  // for detail::mix64

namespace rdcn::bench {

/// The seed-commit FlatMap: one {key, value} slot array, linear probing on
/// the full slots, backward-shift deletion, no tag array.
template <typename V>
class LegacyFlatMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  LegacyFlatMap() { rehash(16); }

  std::size_t size() const noexcept { return size_; }

  V& operator[](std::uint64_t key) {
    maybe_grow();
    std::size_t i = probe_start(key);
    while (true) {
      if (slots_[i].key == key) return slots_[i].value;
      if (slots_[i].key == kEmptyKey) {
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
      }
      i = next(i);
    }
  }

  V* find(std::uint64_t key) noexcept {
    std::size_t i = probe_start(key);
    while (true) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == kEmptyKey) return nullptr;
      i = next(i);
    }
  }

  bool erase(std::uint64_t key) noexcept {
    std::size_t i = probe_start(key);
    while (true) {
      if (slots_[i].key == kEmptyKey) return false;
      if (slots_[i].key == key) break;
      i = next(i);
    }
    std::size_t hole = i;
    std::size_t j = next(i);
    while (slots_[j].key != kEmptyKey) {
      const std::size_t home = probe_start(slots_[j].key);
      const bool movable = (hole <= j) ? (home <= hole || home > j)
                                       : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = next(j);
    }
    slots_[hole].key = kEmptyKey;
    --size_;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  std::size_t probe_start(std::uint64_t key) const noexcept {
    return detail::mix64(key) & mask_;
  }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & mask_; }

  void maybe_grow() {
    if (size_ * 4 >= slots_.size() * 3) rehash(slots_.size() * 2);
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    size_ = 0;
    for (auto& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].key != kEmptyKey) i = next(i);
      slots_[i] = std::move(s);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rdcn::bench
