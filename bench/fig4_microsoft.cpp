// Reproduces Figure 4 of the paper: Microsoft (ProjecToR) cluster.
// 50 racks, b in {3, 6, 9}, 1.75e6 requests sampled i.i.d. from a skewed
// traffic matrix (panels a, b, c).
//
// Trace substitution: synthetic gravity-model matrix with elephant
// entries, i.i.d. sampling — see DESIGN.md §3.  Expect SO-BMA to win
// clearly in panel (c): the trace has no temporal structure by design.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 1'750'000;

  bench::FigureSetup setup;
  setup.figure = "Fig4";
  setup.num_racks = 50;
  setup.cache_sizes = {3, 6, 9};
  setup.alpha = 60;
  setup.quality_band = 1.15;  // see FigureSetup::quality_band

  Xoshiro256 rng(44);
  const trace::Trace t = trace::generate_microsoft_like(
      setup.num_racks, num_requests, {}, rng);
  bench::run_figure(setup, t);
  return 0;
}
