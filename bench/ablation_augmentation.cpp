// Ablation: resource augmentation — the (b,a)-matching generalization
// (§1.1).  The online algorithm keeps degree b while the offline
// comparator (SO-BMA) is restricted to degree a <= b.  The theory predicts
// the online/offline gap shrinks like log(b/(b-a+1)) as the augmentation
// b-a grows.
#include <cstdio>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 200'000;
  const std::size_t racks = 50;
  const net::Topology topo = net::make_fat_tree(racks);

  Xoshiro256 rng(9);
  const trace::Trace t =
      trace::generate_microsoft_like(racks, num_requests, {}, rng);

  const std::size_t b = 12;
  std::printf(
      "== ablation: (b,a)-matching — online degree b=%zu vs offline degree "
      "a ==\n",
      b);
  std::printf("%4s %16s %16s %12s\n", "a", "RBMA_routing", "SOBMA_routing",
              "ratio");
  for (std::size_t a : {12ul, 9ul, 6ul, 3ul, 1ul}) {
    core::Instance inst;
    inst.distances = &topo.distances;
    inst.b = b;
    inst.a = a;
    inst.alpha = 60;

    double rbma = 0.0;
    const int seeds = 3;
    for (int s = 1; s <= seeds; ++s) {
      core::RBma alg(inst, {.seed = static_cast<std::uint64_t>(s)});
      for (const core::Request& r : t) alg.serve(r);
      rbma += static_cast<double>(alg.costs().routing_cost);
    }
    rbma /= seeds;

    core::SoBma so(inst, t);
    for (const core::Request& r : t) so.serve(r);
    const auto so_routing = static_cast<double>(so.costs().routing_cost);

    std::printf("%4zu %16.0f %16.0f %12.3f\n", a, rbma, so_routing,
                rbma / so_routing);
  }
  std::printf(
      "shape: as the offline adversary's degree a shrinks (more "
      "augmentation for\n"
      "       the online player), the online/offline ratio falls toward "
      "(and below) 1\n"
      "       — the log(b/(b-a+1)) effect of Corollary 3.\n");
  return 0;
}
