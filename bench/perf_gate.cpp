// Perf-regression gate for the request path.
//
// Replays fixed-seed Facebook-like and Microsoft-like traces through
// BMA / R-BMA / SO-BMA / greedy / oblivious at b ∈ {4, 16, 64} over BOTH
// execution paths — the scalar serve() loop and the batched serve_batch
// pipeline — and
//
//   1. asserts every cost ledger (scalar AND batched) is bit-identical to
//      the golden anchors captured from the pre-overhaul implementation
//      (the determinism contract: layout/scheduling optimizations must
//      never change a ledger),
//   2. measures single-thread requests/sec per combination and path (best
//      of `reps` runs, interleaved so machine drift hits both paths
//      equally) and emits machine-readable BENCH_request_path.json,
//      including the recorded pre-overhaul BMA baseline and the
//      batched-vs-scalar speedup per algorithm.
//
// Exit code: non-zero on any ledger mismatch; with --strict also when the
// BMA geomean speedup vs the recorded baseline falls below 1.5x or the
// batched-path geomean speedup over {bma, r_bma, so_bma} falls below the
// 1.3x target (perf checks default to report-only because CI machines
// share cores).
//
// Usage: perf_gate [--out=FILE] [--reps=N] [--strict]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "rdcn.hpp"

namespace {

using namespace rdcn;

constexpr std::size_t kRacks = 100;
constexpr std::size_t kRequests = 200'000;
constexpr std::uint64_t kAlpha = 60;
constexpr std::uint64_t kSeed = 42;
const std::size_t kCacheSizes[] = {4, 16, 64};

// The batched-path speedup target is judged over the algorithms the
// paper's evaluation stresses (the two online contenders plus the offline
// comparator); greedy/oblivious ride along as context.
const char* const kCoreAlgorithms[] = {"bma", "r_bma", "so_bma"};

// Golden cost ledgers captured from the pre-overhaul implementation (seed
// commit) with the exact trace/instance parameters above.  Every entry is
// {routing_cost, reconfig_cost, edge_adds, edge_removals}.
struct Golden {
  const char* trace;
  const char* algorithm;
  std::size_t b;
  std::uint64_t routing_cost;
  std::uint64_t reconfig_cost;
  std::uint64_t edge_adds;
  std::uint64_t edge_removals;
};

constexpr Golden kGolden[] = {
    {"facebook_db", "bma", 4, 527334ull, 557400ull, 4727ull, 4563ull},
    {"facebook_db", "r_bma", 4, 467907ull, 604740ull, 5116ull, 4963ull},
    {"facebook_db", "so_bma", 4, 516230ull, 11940ull, 199ull, 0ull},
    {"facebook_db", "greedy", 4, 647421ull, 11940ull, 199ull, 0ull},
    {"facebook_db", "oblivious", 4, 761170ull, 0ull, 0ull, 0ull},
    {"facebook_db", "bma", 16, 424419ull, 264240ull, 2570ull, 1834ull},
    {"facebook_db", "r_bma", 16, 385508ull, 197280ull, 2013ull, 1275ull},
    {"facebook_db", "so_bma", 16, 388057ull, 47880ull, 798ull, 0ull},
    {"facebook_db", "greedy", 16, 517462ull, 47880ull, 798ull, 0ull},
    {"facebook_db", "oblivious", 16, 761170ull, 0ull, 0ull, 0ull},
    {"facebook_db", "bma", 64, 372821ull, 96240ull, 1604ull, 0ull},
    {"facebook_db", "r_bma", 64, 372821ull, 96240ull, 1604ull, 0ull},
    {"facebook_db", "so_bma", 64, 242711ull, 191460ull, 3191ull, 0ull},
    {"facebook_db", "greedy", 64, 328084ull, 191760ull, 3196ull, 0ull},
    {"facebook_db", "oblivious", 64, 761170ull, 0ull, 0ull, 0ull},
    {"microsoft", "bma", 4, 588408ull, 886320ull, 7421ull, 7351ull},
    {"microsoft", "r_bma", 4, 636482ull, 1178700ull, 9855ull, 9790ull},
    {"microsoft", "so_bma", 4, 565490ull, 11880ull, 198ull, 0ull},
    {"microsoft", "greedy", 4, 641626ull, 11940ull, 199ull, 0ull},
    {"microsoft", "oblivious", 4, 778026ull, 0ull, 0ull, 0ull},
    {"microsoft", "bma", 16, 434822ull, 474780ull, 4068ull, 3845ull},
    {"microsoft", "r_bma", 16, 485035ull, 842940ull, 7155ull, 6894ull},
    {"microsoft", "so_bma", 16, 412398ull, 46680ull, 778ull, 0ull},
    {"microsoft", "greedy", 16, 495069ull, 47340ull, 789ull, 0ull},
    {"microsoft", "oblivious", 16, 778026ull, 0ull, 0ull, 0ull},
    {"microsoft", "bma", 64, 310802ull, 133800ull, 1544ull, 686ull},
    {"microsoft", "r_bma", 64, 319109ull, 249360ull, 2507ull, 1649ull},
    {"microsoft", "so_bma", 64, 244624ull, 168060ull, 2801ull, 0ull},
    {"microsoft", "greedy", 64, 273810ull, 176940ull, 2949ull, 0ull},
    {"microsoft", "oblivious", 64, 778026ull, 0ull, 0ull, 0ull},
};

// Pre-overhaul BMA single-thread throughput on the Facebook-like trace
// (requests/sec, best of 3, recorded at the seed commit on the reference
// machine).  The 1.5x acceptance target is measured against these.
struct BaselineRps {
  std::size_t b;
  double rps;
};
constexpr BaselineRps kBmaFacebookBaseline[] = {
    {4, 9209421.0},
    {16, 5368510.0},
    {64, 4080064.0},
};

struct Measurement {
  std::string trace;
  std::string algorithm;
  std::size_t b = 0;
  double scalar_rps = 0.0;
  double batch_rps = 0.0;
  /// Batched pipeline with kernel dispatch pinned to the scalar reference
  /// (RDCN_FORCE_SCALAR_KERNELS semantics): the denominator of the
  /// SIMD-vs-scalar-kernel speedup.
  double batch_scalar_kernel_rps = 0.0;
  sim::Checkpoint final;

  double batch_speedup() const { return batch_rps / scalar_rps; }
  double kernel_speedup() const {
    return batch_rps / batch_scalar_kernel_rps;
  }
};

const Golden* find_golden(const std::string& trace, const std::string& algo,
                          std::size_t b) {
  for (const Golden& g : kGolden) {
    if (trace == g.trace && algo == g.algorithm && b == g.b) return &g;
  }
  return nullptr;
}

bool check_ledger(const Measurement& m, const sim::Checkpoint& final,
                  const char* path) {
  const Golden* g = find_golden(m.trace, m.algorithm, m.b);
  if (g == nullptr) {
    std::printf("LEDGER-CHECK %s/%s/b=%zu: no golden anchor\n",
                m.trace.c_str(), m.algorithm.c_str(), m.b);
    return false;
  }
  const bool ok = final.routing_cost == g->routing_cost &&
                  final.reconfig_cost == g->reconfig_cost &&
                  final.edge_adds == g->edge_adds &&
                  final.edge_removals == g->edge_removals;
  if (!ok) {
    std::printf(
        "LEDGER-CHECK %s/%s/b=%zu [%s]: MISMATCH got "
        "{routing=%llu reconfig=%llu adds=%llu removals=%llu} want "
        "{routing=%llu reconfig=%llu adds=%llu removals=%llu}\n",
        m.trace.c_str(), m.algorithm.c_str(), m.b, path,
        (unsigned long long)final.routing_cost,
        (unsigned long long)final.reconfig_cost,
        (unsigned long long)final.edge_adds,
        (unsigned long long)final.edge_removals,
        (unsigned long long)g->routing_cost,
        (unsigned long long)g->reconfig_cost,
        (unsigned long long)g->edge_adds,
        (unsigned long long)g->edge_removals);
  }
  return ok;
}

/// Geometric mean of a per-cell ratio over every (trace, b) cell of
/// `algorithm`.
template <typename Ratio>
double algorithm_geomean(const std::vector<Measurement>& results,
                         const std::string& algorithm, const Ratio& ratio) {
  double product = 1.0;
  std::size_t count = 0;
  for (const Measurement& m : results) {
    if (m.algorithm == algorithm) {
      product *= ratio(m);
      ++count;
    }
  }
  return count == 0 ? 0.0
                    : std::pow(product, 1.0 / static_cast<double>(count));
}

double algorithm_batch_geomean(const std::vector<Measurement>& results,
                               const std::string& algorithm) {
  return algorithm_geomean(results, algorithm, [](const Measurement& m) {
    return m.batch_speedup();
  });
}

double algorithm_kernel_geomean(const std::vector<Measurement>& results,
                                const std::string& algorithm) {
  return algorithm_geomean(results, algorithm, [](const Measurement& m) {
    return m.kernel_speedup();
  });
}

/// Interleaved best-of-N micro-measurement of the argmin kernel at row
/// length b: dispatched (SIMD) vs the scalar reference, same fuzzed row
/// pool.  Ratio-based, so the shared-machine load waves that make absolute
/// req/s unreliable cancel out.
volatile std::uint64_t g_kernel_sink = 0;

double measure_argmin_speedup(std::size_t b, int reps) {
  constexpr std::size_t kRows = 64;
  Xoshiro256 rng(1234 + b);
  std::vector<std::vector<std::uint64_t>> usage(kRows), age(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    usage[r].resize(b);
    age[r].resize(b);
    for (std::size_t i = 0; i < b; ++i) {
      usage[r][i] = rng.next_below(4);  // usage-counter shape: heavy ties
      age[r][i] = 1 + rng.next_below(1u << 20);
    }
  }
  // Equalize sample duration across b (~rows*iters*b element visits).
  const std::size_t iters =
      std::max<std::size_t>(1, 2'000'000 / (kRows * b));
  const auto sample = [&](bool use_simd) {
    std::uint64_t sink = 0;
    Stopwatch watch;
    for (std::size_t it = 0; it < iters; ++it) {
      for (std::size_t r = 0; r < kRows; ++r) {
        sink += use_simd
                    ? simd::argmin_u64_pair(usage[r].data(), age[r].data(), b)
                    : simd::scalar::argmin_u64_pair(usage[r].data(),
                                                    age[r].data(), b);
      }
    }
    g_kernel_sink = g_kernel_sink + sink;  // volatile += is deprecated
    return watch.seconds();
  };
  (void)sample(true);  // warm-up both paths
  (void)sample(false);
  double best_simd = 1e100, best_scalar = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    best_scalar = std::min(best_scalar, sample(false));
    best_simd = std::min(best_simd, sample(true));
  }
  return best_scalar / best_simd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_request_path.json";
  int reps = 5;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "usage: perf_gate [--out=FILE] [--reps=N] [--strict]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  // The kernel layer's dispatch state: perf_gate drives both modes itself
  // (SIMD and forced-scalar) regardless of the ambient environment, and
  // restores the ambient mode before exiting.
  const bool ambient_force_scalar = simd::force_scalar();
  std::printf("SIMD kernels: detected=%s active=%s%s\n",
              simd::isa_name(simd::detected_isa()),
              simd::isa_name(simd::active_isa()),
              ambient_force_scalar ? " (RDCN_FORCE_SCALAR_KERNELS set)" : "");

  const net::Topology topo = net::make_fat_tree(kRacks);
  Xoshiro256 fb_rng(2023);
  const trace::Trace fb = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, kRacks, kRequests, fb_rng);
  Xoshiro256 ms_rng(2024);
  const trace::Trace ms =
      trace::generate_microsoft_like(kRacks, kRequests, {}, ms_rng);

  const char* algorithms[] = {"bma", "r_bma", "so_bma", "greedy",
                              "oblivious"};
  std::vector<Measurement> results;
  bool ledgers_ok = true;

  for (const trace::Trace* t : {&fb, &ms}) {
    const std::string trace_name = t == &fb ? "facebook_db" : "microsoft";
    for (const std::size_t b : kCacheSizes) {
      core::Instance inst;
      inst.distances = &topo.distances;
      inst.b = b;
      inst.alpha = kAlpha;
      for (const char* algo : algorithms) {
        // Matchers are built through the scenario registry (default
        // parameters): the 30 golden anchors double as proof that the
        // registry path is behaviour-identical to direct construction.
        auto matcher = scenario::make_algorithm(algo, inst, t, kSeed);
        Measurement m;
        m.trace = trace_name;
        m.algorithm = algo;
        m.b = b;
        // Interleave the three timed variants within each rep so slow
        // machine-load waves (the usual noise on shared CI boxes) bias no
        // side; all reported numbers are ratios of best-of-N.
        double best_scalar = 1e100, best_batch = 1e100;
        double best_batch_scalar_kernels = 1e100;
        sim::Checkpoint scalar_final, batch_final;
        sim::Checkpoint batch_scalar_kernels_final;
        sim::Checkpoint scalar_scalar_kernels_final;
        for (int rep = 0; rep < reps; ++rep) {
          simd::set_force_scalar(false);
          matcher->reset();
          const sim::RunResult s =
              sim::run_simulation_scalar(*matcher, *t, {t->size()});
          if (s.final().wall_seconds < best_scalar)
            best_scalar = s.final().wall_seconds;
          scalar_final = s.final();
          matcher->reset();
          const sim::RunResult r = sim::run_to_completion(*matcher, *t);
          if (r.final().wall_seconds < best_batch)
            best_batch = r.final().wall_seconds;
          batch_final = r.final();
          // Same batched pipeline with kernels pinned to the scalar
          // reference — the SIMD-vs-scalar-kernel speedup denominator.
          simd::set_force_scalar(true);
          matcher->reset();
          const sim::RunResult k = sim::run_to_completion(*matcher, *t);
          if (k.final().wall_seconds < best_batch_scalar_kernels)
            best_batch_scalar_kernels = k.final().wall_seconds;
          batch_scalar_kernels_final = k.final();
          if (rep == 0) {
            // Ledger-only: the scalar serve() path under forced-scalar
            // kernels (the 4th path × dispatch combination).
            matcher->reset();
            const sim::RunResult sk =
                sim::run_simulation_scalar(*matcher, *t, {t->size()});
            scalar_scalar_kernels_final = sk.final();
          }
          simd::set_force_scalar(false);
        }
        m.scalar_rps = static_cast<double>(kRequests) / best_scalar;
        m.batch_rps = static_cast<double>(kRequests) / best_batch;
        m.batch_scalar_kernel_rps =
            static_cast<double>(kRequests) / best_batch_scalar_kernels;
        m.final = batch_final;
        // Every execution path × dispatch mode must pin the same golden
        // ledger: kernel dispatch is a pure layout/scheduling concern.
        ledgers_ok = check_ledger(m, scalar_final, "scalar") && ledgers_ok;
        ledgers_ok = check_ledger(m, batch_final, "batched") && ledgers_ok;
        ledgers_ok = check_ledger(m, batch_scalar_kernels_final,
                                  "batched+scalar-kernels") && ledgers_ok;
        ledgers_ok = check_ledger(m, scalar_scalar_kernels_final,
                                  "scalar+scalar-kernels") && ledgers_ok;
        results.push_back(m);
        std::printf(
            "%-12s %-10s b=%-3zu scalar %10.0f req/s   batched %10.0f "
            "req/s   (%.2fx batch, %.2fx kernels)\n",
            trace_name.c_str(), algo, b, m.scalar_rps, m.batch_rps,
            m.batch_speedup(), m.kernel_speedup());
      }
    }
  }

  // BMA speedup vs the recorded pre-overhaul baseline (Facebook trace,
  // batched pipeline — the production replay path).
  double baseline_geomean = 1.0;
  std::vector<std::pair<std::size_t, double>> speedups;
  for (const BaselineRps& base : kBmaFacebookBaseline) {
    for (const Measurement& m : results) {
      if (m.trace == "facebook_db" && m.algorithm == "bma" && m.b == base.b) {
        const double s = m.batch_rps / base.rps;
        speedups.emplace_back(base.b, s);
        baseline_geomean *= s;
      }
    }
  }
  baseline_geomean =
      std::pow(baseline_geomean, 1.0 / static_cast<double>(speedups.size()));
  for (const auto& [b, s] : speedups) {
    std::printf("PERF bma facebook_db b=%zu speedup vs baseline: %.2fx\n", b,
                s);
  }
  std::printf("PERF bma facebook_db geomean speedup: %.2fx (target 1.50x): %s\n",
              baseline_geomean, baseline_geomean >= 1.5 ? "PASS" : "FAIL");

  // Batched-vs-scalar speedup per algorithm, and the gated geomean over
  // the core trio.
  double core_geomean = 1.0;
  std::vector<std::pair<std::string, double>> batch_geomeans;
  for (const char* algo : algorithms) {
    batch_geomeans.emplace_back(algo, algorithm_batch_geomean(results, algo));
  }
  for (const auto& [algo, g] : batch_geomeans) {
    std::printf("PERF batched-vs-scalar %-10s geomean: %.2fx\n", algo.c_str(),
                g);
  }
  for (const char* algo : kCoreAlgorithms) {
    core_geomean *= algorithm_batch_geomean(results, algo);
  }
  core_geomean =
      std::pow(core_geomean, 1.0 / static_cast<double>(
                                       std::size(kCoreAlgorithms)));
  std::printf(
      "PERF batched-vs-scalar core geomean (bma,r_bma,so_bma): %.2fx "
      "(target 1.30x): %s\n",
      core_geomean, core_geomean >= 1.3 ? "PASS" : "FAIL");

  // SIMD-vs-scalar-kernel speedup per algorithm (batched pipeline, both
  // sides best-of-N interleaved) — the dividend the hot-kernel layer buys
  // end to end.
  std::vector<std::pair<std::string, double>> kernel_geomeans;
  for (const char* algo : algorithms) {
    kernel_geomeans.emplace_back(algo,
                                 algorithm_kernel_geomean(results, algo));
  }
  for (const auto& [algo, g] : kernel_geomeans) {
    std::printf("PERF kernel-vs-scalar-kernel %-10s geomean: %.2fx\n",
                algo.c_str(), g);
  }

  // Isolated argmin kernel speedup (the BMA eviction-scan primitive) at
  // the microbench row lengths; the b=64 point is the --strict gate.
  const std::size_t kKernelRowLengths[] = {4, 16, 64, 256};
  std::vector<std::pair<std::size_t, double>> argmin_speedups;
  for (const std::size_t b : kKernelRowLengths) {
    argmin_speedups.emplace_back(b, measure_argmin_speedup(b, reps));
  }
  double argmin_speedup_b64 = 0.0;
  for (const auto& [b, s] : argmin_speedups) {
    if (b == 64) argmin_speedup_b64 = s;
    std::printf("PERF kernel argmin b=%-3zu SIMD-vs-scalar: %.2fx%s\n", b, s,
                b == 64 ? (s >= 1.5 ? " (target 1.50x): PASS"
                                    : " (target 1.50x): FAIL")
                        : "");
  }
  std::printf("LEDGER-CHECK all 30 anchors (scalar+batched paths, SIMD and "
              "forced-scalar kernels): %s\n",
              ledgers_ok ? "PASS" : "FAIL");

  // Matrix-level parallel execution: wall-clock for a small 2×2
  // topology×workload matrix (2 algorithms, randomized trials) at one
  // thread vs all cores.  On a single-core container the speedup is ~1.0
  // by construction — the number is meaningful on multi-core reference
  // hardware; results are thread-count invariant either way (pinned by
  // scenario_test).
  const scenario::ScenarioSpec matrix_base = scenario::ScenarioSpec::parse(
      "algorithms=r_bma,bma;b=8;racks=64;requests=100000;trials=5;"
      "checkpoints=4;seed=7");
  const std::vector<Spec> matrix_topologies = {
      Spec::parse("fat_tree"), Spec::parse("leaf_spine:spines=8")};
  const std::vector<Spec> matrix_workloads = {Spec::parse("facebook_db"),
                                              Spec::parse("microsoft")};
  const std::size_t matrix_cells =
      matrix_topologies.size() * matrix_workloads.size();
  const std::size_t matrix_threads = sim::ThreadPool::instance().num_workers();
  const auto time_matrix = [&](std::size_t threads) {
    scenario::ScenarioSpec spec = matrix_base;
    spec.threads = threads;
    Stopwatch watch;
    watch.reset();
    (void)scenario::run_matrix(spec, matrix_topologies, matrix_workloads);
    return watch.seconds();
  };
  (void)time_matrix(1);  // warm-up: pool started, traces/pages faulted in
  // Best-of-reps with the two thread counts interleaved — same noisy-box
  // protocol as the req/s measurement above.
  double matrix_serial = 1e100, matrix_parallel = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    matrix_serial = std::min(matrix_serial, time_matrix(1));
    matrix_parallel = std::min(matrix_parallel, time_matrix(matrix_threads));
  }
  const double matrix_speedup = matrix_serial / matrix_parallel;
  std::printf(
      "PERF matrix %zu cells (%zu threads): %.3fs serial, %.3fs parallel, "
      "%.2fx speedup\n",
      matrix_cells, matrix_threads, matrix_serial, matrix_parallel,
      matrix_speedup);

  // Per-phase time profile of one traced scenario run (BMA on the
  // Facebook-like trace at b=64, the flagship combination): the obs span
  // tree over workload generation, trial execution, and checkpoint
  // drains.  Traced separately from the timed measurements above so span
  // bookkeeping can never contaminate a req/s number.
  obs::reset_traces();
  obs::set_tracing(true);
  {
    obs::ObsSpan root("perf_gate.profile_run");
    (void)scenario::run_scenario(scenario::ScenarioSpec::parse(
        "workload=facebook_db;algorithms=bma;b=64;racks=100;"
        "requests=200000;trials=1;checkpoints=8;seed=42;threads=1"));
  }
  obs::set_tracing(false);
  const std::vector<obs::PhaseTotal> profile = obs::collect_phases();
  for (const obs::PhaseTotal& p : profile) {
    std::printf("PROFILE %-40s %10.6f s  x%llu\n", p.path.c_str(),
                static_cast<double>(p.total_ns) * 1e-9,
                (unsigned long long)p.count);
  }

  // Machine-readable output (schema documented in bench/README.md).
  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"request_path\",\n";
  json << "  \"config\": {\"racks\": " << kRacks
       << ", \"requests\": " << kRequests << ", \"alpha\": " << kAlpha
       << ", \"seed\": " << kSeed << ", \"reps\": " << reps
       << ", \"threads\": 1, \"chunk_size\": " << sim::kServeChunk << "},\n";
  json << "  \"simd\": {\"detected\": \""
       << simd::isa_name(simd::detected_isa()) << "\", \"forced_scalar_env\": "
       << (ambient_force_scalar ? "true" : "false") << "},\n";
  json << "  \"baseline\": {\"description\": \"pre-overhaul BMA req/s, "
          "facebook_db trace, seed commit\", \"bma_facebook_db\": {";
  for (std::size_t i = 0; i < std::size(kBmaFacebookBaseline); ++i) {
    json << (i != 0 ? ", " : "") << "\"" << kBmaFacebookBaseline[i].b
         << "\": " << kBmaFacebookBaseline[i].rps;
  }
  json << "}},\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    char buf[768];
    std::snprintf(buf, sizeof buf,
                  "    {\"trace\": \"%s\", \"algorithm\": \"%s\", \"b\": %zu, "
                  "\"requests_per_sec\": %.0f, "
                  "\"scalar_requests_per_sec\": %.0f, "
                  "\"batch_speedup\": %.3f, \"kernel_speedup\": %.3f, "
                  "\"routing_cost\": %llu, "
                  "\"reconfig_cost\": %llu, \"total_cost\": %llu}%s\n",
                  m.trace.c_str(), m.algorithm.c_str(), m.b, m.batch_rps,
                  m.scalar_rps, m.batch_speedup(), m.kernel_speedup(),
                  (unsigned long long)m.final.routing_cost,
                  (unsigned long long)m.final.reconfig_cost,
                  (unsigned long long)m.final.total_cost,
                  i + 1 < results.size() ? "," : "");
    json << buf;
  }
  json << "  ],\n  \"bma_speedup_vs_baseline\": {";
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s\"%zu\": %.3f", i != 0 ? ", " : "",
                  speedups[i].first, speedups[i].second);
    json << buf;
  }
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, ", \"geomean\": %.3f", baseline_geomean);
    json << buf;
  }
  json << "},\n  \"batch_speedup_vs_scalar\": {";
  for (std::size_t i = 0; i < batch_geomeans.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s\"%s\": %.3f", i != 0 ? ", " : "",
                  batch_geomeans[i].first.c_str(), batch_geomeans[i].second);
    json << buf;
  }
  {
    char buf[96];
    std::snprintf(buf, sizeof buf, ", \"geomean_core\": %.3f", core_geomean);
    json << buf;
  }
  json << "},\n  \"kernel_speedup_vs_scalar_kernels\": {";
  for (std::size_t i = 0; i < kernel_geomeans.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s\"%s\": %.3f", i != 0 ? ", " : "",
                  kernel_geomeans[i].first.c_str(),
                  kernel_geomeans[i].second);
    json << buf;
  }
  json << "},\n  \"kernel_argmin_speedup\": {";
  for (std::size_t i = 0; i < argmin_speedups.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s\"%zu\": %.3f", i != 0 ? ", " : "",
                  argmin_speedups[i].first, argmin_speedups[i].second);
    json << buf;
  }
  json << "},\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"matrix\": {\"cells\": %zu, \"threads\": %zu, "
                  "\"wall_seconds_1_thread\": %.3f, "
                  "\"wall_seconds_n_threads\": %.3f, \"speedup\": %.3f},\n",
                  matrix_cells, matrix_threads, matrix_serial,
                  matrix_parallel, matrix_speedup);
    json << buf;
  }
  json << "  \"phase_profile\": {\"scenario\": "
          "\"facebook_db/bma/b=64\", \"phases\": [\n";
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const obs::PhaseTotal& p = profile[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"path\": \"%s\", \"seconds\": %.6f, "
                  "\"calls\": %llu}%s\n",
                  p.path.c_str(),
                  static_cast<double>(p.total_ns) * 1e-9,
                  (unsigned long long)p.count,
                  i + 1 < profile.size() ? "," : "");
    json << buf;
  }
  json << "  ]},\n";
  json << "  \"ledger_check\": \"" << (ledgers_ok ? "pass" : "fail")
       << "\"\n}\n";
  json.close();
  std::printf("wrote %s\n", out_path.c_str());

  simd::set_force_scalar(ambient_force_scalar);

  if (!ledgers_ok) return 1;
  if (strict && (baseline_geomean < 1.5 || core_geomean < 1.3)) return 1;
  // The 1.5x argmin gate is calibrated for the AVX-512 kernel (the AVX2
  // select loop is port-limited to ~1.3x on the reference hardware, and a
  // scalar-only machine sits at 1.0 by construction) — apply it only where
  // that kernel runs.
  if (strict && simd::detected_isa() == simd::Isa::kAvx512 &&
      argmin_speedup_b64 < 1.5) {
    return 1;
  }
  return 0;
}
