// Shared harness for the figure-reproduction benches.
//
// Each figN binary reproduces one figure of the paper's evaluation (§3):
//   panel (a): routing cost vs #requests for R-BMA/BMA at three cache
//              sizes plus the Oblivious baseline,
//   panel (b): execution time vs #requests for the same configurations,
//   panel (c): "best of" comparison R-BMA vs BMA vs SO-BMA at the largest
//              cache size.
//
// Absolute values differ from the paper (synthetic traces, C++ vs Python —
// see DESIGN.md §3), but the shapes are the reproduction target; the
// SHAPE-CHECK lines print the qualitative assertions so regressions are
// visible in CI logs.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "rdcn.hpp"

namespace rdcn::bench {

struct FigureSetup {
  std::string figure;        ///< e.g. "Fig 1 (Facebook database cluster)"
  std::size_t num_racks;
  std::vector<std::size_t> cache_sizes;  ///< the three b values
  std::uint64_t alpha;
  std::size_t checkpoints = 8;
  std::size_t trials = 5;
  std::uint64_t seed = 2023;
  /// Accepted R-BMA/BMA routing-cost ratio.  §3.2 claims "almost the same"
  /// quality — within ~5% on the bursty Facebook traces; on the i.i.d.
  /// Microsoft trace the paper only claims "similar", so Fig 4 uses a
  /// slightly wider band (random marking evictions are structurally a bit
  /// weaker than usage counters without temporal structure to exploit).
  double quality_band = 1.10;
};

/// Runs the three panels for one figure and prints them.
inline void run_figure(const FigureSetup& setup, const trace::Trace& trace) {
  const net::Topology topo = net::make_fat_tree(setup.num_racks);

  std::cout << "==== " << setup.figure << " ====\n";
  std::cout << "trace=" << trace.name() << " requests=" << trace.size()
            << " racks=" << setup.num_racks << " alpha=" << setup.alpha
            << " trials=" << setup.trials << "\n";
  const trace::TraceStats stats = trace::compute_stats(trace);
  std::printf(
      "trace stats: distinct_pairs=%zu gini=%.3f entropy=%.3f "
      "locality(w64)=%.3f repeat_p=%.3f\n\n",
      stats.distinct_pairs, stats.gini, stats.normalized_pair_entropy,
      stats.locality_window64, stats.repeat_probability);

  sim::ExperimentConfig config;
  config.distances = &topo.distances;
  config.alpha = setup.alpha;
  config.checkpoints = setup.checkpoints;
  config.trials = setup.trials;
  config.base_seed = setup.seed;
  // Panel (b) reports wall-clock series; run trials sequentially so the
  // timing is not distorted by core contention ("each simulation is run
  // sequentially", §3.1).
  config.threads = 1;

  // Panels (a) and (b): R-BMA and BMA at each cache size + Oblivious.
  std::vector<sim::ExperimentSpec> specs;
  for (std::size_t b : setup.cache_sizes)
    specs.push_back({.algorithm = "r_bma",
                     .b = b,
                     .label = "R-BMA(b=" + std::to_string(b) + ")"});
  for (std::size_t b : setup.cache_sizes)
    specs.push_back({.algorithm = "bma",
                     .b = b,
                     .label = "BMA(b=" + std::to_string(b) + ")"});
  specs.push_back({.algorithm = "oblivious",
                   .b = setup.cache_sizes.front(),
                   .label = "Oblivious"});

  const auto results = sim::run_experiment(config, trace, specs);
  sim::print_table(std::cout, results, sim::Metric::kRoutingCost,
                   setup.figure + "a: routing cost vs #requests");
  sim::print_table(std::cout, results, sim::Metric::kWallSeconds,
                   setup.figure + "b: execution time vs #requests");

  // Panel (c): best-of at the largest cache size, including SO-BMA.
  const std::size_t b_max = setup.cache_sizes.back();
  const std::vector<sim::ExperimentSpec> best_specs = {
      {.algorithm = "r_bma",
       .b = b_max,
       .label = "R-BMA(b=" + std::to_string(b_max) + ")"},
      {.algorithm = "bma",
       .b = b_max,
       .label = "BMA(b=" + std::to_string(b_max) + ")"},
      {.algorithm = "so_bma",
       .b = b_max,
       .label = "SO-BMA(b=" + std::to_string(b_max) + ")"},
  };
  const auto best = sim::run_experiment(config, trace, best_specs);
  sim::print_table(std::cout, best, sim::Metric::kRoutingCost,
                   setup.figure + "c: best-of comparison");

  // Summary vs Oblivious (the paper's headline reduction numbers).
  sim::print_summary(std::cout, results, results.back());

  // SHAPE-CHECKs: the qualitative claims of §3.2.
  const auto& oblivious = results.back();
  const auto rbma_large = results[setup.cache_sizes.size() - 1];
  const auto bma_large = results[2 * setup.cache_sizes.size() - 1];
  auto pct = [](std::uint64_t x, std::uint64_t base) {
    return 100.0 * (1.0 - static_cast<double>(x) /
                              static_cast<double>(base));
  };
  std::printf(
      "SHAPE-CHECK demand-aware beats oblivious: R-BMA reduction %.1f%% "
      "(>0 expected): %s\n",
      pct(rbma_large.final().routing_cost, oblivious.final().routing_cost),
      rbma_large.final().routing_cost < oblivious.final().routing_cost
          ? "PASS"
          : "FAIL");
  const double quality_gap =
      static_cast<double>(rbma_large.final().routing_cost) /
      static_cast<double>(bma_large.final().routing_cost);
  std::printf(
      "SHAPE-CHECK R-BMA in BMA's quality band: ratio %.3f "
      "(<%.2f expected): %s\n",
      quality_gap, setup.quality_band,
      quality_gap < setup.quality_band ? "PASS" : "FAIL");
  const double time_ratio =
      bma_large.final().wall_seconds / rbma_large.final().wall_seconds;
  std::printf(
      "SHAPE-CHECK R-BMA faster than BMA at b=%zu: BMA/R-BMA time %.2fx "
      "(>1 expected): %s\n\n",
      b_max, time_ratio, time_ratio > 1.0 ? "PASS" : "FAIL");
}

}  // namespace rdcn::bench
