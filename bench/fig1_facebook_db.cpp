// Reproduces Figure 1 of the paper: Facebook database cluster.
// 100 racks, b in {6, 12, 18}, 3.5e5 requests (panels a, b, c).
//
// Trace substitution: synthetic database-cluster model (strong skew +
// strong temporal locality) — see DESIGN.md §3.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  // Optional scale override for quick runs: fig1_facebook_db [num_requests].
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 350'000;

  bench::FigureSetup setup;
  setup.figure = "Fig1";
  setup.num_racks = 100;
  setup.cache_sizes = {6, 12, 18};
  setup.alpha = 60;

  Xoshiro256 rng(41);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, setup.num_racks, num_requests, rng);
  bench::run_figure(setup, t);
  return 0;
}
