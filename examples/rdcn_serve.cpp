// rdcn_serve — the scenario-serving daemon.
//
// Listens on a local (AF_UNIX) socket and executes scenario specs
// submitted over a line protocol: clients send "RUN <spec>" and stream
// back checkpoint progress plus the run's CSV table; equivalent specs
// (same parameters in any order) are answered from an LRU results cache
// without re-running.  Runs can be cancelled mid-flight and submissions
// beyond the admission queue are rejected with a retry hint instead of
// queueing unboundedly.
//
//   rdcn_serve --socket=/tmp/rdcn.sock
//   rdcn_serve --socket=/tmp/rdcn.sock --executors=4 --cache=256
//
// then, from any client (rdcn_serve_client, or netcat for a quick poke):
//
//   printf 'RUN workload=zipf:skew=1.2;requests=20000;trials=2\n' |
//     nc -U /tmp/rdcn.sock
//
// The daemon exits when a client sends SHUTDOWN.  SIGTERM/SIGINT (and
// SHUTDOWN drain=1) trigger a graceful drain instead: admissions stop,
// in-flight runs get --drain-ms to finish, stragglers are cancelled
// cooperatively, caches and journal are flushed, and the process exits 0.
//
// With --journal=DIR the run lifecycle itself is durable: a daemon killed
// mid-run re-enqueues every incomplete run at the next start (results
// land in the disk cache), restores quarantine streaks, and keeps run ids
// stable — clients re-attach to their runs with ATTACH <id>.
#include <iostream>

#include "common/flags.hpp"
#include "serve/daemon.hpp"

namespace {

using namespace rdcn;

constexpr const char* kUsage =
    "rdcn_serve — scenario-serving daemon\n"
    "\n"
    "flags:\n"
    "  --socket=PATH     AF_UNIX socket to listen on (required)\n"
    "  --queue=N         admission queue bound; beyond it submissions get\n"
    "                    REJECT + retry hint (default 16)\n"
    "  --executors=N     concurrent scenario runs (default 2)\n"
    "  --cache=N         results-cache entries, 0 disables (default 64)\n"
    "  --disk-cache=DIR  persistent results store surviving restarts;\n"
    "                    corrupt entries are skipped at startup (default off)\n"
    "  --journal=DIR     write-ahead run journal: queued/running runs\n"
    "                    survive a crash (re-enqueued at restart), run ids\n"
    "                    stay stable for ATTACH, quarantine streaks\n"
    "                    persist (default off)\n"
    "  --drain-ms=N      graceful-drain budget for in-flight runs on\n"
    "                    SIGTERM/SIGINT or SHUTDOWN drain=1 (default 5000)\n"
    "  --threads=N       worker threads per run, 0 = all cores (default 0)\n"
    "  --retry-ms=N      retry hint sent with REJECT (default 200)\n"
    "  --quarantine=N    consecutive executor crashes before a spec is\n"
    "                    quarantined, 0 disables (default 3)\n"
    "  --quarantine-ttl-s=N\n"
    "                    forget a crash streak untouched for N seconds,\n"
    "                    0 = never (default 0); RESET clears streaks now\n"
    "  --quota-rps=R     default per-client token-bucket rate (runs/s),\n"
    "                    0 = unlimited (default 0)\n"
    "  --quota-burst=N   default bucket depth (default 2x rps)\n"
    "  --quota-concurrent=N\n"
    "                    default per-client in-flight cap, 0 = unlimited\n"
    "  --quota-file=PATH per-client overrides: '<name> rps= burst=\n"
    "                    concurrent=' per line ('default'/'*' sets the\n"
    "                    baseline; see serve/admission.hpp)\n"
    "  --max-rss-mb=N    brownout high-water mark on resident set size,\n"
    "                    0 disables RSS-driven shedding (default 0)\n"
    "  --shed-cost-limit=N\n"
    "                    under brownout, also shed non-critical runs whose\n"
    "                    estimated cost exceeds N units (default 0 = off)\n"
    "  --progress-timeout-ms=N\n"
    "                    cancel a run whose checkpoints stop advancing for\n"
    "                    N ms (DONE status=stalled), 0 disables (default 0)\n"
    "  --faults=SPEC     arm fault-injection points (testing/incident\n"
    "                    repro; same syntax as RDCN_FAULTS — see\n"
    "                    common/fault.hpp)\n"
    "  --metrics-dump=FILE\n"
    "                    write the full metric registry + phase-trace tree\n"
    "                    as JSON to FILE periodically (atomic temp+rename;\n"
    "                    default off)\n"
    "  --metrics-dump-ms=N\n"
    "                    snapshot period for --metrics-dump (default 1000)\n"
    "  --help            this text\n"
    "\n"
    "protocol: PING | HELLO client=<name> |\n"
    "          RUN <spec> [deadline_ms=<n>] [client=<name>] [priority=<0-2>]\n"
    "          | CANCEL <id> | ATTACH <id> [from=<k>] |\n"
    "          RESET spec=<canonical> | RESET all=1 | STATS | METRICS |\n"
    "          SHUTDOWN [drain=<0|1>]\n"
    "see README.md ('Serving mode' and 'Observability') for the full\n"
    "cookbook.\n";

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  // No --socket (including the bare no-argument smoke run) is a request
  // for the manual, not an error.
  if (flags.has("help") || !flags.has("socket")) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.unknown_flags(
      {"socket", "queue", "executors", "cache", "disk-cache", "journal",
       "drain-ms", "threads", "retry-ms", "quarantine", "quarantine-ttl-s",
       "quota-rps", "quota-burst", "quota-concurrent", "quota-file",
       "max-rss-mb", "shed-cost-limit", "progress-timeout-ms", "faults",
       "metrics-dump", "metrics-dump-ms", "help"});
  if (!unknown.empty()) {
    for (const auto& f : unknown) std::cerr << "unknown flag: --" << f << "\n";
    std::cerr << "\n" << kUsage;
    return 2;
  }

  try {
    serve::ServeOptions options;
    options.socket_path = flags.get("socket");
    options.queue_limit = flags.get_uint("queue", 16);
    options.executors = flags.get_uint("executors", 2);
    options.cache_entries = flags.get_uint("cache", 64);
    options.disk_cache_dir = flags.get("disk-cache", "");
    options.journal_dir = flags.get("journal", "");
    options.drain_ms = flags.get_uint("drain-ms", 5000);
    options.handle_signals = true;
    options.threads = flags.get_uint("threads", 0);
    options.retry_hint_ms =
        static_cast<std::uint32_t>(flags.get_uint("retry-ms", 200));
    options.quarantine_threshold = flags.get_uint("quarantine", 3);
    options.quarantine_ttl_s = flags.get_uint("quarantine-ttl-s", 0);
    options.quota_rps = flags.get_double("quota-rps", 0);
    options.quota_burst = flags.get_double("quota-burst", 0);
    options.quota_concurrent = flags.get_uint("quota-concurrent", 0);
    options.quota_file = flags.get("quota-file", "");
    options.max_rss_mb = flags.get_uint("max-rss-mb", 0);
    options.shed_cost_limit = flags.get_uint("shed-cost-limit", 0);
    options.progress_timeout_ms = flags.get_uint("progress-timeout-ms", 0);
    options.faults = flags.get("faults", "");
    options.metrics_dump_path = flags.get("metrics-dump", "");
    options.metrics_dump_ms = flags.get_uint("metrics-dump-ms", 1000);

    serve::Daemon daemon(options);
    daemon.start();
    std::cout << "rdcn_serve listening on " << options.socket_path
              << " (executors=" << options.executors
              << " queue=" << options.queue_limit
              << " cache=" << options.cache_entries << ")" << std::endl;
    daemon.wait_for_shutdown_command();
    daemon.stop();
    std::cout << "rdcn_serve: shutdown complete\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
