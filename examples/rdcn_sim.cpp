// rdcn_sim — the command-line simulation driver.
//
// A downstream user's one-stop tool: pick a topology, a workload, a set of
// algorithms and cache sizes, and get the paper-style tables (and
// optionally CSV) without writing C++.
//
// Examples:
//   rdcn_sim --workload=facebook_db --racks=100 --requests=100000 \
//            --algorithms=r_bma,bma,oblivious --b=6,12,18 --alpha=60
//   rdcn_sim --workload=microsoft --racks=50 --b=9 --algorithms=r_bma,so_bma \
//            --csv=out.csv --metric=routing_cost
//   rdcn_sim --workload=zipf --zipf-skew=1.3 --topology=torus --engine=lru
//   rdcn_sim --trace=trace.csv --algorithms=r_bma --b=8
#include <fstream>
#include <iostream>

#include "common/flags.hpp"
#include "rdcn.hpp"

namespace {

using namespace rdcn;

constexpr const char* kUsage = R"(rdcn_sim — online b-matching simulator

  --topology=<fat_tree|leaf_spine|star|line|ring|torus|hypercube|expander|complete>
                         (default fat_tree)
  --racks=N              number of top-of-rack switches (default 100)
  --workload=<facebook_db|facebook_web|facebook_hadoop|microsoft|uniform|
              zipf|hotspot|permutation|round_robin>   (default facebook_db)
  --zipf-skew=S          skew for --workload=zipf (default 1.0)
  --trace=FILE           read the workload from a CSV trace instead
  --requests=N           trace length (default 100000)
  --algorithms=a,b,c     r_bma|bma|greedy|oblivious|so_bma|offline_dynamic
                         (default r_bma,bma,oblivious)
  --b=6,12,18            cache sizes to sweep (default 12)
  --a=N                  offline degree bound (default = b)
  --alpha=N              reconfiguration cost (default 60)
  --engine=NAME          R-BMA paging engine: marking|lru|fifo|clock|random|
                         flush_when_full|lfu|arc (default marking)
  --eager                eager (non-lazy) eviction in R-BMA
  --window=N             window for offline_dynamic (default 10000)
  --trials=N             repetitions for randomized algorithms (default 5)
  --checkpoints=N        table rows (default 8)
  --seed=N               master seed (default 42)
  --metric=NAME          routing_cost|total_cost|wall_seconds|matching_size|
                         direct_fraction|reconfig_cost (default routing_cost)
  --csv=FILE             also write the table as CSV
  --help                 this text
)";

const std::vector<std::string> kKnownFlags = {
    "topology", "racks", "workload", "zipf-skew", "trace", "requests",
    "algorithms", "b", "a", "alpha", "engine", "eager", "window", "trials",
    "checkpoints", "seed", "metric", "csv", "help"};

net::Topology build_topology(const std::string& name, std::size_t racks,
                             Xoshiro256& rng) {
  if (name == "fat_tree") return net::make_fat_tree(racks);
  if (name == "leaf_spine") return net::make_leaf_spine(racks, 8);
  if (name == "star") return net::make_star(racks);
  if (name == "line") return net::make_line(racks);
  if (name == "ring") return net::make_ring(racks);
  if (name == "torus") {
    std::size_t rows = 3;
    while ((rows + 1) * (rows + 1) <= racks) ++rows;
    return net::make_torus(rows, (racks + rows - 1) / rows);
  }
  if (name == "hypercube") {
    std::size_t dim = 1;
    while ((std::size_t{1} << (dim + 1)) <= racks) ++dim;
    return net::make_hypercube(dim);
  }
  if (name == "expander") return net::make_random_regular(racks, 4, rng);
  if (name == "complete") return net::make_complete(racks);
  std::cerr << "unknown topology: " << name << "\n";
  std::exit(2);
}

trace::Trace build_workload(const Flags& flags, std::size_t racks,
                            std::size_t requests, Xoshiro256& rng) {
  if (flags.has("trace")) return trace::read_csv_file(flags.get("trace"));
  const std::string w = flags.get("workload", "facebook_db");
  if (w == "facebook_db")
    return trace::generate_facebook_like(trace::FacebookCluster::kDatabase,
                                         racks, requests, rng);
  if (w == "facebook_web")
    return trace::generate_facebook_like(trace::FacebookCluster::kWebService,
                                         racks, requests, rng);
  if (w == "facebook_hadoop")
    return trace::generate_facebook_like(trace::FacebookCluster::kHadoop,
                                         racks, requests, rng);
  if (w == "microsoft")
    return trace::generate_microsoft_like(racks, requests, {}, rng);
  if (w == "uniform") return trace::generate_uniform(racks, requests, rng);
  if (w == "zipf")
    return trace::generate_zipf_pairs(racks, requests,
                                      flags.get_double("zipf-skew", 1.0),
                                      rng);
  if (w == "hotspot")
    return trace::generate_hotspot(racks, requests, 0.1, 0.8, rng);
  if (w == "permutation")
    return trace::generate_permutation(racks, requests, rng);
  if (w == "round_robin")
    return trace::generate_round_robin_star(racks, requests, 8);
  std::cerr << "unknown workload: " << w << "\n";
  std::exit(2);
}

sim::Metric parse_metric(const std::string& name) {
  if (name == "routing_cost") return sim::Metric::kRoutingCost;
  if (name == "total_cost") return sim::Metric::kTotalCost;
  if (name == "wall_seconds") return sim::Metric::kWallSeconds;
  if (name == "matching_size") return sim::Metric::kMatchingSize;
  if (name == "direct_fraction") return sim::Metric::kDirectFraction;
  if (name == "reconfig_cost") return sim::Metric::kReconfigCost;
  std::cerr << "unknown metric: " << name << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.unknown_flags(kKnownFlags);
  if (!unknown.empty()) {
    for (const auto& f : unknown) std::cerr << "unknown flag: --" << f << "\n";
    std::cerr << "\n" << kUsage;
    return 2;
  }

  const std::size_t racks = flags.get_uint("racks", 100);
  const std::size_t requests = flags.get_uint("requests", 100'000);
  const std::uint64_t seed = flags.get_uint("seed", 42);

  Xoshiro256 rng(seed);
  const net::Topology topo =
      build_topology(flags.get("topology", "fat_tree"), racks, rng);
  trace::Trace workload = build_workload(flags, racks, requests, rng);
  if (workload.num_racks() > topo.num_racks()) {
    std::cerr << "trace uses more racks than the topology provides\n";
    return 2;
  }

  sim::ExperimentConfig config;
  config.distances = &topo.distances;
  config.alpha = flags.get_uint("alpha", 60);
  config.a = flags.get_uint("a", 0);
  config.checkpoints = flags.get_uint("checkpoints", 8);
  config.trials = flags.get_uint("trials", 5);
  config.base_seed = seed;

  std::vector<std::uint64_t> cache_sizes = flags.get_uint_list("b");
  if (cache_sizes.empty()) cache_sizes = {12};
  std::vector<std::string> algorithms = flags.get_list("algorithms");
  if (algorithms.empty()) algorithms = {"r_bma", "bma", "oblivious"};

  core::RBmaOptions rbma;
  rbma.engine = paging::parse_engine(flags.get("engine", "marking"));
  rbma.lazy_eviction = !flags.get_bool("eager", false);

  std::vector<sim::ExperimentSpec> specs;
  for (const std::string& algo : algorithms) {
    for (std::uint64_t b : cache_sizes) {
      sim::ExperimentSpec spec;
      spec.algorithm = algo == "offline_dynamic" ? "so_bma" : algo;
      spec.b = b;
      spec.rbma = rbma;
      spec.label = algo + "(b=" + std::to_string(b) + ")";
      specs.push_back(spec);
      if (algo == "oblivious") break;  // b-independent; one column suffices
    }
  }

  // offline_dynamic is not in the factory (it needs its options); run it
  // through the generic path by swapping the spec afterwards.
  std::vector<sim::RunResult> results =
      sim::run_experiment(config, workload, specs);
  std::size_t spec_index = 0;
  for (const std::string& algo : algorithms) {
    for (std::uint64_t b : cache_sizes) {
      if (algo == "offline_dynamic") {
        core::Instance inst;
        inst.distances = &topo.distances;
        inst.b = b;
        inst.a = config.a;
        inst.alpha = config.alpha;
        core::OfflineDynamicOptions opts;
        opts.window = flags.get_uint("window", 10'000);
        core::OfflineDynamic alg(inst, workload, opts);
        sim::RunResult r = sim::run_simulation(
            alg, workload,
            sim::checkpoint_grid(workload.size(), config.checkpoints));
        r.algorithm = "offline_dynamic(b=" + std::to_string(b) + ")";
        results[spec_index] = std::move(r);
      }
      ++spec_index;
      if (algo == "oblivious") break;
    }
  }

  const sim::Metric metric =
      parse_metric(flags.get("metric", "routing_cost"));
  const trace::TraceStats stats = trace::compute_stats(workload);
  std::cout << "workload=" << workload.name() << " racks=" << racks
            << " requests=" << workload.size() << " gini=" << stats.gini
            << " locality64=" << stats.locality_window64 << "\n\n";
  sim::print_table(std::cout, results, metric, "rdcn_sim");
  sim::print_summary(std::cout, results, results.back());

  if (flags.has("csv")) {
    std::ofstream out(flags.get("csv"));
    sim::write_csv(out, results, metric);
    std::cout << "wrote " << flags.get("csv") << "\n";
  }
  return 0;
}
