// rdcn_sim — the command-line simulation driver.
//
// A downstream user's one-stop tool: pick a topology, a workload, a set of
// algorithms and cache sizes, and get the paper-style tables (and
// optionally CSV) without writing C++.  Everything after the driver flags
// is resolved through the scenario registries, so components registered
// anywhere in the library (or via RDCN_REGISTER_*) are immediately
// available here, with --help text generated from their registered docs.
//
// Examples:
//   rdcn_sim --workload=facebook_db --racks=100 --requests=100000
//            --algorithms=r_bma,bma,oblivious --b=6,12,18 --alpha=60
//   rdcn_sim --workload=flow_pool:pairs=2000,skew=1.2,drift=5000
//            --topology=torus:rows=5,cols=10 --algorithms=r_bma:engine=lru,bma
//   rdcn_sim --workload=zipf:skew=1.3 --topology=leaf_spine:spines=12
//   rdcn_sim --trace=trace.csv --algorithms=r_bma --b=8 --csv=out.csv
#include <fstream>
#include <iostream>

#include "common/flags.hpp"
#include "rdcn.hpp"

namespace {

using namespace rdcn;

// The driver's own flag table — the single source for both unknown-flag
// validation and the flag section of --help.  Component names and their
// parameters are NOT listed here: that half of the help text is generated
// from the registries (scenario::catalog_text), so it can never drift.
struct FlagDoc {
  const char* name;
  const char* arg;  ///< "" for boolean flags
  const char* help;
};

constexpr FlagDoc kFlagDocs[] = {
    {"topology", "SPEC", "topology spec: name[:k=v,...] (default fat_tree)"},
    {"racks", "N", "number of top-of-rack switches (default 100)"},
    {"workload", "SPEC", "workload spec: name[:k=v,...] (default facebook_db)"},
    {"trace", "FILE", "shorthand for --workload=csv:path=FILE"},
    {"requests", "N", "trace length (default 100000)"},
    {"stream", "",
     "replay the workload as a TraceStream at constant memory (arbitrarily "
     "long traces; offline algorithms and csv import unsupported)"},
    {"algorithms", "LIST",
     "comma-separated algorithm specs (default r_bma,bma,oblivious)"},
    {"b", "LIST", "cache sizes to sweep, e.g. 6,12,18 (default 12)"},
    {"a", "N", "offline degree bound (default = b)"},
    {"alpha", "N", "reconfiguration cost (default 60)"},
    {"trials", "N", "repetitions for randomized algorithms (default 5)"},
    {"checkpoints", "N", "table rows (default 8)"},
    {"seed", "N", "master seed (default 42)"},
    {"threads", "N",
     "worker threads for trial execution (0 = all cores; results are "
     "thread-count independent)"},
    {"metric", "NAME", "which table to print (default routing_cost)"},
    {"csv", "FILE", "also write the table as CSV"},
    {"profile", "",
     "trace simulation phases (RAII spans over the monotonic clock) and "
     "print a per-phase time report after the run"},
    {"zipf-skew", "S", "deprecated: use --workload=zipf:skew=S"},
    {"engine", "NAME", "deprecated: use --algorithms=r_bma:engine=NAME"},
    {"eager", "", "deprecated: use --algorithms=r_bma:eager"},
    {"window", "N", "deprecated: use --algorithms=offline_dynamic:window=N"},
    {"help", "", "this text"},
};

std::string usage_text() {
  std::string out = "rdcn_sim — online b-matching simulator\n\nflags:\n";
  for (const FlagDoc& f : kFlagDocs) {
    std::string head = std::string("  --") + f.name;
    if (f.arg[0] != '\0') head += std::string("=") + f.arg;
    out += head;
    out.append(head.size() < 26 ? 26 - head.size() : 1, ' ');
    out += f.help;
    out += "\n";
  }
  out += "\nmetrics (--metric): ";
  const std::vector<std::string>& metrics = sim::metric_names();
  for (std::size_t i = 0; i < metrics.size(); ++i)
    out += (i == 0 ? "" : " | ") + metrics[i];
  out += "\n\n";
  out += scenario::catalog_text();
  return out;
}

std::vector<std::string> known_flags() {
  std::vector<std::string> out;
  for (const FlagDoc& f : kFlagDocs) out.push_back(f.name);
  return out;
}

/// Folds the deprecated convenience flags into the specs they configure,
/// without overriding explicitly given parameters.
void apply_legacy_flags(const Flags& flags, scenario::ScenarioSpec& spec) {
  if (flags.has("zipf-skew") && spec.workload.name == "zipf" &&
      !spec.workload.params.contains("skew"))
    spec.workload.params.set("skew", flags.get("zipf-skew"));
  for (Spec& algorithm : spec.algorithms) {
    if (algorithm.name == "r_bma") {
      if (flags.has("engine") && !algorithm.params.contains("engine"))
        algorithm.params.set("engine", flags.get("engine"));
      if (flags.get_bool("eager", false) &&
          !algorithm.params.contains("eager"))
        algorithm.params.set("eager", "true");
    }
    if (algorithm.name == "offline_dynamic" && flags.has("window") &&
        !algorithm.params.contains("window"))
      algorithm.params.set("window", flags.get("window"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::cout << usage_text();
    return 0;
  }
  const auto unknown = flags.unknown_flags(known_flags());
  if (!unknown.empty()) {
    for (const auto& f : unknown) std::cerr << "unknown flag: --" << f << "\n";
    std::cerr << "\n" << usage_text();
    return 2;
  }

  try {
    scenario::ScenarioSpec spec;
    spec.topology = Spec::parse(flags.get("topology", "fat_tree"));
    if (flags.has("trace")) {
      spec.workload.name = "csv";
      spec.workload.params = ParamMap{};
      spec.workload.params.set("path", flags.get("trace"));
    } else {
      spec.workload = Spec::parse(flags.get("workload", "facebook_db"));
    }
    spec.algorithms = scenario::parse_algorithm_list(
        flags.get("algorithms", "r_bma,bma,oblivious"));
    for (std::uint64_t b : flags.get_uint_list("b"))
      spec.cache_sizes.push_back(static_cast<std::size_t>(b));
    spec.racks = flags.get_uint("racks", 100);
    spec.requests = flags.get_uint("requests", 100'000);
    spec.a = flags.get_uint("a", 0);
    spec.alpha = flags.get_uint("alpha", 60);
    spec.trials = flags.get_uint("trials", 5);
    spec.checkpoints = flags.get_uint("checkpoints", 8);
    spec.seed = flags.get_uint("seed", 42);
    spec.threads = flags.get_uint("threads", 0);
    apply_legacy_flags(flags, spec);

    const sim::Metric metric =
        sim::parse_metric(flags.get("metric", "routing_cost"));

    const bool profile = flags.get_bool("profile", false);
    if (profile) {
      obs::reset_traces();  // a clean tree: this run only
      obs::set_tracing(true);
    }

    const bool streamed = flags.get_bool("stream", false);
    const scenario::ScenarioResult result = [&] {
      // The root span brackets the whole run so child phases (workload
      // generation, trial execution, checkpoint drains) report as
      // fractions of it.
      obs::ObsSpan root("rdcn_sim.run");
      return streamed ? scenario::run_scenario_streamed(spec)
                      : scenario::run_scenario(spec);
    }();

    std::cout << "scenario: " << result.spec.to_string() << "\n";
    if (streamed) {
      // No materialized trace exists to compute stats over — that is the
      // point of streaming.
      std::cout << "workload=" << result.workload.name()
                << " racks=" << result.workload.num_racks()
                << " requests=" << result.spec.requests
                << " (streamed: constant-memory replay, stats skipped)\n\n";
    } else {
      const trace::TraceStats stats = trace::compute_stats(result.workload);
      std::cout << "workload=" << result.workload.name()
                << " racks=" << result.workload.num_racks()
                << " requests=" << result.workload.size()
                << " gini=" << stats.gini
                << " locality64=" << stats.locality_window64 << "\n\n";
    }
    sim::print_table(std::cout, result.runs, metric, "rdcn_sim");
    sim::print_summary(std::cout, result.runs, result.runs.back());

    if (flags.has("csv")) {
      std::ofstream out(flags.get("csv"));
      sim::write_csv(out, result.runs, metric);
      std::cout << "wrote " << flags.get("csv") << "\n";
    }

    if (profile) {
      obs::set_tracing(false);
      std::cout << "\n";
      obs::write_profile_report(std::cout);
    }
  } catch (const std::exception& e) {
    // SpecError from the registries/spec parsing, std::invalid_argument &
    // co from the numeric flag getters — either way report, don't abort.
    std::cerr << "error: " << e.what() << "\n";
    std::cerr << "run with --help for the full component catalog\n";
    return 2;
  }
  return 0;
}
