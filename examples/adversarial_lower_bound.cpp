// Example: the power of randomization, demonstrated adversarially.
//
// Recreates the paper's §2.4 lower-bound story as a runnable experiment:
// on a star network, an adaptive adversary chases the deterministic BMA —
// it always requests a hub pair BMA does not currently have matched (the
// b-matching embedding of the paging lower bound).  Because BMA is
// deterministic the adversary compiles into a fixed trace; replaying that
// trace shows BMA pinned at the fixed-network rate while randomized R-BMA
// hedges its evictions and escapes the chase.
//
//   $ ./examples/adversarial_lower_bound
#include <cmath>
#include <cstdio>

#include "rdcn.hpp"

int main() {
  using namespace rdcn;
  const std::size_t racks = 70;
  const std::uint64_t alpha = 6;
  const std::size_t steps = 50'000;
  const net::Topology star = net::make_star(racks);

  std::printf(
      "star network, adaptive adversary chasing BMA over b+1 hub pairs, "
      "alpha=%llu\n"
      "%6s %14s %14s %12s %14s\n",
      static_cast<unsigned long long>(alpha), "b", "BMA/req", "R-BMA/req",
      "det/rand", "2(ln b+1)");

  for (std::size_t b : {2ul, 4ul, 8ul, 16ul, 32ul}) {
    core::Instance inst;
    inst.distances = &star.distances;
    inst.b = b;
    inst.alpha = alpha;

    core::Bma victim(inst);
    const trace::Trace t =
        core::generate_chasing_trace(victim, racks, b, steps);

    core::Bma bma(inst);
    for (const core::Request& r : t) bma.serve(r);
    const double det =
        static_cast<double>(bma.costs().total_cost()) / steps;

    double rand_total = 0.0;
    const int seeds = 7;
    for (int s = 1; s <= seeds; ++s) {
      auto rbma = scenario::make_algorithm(
          "r_bma", inst, nullptr, static_cast<std::uint64_t>(s));
      for (const core::Request& r : t) rbma->serve(r);
      rand_total += static_cast<double>(rbma->costs().total_cost());
    }
    const double rnd = rand_total / seeds / steps;

    std::printf("%6zu %14.3f %14.3f %12.2f %14.2f\n", b, det, rnd, det / rnd,
                2.0 * (std::log(static_cast<double>(b)) + 1.0));
  }
  std::printf(
      "\nThe deterministic/randomized gap widens with b: this is the\n"
      "Theta(b) vs O(log b) separation of the paper (Theorem 4 and the\n"
      "PERFORMANCE'20 deterministic lower bound), observed empirically.\n");
  return 0;
}
