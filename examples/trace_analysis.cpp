// Example: workload characterization — reproduce the trace-structure
// analysis (§3.1 / Avin et al.) that explains WHEN demand-aware
// reconfiguration pays off.
//
// Prints the spatial-skew / temporal-locality fingerprint of each built-in
// workload family next to the routing-cost reduction R-BMA achieves on it,
// making the structure -> benefit correlation visible.  Workloads and
// algorithms are addressed through the scenario registries, so adding a
// row is one spec string.
//
//   $ ./examples/trace_analysis
#include <cstdio>

#include "rdcn.hpp"

namespace {

using namespace rdcn;

double rbma_reduction(const net::Topology& topo, const trace::Trace& t,
                      std::size_t b) {
  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = b;
  inst.alpha = 60;

  auto obl = scenario::make_algorithm("oblivious", inst);
  for (const core::Request& r : t) obl->serve(r);

  double rbma = 0.0;
  const int seeds = 3;
  for (int s = 1; s <= seeds; ++s) {
    auto alg = scenario::make_algorithm("r_bma", inst, nullptr,
                                        static_cast<std::uint64_t>(s));
    for (const core::Request& r : t) alg->serve(r);
    rbma += static_cast<double>(alg->costs().routing_cost);
  }
  rbma /= seeds;
  return 100.0 *
         (1.0 - rbma / static_cast<double>(obl->costs().routing_cost));
}

}  // namespace

int main() {
  using namespace rdcn;
  const std::size_t racks = 64, requests = 60'000, b = 8;
  const net::Topology topo = net::make_fat_tree(racks);

  struct Row {
    const char* name;  ///< display label
    const char* spec;  ///< WorkloadRegistry spec string
  };
  const Row rows[] = {
      {"uniform (no structure)", "uniform"},
      {"zipf s=1.2 (spatial only)", "zipf:skew=1.2"},
      {"microsoft-like (spatial only)", "microsoft"},
      {"fb-web (mild both)", "facebook_web"},
      {"fb-hadoop (bursty)", "facebook_hadoop"},
      {"fb-database (skewed+bursty)", "facebook_db"},
      {"permutation (ideal)", "permutation"},
  };

  Xoshiro256 rng(1);
  std::printf("%-30s %8s %9s %10s %10s %12s\n", "workload", "gini",
              "entropy", "locality", "repeat_p", "R-BMA saves");
  for (const Row& row : rows) {
    const trace::Trace t =
        scenario::make_workload(row.spec, racks, requests, rng);
    const trace::TraceStats s = trace::compute_stats(t);
    const double saved = rbma_reduction(topo, t, b);
    std::printf("%-30s %8.2f %9.2f %10.2f %10.3f %11.1f%%\n", row.name,
                s.gini, s.normalized_pair_entropy, s.locality_window64,
                s.repeat_probability, saved);
  }
  std::printf(
      "\nReading: reduction tracks structure — spatial skew (gini up, "
      "entropy down)\n"
      "and temporal locality (locality/repeat_p up) both push savings "
      "toward the\n"
      "permutation ideal; the structureless uniform trace yields almost "
      "nothing.\n");
  return 0;
}
