// Example: workload characterization — reproduce the trace-structure
// analysis (§3.1 / Avin et al.) that explains WHEN demand-aware
// reconfiguration pays off.
//
// Prints the spatial-skew / temporal-locality fingerprint of each built-in
// workload family next to the routing-cost reduction R-BMA achieves on it,
// making the structure -> benefit correlation visible.
//
//   $ ./examples/trace_analysis
#include <cstdio>

#include "rdcn.hpp"

namespace {

using namespace rdcn;

double rbma_reduction(const net::Topology& topo, const trace::Trace& t,
                      std::size_t b) {
  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = b;
  inst.alpha = 60;

  core::Oblivious obl(inst);
  for (const core::Request& r : t) obl.serve(r);

  double rbma = 0.0;
  const int seeds = 3;
  for (int s = 1; s <= seeds; ++s) {
    core::RBma alg(inst, {.seed = static_cast<std::uint64_t>(s)});
    for (const core::Request& r : t) alg.serve(r);
    rbma += static_cast<double>(alg.costs().routing_cost);
  }
  rbma /= seeds;
  return 100.0 *
         (1.0 - rbma / static_cast<double>(obl.costs().routing_cost));
}

}  // namespace

int main() {
  using namespace rdcn;
  const std::size_t racks = 64, requests = 60'000, b = 8;
  const net::Topology topo = net::make_fat_tree(racks);

  struct Row {
    const char* name;
    trace::Trace t;
  };
  Xoshiro256 rng(1);
  std::vector<Row> rows;
  rows.push_back({"uniform (no structure)",
                  trace::generate_uniform(racks, requests, rng)});
  rows.push_back({"zipf s=1.2 (spatial only)",
                  trace::generate_zipf_pairs(racks, requests, 1.2, rng)});
  rows.push_back(
      {"microsoft-like (spatial only)",
       trace::generate_microsoft_like(racks, requests, {}, rng)});
  rows.push_back({"fb-web (mild both)",
                  trace::generate_facebook_like(
                      trace::FacebookCluster::kWebService, racks, requests,
                      rng)});
  rows.push_back({"fb-hadoop (bursty)",
                  trace::generate_facebook_like(
                      trace::FacebookCluster::kHadoop, racks, requests,
                      rng)});
  rows.push_back({"fb-database (skewed+bursty)",
                  trace::generate_facebook_like(
                      trace::FacebookCluster::kDatabase, racks, requests,
                      rng)});
  rows.push_back({"permutation (ideal)",
                  trace::generate_permutation(racks, requests, rng)});

  std::printf("%-30s %8s %9s %10s %10s %12s\n", "workload", "gini",
              "entropy", "locality", "repeat_p", "R-BMA saves");
  for (const Row& row : rows) {
    const trace::TraceStats s = trace::compute_stats(row.t);
    const double saved = rbma_reduction(topo, row.t, b);
    std::printf("%-30s %8.2f %9.2f %10.2f %10.3f %11.1f%%\n", row.name,
                s.gini, s.normalized_pair_entropy, s.locality_window64,
                s.repeat_probability, saved);
  }
  std::printf(
      "\nReading: reduction tracks structure — spatial skew (gini up, "
      "entropy down)\n"
      "and temporal locality (locality/repeat_p up) both push savings "
      "toward the\n"
      "permutation ideal; the structureless uniform trace yields almost "
      "nothing.\n");
  return 0;
}
