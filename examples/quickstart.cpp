// Quickstart: build a fat-tree, generate a skewed workload, and compare
// the paper's randomized algorithm (R-BMA) against the deterministic
// baseline (BMA) and an oblivious network.
//
//   $ ./examples/quickstart
#include <iostream>

#include "rdcn.hpp"

int main() {
  using namespace rdcn;

  // 1. Fixed network: a fat-tree with 32 racks (ToR switches).
  const net::Topology topo = net::make_fat_tree(32);
  std::cout << "topology: " << topo.name << ", racks=" << topo.num_racks()
            << ", mean rack distance=" << topo.distances.mean_distance()
            << "\n";

  // 2. Workload: Zipf-skewed pairs with bursty temporal structure.
  Xoshiro256 rng(2023);
  trace::FlowPoolParams params;
  params.candidate_pairs = 200;
  params.zipf_skew = 1.1;
  params.mean_burst_length = 30.0;
  const trace::Trace workload =
      trace::generate_flow_pool(32, 100'000, params, rng);
  const trace::TraceStats stats = trace::compute_stats(workload);
  std::cout << "workload: " << workload.size() << " requests, "
            << stats.distinct_pairs << " distinct pairs, skew(gini)="
            << stats.gini << ", locality(w64)=" << stats.locality_window64
            << "\n\n";

  // 3. Instance: each rack may keep b = 4 reconfigurable links;
  //    reconfiguring one link costs alpha = 50 routing-cost units.
  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = 4;
  inst.alpha = 50;

  // 4. Run the three algorithms over the same request sequence.
  sim::ExperimentConfig config;
  config.distances = &topo.distances;
  config.alpha = inst.alpha;
  config.checkpoints = 5;
  config.trials = 5;

  const std::vector<sim::ExperimentSpec> specs = {
      {.algorithm = "r_bma", .b = inst.b},
      {.algorithm = "bma", .b = inst.b},
      {.algorithm = "oblivious", .b = inst.b},
  };
  const std::vector<sim::RunResult> results =
      sim::run_experiment(config, workload, specs);

  sim::print_table(std::cout, results, sim::Metric::kRoutingCost,
                   "quickstart");
  sim::print_summary(std::cout, results, results.back());  // vs oblivious
  return 0;
}
