// Quickstart: one scenario spec string — topology, workload, algorithms,
// instance knobs — run end-to-end through the scenario registries, and the
// paper's randomized algorithm (R-BMA) compared against the deterministic
// baseline (BMA) and an oblivious network.
//
//   $ ./examples/quickstart
#include <iostream>

#include "rdcn.hpp"

int main() {
  using namespace rdcn;

  // The whole experiment as data: every name and parameter below resolves
  // through scenario::{Topology,Workload,Algorithm}Registry, so swapping
  // any component is a string edit (see `rdcn_sim --help` for the catalog).
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse(
      "topology=fat_tree;"
      "workload=flow_pool:pairs=200,skew=1.1,burst=30;"
      "algorithms=r_bma,bma,oblivious;"
      "b=4;racks=32;requests=100000;alpha=50;trials=5;checkpoints=5;"
      "seed=2023");

  const scenario::ScenarioResult result = scenario::run_scenario(spec);

  std::cout << "topology: " << result.topology.name
            << ", racks=" << result.topology.num_racks()
            << ", mean rack distance="
            << result.topology.distances.mean_distance() << "\n";
  const trace::TraceStats stats = trace::compute_stats(result.workload);
  std::cout << "workload: " << result.workload.size() << " requests, "
            << stats.distinct_pairs << " distinct pairs, skew(gini)="
            << stats.gini << ", locality(w64)=" << stats.locality_window64
            << "\n\n";

  sim::print_table(std::cout, result.runs, sim::Metric::kRoutingCost,
                   "quickstart");
  sim::print_summary(std::cout, result.runs, result.runs.back());  // vs obl.
  return 0;
}
