// Example: a "day in the life" of a reconfigurable datacenter serving
// Facebook-style traffic — the paper's motivating scenario.
//
// Generates all three cluster workloads (database, web service, hadoop),
// runs the full algorithm portfolio on each, and reports routing-cost
// reductions, matched-traffic fractions, and reconfiguration budgets.
//
//   $ ./examples/facebook_day_in_the_life [requests_per_cluster]
#include <cstdio>
#include <iostream>

#include "rdcn.hpp"

int main(int argc, char** argv) {
  using namespace rdcn;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::stoull(argv[1])) : 120'000;
  const std::size_t racks = 100;
  const std::size_t b = 12;

  const net::Topology topo = net::make_fat_tree(racks);
  std::cout << "fat-tree with " << racks << " racks, b=" << b
            << " optical circuit switches per rack, alpha=60\n\n";

  // The three cluster profiles by registry name; the workload seed is
  // threaded through make_workload, so each cluster stays reproducible.
  const char* clusters[] = {"facebook_db", "facebook_web", "facebook_hadoop"};
  for (std::size_t c = 0; c < 3; ++c) {
    Xoshiro256 rng(c + 100);
    const trace::Trace t =
        scenario::make_workload(clusters[c], racks, num_requests, rng);
    const trace::TraceStats stats = trace::compute_stats(t);

    std::printf("---- %s cluster ----\n", clusters[c]);
    std::printf(
        "    %zu requests | %zu distinct pairs | gini %.2f | locality %.2f\n",
        t.size(), stats.distinct_pairs, stats.gini, stats.locality_window64);

    sim::ExperimentConfig config;
    config.distances = &topo.distances;
    config.alpha = 60;
    config.checkpoints = 1;
    config.trials = 5;
    const std::vector<sim::ExperimentSpec> specs = {
        {.algorithm = "r_bma", .b = b},
        {.algorithm = "bma", .b = b},
        {.algorithm = "so_bma", .b = b},
        {.algorithm = "greedy", .b = b},
        {.algorithm = "rotor", .b = b},
        {.algorithm = "oblivious", .b = b},
    };
    const auto results = sim::run_experiment(config, t, specs);
    const double oblivious =
        static_cast<double>(results.back().final().routing_cost);
    for (const sim::RunResult& r : results) {
      const auto& f = r.final();
      std::printf(
          "    %-18s routing %12llu (%5.1f%% saved)  matched %4.1f%%  "
          "reconfig ops %llu\n",
          r.algorithm.c_str(),
          static_cast<unsigned long long>(f.routing_cost),
          100.0 * (1.0 - static_cast<double>(f.routing_cost) / oblivious),
          100.0 * static_cast<double>(f.direct_serves) /
              static_cast<double>(f.requests),
          static_cast<unsigned long long>(f.edge_adds + f.edge_removals));
    }
    std::printf("\n");
  }
  std::cout << "Reading: the database cluster (skewed + bursty) rewards\n"
               "demand-aware reconfiguration the most; the web cluster's\n"
               "flat traffic the least — exactly the paper's Fig 1-3 story.\n";
  return 0;
}
