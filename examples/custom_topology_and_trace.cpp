// Example: bring your own network and your own trace.
//
// Shows the two extension points a downstream user needs:
//   1. building a custom fixed network from an arbitrary graph (here: a
//      two-tier leaf-spine with a deliberately slow "backup" path), and
//   2. importing a request trace from CSV (the format real traces arrive
//      in) and replaying it through the library.
//
//   $ ./examples/custom_topology_and_trace
#include <iostream>
#include <sstream>

#include "rdcn.hpp"

int main() {
  using namespace rdcn;

  // --- 1. custom fixed network -------------------------------------------
  // Eight racks; racks 0-3 hang off spine A, racks 4-7 off spine B, and the
  // two spines are joined by a 3-hop chain of patch panels: cross-side
  // traffic pays 6 hops, same-side pays 2.
  net::Graph g(8 + 2 + 2);  // racks, 2 spines, 2 chain vertices
  const net::NodeId spine_a = 8, spine_b = 9, mid1 = 10, mid2 = 11;
  for (net::NodeId r = 0; r < 4; ++r) g.add_edge(r, spine_a);
  for (net::NodeId r = 4; r < 8; ++r) g.add_edge(r, spine_b);
  g.add_edge(spine_a, mid1);
  g.add_edge(mid1, mid2);
  g.add_edge(mid2, spine_b);
  g.finalize();

  std::vector<net::NodeId> racks;
  for (net::NodeId r = 0; r < 8; ++r) racks.push_back(r);
  const net::DistanceMatrix distances(g, racks);
  std::cout << "custom network: same-side distance = " << distances(0, 1)
            << ", cross-side distance = " << distances(0, 7) << "\n\n";

  // --- 2. trace from CSV --------------------------------------------------
  // A synthetic "imported" trace: heavy cross-side pair (0,7) plus noise.
  std::stringstream csv;
  csv << "# racks=8 name=imported_example\n";
  Xoshiro256 rng(3);
  for (int i = 0; i < 20'000; ++i) {
    if (rng.next_bool(0.6)) {
      csv << "0,7\n";  // the pair that hurts most on the fixed network
    } else {
      const auto u = static_cast<unsigned>(rng.next_below(8));
      auto v = static_cast<unsigned>(rng.next_below(7));
      if (v >= u) ++v;
      csv << u << "," << v << "\n";
    }
  }
  const trace::Trace t = trace::read_csv(csv);
  std::cout << "imported " << t.size() << " requests ("
            << t.num_distinct_pairs() << " distinct pairs) from CSV\n\n";

  // --- run ---------------------------------------------------------------
  core::Instance inst;
  inst.distances = &distances;
  inst.b = 2;
  inst.alpha = 40;

  // Algorithm specs resolve through the registry even against a custom
  // network — parameters ride along in the spec string.
  for (const char* name : {"r_bma:engine=marking", "bma", "so_bma",
                           "oblivious"}) {
    auto matcher = scenario::make_algorithm(name, inst, &t, /*seed=*/1);
    const sim::RunResult r = sim::run_to_completion(*matcher, t);
    std::cout << "  " << matcher->name() << ": routing="
              << r.final().routing_cost
              << " reconfig=" << r.final().reconfig_cost
              << " matched {0,7}=" << std::boolalpha
              << matcher->matching().has(0, 7) << "\n";
  }
  std::cout << "\nEvery demand-aware algorithm discovers the hot cross-side\n"
               "pair and shortcuts its 6-hop path to a single optical hop.\n";
  return 0;
}
