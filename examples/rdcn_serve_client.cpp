// rdcn_serve_client — command-line client for the rdcn_serve daemon.
//
// Submits scenario specs over the serving socket and writes the returned
// CSV, exactly as a direct `rdcn_sim --csv=...` run would produce it.
// With --daemon=BIN it is self-contained: it spawns the daemon itself,
// runs the specs, asks it to SHUTDOWN, and reaps the process — this is
// what the serve e2e smoke test drives.
//
//   # against an already-running daemon
//   rdcn_serve_client --socket=/tmp/rdcn.sock --csv=out.csv
//     --spec='workload=zipf:skew=1.2;requests=20000;trials=2'
//
//   # self-contained: spawn the daemon, run, shut it down
//   rdcn_serve_client --daemon=./rdcn_serve --socket=/tmp/rdcn.sock
//     --spec='...' --spec2='...same spec, params reordered...'
//
// Per submission it prints one line `run: status=... cached=... checkpoints=...`
// — so "cached=1" on a --spec2 resubmission is directly observable.
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/flags.hpp"
#include "common/param_map.hpp"
#include "serve/client.hpp"

namespace {

using namespace rdcn;

constexpr const char* kUsage =
    "rdcn_serve_client — submit scenario specs to a rdcn_serve daemon\n"
    "\n"
    "flags:\n"
    "  --socket=PATH   daemon socket to connect to (required)\n"
    "  --daemon=BIN    spawn BIN --socket=PATH first, SHUTDOWN + reap it\n"
    "                  after the runs (self-contained mode)\n"
    "  --spec=SPEC     scenario spec to run (ScenarioSpec one-line form)\n"
    "  --spec2=SPEC    second spec submitted after the first completes —\n"
    "                  an equivalent spec reports cached=1\n"
    "  --attach=ID     instead of submitting, ATTACH to run ID (queued,\n"
    "                  running, or recently finished — ids survive daemon\n"
    "                  restarts when the daemon journals) and collect it\n"
    "  --client=NAME   HELLO handshake: bind this connection to NAME's\n"
    "                  quota and fairness lane (default anonymous)\n"
    "  --priority=N    RUN priority 0-2; under daemon brownout lower\n"
    "                  priorities are shed first (default 1)\n"
    "  --reset=SPEC    clear the quarantine streak for canonical SPEC\n"
    "                  ('all' clears every streak) and report the count\n"
    "  --csv=FILE      write the first run's CSV payload to FILE\n"
    "  --csv2=FILE     write the second run's CSV payload to FILE\n"
    "  --deadline-ms=N ask the daemon to abandon a run N ms after\n"
    "                  admission (DONE status=deadline_exceeded)\n"
    "  --retries=N     total submission attempts through REJECT\n"
    "                  backpressure and transient disconnects (default 5)\n"
    "  --metrics-out=FILE\n"
    "                  after the runs, scrape the daemon's METRICS endpoint\n"
    "                  (Prometheus text exposition) into FILE; '-' = stdout\n"
    "  --quiet         suppress CHECKPOINT progress echo\n"
    "  --help          this text\n";

/// Runs one spec to completion (with the client library's bounded
/// retry/backoff loop); returns false when the run didn't finish with
/// status ok.
bool run_spec(serve::Client& client, const std::string& spec,
              const std::string& csv_path, bool quiet,
              const serve::Client::RetryPolicy& policy,
              std::uint64_t deadline_ms) {
  const serve::Client::RunOutput out = client.run_scenario(
      spec, policy, deadline_ms, [quiet](const std::string& line) {
        // endl: progress lines are for live observation — they must not
        // sit in a block buffer when stdout is a file or pipe.
        if (!quiet) std::cout << line << std::endl;
      });
  std::cout << "run: status=" << out.status
            << " cached=" << (out.cached ? 1 : 0)
            << " checkpoints=" << out.checkpoints
            << " attempts=" << out.attempts << "\n";
  if (out.status != "ok") {
    if (!out.error.empty()) std::cerr << "error: " << out.error << "\n";
    return false;
  }
  if (!csv_path.empty()) {
    std::ofstream file(csv_path, std::ios::binary);
    file << out.csv;
    if (!file) {
      std::cerr << "error: cannot write " << csv_path << "\n";
      return false;
    }
    std::cout << "wrote " << csv_path << "\n";
  }
  return true;
}

/// ATTACHes to an existing run by id and collects it to completion.
bool attach_run(serve::Client& client, std::uint64_t id,
                const std::string& csv_path, bool quiet) {
  const serve::Client::AttachResult at = client.attach(id);
  if (!at.attached) {
    std::cerr << "error: ATTACH " << id << " refused: " << at.error << "\n";
    return false;
  }
  std::cout << "attached: id=" << id << " state=" << at.state
            << " last_seq=" << at.last_seq << "\n";
  const serve::Client::RunOutput out =
      client.collect(id, [quiet](const std::string& line) {
        if (!quiet) std::cout << line << std::endl;
      });
  std::cout << "run: status=" << out.status
            << " cached=" << (out.cached ? 1 : 0)
            << " checkpoints=" << out.checkpoints << " attempts=1\n";
  if (out.status != "ok") {
    if (!out.error.empty()) std::cerr << "error: " << out.error << "\n";
    return false;
  }
  if (!csv_path.empty()) {
    std::ofstream file(csv_path, std::ios::binary);
    file << out.csv;
    if (!file) {
      std::cerr << "error: cannot write " << csv_path << "\n";
      return false;
    }
    std::cout << "wrote " << csv_path << "\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.has("help") || !flags.has("socket")) {
    std::cout << kUsage;
    return 0;
  }
  const auto unknown = flags.unknown_flags(
      {"socket", "daemon", "spec", "spec2", "attach", "client", "priority",
       "reset", "csv", "csv2", "deadline-ms", "retries", "metrics-out",
       "quiet", "help"});
  if (!unknown.empty()) {
    for (const auto& f : unknown) std::cerr << "unknown flag: --" << f << "\n";
    std::cerr << "\n" << kUsage;
    return 2;
  }

  const std::string socket_path = flags.get("socket");
  pid_t daemon_pid = -1;
  if (flags.has("daemon")) {
    const std::string daemon_bin = flags.get("daemon");
    const std::string socket_arg = "--socket=" + socket_path;
    daemon_pid = ::fork();
    if (daemon_pid < 0) {
      std::cerr << "error: fork failed: " << std::strerror(errno) << "\n";
      return 2;
    }
    if (daemon_pid == 0) {
      ::execl(daemon_bin.c_str(), daemon_bin.c_str(), socket_arg.c_str(),
              static_cast<char*>(nullptr));
      std::cerr << "error: cannot exec " << daemon_bin << ": "
                << std::strerror(errno) << "\n";
      ::_exit(127);
    }
  }

  int exit_code = 0;
  try {
    serve::Client client;
    client.connect(socket_path);  // retries while a spawned daemon binds
    client.ping();
    if (flags.has("client")) client.hello(flags.get("client"));
    client.set_priority(static_cast<int>(flags.get_uint("priority", 1)));
    if (flags.has("reset")) {
      const std::string target = flags.get("reset");
      const std::size_t cleared = target == "all"
                                      ? client.reset_all()
                                      : client.reset_quarantine(target);
      std::cout << "reset: cleared=" << cleared << "\n";
    }

    const bool quiet = flags.get_bool("quiet", false);
    serve::Client::RetryPolicy policy;
    policy.max_attempts = flags.get_uint("retries", 5);
    const std::uint64_t deadline_ms = flags.get_uint("deadline-ms", 0);
    if (flags.has("attach") &&
        !attach_run(client, flags.get_uint("attach", 0),
                    flags.get("csv", ""), quiet))
      exit_code = 1;
    if (exit_code == 0 && flags.has("spec") &&
        !run_spec(client, flags.get("spec"), flags.get("csv", ""), quiet,
                  policy, deadline_ms))
      exit_code = 1;
    if (exit_code == 0 && flags.has("spec2") &&
        !run_spec(client, flags.get("spec2"), flags.get("csv2", ""), quiet,
                  policy, deadline_ms))
      exit_code = 1;

    if (flags.has("metrics-out")) {
      const std::string text = client.metrics();
      const std::string path = flags.get("metrics-out");
      if (path == "-") {
        std::cout << text;
      } else {
        std::ofstream file(path, std::ios::binary);
        file << text;
        if (!file) {
          std::cerr << "error: cannot write " << path << "\n";
          exit_code = 2;
        } else {
          std::cout << "wrote " << path << "\n";
        }
      }
    }

    if (daemon_pid > 0) client.shutdown_daemon();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    exit_code = 2;
  }

  if (daemon_pid > 0) {
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "error: daemon exited abnormally\n";
      if (exit_code == 0) exit_code = 2;
    }
  }
  return exit_code;
}
