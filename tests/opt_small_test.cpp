// Tests for the exact dynamic offline optimum (core/opt_small.hpp) and the
// empirical competitiveness checks built on it.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "scenario/registry.hpp"
#include "core/opt_small.hpp"
#include "net/distance_matrix.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(OptSmall, SinglePairNeverWorthMatchingWhenTraceShort) {
  // One request to a pair at distance 3, α = 100: OPT routes it (cost 3).
  const auto d = net::DistanceMatrix::uniform(3, 3);
  trace::Trace t(3, "one");
  t.push_back(Request::make(0, 1));
  EXPECT_EQ(optimal_dynamic_cost(make_instance(d, 1, 100), t), 3u);
}

TEST(OptSmall, HotPairWorthMatching) {
  // 100 requests to one pair at distance 3, α = 10:
  // OPT pre-installs the edge (10) and serves all 100 at cost 1:
  // 10 + 100 = 110.  (Routing all on the fixed network: 300.)
  const auto d = net::DistanceMatrix::uniform(3, 3);
  trace::Trace t(3, "hot");
  for (int i = 0; i < 100; ++i) t.push_back(Request::make(0, 1));
  EXPECT_EQ(optimal_dynamic_cost(make_instance(d, 1, 10), t), 110u);
}

TEST(OptSmall, AlphaTooHighMeansPureRouting) {
  const auto d = net::DistanceMatrix::uniform(3, 2);
  trace::Trace t(3, "few");
  for (int i = 0; i < 5; ++i) t.push_back(Request::make(0, 2));
  // Matching would cost α=100 up front > total routing 10.
  EXPECT_EQ(optimal_dynamic_cost(make_instance(d, 1, 100), t), 10u);
}

TEST(OptSmall, DegreeBoundForcesChoices) {
  // Star demand at node 0 to 1 and 2, alternating, b=1, uniform dist 2,
  // α=2.  OPT can keep only one matched; the other pays 2 per request.
  const auto d = net::DistanceMatrix::uniform(3, 2);
  trace::Trace t(3, "alt");
  for (int i = 0; i < 20; ++i)
    t.push_back(Request::make(0, 1 + static_cast<Rack>(i % 2)));
  const std::uint64_t opt_b1 =
      optimal_dynamic_cost(make_instance(d, 1, 2), t);
  const std::uint64_t opt_b2 =
      optimal_dynamic_cost(make_instance(d, 2, 2), t);
  EXPECT_LT(opt_b2, opt_b1);  // extra degree must help
  // With b=2 OPT pre-installs both edges (degree of rack 0 = 2) and
  // serves all 20 requests at 1: 2·α + 20 = 4 + 20 = 24.
  EXPECT_EQ(opt_b2, 24u);
}

TEST(OptSmall, MonotoneInAlpha) {
  const auto d = net::DistanceMatrix::uniform(4, 2);
  Xoshiro256 rng(3);
  const trace::Trace t = trace::generate_uniform(4, 60, rng);
  std::uint64_t prev = 0;
  for (std::uint64_t alpha : {1ull, 2ull, 5ull, 10ull, 100ull}) {
    const std::uint64_t c =
        optimal_dynamic_cost(make_instance(d, 1, alpha), t);
    EXPECT_GE(c, prev);  // larger α can only increase optimal cost
    prev = c;
  }
}

TEST(OptSmall, MonotoneInDegree) {
  const auto d = net::DistanceMatrix::uniform(5, 3);
  Xoshiro256 rng(4);
  const trace::Trace t = trace::generate_uniform(5, 80, rng);
  std::uint64_t prev = ~0ull;
  for (std::size_t b : {1ul, 2ul, 3ul}) {
    const std::uint64_t c = optimal_dynamic_cost(make_instance(d, b, 4), t);
    EXPECT_LE(c, prev);  // more degree can only decrease optimal cost
    prev = c;
  }
}

// OPT lower-bounds every algorithm — the sanity gate for the whole cost
// accounting stack.
class OptDominance : public ::testing::TestWithParam<
                         std::tuple<const char*, int>> {};

TEST_P(OptDominance, NoAlgorithmBeatsOpt) {
  const auto [algo, seed] = GetParam();
  const auto d = net::DistanceMatrix::uniform(5, 2);
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const trace::Trace t = trace::generate_uniform(5, 120, rng);
  const Instance inst = make_instance(d, 2, 3);

  auto matcher = scenario::make_algorithm(algo, inst, &t,
                              static_cast<std::uint64_t>(seed) + 7);
  for (const Request& r : t) matcher->serve(r);
  const std::uint64_t opt = optimal_dynamic_cost(inst, t);
  EXPECT_GE(matcher->costs().total_cost(), opt) << algo;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsSeeds, OptDominance,
    ::testing::Combine(::testing::Values("r_bma", "bma", "greedy",
                                         "oblivious", "so_bma"),
                       ::testing::Values(1, 2, 3, 4)));

}  // namespace
