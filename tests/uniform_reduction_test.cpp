// Tests for the Theorem 1 combinator (core/uniform_reduction.hpp): the
// fused R-BMA must be behaviourally identical to
// UniformReduction(uniform R-BMA), and the Theorem 1 cost inequality must
// hold run-by-run (RED-1/RED-3 in DESIGN.md).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/bma.hpp"
#include "core/r_bma.hpp"
#include "core/uniform_reduction.hpp"
#include "net/topology.hpp"
#include "trace/facebook_like.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(UniformReduction, FusedRBmaEqualsComposedRBma) {
  // The fused implementation (R-BMA) and the generic composition
  // (UniformReduction over a uniform-case R-BMA) must produce identical
  // matchings and ledgers when seeded identically: the uniform inner
  // R-BMA has ke = 1, so its paging engines see exactly the special
  // stream — the same inputs as the fused engines.
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(31);
  const trace::Trace t = trace::generate_zipf_pairs(20, 30000, 1.1, rng);
  const Instance inst = make_instance(topo.distances, 3, 12);
  const std::uint64_t seed = 7;

  RBma fused(inst, {.seed = seed});
  UniformReduction composed(inst, [&](const Instance& uniform) {
    return std::make_unique<RBma>(uniform, RBmaOptions{.seed = seed});
  });

  for (const Request& r : t) {
    fused.serve(r);
    composed.serve(r);
  }
  EXPECT_EQ(fused.special_requests(), composed.special_requests());
  EXPECT_EQ(fused.costs().routing_cost, composed.costs().routing_cost);
  EXPECT_EQ(fused.costs().edge_adds, composed.costs().edge_adds);
  EXPECT_EQ(fused.costs().edge_removals, composed.costs().edge_removals);
  // Identical final matchings.
  auto a = fused.matching().edge_keys();
  auto b = composed.matching().edge_keys();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(UniformReduction, TheoremOneInequalityHolds) {
  // Alg(I) <= 2γα·Alg1(I1) + |V²|·γ·α for every run (the paper's first
  // inequality in the proof of Theorem 1).
  const net::Topology topo = net::make_fat_tree(24);
  const std::size_t n = topo.num_racks();
  for (std::uint64_t alpha : {4ull, 16ull, 64ull}) {
    Xoshiro256 rng(32 + alpha);
    const trace::Trace t = trace::generate_facebook_like(
        trace::FacebookCluster::kDatabase, n, 30000, rng);
    const Instance inst = make_instance(topo.distances, 4, alpha);

    UniformReduction alg(inst, [](const Instance& uniform) {
      return std::make_unique<RBma>(uniform, RBmaOptions{.seed = 5});
    });
    for (const Request& r : t) alg.serve(r);

    const double gamma = inst.gamma();
    const double lhs = static_cast<double>(alg.costs().total_cost());
    const double inner_cost =
        static_cast<double>(alg.inner().costs().total_cost());
    const double beta = static_cast<double>(n) * static_cast<double>(n) *
                        gamma * static_cast<double>(alpha);
    EXPECT_LE(lhs, 2.0 * gamma * static_cast<double>(alpha) * inner_cost +
                       beta)
        << "alpha=" << alpha;
  }
}

TEST(UniformReduction, WorksWithDeterministicInner) {
  // The combinator is algorithm-agnostic: wrap the deterministic BMA.
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(33);
  const trace::Trace t = trace::generate_zipf_pairs(16, 15000, 1.0, rng);
  const Instance inst = make_instance(topo.distances, 2, 10);

  UniformReduction alg(inst, [](const Instance& uniform) {
    return std::make_unique<Bma>(uniform);
  });
  for (const Request& r : t) alg.serve(r);
  EXPECT_TRUE(alg.matching().check_invariants());
  EXPECT_GT(alg.costs().direct_serves, 0u);
  EXPECT_EQ(alg.name(), "uniform_reduction[bma]");
}

TEST(UniformReduction, MirrorsInnerMatchingExactly) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(34);
  const trace::Trace t = trace::generate_zipf_pairs(16, 10000, 1.2, rng);
  UniformReduction alg(make_instance(topo.distances, 2, 8),
                       [](const Instance& uniform) {
                         return std::make_unique<RBma>(
                             uniform, RBmaOptions{.seed = 11});
                       });
  for (std::size_t i = 0; i < t.size(); ++i) {
    alg.serve(t[i]);
    if (i % 997 == 0) {
      auto mine = alg.matching().edge_keys();
      auto inner = alg.inner().matching().edge_keys();
      std::sort(mine.begin(), mine.end());
      std::sort(inner.begin(), inner.end());
      ASSERT_EQ(mine, inner) << "at request " << i;
    }
  }
}

TEST(UniformReduction, ResetRestartsBothLayers) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(35);
  const trace::Trace t = trace::generate_zipf_pairs(16, 5000, 1.0, rng);
  UniformReduction alg(make_instance(topo.distances, 2, 8),
                       [](const Instance& uniform) {
                         return std::make_unique<RBma>(
                             uniform, RBmaOptions{.seed = 3});
                       });
  for (const Request& r : t) alg.serve(r);
  const std::uint64_t cost1 = alg.costs().total_cost();
  alg.reset();
  EXPECT_EQ(alg.costs().requests, 0u);
  EXPECT_EQ(alg.inner().costs().requests, 0u);
  for (const Request& r : t) alg.serve(r);
  EXPECT_EQ(alg.costs().total_cost(), cost1);
}

}  // namespace
