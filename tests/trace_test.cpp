// Tests for workload generators and trace analytics (src/trace).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include <cmath>
#include "trace/facebook_like.hpp"
#include "trace/generators.hpp"
#include "trace/microsoft_like.hpp"
#include "trace/stats.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::trace;

void expect_well_formed(const Trace& t, std::size_t racks, std::size_t len) {
  EXPECT_EQ(t.num_racks(), racks);
  EXPECT_EQ(t.size(), len);
  for (const Request& r : t) {
    EXPECT_LT(r.u, racks);
    EXPECT_LT(r.v, racks);
    EXPECT_LT(r.u, r.v);  // canonical order
  }
}

TEST(Generators, UniformWellFormedAndDeterministic) {
  Xoshiro256 a(1), b(1);
  const Trace ta = generate_uniform(20, 5000, a);
  const Trace tb = generate_uniform(20, 5000, b);
  expect_well_formed(ta, 20, 5000);
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(Generators, UniformHasHighEntropyLowLocality) {
  Xoshiro256 rng(2);
  const TraceStats s = compute_stats(generate_uniform(20, 30000, rng));
  EXPECT_GT(s.normalized_pair_entropy, 0.95);
  EXPECT_LT(s.repeat_probability, 0.02);
  EXPECT_LT(s.gini, 0.2);
}

TEST(Generators, ZipfSkewIncreasesGini) {
  Xoshiro256 rng(3);
  const TraceStats flat =
      compute_stats(generate_zipf_pairs(20, 20000, 0.2, rng));
  const TraceStats skewed =
      compute_stats(generate_zipf_pairs(20, 20000, 1.4, rng));
  EXPECT_GT(skewed.gini, flat.gini + 0.2);
  EXPECT_LT(skewed.normalized_pair_entropy, flat.normalized_pair_entropy);
}

TEST(Generators, HotspotConcentratesOnHotRacks) {
  Xoshiro256 rng(4);
  const Trace t = generate_hotspot(40, 20000, 0.1, 0.9, rng);
  expect_well_formed(t, 40, 20000);
  const TraceStats s = compute_stats(t);
  EXPECT_GT(s.top10pct_share, 0.5);
}

TEST(Generators, PermutationUsesExactlyNOver2Pairs) {
  Xoshiro256 rng(5);
  const Trace t = generate_permutation(16, 5000, rng);
  expect_well_formed(t, 16, 5000);
  EXPECT_EQ(t.num_distinct_pairs(), 8u);
}

TEST(Generators, FlowPoolHasTemporalLocality) {
  Xoshiro256 rng(6);
  FlowPoolParams p;
  p.candidate_pairs = 200;
  p.mean_burst_length = 40.0;
  p.max_active_flows = 8;
  const Trace bursty = generate_flow_pool(30, 30000, p, rng);
  const Trace iid = generate_zipf_pairs(30, 30000, 1.0, rng);
  const TraceStats sb = compute_stats(bursty);
  const TraceStats si = compute_stats(iid);
  EXPECT_GT(sb.locality_window64, si.locality_window64 + 0.15);
  EXPECT_GT(sb.repeat_probability, 0.05);
}

TEST(Generators, FlowPoolDriftChangesWorkingSet) {
  Xoshiro256 rng(7);
  FlowPoolParams p;
  p.candidate_pairs = 50;
  p.drift_period = 5000;
  p.drift_fraction = 0.5;
  const Trace t = generate_flow_pool(30, 40000, p, rng);
  // With aggressive drift, far more distinct pairs appear than the
  // candidate set size at any instant.
  EXPECT_GT(t.num_distinct_pairs(), 100u);
}

TEST(Generators, ElephantMiceSharesAndRuns) {
  Xoshiro256 rng(8);
  const Trace t = generate_elephant_mice(30, 30000, 10, 0.7, 20.0, rng);
  expect_well_formed(t, 30, 30000);
  const TraceStats s = compute_stats(t);
  // Ten elephants must carry most traffic.
  EXPECT_GT(s.top1pct_share, 0.3);
  EXPECT_GT(s.repeat_probability, 0.3);  // long runs
}

TEST(Generators, RoundRobinStarCyclesExactly) {
  const Trace t = generate_round_robin_star(10, 9, 2);
  ASSERT_EQ(t.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(t[i].u, 0u);
    EXPECT_EQ(t[i].v, 1 + (i % 3));
  }
}

TEST(FacebookLike, ProfilesAreOrderedByLocality) {
  Xoshiro256 r1(10), r2(11), r3(12);
  const TraceStats db = compute_stats(
      generate_facebook_like(FacebookCluster::kDatabase, 50, 40000, r1));
  const TraceStats web = compute_stats(
      generate_facebook_like(FacebookCluster::kWebService, 50, 40000, r2));
  const TraceStats hadoop = compute_stats(
      generate_facebook_like(FacebookCluster::kHadoop, 50, 40000, r3));
  // Database: most temporal locality; web: least.
  EXPECT_GT(db.locality_window64, web.locality_window64);
  EXPECT_GT(hadoop.locality_window64, web.locality_window64);
  // Database is the most spatially skewed.
  EXPECT_GT(db.gini, web.gini);
}

TEST(FacebookLike, NamesAndSizes) {
  Xoshiro256 rng(13);
  const Trace t =
      generate_facebook_like(FacebookCluster::kDatabase, 30, 1000, rng);
  EXPECT_EQ(t.name(), "facebook_database");
  expect_well_formed(t, 30, 1000);
}

TEST(MicrosoftLike, MatrixIsSymmetricNormalizedZeroDiagonal) {
  Xoshiro256 rng(14);
  const std::vector<double> m = make_microsoft_matrix(20, {}, rng);
  double total = 0.0;
  for (std::size_t u = 0; u < 20; ++u) {
    EXPECT_EQ(m[u * 20 + u], 0.0);
    for (std::size_t v = u + 1; v < 20; ++v) {
      EXPECT_DOUBLE_EQ(m[u * 20 + v], m[v * 20 + u]);
      EXPECT_GE(m[u * 20 + v], 0.0);
      total += m[u * 20 + v];
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MicrosoftLike, SkewedButTemporallyUnstructured) {
  Xoshiro256 rng(15);
  const Trace t = generate_microsoft_like(25, 50000, {}, rng);
  const TraceStats s = compute_stats(t);
  EXPECT_GT(s.gini, 0.5);                  // strong spatial skew
  EXPECT_LT(s.normalized_pair_entropy, 0.9);
  // i.i.d. sampling: repeat probability equals the collision probability
  // of the matrix, which is small but nonzero; no burst structure.
  EXPECT_LT(s.repeat_probability, 0.1);
}

TEST(TraceContainer, PrefixTruncates) {
  Xoshiro256 rng(16);
  const Trace t = generate_uniform(10, 100, rng);
  const Trace p = t.prefix(30);
  EXPECT_EQ(p.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_EQ(p[i], t[i]);
  EXPECT_EQ(t.prefix(1000).size(), 100u);
}

TEST(Stats, HandComputedTinyTrace) {
  Trace t(4, "tiny");
  // Pairs: {0,1} x3, {2,3} x1.
  t.push_back(Request::make(0, 1));
  t.push_back(Request::make(0, 1));
  t.push_back(Request::make(1, 0));
  t.push_back(Request::make(2, 3));
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.num_requests, 4u);
  EXPECT_EQ(s.distinct_pairs, 2u);
  // Entropy of (3/4, 1/4) normalized by log2(2)=1.
  const double h = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(s.normalized_pair_entropy, h, 1e-9);
  // repeats: positions 1,2 repeat {0,1}: 2 of 3 transitions.
  EXPECT_NEAR(s.repeat_probability, 2.0 / 3.0, 1e-9);
}

TEST(Stats, PairCountsSortedDescending) {
  Trace t(4, "x");
  for (int i = 0; i < 5; ++i) t.push_back(Request::make(0, 1));
  for (int i = 0; i < 2; ++i) t.push_back(Request::make(1, 2));
  const auto counts = pair_counts_sorted(t);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].second, 5u);
  EXPECT_EQ(counts[1].second, 2u);
  EXPECT_EQ(counts[0].first, pair_key(0, 1));
}

TEST(PairKey, RoundTripsAndCanonical) {
  const std::uint64_t k = pair_key(7, 3);
  EXPECT_EQ(k, pair_key(3, 7));
  EXPECT_EQ(pair_lo(k), 3u);
  EXPECT_EQ(pair_hi(k), 7u);
}

}  // namespace
