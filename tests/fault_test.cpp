// The fault-injection subsystem (common/fault.hpp): trigger semantics
// (after/times/probability), spec-string and env arming, counters, and
// the inert-by-default contract the perf gate relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/fault.hpp"
#include "common/param_map.hpp"

namespace {

using namespace rdcn;

/// Every case starts and ends with nothing armed (the registry is
/// process-global).
struct FaultTest : ::testing::Test {
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override {
    fault::disarm_all();
    ::unsetenv("RDCN_FAULTS");
  }
};

TEST_F(FaultTest, InertByDefault) {
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::fire("anything.at.all"));
  EXPECT_EQ(fault::eval_count("anything.at.all"), 0u);
  EXPECT_TRUE(fault::armed_points().empty());
}

TEST_F(FaultTest, UnarmedPointNeverFiresEvenWhenOthersAre) {
  fault::arm("a");
  EXPECT_TRUE(fault::armed());
  EXPECT_FALSE(fault::fire("b"));
  EXPECT_TRUE(fault::fire("a"));
}

TEST_F(FaultTest, DefaultTriggerAlwaysFires) {
  fault::arm("p");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fault::fire("p"));
  EXPECT_EQ(fault::fire_count("p"), 5u);
  EXPECT_EQ(fault::eval_count("p"), 5u);
}

TEST_F(FaultTest, AfterSkipsLeadingEvaluations) {
  fault::arm("p", {.after = 3});
  EXPECT_FALSE(fault::fire("p"));
  EXPECT_FALSE(fault::fire("p"));
  EXPECT_FALSE(fault::fire("p"));
  EXPECT_TRUE(fault::fire("p"));
  EXPECT_EQ(fault::fire_count("p"), 1u);
  EXPECT_EQ(fault::eval_count("p"), 4u);
}

TEST_F(FaultTest, TimesBoundsTotalFirings) {
  fault::arm("p", {.times = 2});
  EXPECT_TRUE(fault::fire("p"));
  EXPECT_TRUE(fault::fire("p"));
  EXPECT_FALSE(fault::fire("p"));
  EXPECT_FALSE(fault::fire("p"));
  EXPECT_EQ(fault::fire_count("p"), 2u);
}

TEST_F(FaultTest, AfterAndTimesCompose) {
  fault::arm("p", {.after = 2, .times = 1});
  EXPECT_FALSE(fault::fire("p"));
  EXPECT_FALSE(fault::fire("p"));
  EXPECT_TRUE(fault::fire("p"));
  EXPECT_FALSE(fault::fire("p"));
}

TEST_F(FaultTest, ProbabilityIsDeterministicPerSeed) {
  const auto sample = [](std::uint64_t seed) {
    fault::disarm_all();
    fault::arm("p", {.probability = 0.5, .seed = seed});
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(fault::fire("p"));
    return fires;
  };
  const auto a = sample(7);
  const auto b = sample(7);
  const auto c = sample(8);
  EXPECT_EQ(a, b);  // same seed, same sequence
  EXPECT_NE(a, c);  // different stream
  const std::size_t fired =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 16u);  // crude sanity: p=0.5 over 64 draws
  EXPECT_LT(fired, 48u);
}

TEST_F(FaultTest, RearmingResetsCounters) {
  fault::arm("p", {.times = 1});
  EXPECT_TRUE(fault::fire("p"));
  EXPECT_FALSE(fault::fire("p"));
  fault::arm("p", {.times = 1});
  EXPECT_TRUE(fault::fire("p"));
}

TEST_F(FaultTest, DisarmRestoresInertFastPath) {
  fault::arm("a");
  fault::arm("b");
  fault::disarm("a");
  EXPECT_TRUE(fault::armed());  // b still armed
  fault::disarm("b");
  EXPECT_FALSE(fault::armed());
}

TEST_F(FaultTest, ArmFromSpecParsesTriggers) {
  fault::arm_from_spec("x;y=after:2,times:1;z=p:0.0,seed:9");
  const std::vector<std::string> points = fault::armed_points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_TRUE(fault::fire("x"));
  EXPECT_FALSE(fault::fire("y"));
  EXPECT_FALSE(fault::fire("y"));
  EXPECT_TRUE(fault::fire("y"));
  EXPECT_FALSE(fault::fire("y"));  // times:1 exhausted
  EXPECT_FALSE(fault::fire("z"));  // p=0 never fires
}

TEST_F(FaultTest, ArmFromSpecRejectsMalformedInput) {
  EXPECT_THROW(fault::arm_from_spec("=times:1"), SpecError);
  EXPECT_THROW(fault::arm_from_spec("p=times"), SpecError);
  EXPECT_THROW(fault::arm_from_spec("p=bogus:3"), SpecError);
  EXPECT_THROW(fault::arm_from_spec("p=times:abc"), SpecError);
  EXPECT_THROW(fault::arm_from_spec("p=p:1.5"), SpecError);
}

TEST_F(FaultTest, EmptySpecIsNoOp) {
  fault::arm_from_spec("");
  EXPECT_FALSE(fault::armed());
}

TEST_F(FaultTest, ArmFromEnvReadsRdcnFaults) {
  ::setenv("RDCN_FAULTS", "env.point=times:1", 1);
  fault::arm_from_env();
  EXPECT_TRUE(fault::fire("env.point"));
  EXPECT_FALSE(fault::fire("env.point"));
}

TEST_F(FaultTest, ArmFromEnvUnsetIsNoOp) {
  ::unsetenv("RDCN_FAULTS");
  fault::arm_from_env();
  EXPECT_FALSE(fault::armed());
}

}  // namespace
