// Integration tests: the full pipeline (topology -> workload -> algorithms
// -> simulator -> report) at reduced scale, asserting the qualitative
// orderings the paper's evaluation (§3.2) reports.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "scenario/registry.hpp"
#include "sim/experiment.hpp"
#include "trace/facebook_like.hpp"
#include "trace/microsoft_like.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::sim;

struct PipelineResult {
  std::uint64_t r_bma;
  std::uint64_t bma;
  std::uint64_t so_bma;
  std::uint64_t oblivious;
};

PipelineResult run_pipeline(const trace::Trace& t, std::size_t num_racks,
                            std::size_t b, std::uint64_t alpha) {
  const net::Topology topo = net::make_fat_tree(num_racks);
  ExperimentConfig config;
  config.distances = &topo.distances;
  config.alpha = alpha;
  config.checkpoints = 4;
  config.trials = 3;
  const std::vector<ExperimentSpec> specs = {
      {.algorithm = "r_bma", .b = b},
      {.algorithm = "bma", .b = b},
      {.algorithm = "so_bma", .b = b},
      {.algorithm = "oblivious", .b = b},
  };
  const auto results = run_experiment(config, t, specs);
  return {results[0].final().routing_cost, results[1].final().routing_cost,
          results[2].final().routing_cost, results[3].final().routing_cost};
}

TEST(Integration, FacebookDatabaseOrderings) {
  Xoshiro256 rng(100);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, 40, 60000, rng);
  const PipelineResult r = run_pipeline(t, 40, 6, 30);

  // Demand-aware beats oblivious decisively on a skewed, bursty trace.
  EXPECT_LT(r.r_bma, r.oblivious);
  EXPECT_LT(r.bma, r.oblivious);
  EXPECT_LT(r.so_bma, r.oblivious);
  // R-BMA lands in the same quality band as BMA (paper: "almost the same
  // routing cost reduction"); allow 25% band at this reduced scale.
  EXPECT_LT(static_cast<double>(r.r_bma),
            1.25 * static_cast<double>(r.bma));
}

TEST(Integration, MicrosoftSoBmaWinsWithoutTemporalStructure) {
  // Fig 4c: on the i.i.d. Microsoft-style trace, the static offline
  // matching is clearly the best performer.
  Xoshiro256 rng(101);
  const trace::Trace t = trace::generate_microsoft_like(30, 120000, {}, rng);
  const PipelineResult r = run_pipeline(t, 30, 4, 30);
  EXPECT_LT(r.so_bma, r.r_bma);
  EXPECT_LT(r.so_bma, r.bma);
  EXPECT_LT(r.r_bma, r.oblivious);
}

TEST(Integration, LargerCacheSizeReducesRoutingCost) {
  // Figs 1a-4a: routing cost decreases in b.
  Xoshiro256 rng(102);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, 40, 50000, rng);
  const net::Topology topo = net::make_fat_tree(40);
  ExperimentConfig config;
  config.distances = &topo.distances;
  config.alpha = 30;
  config.checkpoints = 2;
  config.trials = 3;
  std::uint64_t prev = ~0ull;
  for (std::size_t b : {2ul, 6ul, 12ul}) {
    const auto results = run_experiment(
        config, t, {{.algorithm = "r_bma", .b = b}});
    const std::uint64_t cost = results[0].final().routing_cost;
    EXPECT_LT(cost, prev) << "b=" << b;
    prev = cost;
  }
}

TEST(Integration, WebTraceGivesSmallerGainsThanDatabase) {
  // §3.2: the web-service cluster's flatter structure yields smaller
  // reductions than the database cluster at equal b.
  Xoshiro256 r1(103), r2(104);
  const std::size_t n = 40, b = 6;
  const trace::Trace db = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, n, 50000, r1);
  const trace::Trace web = trace::generate_facebook_like(
      trace::FacebookCluster::kWebService, n, 50000, r2);

  const PipelineResult rdb = run_pipeline(db, n, b, 30);
  const PipelineResult rweb = run_pipeline(web, n, b, 30);
  const double red_db =
      1.0 - static_cast<double>(rdb.r_bma) / static_cast<double>(rdb.oblivious);
  const double red_web = 1.0 - static_cast<double>(rweb.r_bma) /
                                   static_cast<double>(rweb.oblivious);
  EXPECT_GT(red_db, red_web);
}

TEST(Integration, AllAlgorithmsKeepFeasibleMatchingsOnEveryWorkload) {
  Xoshiro256 rng(105);
  const std::size_t n = 30;
  const net::Topology topo = net::make_fat_tree(n);
  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = 3;
  inst.alpha = 20;

  const std::vector<trace::Trace> workloads = {
      trace::generate_facebook_like(trace::FacebookCluster::kHadoop, n, 20000,
                                    rng),
      trace::generate_microsoft_like(n, 20000, {}, rng),
      trace::generate_uniform(n, 20000, rng),
      trace::generate_round_robin_star(n, 20000, 5),
  };
  for (const trace::Trace& t : workloads) {
    for (const char* algo : {"r_bma", "bma", "greedy", "so_bma"}) {
      auto matcher = scenario::make_algorithm(algo, inst, &t, 3);
      for (const core::Request& r : t) matcher->serve(r);
      EXPECT_TRUE(matcher->matching().check_invariants())
          << algo << " on " << t.name();
    }
  }
}

}  // namespace
