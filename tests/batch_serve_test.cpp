// Batch-vs-scalar differential suite: the batched serve pipeline
// (OnlineBMatcher::serve_batch + chunked run_simulation) must produce cost
// ledgers bit-identical to the scalar serve() loop — for every registered
// algorithm, across workload shapes and the full b range, at every
// checkpoint.  This is the determinism contract that lets perf_gate treat
// the batch path as a pure layout/scheduling optimization.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "scenario/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/facebook_like.hpp"
#include "trace/generators.hpp"
#include "trace/microsoft_like.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using rdcn::testing::make_instance;

void expect_identical_checkpoints(const sim::RunResult& scalar,
                                  const sim::RunResult& batched,
                                  const std::string& context) {
  ASSERT_EQ(scalar.checkpoints.size(), batched.checkpoints.size()) << context;
  for (std::size_t i = 0; i < scalar.checkpoints.size(); ++i) {
    const sim::Checkpoint& s = scalar.checkpoints[i];
    const sim::Checkpoint& b = batched.checkpoints[i];
    EXPECT_EQ(s.requests, b.requests) << context << " cp " << i;
    EXPECT_EQ(s.routing_cost, b.routing_cost) << context << " cp " << i;
    EXPECT_EQ(s.reconfig_cost, b.reconfig_cost) << context << " cp " << i;
    EXPECT_EQ(s.total_cost, b.total_cost) << context << " cp " << i;
    EXPECT_EQ(s.direct_serves, b.direct_serves) << context << " cp " << i;
    EXPECT_EQ(s.edge_adds, b.edge_adds) << context << " cp " << i;
    EXPECT_EQ(s.edge_removals, b.edge_removals) << context << " cp " << i;
    EXPECT_EQ(s.matching_size, b.matching_size) << context << " cp " << i;
  }
}

std::vector<trace::Trace> make_traces() {
  // FB/MS cluster profiles plus two synthetic extremes (no structure /
  // adversarial churn).  Sizes chosen so chunk boundaries (kServeChunk =
  // 4096) fall mid-trace.
  std::vector<trace::Trace> traces;
  constexpr std::size_t kRacks = 32;
  constexpr std::size_t kRequests = 10'000;
  {
    Xoshiro256 rng(101);
    traces.push_back(trace::generate_facebook_like(
        trace::FacebookCluster::kDatabase, kRacks, kRequests, rng));
  }
  {
    Xoshiro256 rng(202);
    traces.push_back(
        trace::generate_microsoft_like(kRacks, kRequests, {}, rng));
  }
  {
    Xoshiro256 rng(303);
    traces.push_back(trace::generate_uniform(kRacks, kRequests, rng));
  }
  traces.push_back(trace::generate_round_robin_star(kRacks, kRequests, 6));
  return traces;
}

TEST(BatchServe, EveryAlgorithmBitIdenticalToScalarAcrossB) {
  const net::Topology topo = net::make_fat_tree(32);
  const std::vector<trace::Trace> traces = make_traces();
  const std::vector<std::string> algorithms =
      scenario::AlgorithmRegistry::instance().names();
  ASSERT_GE(algorithms.size(), 7u);  // the full built-in portfolio

  for (const trace::Trace& t : traces) {
    for (const std::string& algorithm : algorithms) {
      for (const std::size_t b : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}, std::size_t{64}}) {
        const core::Instance inst = make_instance(topo.distances, b, 30);
        const std::vector<std::uint64_t> grid =
            sim::checkpoint_grid(t.size(), 7);
        auto scalar_alg = scenario::make_algorithm(algorithm, inst, &t, 9);
        const sim::RunResult scalar =
            sim::run_simulation_scalar(*scalar_alg, t, grid);
        auto batched_alg = scenario::make_algorithm(algorithm, inst, &t, 9);
        const sim::RunResult batched =
            sim::run_simulation(*batched_alg, t, grid);
        expect_identical_checkpoints(
            scalar, batched,
            t.name() + "/" + algorithm + "/b=" + std::to_string(b));
      }
    }
  }
}

TEST(BatchServe, DirectServeBatchCallMatchesServeLoop) {
  // serve_batch on a raw span (no simulator) equals the serve() loop —
  // including the default base-class implementation used by algorithms
  // without an override (rotor).
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(7);
  const trace::Trace t = trace::generate_zipf_pairs(16, 5000, 1.1, rng);
  std::vector<core::Request> all(t.size());
  t.gather(0, t.size(), all.data());

  for (const char* algorithm : {"bma", "r_bma", "greedy", "oblivious",
                                "so_bma", "rotor"}) {
    const core::Instance inst = make_instance(topo.distances, 3, 25);
    auto a = scenario::make_algorithm(algorithm, inst, &t, 3);
    for (const core::Request& r : t) a->serve(r);
    auto b = scenario::make_algorithm(algorithm, inst, &t, 3);
    // Uneven batch sizes, including empty and single-request batches.
    std::size_t i = 0;
    for (const std::size_t n : {std::size_t{1}, std::size_t{0},
                                std::size_t{777}, std::size_t{1},
                                std::size_t{2048}}) {
      b->serve_batch(std::span<const core::Request>(all.data() + i, n));
      i += n;
    }
    b->serve_batch(
        std::span<const core::Request>(all.data() + i, all.size() - i));
    EXPECT_EQ(a->costs().routing_cost, b->costs().routing_cost) << algorithm;
    EXPECT_EQ(a->costs().reconfig_cost, b->costs().reconfig_cost)
        << algorithm;
    EXPECT_EQ(a->costs().requests, b->costs().requests) << algorithm;
    EXPECT_EQ(a->costs().direct_serves, b->costs().direct_serves)
        << algorithm;
    EXPECT_EQ(a->costs().edge_adds, b->costs().edge_adds) << algorithm;
    EXPECT_EQ(a->costs().edge_removals, b->costs().edge_removals)
        << algorithm;
    EXPECT_EQ(a->matching().size(), b->matching().size()) << algorithm;
  }
}

TEST(BatchServe, RotorSlotBoundariesStraddleBatchBoundaries) {
  // rotor's devirtualized override walks the batch in slot-sized runs;
  // slot lengths coprime to the batch splits below force runs to straddle
  // batch boundaries and batch boundaries to fall mid-slot (including the
  // degenerate slot=1 "install after every request" extreme).
  const net::Topology topo = net::make_fat_tree(24);
  Xoshiro256 rng(31);
  const trace::Trace t = trace::generate_zipf_pairs(24, 11'000, 1.2, rng);
  std::vector<core::Request> all(t.size());
  t.gather(0, t.size(), all.data());
  for (const char* spec : {"rotor:slot=1", "rotor:slot=97",
                           "rotor:slot=100000", "rotor:slot=97,staggered=false"}) {
    const core::Instance inst = make_instance(topo.distances, 5, 30);
    auto scalar = scenario::make_algorithm(spec, inst, &t, 3);
    for (const core::Request& r : t) scalar->serve(r);
    auto batched = scenario::make_algorithm(spec, inst, &t, 3);
    std::size_t i = 0;
    for (const std::size_t n :
         {std::size_t{96}, std::size_t{1}, std::size_t{4096},
          std::size_t{97}, std::size_t{3000}}) {
      batched->serve_batch(
          std::span<const core::Request>(all.data() + i, n));
      i += n;
    }
    batched->serve_batch(
        std::span<const core::Request>(all.data() + i, all.size() - i));
    EXPECT_EQ(scalar->costs().routing_cost, batched->costs().routing_cost)
        << spec;
    EXPECT_EQ(scalar->costs().direct_serves, batched->costs().direct_serves)
        << spec;
    EXPECT_EQ(scalar->costs().prescheduled_ops,
              batched->costs().prescheduled_ops)
        << spec;
    EXPECT_EQ(scalar->matching().size(), batched->matching().size()) << spec;
  }
}

TEST(BatchServe, OfflineDynamicWindowBoundariesStraddleBatchBoundaries) {
  // Same shape for offline_dynamic: window lengths coprime to the serve
  // chunking so plan switches land mid-batch and batches span epochs.
  const net::Topology topo = net::make_fat_tree(24);
  Xoshiro256 rng(41);
  const trace::Trace t = trace::generate_flow_pool(24, 11'000, {}, rng);
  for (const char* spec :
       {"offline_dynamic:window=1", "offline_dynamic:window=113",
        "offline_dynamic:window=4096", "offline_dynamic:window=100000"}) {
    const core::Instance inst = make_instance(topo.distances, 4, 30);
    const std::vector<std::uint64_t> grid = sim::checkpoint_grid(t.size(), 5);
    auto scalar_alg = scenario::make_algorithm(spec, inst, &t, 5);
    const sim::RunResult scalar =
        sim::run_simulation_scalar(*scalar_alg, t, grid);
    auto batched_alg = scenario::make_algorithm(spec, inst, &t, 5);
    const sim::RunResult batched = sim::run_simulation(*batched_alg, t, grid);
    expect_identical_checkpoints(scalar, batched, spec);
  }
}

TEST(BatchServe, ResetAfterBatchedRunReplaysIdentically) {
  // reset() must restore the exact initial state after a batched run, so
  // perf_gate's repeated-measurement loop (run, reset, run) is sound.
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(13);
  const trace::Trace t = trace::generate_hotspot(16, 9000, 0.25, 0.7, rng);
  const core::Instance inst = make_instance(topo.distances, 4, 40);
  for (const char* algorithm : {"bma", "r_bma", "so_bma"}) {
    auto alg = scenario::make_algorithm(algorithm, inst, &t, 21);
    const sim::RunResult first = sim::run_to_completion(*alg, t);
    alg->reset();
    const sim::RunResult second = sim::run_to_completion(*alg, t);
    expect_identical_checkpoints(first, second, algorithm);
  }
}

}  // namespace
