// Randomized equivalence suite for the hot-kernel library
// (common/simd.hpp): every dispatched kernel must match its scalar
// reference bit-for-bit on fuzzed inputs — ties on the primary key, full
// (primary, secondary) ties, duplicates, empty and short rows included —
// under BOTH dispatch modes (detected ISA and forced scalar).  This is
// the contract that lets the serve pipeline treat kernel dispatch as
// invisible: ledgers cannot depend on the selected instruction set.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace {

using namespace rdcn;

/// Runs `body` under the ambient dispatch mode, then with dispatch forced
/// scalar.  When RDCN_FORCE_SCALAR_KERNELS is set in the environment (the
/// escape hatch for machines whose CPUID over-promises) BOTH passes stay
/// on the scalar table — the equivalence then holds trivially and no
/// vector kernel executes, while the forced-scalar ctest variant still
/// exercises every call site.
template <typename Body>
void for_both_dispatch_modes(const Body& body) {
  const bool ambient = simd::force_scalar();
  {
    SCOPED_TRACE(std::string("dispatch=") +
                 simd::isa_name(simd::active_isa()));
    body();
  }
  simd::set_force_scalar(true);
  {
    SCOPED_TRACE("dispatch=forced-scalar");
    body();
  }
  simd::set_force_scalar(ambient);
}

/// Row lengths that cover the empty/short/unaligned/long spectrum: all
/// vector-width remainders at both ends plus the paper's b range and the
/// microbench sizes.
const std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,
                                12, 15, 16, 17, 18, 31, 33, 64, 65, 255};

TEST(SimdKernels, DispatchModesAreReported) {
  EXPECT_NE(simd::isa_name(simd::active_isa()), nullptr);
  EXPECT_NE(simd::isa_name(simd::detected_isa()), nullptr);
  const bool ambient = simd::force_scalar();
  simd::set_force_scalar(true);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_TRUE(simd::force_scalar());
  simd::set_force_scalar(ambient);
}

TEST(SimdKernels, ArgminPairMatchesScalarOnFuzzedRows) {
  Xoshiro256 rng(1001);
  for_both_dispatch_modes([&] {
    for (const std::size_t n : kLengths) {
      for (int round = 0; round < 50; ++round) {
        std::vector<std::uint64_t> primary(n), secondary(n);
        // Heavy tie pressure: primary from a tiny range (the usage counter
        // shape — mostly 0 with small bumps), secondary from a small range
        // too so full (primary, secondary) duplicates occur and the
        // lowest-index contract is actually exercised.
        const std::uint64_t primary_range = 1 + rng.next_below(4);
        const std::uint64_t secondary_range = 1 + rng.next_below(8);
        for (std::size_t i = 0; i < n; ++i) {
          primary[i] = rng.next_below(primary_range);
          secondary[i] = rng.next_below(secondary_range);
        }
        const std::size_t want =
            simd::scalar::argmin_u64_pair(primary.data(), secondary.data(), n);
        const std::size_t got =
            simd::argmin_u64_pair(primary.data(), secondary.data(), n);
        ASSERT_EQ(got, want) << "n=" << n << " round=" << round;
        if (n == 0) EXPECT_EQ(got, simd::kNpos);
      }
      // Large distinct values near the 2^63 contract boundary.
      std::vector<std::uint64_t> primary(n), secondary(n);
      for (std::size_t i = 0; i < n; ++i) {
        primary[i] = (std::uint64_t{1} << 62) + rng.next_below(1u << 20);
        secondary[i] = rng.next() >> 1;  // < 2^63
      }
      EXPECT_EQ(
          simd::argmin_u64_pair(primary.data(), secondary.data(), n),
          simd::scalar::argmin_u64_pair(primary.data(), secondary.data(), n))
          << "n=" << n;
    }
  });
}

TEST(SimdKernels, ArgminPairTieOnUsageBreaksByAgeThenIndex) {
  // Deterministic spot checks of the lexicographic contract.
  const std::uint64_t usage[] = {3, 1, 1, 1, 2};
  const std::uint64_t age[] = {0, 7, 5, 5, 1};
  for_both_dispatch_modes([&] {
    // usage ties at 1 → age decides (5 < 7) → full tie at (1,5) → index 2.
    EXPECT_EQ(simd::argmin_u64_pair(usage, age, 5), 2u);
    EXPECT_EQ(simd::argmin_u64_pair(usage, age, 2), 1u);
    EXPECT_EQ(simd::argmin_u64_pair(usage, age, 1), 0u);
    EXPECT_EQ(simd::argmin_u64_pair(usage, age, 0), simd::kNpos);
  });
}

TEST(SimdKernels, FindU64MatchesScalarIncludingDuplicates) {
  Xoshiro256 rng(2002);
  for_both_dispatch_modes([&] {
    for (const std::size_t n : kLengths) {
      for (int round = 0; round < 50; ++round) {
        std::vector<std::uint64_t> keys(n);
        for (std::size_t i = 0; i < n; ++i)
          keys[i] = rng.next_below(16);  // dense → duplicates guaranteed
        const std::uint64_t needle = rng.next_below(20);  // may be absent
        ASSERT_EQ(simd::find_u64(keys.data(), n, needle),
                  simd::scalar::find_u64(keys.data(), n, needle))
            << "n=" << n << " round=" << round;
      }
    }
  });
}

TEST(SimdKernels, FindU32MatchesScalarIncludingDuplicates) {
  Xoshiro256 rng(3003);
  for_both_dispatch_modes([&] {
    for (const std::size_t n : kLengths) {
      for (int round = 0; round < 50; ++round) {
        std::vector<std::uint32_t> keys(n);
        for (std::size_t i = 0; i < n; ++i)
          keys[i] = static_cast<std::uint32_t>(rng.next_below(16));
        const std::uint32_t needle =
            static_cast<std::uint32_t>(rng.next_below(20));
        ASSERT_EQ(simd::find_u32(keys.data(), n, needle),
                  simd::scalar::find_u32(keys.data(), n, needle))
            << "n=" << n << " round=" << round;
      }
    }
  });
}

TEST(SimdKernels, GatherKernelsMatchScalarOnFuzzedIndices) {
  Xoshiro256 rng(4004);
  // Base table sized like a 100-rack distance matrix, over-allocated by
  // one element per the gather contract (32-bit loads read 2 bytes past
  // the addressed u16).
  constexpr std::size_t kTable = 100 * 100;
  std::vector<std::uint16_t> base(kTable + 1);
  for (std::size_t i = 0; i < kTable; ++i)
    base[i] = static_cast<std::uint16_t>(rng.next());
  for_both_dispatch_modes([&] {
    for (const std::size_t n : kLengths) {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::uint32_t> idx(n);
        for (std::size_t i = 0; i < n; ++i) {
          // Bias toward the table's end so the padding path is hit.
          idx[i] = static_cast<std::uint32_t>(
              round % 2 == 0 ? rng.next_below(kTable)
                             : kTable - 1 - rng.next_below(16));
        }
        ASSERT_EQ(simd::gather_sum_u16(base.data(), idx.data(), n),
                  simd::scalar::gather_sum_u16(base.data(), idx.data(), n))
            << "n=" << n << " round=" << round;
        std::vector<std::uint16_t> got(n + 1, 0xABCD), want(n + 1, 0xABCD);
        simd::gather_u16(base.data(), idx.data(), n, got.data());
        simd::scalar::gather_u16(base.data(), idx.data(), n, want.data());
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
        EXPECT_EQ(got[n], 0xABCD);  // no overwrite past n
      }
    }
  });
}

}  // namespace
