// Differential pass against the exact offline optimum: on tiny instances
// (<= 6 racks, where core/opt_small.hpp enumerates the full matching state
// space) any online algorithm's total cost must be >= OPT.  Runs both
// exhaustively (every trace over a small pair alphabet) and on randomized
// instances sweeping topology, b, and α.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/bma.hpp"
#include "scenario/registry.hpp"
#include "core/opt_small.hpp"
#include "core/r_bma.hpp"
#include "net/distance_matrix.hpp"
#include "net/topology.hpp"
#include "sim/parallel_runner.hpp"
#include "trace/trace.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

std::uint64_t online_cost(const std::string& name, const Instance& inst,
                          const trace::Trace& t, std::uint64_t seed) {
  auto alg = scenario::make_algorithm(name, inst, &t, seed);
  for (const Request& r : t) alg->serve(r);
  return alg->costs().total_cost();
}

void expect_dominates_opt(const Instance& inst, const trace::Trace& t,
                          const std::string& context) {
  const std::uint64_t opt = optimal_dynamic_cost(inst, t);
  EXPECT_GE(online_cost("bma", inst, t, 1), opt) << "bma  @ " << context;
  // R-BMA is randomized: the bound is per-run, so check several seeds.
  for (std::uint64_t seed : {1, 2, 3}) {
    EXPECT_GE(online_cost("r_bma", inst, t, seed), opt)
        << "r_bma(seed=" << seed << ") @ " << context;
  }
}

TEST(DifferentialOpt, ExhaustiveTracesThreeRacks) {
  // 3 racks => 3 pairs; every trace of length 5 over the pair alphabet
  // (3^5 = 243 traces), on a uniform metric, b = 1.
  const auto d = net::DistanceMatrix::uniform(3, 3);
  const Instance inst = make_instance(d, 1, 4);
  const Rack us[3] = {0, 0, 1};
  const Rack vs[3] = {1, 2, 2};
  const int kLen = 5;
  std::atomic<int> total{0};
  // Each trace is an independent instance, so the sweep rides the
  // persistent pool (gtest assertions are thread-safe on pthreads).
  sim::parallel_for(243, [&](std::size_t code) {
    trace::Trace t(3, "exhaustive3");
    auto c = static_cast<int>(code);
    for (int i = 0; i < kLen; ++i) {
      t.push_back(Request::make(us[c % 3], vs[c % 3]));
      c /= 3;
    }
    expect_dominates_opt(inst, t, "trace#" + std::to_string(code));
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 243);
}

TEST(DifferentialOpt, ExhaustiveTracesFourRacksLineMetric) {
  // 4 racks on a line (non-uniform distances), every trace of length 4
  // over the 6 pairs (6^4 = 1296 traces), b = 1, α = 3.
  const net::Topology topo = net::make_line(4);
  const Instance inst = make_instance(topo.distances, 1, 3);
  std::vector<std::pair<Rack, Rack>> pairs;
  for (Rack u = 0; u < 4; ++u) {
    for (Rack v = u + 1; v < 4; ++v) pairs.emplace_back(u, v);
  }
  ASSERT_EQ(pairs.size(), 6u);
  const int kLen = 4;
  sim::parallel_for(1296, [&](std::size_t code) {
    trace::Trace t(4, "exhaustive4");
    auto c = static_cast<int>(code);
    for (int i = 0; i < kLen; ++i) {
      t.push_back(Request::make(pairs[c % 6].first, pairs[c % 6].second));
      c /= 6;
    }
    expect_dominates_opt(inst, t, "trace#" + std::to_string(code));
  });
}

TEST(DifferentialOpt, RandomizedInstancesUpToSixRacks) {
  // Sweep n ∈ {4,5,6}, b ∈ {1,2}, α ∈ {0,1,5,20} on random traces over a
  // ring metric (distinct distances without blowing up OPT's state space).
  Xoshiro256 rng(71);
  for (std::size_t n : {4u, 5u, 6u}) {
    const net::Topology topo = net::make_ring(n);
    for (std::size_t b : {1u, 2u}) {
      for (std::uint64_t alpha : {0u, 1u, 5u, 20u}) {
        const Instance inst = make_instance(topo.distances, b, alpha);
        for (int rep = 0; rep < 3; ++rep) {
          trace::Trace t(n, "rand");
          const std::size_t len = 20 + rng.next_below(30);
          for (std::size_t i = 0; i < len; ++i) {
            const Rack u = static_cast<Rack>(rng.next_below(n));
            Rack v = static_cast<Rack>(rng.next_below(n - 1));
            if (v >= u) ++v;
            t.push_back(Request::make(u, v));
          }
          expect_dominates_opt(
              inst, t,
              "n=" + std::to_string(n) + " b=" + std::to_string(b) +
                  " alpha=" + std::to_string(alpha));
        }
      }
    }
  }
}

TEST(DifferentialOpt, AdversarialStarChurn) {
  // The Lemma 1 lower-bound shape: round-robin over b+1 pairs at a common
  // rack forces churn; even there the online algorithms stay above OPT.
  const auto d = net::DistanceMatrix::uniform(4, 2);
  const Instance inst = make_instance(d, 1, 6);
  trace::Trace t(4, "star-churn");
  for (int round = 0; round < 15; ++round) {
    t.push_back(Request::make(0, 1));
    t.push_back(Request::make(0, 2));
  }
  expect_dominates_opt(inst, t, "star-churn");
}

TEST(DifferentialOpt, GreedyAndObliviousAlsoDominated) {
  // Sanity net for the remaining demand-aware baselines.
  const net::Topology topo = net::make_ring(5);
  const Instance inst = make_instance(topo.distances, 2, 3);
  Xoshiro256 rng(73);
  for (int rep = 0; rep < 5; ++rep) {
    trace::Trace t(5, "baselines");
    for (int i = 0; i < 30; ++i) {
      const Rack u = static_cast<Rack>(rng.next_below(5));
      Rack v = static_cast<Rack>(rng.next_below(4));
      if (v >= u) ++v;
      t.push_back(Request::make(u, v));
    }
    const std::uint64_t opt = optimal_dynamic_cost(inst, t);
    EXPECT_GE(online_cost("greedy", inst, t, 1), opt);
    EXPECT_GE(online_cost("oblivious", inst, t, 1), opt);
  }
}

}  // namespace
