// Tests for the scenario runner (scenario/scenario.hpp): ScenarioSpec
// parse/print goldens, end-to-end run_scenario, b-independence handling,
// and the run_matrix cross product.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "scenario/scenario.hpp"
#include "sim/report.hpp"

namespace {

using namespace rdcn;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;

// The canonical one-line form is a public contract (drivers echo it, logs
// and sweep tooling parse it) — pin it exactly.
TEST(ScenarioSpec, GoldenCanonicalForm) {
  ScenarioSpec spec;
  spec.topology = Spec::parse("torus:rows=5,cols=10");
  spec.workload = Spec::parse("flow_pool:pairs=2000,skew=1.2");
  spec.algorithms = {Spec::parse("r_bma:engine=lru"), Spec::parse("bma")};
  spec.cache_sizes = {6, 12};
  spec.racks = 50;
  spec.requests = 30'000;
  spec.alpha = 60;
  spec.trials = 3;
  spec.checkpoints = 4;
  spec.seed = 7;
  const std::string golden =
      "topology=torus:rows=5,cols=10;"
      "workload=flow_pool:pairs=2000,skew=1.2;"
      "algorithms=r_bma:engine=lru,bma;"
      "b=6,12;racks=50;requests=30000;a=0;alpha=60;trials=3;checkpoints=4;"
      "seed=7";
  EXPECT_EQ(spec.to_string(), golden);
}

TEST(ScenarioSpec, ParseRoundTripsThroughToString) {
  const std::string text =
      "topology=torus:rows=5,cols=10;"
      "workload=flow_pool:pairs=2000,skew=1.2;"
      "algorithms=r_bma:engine=lru,bma;"
      "b=6,12;racks=50;requests=30000;a=0;alpha=60;trials=3;checkpoints=4;"
      "seed=7";
  const ScenarioSpec spec = ScenarioSpec::parse(text);
  EXPECT_EQ(spec.to_string(), text);
  EXPECT_EQ(spec.topology.name, "torus");
  EXPECT_EQ(spec.workload.params.get<double>("skew"), 1.2);
  ASSERT_EQ(spec.algorithms.size(), 2u);
  EXPECT_EQ(spec.algorithms[0].params.get<std::string>("engine"), "lru");
  ASSERT_EQ(spec.cache_sizes.size(), 2u);
  EXPECT_EQ(spec.cache_sizes[1], 12u);
}

TEST(ScenarioSpec, PinnedThreadCountRoundTrips) {
  // threads=0 (hardware concurrency) is omitted from the canonical form;
  // an explicitly pinned count must survive the round-trip.
  const ScenarioSpec spec = ScenarioSpec::parse("threads=4");
  EXPECT_NE(spec.to_string().find(";threads=4"), std::string::npos);
  EXPECT_EQ(ScenarioSpec::parse(spec.to_string()).threads, 4u);
}

TEST(ScenarioSpec, CanonicalStringIsParamOrderInsensitive) {
  // The serving cache keys on canonical_string(): permuting any
  // component's parameters must not change it.
  const ScenarioSpec a = ScenarioSpec::parse(
      "topology=torus:rows=5,cols=10;workload=flow_pool:pairs=200,skew=1.2;"
      "algorithms=r_bma:engine=lru,bma;b=6,12;racks=50;requests=1000");
  const ScenarioSpec b = ScenarioSpec::parse(
      "topology=torus:cols=10,rows=5;workload=flow_pool:skew=1.2,pairs=200;"
      "algorithms=r_bma:engine=lru,bma;b=6,12;racks=50;requests=1000");
  EXPECT_EQ(a.canonical_string(), b.canonical_string());
  // Canonical text is itself parseable and canonicalizes to itself.
  EXPECT_EQ(ScenarioSpec::parse(a.canonical_string()).canonical_string(),
            a.canonical_string());
}

TEST(ScenarioSpec, CanonicalStringDropsThreadsButKeepsOrderOfLists) {
  // threads is an execution detail, not experiment identity; algorithm
  // and b order determine result column order, so they ARE identity.
  const ScenarioSpec pinned = ScenarioSpec::parse("racks=8;threads=4");
  const ScenarioSpec free_threads = ScenarioSpec::parse("racks=8");
  EXPECT_EQ(pinned.canonical_string(), free_threads.canonical_string());
  EXPECT_EQ(pinned.canonical_string().find("threads"), std::string::npos);

  const ScenarioSpec ab =
      ScenarioSpec::parse("algorithms=r_bma,bma;b=6,12;racks=8");
  const ScenarioSpec ba =
      ScenarioSpec::parse("algorithms=bma,r_bma;b=12,6;racks=8");
  EXPECT_NE(ab.canonical_string(), ba.canonical_string());
}

TEST(ScenarioSpec, DefaultsAreAppliedOnResolve) {
  const ScenarioSpec spec = ScenarioSpec::parse("racks=20;requests=1000");
  const ScenarioSpec r = spec.resolved();
  EXPECT_EQ(r.topology.name, "fat_tree");
  EXPECT_EQ(r.workload.name, "facebook_db");
  ASSERT_EQ(r.algorithms.size(), 3u);  // r_bma, bma, oblivious
  ASSERT_EQ(r.cache_sizes.size(), 1u);
  EXPECT_EQ(r.cache_sizes[0], 12u);
}

TEST(ScenarioSpec, MalformedFieldsThrow) {
  EXPECT_THROW(ScenarioSpec::parse("racks"), SpecError);        // no '='
  EXPECT_THROW(ScenarioSpec::parse("bogus=1"), SpecError);      // unknown key
  EXPECT_THROW(ScenarioSpec::parse("racks=ten"), SpecError);    // bad value
  EXPECT_THROW(ScenarioSpec::parse("b=2;racks=8;b=4"),          // typo'd dup
               SpecError);
}

TEST(RunScenario, EndToEndProducesOneRunPerAlgorithmTimesB) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "topology=leaf_spine:spines=4;workload=zipf:skew=1.1;"
      "algorithms=r_bma:engine=lru,bma;b=2,4;racks=12;requests=4000;"
      "alpha=8;trials=2;checkpoints=4;seed=5");
  const ScenarioResult result = scenario::run_scenario(spec);
  EXPECT_EQ(result.topology.num_racks(), 12u);
  EXPECT_EQ(result.workload.size(), 4000u);
  ASSERT_EQ(result.runs.size(), 4u);  // 2 algorithms × 2 cache sizes
  EXPECT_EQ(result.runs[0].algorithm, "r_bma:engine=lru(b=2)");
  EXPECT_EQ(result.runs[1].algorithm, "r_bma:engine=lru(b=4)");
  EXPECT_EQ(result.runs[2].algorithm, "bma(b=2)");
  EXPECT_EQ(result.runs[3].algorithm, "bma(b=4)");
  for (const sim::RunResult& r : result.runs) {
    ASSERT_EQ(r.checkpoints.size(), 4u);
    EXPECT_GT(r.final().routing_cost, 0u);
  }
}

TEST(RunScenario, IsSeedReproducible) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "topology=expander:degree=3;workload=flow_pool:pairs=50;"
      "algorithms=r_bma;b=2;racks=10;requests=2000;trials=2;checkpoints=2;"
      "seed=9");
  const ScenarioResult a = scenario::run_scenario(spec);
  const ScenarioResult b = scenario::run_scenario(spec);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].final().routing_cost,
              b.runs[i].final().routing_cost);
    EXPECT_EQ(a.runs[i].final().reconfig_cost,
              b.runs[i].final().reconfig_cost);
  }
}

TEST(RunScenario, StreamedReplayMatchesMaterializedLedgers) {
  // run_scenario_streamed pulls the workload through the registry's
  // stream twins; since those are bit-identical to their generators, every
  // checkpoint of every run must equal the materialized entry point's.
  const ScenarioSpec spec = ScenarioSpec::parse(
      "topology=leaf_spine:spines=4;workload=flow_pool:pairs=60,skew=1.2;"
      "algorithms=r_bma:engine=lru,bma,rotor;b=2,4;racks=12;requests=5000;"
      "alpha=10;trials=2;checkpoints=5;seed=11");
  const ScenarioResult materialized = scenario::run_scenario(spec);
  const ScenarioResult streamed = scenario::run_scenario_streamed(spec);
  EXPECT_EQ(streamed.workload.name(), materialized.workload.name());
  ASSERT_EQ(streamed.runs.size(), materialized.runs.size());
  for (std::size_t i = 0; i < materialized.runs.size(); ++i) {
    const sim::RunResult& m = materialized.runs[i];
    const sim::RunResult& s = streamed.runs[i];
    EXPECT_EQ(s.algorithm, m.algorithm);
    ASSERT_EQ(s.checkpoints.size(), m.checkpoints.size()) << m.algorithm;
    for (std::size_t c = 0; c < m.checkpoints.size(); ++c) {
      EXPECT_EQ(s.checkpoints[c].requests, m.checkpoints[c].requests);
      EXPECT_EQ(s.checkpoints[c].routing_cost, m.checkpoints[c].routing_cost)
          << m.algorithm << " cp " << c;
      EXPECT_EQ(s.checkpoints[c].reconfig_cost,
                m.checkpoints[c].reconfig_cost)
          << m.algorithm << " cp " << c;
      EXPECT_EQ(s.checkpoints[c].matching_size,
                m.checkpoints[c].matching_size)
          << m.algorithm << " cp " << c;
    }
  }
}

TEST(RunScenario, StreamedRejectsOfflineAlgorithmsAndCsv) {
  // Offline comparators need the full trace up front; csv has no stream
  // twin.  Both must surface as SpecError, not aborts.
  ScenarioSpec offline = ScenarioSpec::parse(
      "workload=uniform;algorithms=so_bma;b=2;racks=8;requests=500;"
      "checkpoints=2;seed=3");
  EXPECT_THROW((void)scenario::run_scenario_streamed(offline), SpecError);
  ScenarioSpec csv = ScenarioSpec::parse(
      "workload=csv:path=/nonexistent.csv;algorithms=bma;b=2;racks=8;"
      "requests=500;checkpoints=2;seed=3");
  EXPECT_THROW((void)scenario::run_scenario_streamed(csv), SpecError);
}

TEST(RunScenario, BIndependentAlgorithmsRunOncePerSweep) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "workload=uniform;algorithms=bma,oblivious;b=2,4,8;racks=8;"
      "requests=1000;checkpoints=2;seed=3");
  const ScenarioResult result = scenario::run_scenario(spec);
  // bma contributes 3 columns, oblivious exactly one.
  ASSERT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.runs.back().algorithm, "oblivious(b=2)");
}

TEST(RunScenario, GeneratedWorkloadClampsToTopologyRacks) {
  // A 2^3=8-rack hypercube cannot host a 12-rack workload; generated
  // workloads clamp to what the network provides instead of erroring, so
  // explicit topology dimensions always yield a runnable scenario.
  const ScenarioSpec spec = ScenarioSpec::parse(
      "topology=hypercube:dim=3;workload=uniform;algorithms=bma;racks=12;"
      "requests=100;checkpoints=2");
  const ScenarioResult result = scenario::run_scenario(spec);
  EXPECT_EQ(result.topology.num_racks(), 8u);
  EXPECT_EQ(result.workload.num_racks(), 8u);
}

TEST(RunScenario, OversizedImportedWorkloadIsRejected) {
  // CSV imports carry their own rack universe and cannot be clamped.
  const std::string path = ::testing::TempDir() + "rdcn_scenario_test.csv";
  {
    std::ofstream out(path);
    out << "# racks=12 name=too_big\n0,11\n1,10\n";
  }
  ScenarioSpec spec = ScenarioSpec::parse(
      "topology=hypercube:dim=3;algorithms=bma;racks=12;requests=100");
  spec.workload.name = "csv";
  spec.workload.params.set("path", path);
  EXPECT_THROW(scenario::run_scenario(spec), SpecError);
}

TEST(RunMatrix, CrossesTopologiesWithWorkloads) {
  // Even rack count (permutation requires it); torus needs >= 3x3.
  ScenarioSpec base = ScenarioSpec::parse(
      "algorithms=bma;b=2;racks=12;requests=800;checkpoints=2;seed=2");
  const std::vector<Spec> topologies = {Spec::parse("ring"),
                                        Spec::parse("torus:rows=3,cols=4")};
  const std::vector<Spec> workloads = {Spec::parse("uniform"),
                                       Spec::parse("zipf:skew=1.3"),
                                       Spec::parse("permutation")};
  const auto results = scenario::run_matrix(base, topologies, workloads);
  ASSERT_EQ(results.size(), 6u);  // 2 × 3, topology-major
  EXPECT_EQ(results[0].spec.topology.name, "ring");
  EXPECT_EQ(results[0].spec.workload.name, "uniform");
  EXPECT_EQ(results[4].spec.topology.name, "torus");
  EXPECT_EQ(results[4].spec.workload.name, "zipf");
  for (const ScenarioResult& r : results)
    EXPECT_EQ(r.runs.size(), 1u);
}

TEST(RunMatrix, ParallelExecutionIsThreadCountInvariant) {
  // The matrix shards cells across the thread pool; per-cell seeds derive
  // from the spec alone, so the emitted CSV must be byte-identical for any
  // thread count (wall_seconds is the only run field allowed to differ, and
  // the cost CSVs don't contain it).
  ScenarioSpec base = ScenarioSpec::parse(
      "algorithms=r_bma,bma;b=3;racks=12;requests=2000;trials=2;"
      "checkpoints=3;seed=11");
  const std::vector<Spec> topologies = {Spec::parse("ring"),
                                        Spec::parse("leaf_spine:spines=3")};
  const std::vector<Spec> workloads = {Spec::parse("uniform"),
                                       Spec::parse("zipf:skew=1.2")};

  const auto csv_of = [](const std::vector<ScenarioResult>& results) {
    std::ostringstream out;
    for (const ScenarioResult& r : results) {
      // Identify the cell by its experiment axes only — `threads` is an
      // execution detail and the one spec field allowed to differ.
      out << r.spec.topology.to_string() << "|"
          << r.spec.workload.to_string() << "\n";
      sim::write_csv(out, r.runs, sim::Metric::kTotalCost);
      sim::write_csv(out, r.runs, sim::Metric::kRoutingCost);
    }
    return out.str();
  };

  ScenarioSpec serial = base;
  serial.threads = 1;
  const std::string csv1 = csv_of(scenario::run_matrix(serial, topologies,
                                                       workloads));
  ScenarioSpec parallel = base;
  parallel.threads = 4;
  const std::string csv4 = csv_of(scenario::run_matrix(parallel, topologies,
                                                       workloads));
  EXPECT_EQ(csv1, csv4);
  EXPECT_GT(csv1.size(), 100u);  // sanity: non-empty output
}

TEST(RunMatrix, WorkerErrorsPropagateAsSpecError) {
  // A failure inside a sharded cell (here: a workload that needs more racks
  // than the topology provides) must surface as SpecError on the calling
  // thread, not terminate the pool.
  ScenarioSpec base = ScenarioSpec::parse(
      "algorithms=bma;b=2;racks=12;requests=500;checkpoints=2;seed=3");
  const std::vector<Spec> workloads = {
      Spec::parse("csv:path=/nonexistent/trace.csv")};
  EXPECT_THROW(scenario::run_matrix(base, {}, workloads), SpecError);
}

}  // namespace
