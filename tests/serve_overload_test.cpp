// Multi-tenant overload control: the admission-control primitives
// (token buckets, quota tables, cost estimation, deficit round-robin,
// brownout hysteresis, drain-derived retry hints) as pure units, the
// protocol extensions (HELLO / RESET / client= / priority= / REJECT
// reasons) at the parse layer, and the daemon end-to-end — per-client
// quotas refusing with honest hints, two clients sharing one executor
// fairly, priority-aware shedding under brownout, the stuck-run
// watchdog turning a wedged executor into DONE status=stalled with the
// daemon surviving, and RESET clearing quarantine streaks live.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "scenario/scenario.hpp"
#include "serve/admission.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::serve;

constexpr std::uint64_t kSecond = 1'000'000'000ull;

/// Finishes in tens of milliseconds; seed varies to make distinct specs.
std::string tiny_spec(int seed) {
  return "workload=zipf:skew=1.1;algorithms=bma;b=2;racks=8;requests=4000;"
         "trials=1;checkpoints=2;seed=" +
         std::to_string(seed);
}

/// Long enough to still be running while a test pokes at the queue
/// behind it.
constexpr const char* kLongSpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=4;racks=16;requests=1600000;"
    "trials=1;checkpoints=16;seed=3";

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/rdcn_overload_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

ServeOptions small_options(const std::string& tag) {
  ServeOptions options;
  options.socket_path = unique_socket_path(tag);
  options.executors = 1;
  options.threads = 1;
  return options;
}

struct DaemonFixture {
  explicit DaemonFixture(ServeOptions options) : daemon(std::move(options)) {
    daemon.start();
    client.connect(daemon.options().socket_path);
  }
  ~DaemonFixture() {
    client.disconnect();
    daemon.stop();
  }
  Daemon daemon;
  Client client;
};

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Unit: client names.

TEST(ClientNameTest, ValidatesCharsetAndLength) {
  EXPECT_TRUE(is_valid_client_name("alice"));
  EXPECT_TRUE(is_valid_client_name("team-7.batch_2"));
  EXPECT_TRUE(is_valid_client_name(std::string(64, 'a')));
  EXPECT_FALSE(is_valid_client_name(""));
  EXPECT_FALSE(is_valid_client_name(std::string(65, 'a')));
  EXPECT_FALSE(is_valid_client_name("has space"));
  EXPECT_FALSE(is_valid_client_name("new\nline"));
  EXPECT_FALSE(is_valid_client_name("sla$h"));
}

// ---------------------------------------------------------------------------
// Unit: TokenBucket.

TEST(TokenBucketTest, UnlimitedWhenRateNonPositive) {
  TokenBucket bucket(0, 0);
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0));
}

TEST(TokenBucketTest, BurstThenHonestRetryHint) {
  // now=0 is the bucket's "never seen" sentinel; a real monotonic clock
  // starts elsewhere, so the tests do too.
  const std::uint64_t t0 = kSecond;
  TokenBucket bucket(1.0, 2.0);  // 1 token/s, depth 2, starts full
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_TRUE(bucket.try_take(t0));
  std::uint32_t retry = 0;
  EXPECT_FALSE(bucket.try_take(t0, &retry));
  // Empty at rate 1/s: a full token exists in ~1 s, not "soon" and not
  // "never".
  EXPECT_GE(retry, 900u);
  EXPECT_LE(retry, 1100u);
  // ...and the hint is honest: exactly that much later, a take succeeds.
  EXPECT_TRUE(bucket.try_take(t0 + std::uint64_t(retry) * 1'000'000 +
                              kSecond / 100));
}

TEST(TokenBucketTest, RefillsOverTimeAndCapsAtBurst) {
  const std::uint64_t t0 = kSecond;
  TokenBucket bucket(2.0, 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_FALSE(bucket.try_take(t0));
  EXPECT_NEAR(bucket.tokens_at(t0 + kSecond), 2.0, 1e-6);
  // Ten idle seconds refill to the cap, not to 20 banked tokens.
  EXPECT_NEAR(bucket.tokens_at(t0 + 10 * kSecond), 4.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Unit: QuotaTable.

TEST(QuotaTableTest, ParsesDefaultsOverridesAndComments) {
  const QuotaSpec seed{1.0, 0.0, 2};
  const QuotaTable table = QuotaTable::parse_text(
      "# fleet quotas\n"
      "default rps=2 burst=4 concurrent=8\n"
      "\n"
      "alice rps=100 concurrent=32\n"
      "bob   burst=1\n",
      seed);
  EXPECT_DOUBLE_EQ(table.lookup("nobody").rps, 2.0);
  EXPECT_DOUBLE_EQ(table.lookup("nobody").burst, 4.0);
  EXPECT_EQ(table.lookup("nobody").concurrent, 8u);
  EXPECT_DOUBLE_EQ(table.lookup("alice").rps, 100.0);
  EXPECT_EQ(table.lookup("alice").concurrent, 32u);
  // bob's row starts from the seed defaults and overrides burst only.
  EXPECT_DOUBLE_EQ(table.lookup("bob").burst, 1.0);
}

TEST(QuotaTableTest, RejectsMalformedLinesWithLineNumber) {
  try {
    QuotaTable::parse_text("default rps=2\nbad row=wat\n", QuotaSpec{});
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(QuotaTable::parse_text("bad/name rps=1\n", QuotaSpec{}),
               SpecError);
  EXPECT_THROW(QuotaTable::parse_text("alice rps=fast\n", QuotaSpec{}),
               SpecError);
}

TEST(QuotaTableTest, EffectiveBurstDerivesFromRate) {
  EXPECT_DOUBLE_EQ((QuotaSpec{8.0, 0.0, 0}).effective_burst(), 16.0);
  EXPECT_DOUBLE_EQ((QuotaSpec{0.1, 0.0, 0}).effective_burst(), 1.0);
  EXPECT_DOUBLE_EQ((QuotaSpec{8.0, 3.0, 0}).effective_burst(), 3.0);
}

// ---------------------------------------------------------------------------
// Unit: estimate_cost.

scenario::ScenarioSpec resolved(const std::string& text) {
  return scenario::ScenarioSpec::parse(text).resolved();
}

TEST(EstimateCostTest, ChargesRequestsTimesColumns) {
  const std::uint64_t one_b = estimate_cost(
      resolved("algorithms=bma;b=2;racks=8;requests=4000;trials=1"));
  const std::uint64_t two_b = estimate_cost(
      resolved("algorithms=bma;b=2,4;racks=8;requests=4000;trials=1"));
  EXPECT_EQ(one_b, 4000u);
  EXPECT_EQ(two_b, 2 * one_b);
}

TEST(EstimateCostTest, TrialsMultiplyOnlyRandomizedAlgorithms) {
  const std::string bma = "algorithms=bma;b=2;racks=8;requests=4000;trials=";
  EXPECT_EQ(estimate_cost(resolved(bma + "5")),
            estimate_cost(resolved(bma + "1")));
  const std::string rand =
      "algorithms=r_bma;b=2;racks=8;requests=4000;trials=";
  EXPECT_EQ(estimate_cost(resolved(rand + "5")),
            5 * estimate_cost(resolved(rand + "1")));
}

TEST(EstimateCostTest, RegistryCostWeightScalesOfflineComparators) {
  const std::uint64_t online = estimate_cost(
      resolved("algorithms=bma;b=2;racks=8;requests=4000;trials=1"));
  const std::uint64_t offline = estimate_cost(
      resolved("algorithms=so_bma;b=2;racks=8;requests=4000;trials=1"));
  EXPECT_EQ(offline, 4 * online);  // so_bma's registry cost_weight
}

TEST(EstimateCostTest, BIndependentAlgorithmsChargeOneColumn) {
  const std::uint64_t one = estimate_cost(
      resolved("algorithms=oblivious;b=2;racks=8;requests=4000;trials=1"));
  const std::uint64_t many = estimate_cost(
      resolved("algorithms=oblivious;b=2,4,8;racks=8;requests=4000;trials=1"));
  EXPECT_EQ(one, many);
}

// ---------------------------------------------------------------------------
// Unit: DrrQueue.

TEST(DrrQueueTest, SingleLaneIsFifo) {
  DrrQueue<int> queue(10);
  for (int i = 0; i < 5; ++i) queue.push("a", 3, i);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.pop(&out));
  EXPECT_TRUE(queue.empty());
}

TEST(DrrQueueTest, SmallLaneInterleavesWithGreedyBacklog) {
  // greedy queues 4 big items before small's 2 cheap ones arrive; DRR
  // still serves small every round instead of after greedy's backlog.
  DrrQueue<std::string> queue(10);
  for (int i = 0; i < 4; ++i)
    queue.push("greedy", 10, "g" + std::to_string(i));
  queue.push("small", 1, "s0");
  queue.push("small", 1, "s1");
  std::vector<std::string> order;
  std::string out;
  while (queue.pop(&out)) order.push_back(out);
  ASSERT_EQ(order.size(), 6u);
  // Both small items pop within the first three slots (one greedy item
  // may precede them depending on rotation entry order), never last.
  std::size_t s1_at = order.size();
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i] == "s1") s1_at = i;
  EXPECT_LE(s1_at, 2u) << "small lane starved behind greedy backlog";
}

TEST(DrrQueueTest, GiantItemDoesNotStarveButDoesNotSpin) {
  // A head far above the quantum is granted its rounds in one closed-form
  // step; this test pins the *behavior* (everything pops, cheap lane
  // first) — the O(clients) bound is what makes it terminate fast.
  DrrQueue<int> queue(1);
  queue.push("whale", 1'000'000, 1);
  queue.push("minnow", 1, 2);
  int out = 0;
  ASSERT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 2);  // cheap item covered first
  ASSERT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.empty());
}

TEST(DrrQueueTest, EmptiedLaneForfeitsDeficit) {
  DrrQueue<int> queue(100);
  queue.push("a", 1, 1);
  int out = 0;
  ASSERT_TRUE(queue.pop(&out));  // lane emptied, ~99 credit forfeited
  // Re-joining the rotation, the lane starts from zero credit: an item
  // costing more than one fresh quantum needs new earnings, so a
  // competing lane's cheap item goes first.
  queue.push("a", 150, 10);
  queue.push("b", 1, 20);
  ASSERT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 20);
  ASSERT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 10);
}

// ---------------------------------------------------------------------------
// Unit: Brownout hysteresis.

TEST(BrownoutTest, QueueThresholdsWithHysteresis) {
  Brownout brownout(16, 0);
  EXPECT_EQ(brownout.update(7, 0), 0);   // below L1 entry (8)
  EXPECT_EQ(brownout.update(8, 0), 1);   // enter L1 at 1/2
  EXPECT_EQ(brownout.update(5, 0), 1);   // latched: exit needs < 1/4
  EXPECT_EQ(brownout.update(13, 0), 1);  // below L2 entry (14)
  EXPECT_EQ(brownout.update(14, 0), 2);  // enter L2 at 7/8
  EXPECT_EQ(brownout.update(9, 0), 2);   // latched: exit needs < 1/2
  EXPECT_EQ(brownout.update(7, 0), 1);   // L2 -> L1
  EXPECT_EQ(brownout.update(4, 0), 1);   // still >= 1/4
  EXPECT_EQ(brownout.update(3, 0), 0);   // healthy again
}

TEST(BrownoutTest, RssWatermarkTriggersIndependently) {
  const std::uint64_t max_rss = 1000;
  Brownout brownout(16, max_rss);
  EXPECT_EQ(brownout.update(0, 790), 0);
  EXPECT_EQ(brownout.update(0, 800), 1);  // >= 0.80 max
  EXPECT_EQ(brownout.update(0, 950), 2);  // >= 0.95 max
  EXPECT_EQ(brownout.update(0, 860), 2);  // exit L2 needs < 0.85
  EXPECT_EQ(brownout.update(0, 840), 1);
  EXPECT_EQ(brownout.update(0, 710), 1);  // exit L1 needs < 0.70
  EXPECT_EQ(brownout.update(0, 690), 0);
}

TEST(BrownoutTest, ZeroWatermarkDisablesRssLeg) {
  Brownout brownout(16, 0);
  EXPECT_EQ(brownout.update(0, 1ull << 40), 0);
}

// ---------------------------------------------------------------------------
// Unit: DrainEstimator.

TEST(DrainEstimatorTest, FallsBackBeforeAnyObservation) {
  DrainEstimator est;
  EXPECT_EQ(est.retry_ms(10, 2, 250), 250u);
}

TEST(DrainEstimatorTest, HintTracksQueueDepthAndExecutors) {
  DrainEstimator est;
  est.observe_run_ns(100'000'000);  // 100 ms runs
  EXPECT_EQ(est.ewma_ns(), 100'000'000u);
  // Q=3 queued, 2 executors: a slot frees in ~100ms * 4 / 2 = 200ms.
  EXPECT_EQ(est.retry_ms(3, 2, 999), 200u);
  // Empty queue: one run-time away, scaled by executors.
  EXPECT_EQ(est.retry_ms(0, 2, 999), 50u);
}

TEST(DrainEstimatorTest, ClampsPathologicalHints) {
  DrainEstimator est;
  est.observe_run_ns(1);  // ~instant runs -> still at least 1 ms
  EXPECT_GE(est.retry_ms(0, 1, 999), 1u);
  DrainEstimator slow;
  slow.observe_run_ns(3'600'000'000'000ull);  // hour-long runs -> 60 s cap
  EXPECT_EQ(slow.retry_ms(100, 1, 999), 60'000u);
}

TEST(DrainEstimatorTest, EwmaSmoothsOutliers) {
  DrainEstimator est;
  est.observe_run_ns(100);
  est.observe_run_ns(1000);
  EXPECT_EQ(est.ewma_ns(), (1000 + 4 * 100) / 5);
}

// ---------------------------------------------------------------------------
// Unit: protocol extensions.

TEST(OverloadProtocolTest, ParsesHello) {
  const Command cmd = parse_command("HELLO client=alice");
  EXPECT_EQ(cmd.kind, Command::Kind::kHello);
  EXPECT_EQ(cmd.client, "alice");
  EXPECT_EQ(parse_command("HELLO").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("HELLO client=").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("HELLO client=no way").kind,
            Command::Kind::kInvalid);
}

TEST(OverloadProtocolTest, ParsesRunClientAndPriority) {
  const Command cmd =
      parse_command("RUN workload=uniform;requests=10 client=bob priority=2");
  EXPECT_EQ(cmd.kind, Command::Kind::kRun);
  EXPECT_EQ(cmd.client, "bob");
  EXPECT_EQ(cmd.priority, 2);
  EXPECT_EQ(parse_command("RUN spec priority=1").priority, 1);
  EXPECT_EQ(parse_command("RUN spec").priority, 1);
  EXPECT_EQ(parse_command("RUN spec priority=3").kind,
            Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("RUN spec client=b@d").kind,
            Command::Kind::kInvalid);
}

TEST(OverloadProtocolTest, ParsesReset) {
  const Command one = parse_command("RESET spec=workload=uniform;requests=10");
  EXPECT_EQ(one.kind, Command::Kind::kReset);
  EXPECT_FALSE(one.all);
  EXPECT_EQ(one.spec, "workload=uniform;requests=10");
  const Command all = parse_command("RESET all=1");
  EXPECT_EQ(all.kind, Command::Kind::kReset);
  EXPECT_TRUE(all.all);
  EXPECT_EQ(parse_command("RESET").kind, Command::Kind::kInvalid);
}

TEST(OverloadProtocolTest, RoundTripsWelcomeRejectResetOk) {
  const ServerLine welcome = parse_server_line(msg_welcome("alice"));
  EXPECT_EQ(welcome.kind, ServerLine::Kind::kWelcome);
  EXPECT_EQ(welcome.text, "alice");

  const ServerLine reject = parse_server_line(msg_reject(350, "shed"));
  EXPECT_EQ(reject.kind, ServerLine::Kind::kReject);
  EXPECT_EQ(reject.retry_ms, 350u);
  EXPECT_EQ(reject.status, "shed");
  EXPECT_EQ(parse_server_line(msg_reject(250)).status, "queue_full");

  const ServerLine resetok = parse_server_line(msg_resetok(3));
  EXPECT_EQ(resetok.kind, ServerLine::Kind::kResetOk);
  EXPECT_EQ(resetok.lines, 3u);
}

TEST(OverloadProtocolTest, StatsCarriesOverloadFields) {
  StatsReport in;
  in.shed = 7;
  in.stalled = 2;
  in.brownout = 1;
  in.clients = 3;
  const std::string line = msg_stats(in);
  const StatsReport out = parse_stats(line.substr(line.find(' ') + 1));
  EXPECT_EQ(out.shed, 7u);
  EXPECT_EQ(out.stalled, 2u);
  EXPECT_EQ(out.brownout, 1u);
  EXPECT_EQ(out.clients, 3u);
}

// ---------------------------------------------------------------------------
// End-to-end: daemon + client.

TEST_F(OverloadTest, HelloBindsAndBadNamesAreRefused) {
  DaemonFixture fixture(small_options("hello"));
  fixture.client.hello("alice");
  // Rebinding mid-connection is allowed.
  fixture.client.hello("alice2");
  EXPECT_THROW(fixture.client.hello("not a name"), SpecError);
  // The connection survives the refusal.
  fixture.client.ping();
}

TEST_F(OverloadTest, QuotaRateRefusesWithHonestHint) {
  ServeOptions options = small_options("quota_rate");
  options.quota_rps = 0.01;  // refill far slower than the test runs
  options.quota_burst = 1;
  DaemonFixture fixture(options);
  fixture.client.hello("alice");

  const Client::Submission first = fixture.client.submit(tiny_spec(1));
  ASSERT_TRUE(first.accepted);
  const Client::Submission second = fixture.client.submit(tiny_spec(2));
  EXPECT_TRUE(second.rejected);
  EXPECT_EQ(second.reason, "quota");
  EXPECT_GT(second.retry_ms, 0u);

  EXPECT_EQ(fixture.client.collect(first.id).status, "ok");
  const StatsReport stats = fixture.client.stats_report();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_GE(stats.clients, 1u);
}

TEST_F(OverloadTest, QuotaConcurrentCapsInFlightPerClient) {
  ServeOptions options = small_options("quota_conc");
  options.quota_concurrent = 1;
  DaemonFixture fixture(options);
  fixture.client.hello("alice");

  const Client::Submission first = fixture.client.submit(kLongSpec);
  ASSERT_TRUE(first.accepted);
  const Client::Submission second = fixture.client.submit(tiny_spec(4));
  EXPECT_TRUE(second.rejected);
  EXPECT_EQ(second.reason, "quota");

  // A different tenant is not throttled by alice's cap.
  Client other;
  other.connect(fixture.daemon.options().socket_path);
  other.hello("bob");
  const Client::Submission third = other.submit(tiny_spec(5));
  EXPECT_TRUE(third.accepted);

  EXPECT_TRUE(fixture.client.cancel(first.id));
  EXPECT_NE(fixture.client.collect(first.id).status, "ok");
  EXPECT_EQ(other.collect(third.id).status, "ok");
  // With the slot released, alice admits again.
  EXPECT_TRUE(fixture.client.submit(tiny_spec(6)).accepted);
  other.disconnect();
}

TEST_F(OverloadTest, FairAdmissionDoesNotStarveSmallClient) {
  // The assertion compares wall-clock stamps taken by two collector
  // threads, so the contended runs must be milliseconds each: under DRR
  // the small tenant's last run finishes at least two run-times before
  // the greedy backlog drains, and that gap has to dwarf scheduler
  // jitter on the stamping side (tiny 4000-request runs finish tens of
  // microseconds apart and flake).
  const auto lane_spec = [](int seed) {
    return "workload=zipf:skew=1.1;algorithms=bma;b=2;racks=8;"
           "requests=200000;trials=1;checkpoints=2;seed=" +
           std::to_string(seed);
  };
  ServeOptions options = small_options("fairness");
  options.queue_limit = 64;
  options.drr_quantum = 200000;  // one lane run's cost per round
  DaemonFixture fixture(options);

  Client& greedy = fixture.client;
  greedy.hello("greedy");
  Client small;
  small.connect(fixture.daemon.options().socket_path);
  small.hello("small");

  // A long run plugs the single executor first, so every later
  // submission genuinely queues — without it, tiny runs can drain as
  // fast as they arrive and the DRR order would be a race, not a
  // property.  greedy then floods; small's two runs arrive behind the
  // backlog.
  std::vector<std::uint64_t> greedy_ids, small_ids;
  const Client::Submission plug = greedy.submit(kLongSpec);
  ASSERT_TRUE(plug.accepted) << plug.error;
  greedy_ids.push_back(plug.id);
  for (int i = 0; i < 4; ++i) {
    const Client::Submission sub = greedy.submit(lane_spec(20 + i));
    ASSERT_TRUE(sub.accepted) << sub.error;
    greedy_ids.push_back(sub.id);
  }
  for (int i = 0; i < 2; ++i) {
    const Client::Submission sub = small.submit(lane_spec(30 + i));
    ASSERT_TRUE(sub.accepted) << sub.error;
    small_ids.push_back(sub.id);
  }

  // Each side collects on its own connection, stamping each DONE.
  std::atomic<std::uint64_t> greedy_last_ns{0}, small_last_ns{0};
  std::thread greedy_thread([&] {
    for (const std::uint64_t id : greedy_ids) {
      ASSERT_EQ(greedy.collect(id).status, "ok");
      greedy_last_ns.store(monotonic_now_ns());
    }
  });
  std::thread small_thread([&] {
    for (const std::uint64_t id : small_ids) {
      ASSERT_EQ(small.collect(id).status, "ok");
      small_last_ns.store(monotonic_now_ns());
    }
  });
  greedy_thread.join();
  small_thread.join();
  small.disconnect();

  // DRR interleaves the lanes, so the small tenant finishes both runs
  // before the greedy backlog drains.  FIFO would finish small last.
  EXPECT_LT(small_last_ns.load(), greedy_last_ns.load())
      << "small client was starved behind the greedy backlog";
}

TEST_F(OverloadTest, BrownoutShedsLowPriorityFirst) {
  ServeOptions options = small_options("shed");
  options.queue_limit = 4;  // L1 once two runs are queued
  DaemonFixture fixture(options);

  const Client::Submission running = fixture.client.submit(kLongSpec);
  ASSERT_TRUE(running.accepted);
  std::vector<std::uint64_t> queued;
  for (int i = 0; i < 2; ++i) {
    const Client::Submission sub = fixture.client.submit(tiny_spec(40 + i));
    ASSERT_TRUE(sub.accepted) << sub.error;
    queued.push_back(sub.id);
  }

  // Queue depth 2 of 4 -> brownout level 1: priority 0 is shed with an
  // inflated hint, the default priority still gets in.
  fixture.client.set_priority(0);
  const Client::Submission shed = fixture.client.submit(tiny_spec(42));
  EXPECT_TRUE(shed.rejected);
  EXPECT_EQ(shed.reason, "shed");
  EXPECT_GT(shed.retry_ms, 0u);
  fixture.client.set_priority(2);
  const Client::Submission urgent = fixture.client.submit(tiny_spec(43));
  ASSERT_TRUE(urgent.accepted) << urgent.error;
  queued.push_back(urgent.id);
  fixture.client.set_priority(1);

  const StatsReport stats = fixture.client.stats_report();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.brownout, 1u);

  EXPECT_TRUE(fixture.client.cancel(running.id));
  EXPECT_NE(fixture.client.collect(running.id).status, "ok");
  for (const std::uint64_t id : queued)
    EXPECT_EQ(fixture.client.collect(id).status, "ok");
}

TEST_F(OverloadTest, WatchdogStallsWedgedRunAndDaemonSurvives) {
  ServeOptions options = small_options("stall");
  options.progress_timeout_ms = 150;
  DaemonFixture fixture(options);

  fault::arm("serve.executor.stall", {.times = 1});
  const Client::Submission wedged = fixture.client.submit(tiny_spec(50));
  ASSERT_TRUE(wedged.accepted);
  const Client::RunOutput out = fixture.client.collect(wedged.id);
  EXPECT_EQ(out.status, "stalled");

  const StatsReport stats = fixture.client.stats_report();
  EXPECT_EQ(stats.stalled, 1u);

  // The executor slot is back: the same daemon serves the next run.
  const Client::Submission next = fixture.client.submit(tiny_spec(50));
  ASSERT_TRUE(next.accepted);
  EXPECT_EQ(fixture.client.collect(next.id).status, "ok");
}

TEST_F(OverloadTest, ResetClearsQuarantineLive) {
  ServeOptions options = small_options("reset");
  options.progress_timeout_ms = 150;
  options.quarantine_threshold = 1;  // first stall quarantines the spec
  DaemonFixture fixture(options);

  fault::arm("serve.executor.stall", {.times = 1});
  const std::string spec = tiny_spec(60);
  const Client::Submission wedged = fixture.client.submit(spec);
  ASSERT_TRUE(wedged.accepted);
  EXPECT_EQ(fixture.client.collect(wedged.id).status, "stalled");

  const Client::Submission refused = fixture.client.submit(spec);
  EXPECT_FALSE(refused.accepted);
  EXPECT_NE(refused.error.find("quarantined"), std::string::npos)
      << refused.error;

  const std::string canonical =
      scenario::ScenarioSpec::parse(spec).canonical_string();
  EXPECT_EQ(fixture.client.reset_quarantine(canonical), 1u);
  EXPECT_EQ(fixture.client.reset_all(), 0u);  // nothing left to clear

  const Client::Submission retried = fixture.client.submit(spec);
  ASSERT_TRUE(retried.accepted) << retried.error;
  EXPECT_EQ(fixture.client.collect(retried.id).status, "ok");
}

}  // namespace
