// The persistent on-disk results cache (serve/disk_cache.hpp): entry
// round-trips, reload across instances (a daemon restart in miniature),
// corruption and truncation survival, temp-file hygiene, torn-write
// fault injection, and the disabled mode.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/fault.hpp"
#include "serve/disk_cache.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::serve;
namespace fs = std::filesystem;

struct DiskCacheTest : ::testing::Test {
  void SetUp() override {
    dir = "/tmp/rdcn_disk_cache_test_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir);
    fault::disarm_all();
  }
  void TearDown() override {
    fault::disarm_all();
    fs::remove_all(dir);
  }

  std::vector<fs::path> entry_files() const {
    std::vector<fs::path> files;
    for (const auto& item : fs::directory_iterator(dir))
      files.push_back(item.path());
    return files;
  }

  std::string dir;
};

TEST_F(DiskCacheTest, Crc32KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Chained calls equal one call over the concatenation.
  const std::uint32_t whole = crc32("abcdef", 6);
  EXPECT_EQ(crc32("def", 3, crc32("abc", 3)), whole);
}

TEST_F(DiskCacheTest, PutGetRoundTrip) {
  DiskCache cache(dir);
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.get("spec-a").has_value());
  cache.put("spec-a", "payload-a\nline2\n");
  const auto hit = cache.get("spec-a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-a\nline2\n");
  const DiskCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.corrupt_skipped, 0u);
}

TEST_F(DiskCacheTest, PutRefreshesInPlace) {
  DiskCache cache(dir);
  cache.put("k", "old");
  cache.put("k", "new");
  EXPECT_EQ(cache.get("k").value_or(""), "new");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(entry_files().size(), 1u);  // no duplicate or leftover files
}

TEST_F(DiskCacheTest, SurvivesReload) {
  {
    DiskCache cache(dir);
    cache.put("spec-a", "payload-a");
    cache.put("spec-b", "payload-b");
  }
  DiskCache reloaded(dir);
  EXPECT_EQ(reloaded.stats().entries, 2u);
  EXPECT_EQ(reloaded.get("spec-a").value_or(""), "payload-a");
  EXPECT_EQ(reloaded.get("spec-b").value_or(""), "payload-b");
  EXPECT_EQ(reloaded.stats().corrupt_skipped, 0u);
}

TEST_F(DiskCacheTest, NoTempFilesLeftBehind) {
  DiskCache cache(dir);
  cache.put("a", std::string(100'000, 'x'));
  for (const auto& path : entry_files())
    EXPECT_NE(path.extension(), ".tmp") << path;
}

TEST_F(DiskCacheTest, CorruptEntrySkippedOnLoad) {
  {
    DiskCache cache(dir);
    cache.put("good", "good-payload");
    cache.put("bad", "bad-payload");
  }
  // Flip one payload byte of "bad"'s entry; CRC must catch it.
  bool flipped = false;
  for (const auto& path : entry_files()) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    const std::size_t pos = bytes.find("bad-payload");
    if (pos == std::string::npos) continue;
    bytes[pos] = 'X';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    flipped = true;
  }
  ASSERT_TRUE(flipped);
  DiskCache reloaded(dir);
  EXPECT_EQ(reloaded.stats().corrupt_skipped, 1u);
  EXPECT_EQ(reloaded.stats().entries, 1u);
  EXPECT_EQ(reloaded.get("good").value_or(""), "good-payload");
  EXPECT_FALSE(reloaded.get("bad").has_value());
}

TEST_F(DiskCacheTest, TruncatedEntrySkippedOnLoad) {
  {
    DiskCache cache(dir);
    cache.put("spec", "a payload long enough to truncate meaningfully");
  }
  const auto files = entry_files();
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0], fs::file_size(files[0]) / 2);
  DiskCache reloaded(dir);
  EXPECT_EQ(reloaded.stats().corrupt_skipped, 1u);
  EXPECT_EQ(reloaded.stats().entries, 0u);
  EXPECT_FALSE(reloaded.get("spec").has_value());
}

TEST_F(DiskCacheTest, StaleTempFileRemovedOnLoad) {
  fs::create_directories(dir);
  std::ofstream(dir + "/deadbeef.rdc.tmp") << "half-written";
  DiskCache cache(dir);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().corrupt_skipped, 0u);  // never visible = not torn
  EXPECT_TRUE(entry_files().empty());
}

TEST_F(DiskCacheTest, ForeignFilesIgnored) {
  fs::create_directories(dir);
  std::ofstream(dir + "/README.txt") << "not a cache entry";
  DiskCache cache(dir);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().corrupt_skipped, 0u);
  EXPECT_TRUE(fs::exists(dir + "/README.txt"));
}

TEST_F(DiskCacheTest, TornWriteFaultYieldsSkippedEntry) {
  {
    DiskCache cache(dir);
    cache.put("ok", "ok-payload");
    fault::arm("serve.disk_cache.torn_write", {.times = 1});
    cache.put("torn", "this payload will be half-committed");
    fault::disarm_all();
  }
  // The torn entry was *committed* (renamed into place) but fails CRC at
  // the next startup: skipped and counted, the good entry untouched.
  DiskCache reloaded(dir);
  EXPECT_EQ(reloaded.stats().corrupt_skipped, 1u);
  EXPECT_EQ(reloaded.stats().entries, 1u);
  EXPECT_EQ(reloaded.get("ok").value_or(""), "ok-payload");
  EXPECT_FALSE(reloaded.get("torn").has_value());
}

TEST_F(DiskCacheTest, WriteFailFaultCountsAndDegrades) {
  DiskCache cache(dir);
  fault::arm("serve.disk_cache.write_fail", {.times = 1});
  cache.put("dropped", "never lands");
  EXPECT_FALSE(cache.get("dropped").has_value());
  EXPECT_EQ(cache.stats().write_failures, 1u);
  cache.put("kept", "lands fine");  // fault exhausted
  EXPECT_EQ(cache.get("kept").value_or(""), "lands fine");
}

TEST_F(DiskCacheTest, DisabledModeIsInert) {
  DiskCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.put("a", "A");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
