// The serve daemon's durable run journal (serve/journal.hpp): lifecycle
// round-trips across a simulated restart, id-counter persistence,
// compaction down to live state, and the corruption matrix — truncated
// tail, bit-flipped record, bad magic, duplicate terminal records —
// mirroring the disk_cache_test discipline for the write-ahead log.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "serve/journal.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::serve;
namespace fs = std::filesystem;

struct JournalTest : ::testing::Test {
  void SetUp() override {
    dir = "/tmp/rdcn_journal_test_" + std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  // `<dir>/wal.rdj` is the documented on-disk location (journal.hpp) —
  // the corruption tests forge damage directly in that file.
  std::string wal() const { return dir + "/wal.rdj"; }

  std::string read_wal() const {
    std::ifstream in(wal(), std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  void write_wal(const std::string& bytes) const {
    fs::create_directories(dir);
    std::ofstream out(wal(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir;
};

TEST_F(JournalTest, DisabledModeIsInert) {
  Journal journal("");
  EXPECT_FALSE(journal.enabled());
  const Journal::Recovery rec = journal.recover(/*fallback_next_id=*/5);
  EXPECT_EQ(rec.next_id, 5u);
  EXPECT_TRUE(rec.incomplete.empty());
  EXPECT_EQ(rec.replayed, 0u);
  EXPECT_EQ(rec.corrupt, 0u);
  // Appends are no-ops — nothing may touch the filesystem.
  journal.admitted(1, "a=1");
  journal.terminal(1, "ok");
  journal.flush();
  EXPECT_FALSE(fs::exists(dir));
}

TEST_F(JournalTest, EmptyDirectoryRecoversFresh) {
  Journal journal(dir);
  EXPECT_TRUE(journal.enabled());
  // Appends before recover() are dropped, not crashes.
  journal.admitted(99, "too=early");
  const Journal::Recovery rec = journal.recover(/*fallback_next_id=*/3);
  EXPECT_EQ(rec.next_id, 3u);
  EXPECT_TRUE(rec.incomplete.empty());
  EXPECT_TRUE(rec.quarantine.empty());
  EXPECT_EQ(rec.replayed, 0u);
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_TRUE(fs::exists(wal()));  // compaction materialized the log
  EXPECT_FALSE(fs::exists(wal() + ".tmp"));
}

TEST_F(JournalTest, LifecycleRoundTripsAcrossRestart) {
  {
    Journal journal(dir);
    journal.recover();
    journal.admitted(1, "a=1;b=2");
    journal.started(1);
    journal.checkpoint(1, 1);
    journal.checkpoint(1, 3);
    journal.admitted(2, "c=3");
    journal.terminal(2, "ok");
    journal.quarantine_streak("bad=1", 2);
  }
  Journal reloaded(dir);
  const Journal::Recovery rec = reloaded.recover();
  EXPECT_EQ(rec.next_id, 3u);
  ASSERT_EQ(rec.incomplete.size(), 1u);
  EXPECT_EQ(rec.incomplete[0].id, 1u);
  EXPECT_EQ(rec.incomplete[0].spec, "a=1;b=2");
  EXPECT_TRUE(rec.incomplete[0].started);
  EXPECT_EQ(rec.incomplete[0].checkpoint_seq, 3u);
  ASSERT_EQ(rec.quarantine.size(), 1u);
  EXPECT_EQ(rec.quarantine[0].first, "bad=1");
  EXPECT_EQ(rec.quarantine[0].second, 2u);
  EXPECT_GE(rec.replayed, 7u);
  EXPECT_EQ(rec.corrupt, 0u);
}

TEST_F(JournalTest, NextIdSurvivesEvenWithNoLiveRuns) {
  {
    Journal journal(dir);
    journal.recover();
    journal.admitted(5, "x=1");
    journal.terminal(5, "ok");
  }
  {
    // First restart: next_id derived from the finished admit.
    Journal journal(dir);
    EXPECT_EQ(journal.recover().next_id, 6u);
  }
  // Second restart: the admit is compacted away — the nextid snapshot
  // alone must carry the counter forward.
  Journal journal(dir);
  const Journal::Recovery rec = journal.recover();
  EXPECT_EQ(rec.next_id, 6u);
  EXPECT_TRUE(rec.incomplete.empty());
}

TEST_F(JournalTest, DuplicateTerminalRecordsAreIdempotent) {
  {
    Journal journal(dir);
    journal.recover();
    journal.admitted(1, "a=1");
    journal.terminal(1, "ok");
    journal.terminal(1, "ok");          // double-done: first wins
    journal.terminal(7, "cancelled");   // done for an unknown id: ignored
    journal.admitted(1, "a=1");         // re-admit after done: ignored
  }
  Journal reloaded(dir);
  const Journal::Recovery rec = reloaded.recover();
  EXPECT_TRUE(rec.incomplete.empty());
  EXPECT_EQ(rec.corrupt, 0u);
  EXPECT_EQ(rec.next_id, 2u);
}

TEST_F(JournalTest, StreakZeroClearsQuarantineEntry) {
  {
    Journal journal(dir);
    journal.recover();
    journal.quarantine_streak("flaky=1", 2);
    journal.quarantine_streak("flaky=1", 0);
    journal.quarantine_streak("still=bad", 1);
  }
  Journal reloaded(dir);
  const Journal::Recovery rec = reloaded.recover();
  ASSERT_EQ(rec.quarantine.size(), 1u);
  EXPECT_EQ(rec.quarantine[0].first, "still=bad");
  EXPECT_EQ(rec.quarantine[0].second, 1u);
}

TEST_F(JournalTest, TruncatedTailLosesOnlyTheTornRecord) {
  {
    Journal journal(dir);
    journal.recover();
    journal.admitted(1, "first=run");
    journal.admitted(2, "second=run");
    journal.flush();
  }
  // Chop into the last record's payload — a torn write at crash time.
  fs::resize_file(wal(), fs::file_size(wal()) - 3);
  Journal reloaded(dir);
  const Journal::Recovery rec = reloaded.recover();
  EXPECT_EQ(rec.corrupt, 1u);
  ASSERT_EQ(rec.incomplete.size(), 1u);
  EXPECT_EQ(rec.incomplete[0].id, 1u);
  EXPECT_EQ(rec.incomplete[0].spec, "first=run");
  EXPECT_EQ(rec.next_id, 2u);  // the torn admit never happened
}

TEST_F(JournalTest, BitFlippedRecordEndsReplayAtTheFlip) {
  {
    Journal journal(dir);
    journal.recover();
    journal.admitted(1, "keep=me");
    journal.admitted(2, "flip=me");
    journal.admitted(3, "after=flip");
    journal.flush();
  }
  // Flip one payload byte of the middle record; its CRC fails and the
  // replay must stop there — framing after a bad record is untrusted.
  std::string bytes = read_wal();
  const std::size_t pos = bytes.find("flip=me");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x01;
  write_wal(bytes);
  Journal reloaded(dir);
  const Journal::Recovery rec = reloaded.recover();
  EXPECT_EQ(rec.corrupt, 1u);
  ASSERT_EQ(rec.incomplete.size(), 1u);
  EXPECT_EQ(rec.incomplete[0].spec, "keep=me");
}

TEST_F(JournalTest, BadMagicStartsFreshAndStaysWritable) {
  write_wal("not a journal at all");
  Journal journal(dir);
  const Journal::Recovery rec = journal.recover(/*fallback_next_id=*/4);
  EXPECT_GE(rec.corrupt, 1u);
  EXPECT_EQ(rec.replayed, 0u);
  EXPECT_TRUE(rec.incomplete.empty());
  EXPECT_EQ(rec.next_id, 4u);
  // The damaged log was compacted over; appends land in a valid file.
  journal.admitted(9, "fresh=1");
  Journal reloaded(dir);
  const Journal::Recovery again = reloaded.recover();
  EXPECT_EQ(again.corrupt, 0u);
  ASSERT_EQ(again.incomplete.size(), 1u);
  EXPECT_EQ(again.incomplete[0].id, 9u);
  EXPECT_EQ(again.next_id, 10u);
}

TEST_F(JournalTest, CompactionBoundsTheLogToLiveState) {
  {
    Journal journal(dir);
    journal.recover();
    for (std::uint64_t id = 1; id <= 50; ++id) {
      journal.admitted(id, "spec=" + std::to_string(id));
      journal.started(id);
      journal.terminal(id, "ok");
    }
  }
  const auto grown = fs::file_size(wal());
  Journal reloaded(dir);
  const Journal::Recovery rec = reloaded.recover();
  EXPECT_EQ(rec.replayed, 151u);  // nextid + 50 × (admit, start, done)
  EXPECT_TRUE(rec.incomplete.empty());
  EXPECT_EQ(rec.next_id, 51u);
  // History is gone: the compacted log holds magic + nextid only.
  EXPECT_LT(fs::file_size(wal()), grown / 10);
  // A second replay sees only the compacted live state.
  Journal again(dir);
  EXPECT_EQ(again.recover().replayed, 1u);
}

}  // namespace
