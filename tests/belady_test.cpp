// Cross-validation of the offline paging optima (paging/belady.hpp,
// paging/offline_opt.hpp) and optimality sanity against online engines.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paging/belady.hpp"
#include "paging/factory.hpp"
#include "paging/offline_opt.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::paging;

std::vector<Key> random_sequence(std::size_t len, std::size_t universe,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Key> seq(len);
  for (auto& k : seq) k = 1 + rng.next_below(universe);
  return seq;
}

class BeladyVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BeladyVsBruteForce, IdenticalOptimalFaultCounts) {
  const int seed = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const std::size_t universe = 3 + rng.next_below(5);   // 3..7 keys
  const std::size_t capacity = 1 + rng.next_below(3);   // 1..3 slots
  const std::vector<Key> seq =
      random_sequence(60, universe, static_cast<std::uint64_t>(seed) + 1000);
  EXPECT_EQ(Belady::optimal_faults(capacity, seq),
            brute_force_faults(capacity, seq))
      << "universe=" << universe << " capacity=" << capacity;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BeladyVsBruteForce,
                         ::testing::Range(0, 25));

class BeladyDominatesOnline
    : public ::testing::TestWithParam<std::tuple<EngineKind, int>> {};

TEST_P(BeladyDominatesOnline, NoEngineBeatsBelady) {
  const auto [kind, seed] = GetParam();
  const std::size_t capacity = 4;
  const std::vector<Key> seq =
      random_sequence(500, 10, static_cast<std::uint64_t>(seed));
  auto engine = make_engine(kind, capacity, Xoshiro256(99));
  std::vector<Key> evicted;
  for (Key k : seq) {
    evicted.clear();
    engine->request(k, evicted);
  }
  EXPECT_GE(engine->faults(), Belady::optimal_faults(capacity, seq));
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesSeeds, BeladyDominatesOnline,
    ::testing::Combine(::testing::Values(EngineKind::kMarking,
                                         EngineKind::kLru, EngineKind::kFifo,
                                         EngineKind::kClock,
                                         EngineKind::kRandom,
                                         EngineKind::kFlushWhenFull),
                       ::testing::Values(1, 2, 3)));

TEST(OfflineOpt, BypassingNeverCostsMoreThanNonBypassing) {
  for (int seed = 0; seed < 10; ++seed) {
    const std::vector<Key> seq =
        random_sequence(50, 6, static_cast<std::uint64_t>(seed));
    EXPECT_LE(optimal_faults_bypassing(2, seq), brute_force_faults(2, seq));
  }
}

TEST(OfflineOpt, BypassingWithinFactorTwoOfNonBypassing) {
  // Epstein et al.: the variants are asymptotically equivalent; for unit
  // costs non-bypassing OPT <= 2 * bypassing OPT.
  for (int seed = 0; seed < 10; ++seed) {
    const std::vector<Key> seq =
        random_sequence(50, 6, 100 + static_cast<std::uint64_t>(seed));
    EXPECT_LE(brute_force_faults(2, seq),
              2 * optimal_faults_bypassing(2, seq));
  }
}

TEST(OfflineOpt, SequenceFittingInCacheFaultsOncePerKey) {
  const std::vector<Key> seq = {5, 6, 7, 5, 6, 7, 7, 6, 5};
  EXPECT_EQ(optimal_faults(3, seq), 3u);
  EXPECT_EQ(brute_force_faults(3, seq), 3u);
}

TEST(OfflineOpt, AlternatingTwoKeysCapacityOne) {
  // 1 2 1 2 ... with capacity 1: every request faults for any algorithm.
  std::vector<Key> seq;
  for (int i = 0; i < 20; ++i) seq.push_back(1 + (i % 2));
  EXPECT_EQ(optimal_faults(1, seq), 20u);
}

TEST(Belady, ResetReplaysIdentically) {
  const std::vector<Key> seq = random_sequence(200, 8, 5);
  Belady b(3, seq);
  std::vector<Key> ev;
  for (Key k : seq) {
    ev.clear();
    b.request(k, ev);
  }
  const std::uint64_t first = b.faults();
  b.reset();
  for (Key k : seq) {
    ev.clear();
    b.request(k, ev);
  }
  EXPECT_EQ(b.faults(), first);
}

TEST(Belady, LargerCacheNeverFaultsMore) {
  const std::vector<Key> seq = random_sequence(400, 12, 6);
  std::uint64_t prev = ~0ull;
  for (std::size_t cap = 1; cap <= 12; ++cap) {
    const std::uint64_t f = Belady::optimal_faults(cap, seq);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

}  // namespace
