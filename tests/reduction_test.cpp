// Executable checks of the Theorem 1 reduction mechanics (RED-1/RED-2 in
// DESIGN.md): the special-request bookkeeping inside R-BMA, and the
// per-interval cost relation the proof charges against.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/r_bma.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"
#include "trace/stats.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(Reduction, SpecialCountMatchesKePerPair) {
  // For each pair e requested n_e times, the number of special requests is
  // exactly floor(n_e / ke) with ke = ceil(α/ℓe).
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(5);
  const trace::Trace t = trace::generate_zipf_pairs(16, 20000, 1.1, rng);
  const std::uint64_t alpha = 12;
  RBma alg(make_instance(topo.distances, 3, alpha), {.seed = 2});
  for (const Request& r : t) alg.serve(r);

  std::uint64_t expected_specials = 0;
  for (const auto& [key, count] : trace::pair_counts_sorted(t)) {
    const std::uint64_t d = topo.distances(pair_lo(key), pair_hi(key));
    const std::uint64_t ke = (alpha + d - 1) / d;
    expected_specials += count / ke;
  }
  EXPECT_EQ(alg.special_requests(), expected_specials);
}

TEST(Reduction, UniformInstanceDegeneratesToIdentity) {
  // α = 1: ke = 1 for every pair, so the reduction is the identity and the
  // paging layer sees every request.
  const auto d = net::DistanceMatrix::uniform(8, 1);
  Xoshiro256 rng(6);
  const trace::Trace t = trace::generate_uniform(8, 5000, rng);
  RBma alg(make_instance(d, 2, 1), {.seed = 2});
  for (const Request& r : t) alg.serve(r);
  EXPECT_EQ(alg.special_requests(), t.size());
}

TEST(Reduction, RoutingPaidBetweenSpecialsIsBoundedByGammaAlpha) {
  // Proof of Theorem 1: within one interval (between consecutive special
  // requests to a pair), Alg pays at most ke·ℓe < γ·α in routing for that
  // pair.  We verify the arithmetic bound for every pair in a topology.
  const net::Topology topo = net::make_fat_tree(24);
  const std::uint64_t alpha = 10;
  Instance inst = make_instance(topo.distances, 2, alpha);
  const double gamma_alpha = inst.gamma() * static_cast<double>(alpha);
  const auto n = static_cast<Rack>(topo.num_racks());
  for (Rack u = 0; u < n; ++u) {
    for (Rack v = u + 1; v < n; ++v) {
      const std::uint64_t d = topo.distances(u, v);
      const std::uint64_t ke = (alpha + d - 1) / d;
      EXPECT_LT(static_cast<double>(ke * d), gamma_alpha + 1e-9)
          << "pair " << u << "," << v;
    }
  }
}

TEST(Reduction, ReconfigurationCostProportionalToSpecials) {
  // Every special request triggers at most a bounded number of matching
  // operations (1 add + at most 2 prunes under lazy eviction; adds+removals
  // <= 3 per special).  This is what makes inequality 1 of Theorem 1 sum.
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(7);
  const trace::Trace t = trace::generate_zipf_pairs(20, 30000, 1.2, rng);
  RBma alg(make_instance(topo.distances, 3, 15), {.seed = 3});
  for (const Request& r : t) alg.serve(r);
  const std::uint64_t ops =
      alg.costs().edge_adds + alg.costs().edge_removals;
  EXPECT_LE(ops, 3 * alg.special_requests());
  // And removals never exceed additions (an edge must be added to be
  // removed) — the charging step at the end of Theorem 2's proof.
  EXPECT_LE(alg.costs().edge_removals, alg.costs().edge_adds);
}

TEST(Reduction, LargerAlphaMeansFewerSpecialsAndReconfigs) {
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(8);
  const trace::Trace t = trace::generate_zipf_pairs(20, 30000, 1.2, rng);
  std::uint64_t prev_specials = ~0ull;
  for (std::uint64_t alpha : {2ull, 8ull, 32ull, 128ull}) {
    RBma alg(make_instance(topo.distances, 3, alpha), {.seed = 4});
    for (const Request& r : t) alg.serve(r);
    EXPECT_LE(alg.special_requests(), prev_specials);
    prev_specials = alg.special_requests();
  }
}

TEST(Reduction, GammaCloseToOneWhenAlphaDominates) {
  // §1.2: "in all practical applications α is by several orders of
  // magnitude greater than ℓmax, and thus 1 + ℓmax/α is close to 1."
  const net::Topology topo = net::make_fat_tree(100);
  Instance inst = make_instance(topo.distances, 18, 10000);
  EXPECT_LT(inst.gamma(), 1.001);
  EXPECT_EQ(topo.distances.max_distance(), 4);
}

}  // namespace
