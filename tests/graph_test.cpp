// Unit tests for the graph substrate (net/graph.hpp, net/distance_matrix.hpp).
#include <gtest/gtest.h>

#include "net/distance_matrix.hpp"
#include "net/graph.hpp"

namespace {

using namespace rdcn::net;

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  g.finalize();
  return g;
}

TEST(Graph, CsrAdjacencyMatchesEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
  bool saw1 = false, saw2 = false;
  for (NodeId w : g.neighbors(0)) {
    saw1 |= (w == 1);
    saw2 |= (w == 2);
  }
  EXPECT_TRUE(saw1 && saw2);
}

TEST(Graph, BfsOnPathGivesLinearDistances) {
  const Graph g = path_graph(6);
  std::vector<std::uint16_t> dist;
  g.bfs(0, dist);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
  g.bfs(3, dist);
  EXPECT_EQ(dist[0], 3);
  EXPECT_EQ(dist[5], 2);
}

TEST(Graph, BfsMarksUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  std::vector<std::uint16_t> dist;
  g.bfs(0, dist);
  EXPECT_EQ(dist[2], Graph::kUnreachable);
  EXPECT_FALSE(g.connected());
}

TEST(Graph, ConnectedOnConnectedGraph) {
  EXPECT_TRUE(path_graph(10).connected());
}

TEST(Graph, EmptyGraphIsConnected) {
  Graph g(0);
  g.finalize();
  EXPECT_TRUE(g.connected());
}

TEST(DistanceMatrix, MatchesBfsOnPath) {
  const Graph g = path_graph(5);
  std::vector<NodeId> racks = {0, 2, 4};
  const DistanceMatrix d(g, racks);
  EXPECT_EQ(d.num_racks(), 3u);
  EXPECT_EQ(d(0, 1), 2);  // node 0 -> node 2
  EXPECT_EQ(d(0, 2), 4);  // node 0 -> node 4
  EXPECT_EQ(d(1, 2), 2);
  EXPECT_EQ(d(0, 0), 0);
  EXPECT_EQ(d.max_distance(), 4);
}

TEST(DistanceMatrix, Symmetry) {
  const Graph g = path_graph(7);
  std::vector<NodeId> racks = {0, 1, 3, 6};
  const DistanceMatrix d(g, racks);
  for (std::uint32_t i = 0; i < 4; ++i)
    for (std::uint32_t j = 0; j < 4; ++j) EXPECT_EQ(d(i, j), d(j, i));
}

TEST(DistanceMatrix, UniformFactory) {
  const DistanceMatrix d = DistanceMatrix::uniform(5, 1);
  for (std::uint32_t i = 0; i < 5; ++i)
    for (std::uint32_t j = 0; j < 5; ++j)
      EXPECT_EQ(d(i, j), i == j ? 0 : 1);
  EXPECT_EQ(d.max_distance(), 1);
  EXPECT_DOUBLE_EQ(d.mean_distance(), 1.0);
}

TEST(DistanceMatrix, MeanDistanceOfPathPair) {
  const Graph g = path_graph(2);
  const DistanceMatrix d(g, {0, 1});
  EXPECT_DOUBLE_EQ(d.mean_distance(), 1.0);
}

}  // namespace
