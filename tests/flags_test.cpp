// Tests for the command-line flag parser (common/flags.hpp).
#include <gtest/gtest.h>

#include "common/flags.hpp"

namespace {

using rdcn::Flags;

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  for (const char* a : args) argv.push_back(a);
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--racks=100", "--alpha=60"});
  EXPECT_EQ(f.get_uint("racks", 0), 100u);
  EXPECT_EQ(f.get_uint("alpha", 0), 60u);
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--racks", "50", "--name", "hello"});
  EXPECT_EQ(f.get_uint("racks", 0), 50u);
  EXPECT_EQ(f.get("name"), "hello");
}

TEST(Flags, BooleanFlagWithoutValue) {
  const Flags f = parse({"--eager", "--racks=10"});
  EXPECT_TRUE(f.get_bool("eager", false));
  EXPECT_FALSE(f.get_bool("missing", false));
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("x", "fallback"), "fallback");
  EXPECT_EQ(f.get_int("n", -7), -7);
  EXPECT_DOUBLE_EQ(f.get_double("d", 2.5), 2.5);
}

TEST(Flags, LastOccurrenceWins) {
  const Flags f = parse({"--b=3", "--b=9"});
  EXPECT_EQ(f.get_uint("b", 0), 9u);
}

TEST(Flags, ListParsing) {
  const Flags f = parse({"--b=6,12,18", "--names=a,b"});
  const auto b = f.get_uint_list("b");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 6u);
  EXPECT_EQ(b[2], 18u);
  const auto names = f.get_list("names");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[1], "b");
  EXPECT_TRUE(f.get_list("absent").empty());
}

TEST(Flags, SingleElementList) {
  const Flags f = parse({"--b=12"});
  const auto b = f.get_uint_list("b");
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 12u);
}

TEST(Flags, Positionals) {
  const Flags f = parse({"input.csv", "--x=1", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "output.csv");
}

TEST(Flags, UnknownFlagDetection) {
  const Flags f = parse({"--good=1", "--bad=2"});
  const auto unknown = f.unknown_flags({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bad");
}

TEST(Flags, DoubleAndNegativeValues) {
  const Flags f = parse({"--skew=1.25", "--delta=-3"});
  EXPECT_DOUBLE_EQ(f.get_double("skew", 0.0), 1.25);
  EXPECT_EQ(f.get_int("delta", 0), -3);
}

// Space-form parsing must never swallow a '-'-leading token: after a
// boolean flag it would be misbound as that flag's value ("--eager -5"
// used to make eager = "-5"), and a negative-number positional would
// vanish.  Negative values therefore require the '=' form.
TEST(Flags, SpaceFormDoesNotSwallowNegativeNumber) {
  const Flags f = parse({"--eager", "-5"});
  EXPECT_TRUE(f.get_bool("eager", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "-5");
}

TEST(Flags, SpaceFormDoesNotSwallowSingleDashToken) {
  const Flags f = parse({"--out", "-", "--verbose"});
  // "-" (the stdin/stdout convention) stays positional; --out becomes a
  // boolean flag rather than binding "-".
  EXPECT_EQ(f.get("out"), "true");
  EXPECT_TRUE(f.get_bool("verbose", false));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "-");
}

TEST(Flags, NegativeValueViaEqualsFormStillBinds) {
  const Flags f = parse({"--alpha=-5", "--beta", "7"});
  EXPECT_EQ(f.get_int("alpha", 0), -5);
  EXPECT_EQ(f.get_uint("beta", 0), 7u);
  EXPECT_TRUE(f.positional().empty());
}

}  // namespace
