// End-to-end smoke: the umbrella header compiles and a tiny simulation of
// every algorithm family runs with consistent ledgers.
#include <gtest/gtest.h>

#include "rdcn.hpp"

namespace {

using namespace rdcn;

TEST(Smoke, EndToEndTinySimulation) {
  Xoshiro256 rng(7);
  const net::Topology topo = net::make_fat_tree(16);
  const trace::Trace t = trace::generate_zipf_pairs(16, 2000, 1.0, rng);

  core::Instance inst;
  inst.distances = &topo.distances;
  inst.b = 4;
  inst.alpha = 10;

  for (const char* name : {"r_bma", "bma", "greedy", "oblivious", "so_bma"}) {
    auto matcher = scenario::make_algorithm(name, inst, &t, 1);
    const sim::RunResult r = sim::run_to_completion(*matcher, t);
    EXPECT_EQ(r.final().requests, t.size()) << name;
    EXPECT_GT(r.final().routing_cost, 0u) << name;
    EXPECT_TRUE(matcher->matching().check_invariants()) << name;
    // Ledger identity: total = routing + reconfig; reconfig = α * ops.
    EXPECT_EQ(r.final().total_cost,
              r.final().routing_cost + r.final().reconfig_cost)
        << name;
    EXPECT_EQ(r.final().reconfig_cost,
              inst.alpha * (r.final().edge_adds + r.final().edge_removals))
        << name;
  }
}

}  // namespace
