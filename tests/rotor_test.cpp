// Tests for the demand-oblivious rotor baseline (core/rotor.hpp).
#include <gtest/gtest.h>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "scenario/registry.hpp"
#include "core/rotor.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(Rotor, ScheduleCoversAllPairsForEvenN) {
  const auto d = net::DistanceMatrix::uniform(8, 2);
  Rotor rotor(make_instance(d, 1, 10));
  EXPECT_EQ(rotor.schedule_length(), 7u);  // n-1 perfect matchings

  // Drive through one full rotation with slot_length=100 and b=1: every
  // pair must be directly connected in exactly one slot.
  RotorOptions opts;
  opts.slot_length = 1;
  Rotor spinner(make_instance(d, 1, 10), opts);
  FlatSet seen;
  trace::Trace dummy(8, "spin");
  for (int i = 0; i < 7; ++i) {
    for (std::uint64_t k : spinner.matching().edge_keys()) seen.insert(k);
    spinner.serve(trace::Request::make(0, 1));  // advances the slot
  }
  EXPECT_EQ(seen.size(), 8u * 7 / 2);  // all 28 pairs covered
}

TEST(Rotor, OddNUsesByes) {
  const auto d = net::DistanceMatrix::uniform(7, 2);
  Rotor rotor(make_instance(d, 1, 10));
  EXPECT_EQ(rotor.schedule_length(), 7u);  // (n+1)-1 rounds with byes
  // With b=1 each slot matches at most floor(7/2)=3 pairs.
  EXPECT_LE(rotor.matching().size(), 3u);
}

TEST(Rotor, RespectsDegreeCapWithManySwitches) {
  const auto d = net::DistanceMatrix::uniform(10, 2);
  for (std::size_t b : {1ul, 3ul, 5ul, 9ul, 20ul}) {
    RotorOptions opts;
    opts.slot_length = 7;
    Rotor rotor(make_instance(d, b, 10), opts);
    Xoshiro256 rng(b);
    for (int i = 0; i < 2000; ++i) {
      const auto u = static_cast<Rack>(rng.next_below(10));
      auto v = static_cast<Rack>(rng.next_below(9));
      if (v >= u) ++v;
      rotor.serve(Request::make(u, v));
      ASSERT_TRUE(rotor.matching().check_invariants());
    }
  }
}

TEST(Rotor, ReconfigurationsAreNotCharged) {
  const auto d = net::DistanceMatrix::uniform(8, 2);
  RotorOptions opts;
  opts.slot_length = 5;
  Rotor rotor(make_instance(d, 2, 50), opts);
  for (int i = 0; i < 500; ++i) rotor.serve(Request::make(0, 1));
  EXPECT_EQ(rotor.costs().reconfig_cost, 0u);
  EXPECT_GT(rotor.costs().prescheduled_ops, 0u);
}

TEST(Rotor, ObliviousToDemandButBeatsFixedNetwork) {
  // On skewed traffic the rotor still helps (every pair gets direct slots
  // a b/(n-1) fraction of the time) but demand-aware R-BMA does far
  // better — the paper's motivating comparison.
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(9);
  const trace::Trace t = trace::generate_zipf_pairs(20, 40000, 1.2, rng);
  const Instance inst = make_instance(topo.distances, 4, 30);

  auto run = [&](const char* algo) {
    auto m = scenario::make_algorithm(algo, inst, &t, 3);
    for (const Request& r : t) m->serve(r);
    return m->costs().routing_cost;
  };
  const std::uint64_t rotor = run("rotor");
  const std::uint64_t oblivious = run("oblivious");
  const std::uint64_t rbma = run("r_bma");
  EXPECT_LT(rotor, oblivious);
  EXPECT_LT(rbma, rotor);
}

TEST(Rotor, ResetRestartsSchedule) {
  const auto d = net::DistanceMatrix::uniform(8, 2);
  RotorOptions opts;
  opts.slot_length = 3;
  Rotor rotor(make_instance(d, 2, 10), opts);
  auto initial = rotor.matching().edge_keys();
  std::sort(initial.begin(), initial.end());
  for (int i = 0; i < 100; ++i) rotor.serve(Request::make(0, 1));
  rotor.reset();
  auto after = rotor.matching().edge_keys();
  std::sort(after.begin(), after.end());
  EXPECT_EQ(initial, after);
  EXPECT_EQ(rotor.costs().requests, 0u);
}

TEST(Rotor, FactoryConstructs) {
  const auto d = net::DistanceMatrix::uniform(8, 2);
  auto m = scenario::make_algorithm("rotor", make_instance(d, 2, 10));
  EXPECT_EQ(m->name(), "rotor");
}

}  // namespace
