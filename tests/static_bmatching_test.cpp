// Tests for the static max-weight b-matching solvers
// (core/static_bmatching.hpp) that power SO-BMA.
#include <gtest/gtest.h>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "core/static_bmatching.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

std::vector<WeightedEdge> random_edges(std::size_t num_racks,
                                       std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  // Cannot sample more distinct pairs than exist.
  count = std::min(count, num_racks * (num_racks - 1) / 2);
  std::vector<WeightedEdge> edges;
  FlatSet seen;
  while (edges.size() < count) {
    const Rack u = static_cast<Rack>(rng.next_below(num_racks));
    Rack v = static_cast<Rack>(rng.next_below(num_racks - 1));
    if (v >= u) ++v;
    const std::uint64_t key = pair_key(u, v);
    if (!seen.insert(key)) continue;
    edges.push_back({key, 1 + rng.next_below(100)});
  }
  return edges;
}

TEST(GreedyBMatching, PicksHeaviestCompatibleEdges) {
  // Triangle 0-1-2 with b=1: only one edge fits; greedy takes the heaviest.
  std::vector<WeightedEdge> edges = {
      {pair_key(0, 1), 10}, {pair_key(1, 2), 30}, {pair_key(0, 2), 20}};
  const auto m = greedy_b_matching(3, 1, edges);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], pair_key(1, 2));
}

TEST(GreedyBMatching, RespectsDegreeCap) {
  for (std::size_t cap : {1ul, 2ul, 3ul}) {
    const auto edges = random_edges(12, 40, 7);
    const auto m = greedy_b_matching(12, cap, edges);
    EXPECT_TRUE(is_feasible_b_matching(12, cap, m));
  }
}

TEST(GreedyBMatching, SkipsZeroWeightEdges) {
  std::vector<WeightedEdge> edges = {{pair_key(0, 1), 0},
                                     {pair_key(2, 3), 5}};
  const auto m = greedy_b_matching(4, 1, edges);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], pair_key(2, 3));
}

TEST(GreedyBMatching, DeterministicTieBreaking) {
  std::vector<WeightedEdge> edges = {{pair_key(0, 1), 7},
                                     {pair_key(2, 3), 7},
                                     {pair_key(4, 5), 7}};
  const auto a = greedy_b_matching(6, 1, edges);
  const auto b = greedy_b_matching(6, 1, edges);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
}

class GreedyApproximation : public ::testing::TestWithParam<int> {};

TEST_P(GreedyApproximation, AtLeastHalfOfExactOptimum) {
  const int seed = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 6 + rng.next_below(3);
  const std::size_t cap = 1 + rng.next_below(2);
  const auto edges =
      random_edges(n, 10 + rng.next_below(8),
                   static_cast<std::uint64_t>(seed) * 31 + 5);
  const auto greedy = greedy_b_matching(n, cap, edges);
  const auto exact = exact_b_matching(n, cap, edges);
  const std::uint64_t wg = matching_weight(greedy, edges);
  const std::uint64_t we = matching_weight(exact, edges);
  EXPECT_GE(2 * wg, we) << "greedy below 1/2-approximation";
  EXPECT_LE(wg, we) << "greedy beats the exact optimum?!";
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyApproximation,
                         ::testing::Range(0, 20));

class LocalSearchImproves : public ::testing::TestWithParam<int> {};

TEST_P(LocalSearchImproves, NeverWorseThanGreedyAlwaysFeasible) {
  const int seed = GetParam();
  const std::size_t n = 14, cap = 2;
  const auto edges =
      random_edges(n, 60, 1000 + static_cast<std::uint64_t>(seed));
  const auto greedy = greedy_b_matching(n, cap, edges);
  const auto improved = local_search_b_matching(n, cap, edges, greedy);
  EXPECT_TRUE(is_feasible_b_matching(n, cap, improved));
  EXPECT_GE(matching_weight(improved, edges), matching_weight(greedy, edges));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LocalSearchImproves,
                         ::testing::Range(0, 15));

TEST(LocalSearch, FindsSwapGreedyMisses) {
  // Path 0-1-2-3 with b=1.  Weights: (1,2)=10, (0,1)=9, (2,3)=9.
  // Greedy takes (1,2) alone (weight 10); optimum is (0,1)+(2,3)=18.
  std::vector<WeightedEdge> edges = {
      {pair_key(1, 2), 10}, {pair_key(0, 1), 9}, {pair_key(2, 3), 9}};
  const auto greedy = greedy_b_matching(4, 1, edges);
  EXPECT_EQ(matching_weight(greedy, edges), 10u);
  // Single-swap local search: adding (0,1) evicts (1,2) — gain -1, no.
  // This is a known local-optimum trap for 1-swap; verify the exact solver
  // finds the true optimum (documents the approximation boundary).
  const auto exact = exact_b_matching(4, 1, edges);
  EXPECT_EQ(matching_weight(exact, edges), 18u);
}

TEST(ExactBMatching, MatchesBruteForceExpectations) {
  // Square 0-1-2-3-0 with b=1: opposite edges can pair up.
  std::vector<WeightedEdge> edges = {{pair_key(0, 1), 5},
                                     {pair_key(1, 2), 6},
                                     {pair_key(2, 3), 5},
                                     {pair_key(0, 3), 6}};
  const auto exact = exact_b_matching(4, 1, edges);
  EXPECT_EQ(matching_weight(exact, edges), 12u);  // (1,2) + (0,3)
}

TEST(MatchingWeight, IgnoresUnknownKeys) {
  std::vector<WeightedEdge> edges = {{pair_key(0, 1), 5}};
  EXPECT_EQ(matching_weight({pair_key(0, 1), pair_key(2, 3)}, edges), 5u);
}

}  // namespace
