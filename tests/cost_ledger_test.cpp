// Cost-ledger identity tests (§1.1 cost model): for every algorithm and
// every run,
//     total_cost    = routing_cost + reconfig_cost
//     reconfig_cost = α · (edge_adds + edge_removals)      [demand-aware]
// with edge cases the figures never exercise: the empty trace, a single
// request, b = 1, and α = 0 (free reconfiguration).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "scenario/registry.hpp"
#include "core/r_bma.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

// Demand-aware algorithms whose every matching mutation is charged α.
// ("rotor" is excluded: its pre-scheduled rotations are deliberately not
// charged — see OnlineBMatcher::add_matching_edge_prescheduled.)
const std::vector<std::string> kChargedAlgorithms = {"r_bma", "bma", "greedy",
                                                     "oblivious"};

void expect_ledger_identity(const OnlineBMatcher& m) {
  const CostStats& c = m.costs();
  EXPECT_EQ(c.total_cost(), c.routing_cost + c.reconfig_cost);
  EXPECT_EQ(c.reconfig_cost,
            m.instance().alpha * (c.edge_adds + c.edge_removals));
  EXPECT_LE(c.direct_serves, c.requests);
}

void run_and_check(const Instance& inst, const trace::Trace& t) {
  for (const std::string& name : kChargedAlgorithms) {
    auto alg = scenario::make_algorithm(name, inst, &t, /*seed=*/3);
    const sim::RunResult r = sim::run_to_completion(*alg, t);
    expect_ledger_identity(*alg);
    // The final checkpoint mirrors the live ledger exactly.
    const sim::Checkpoint& fin = r.final();
    EXPECT_EQ(fin.requests, t.size()) << name;
    EXPECT_EQ(fin.total_cost, alg->costs().total_cost()) << name;
    EXPECT_EQ(fin.routing_cost, alg->costs().routing_cost) << name;
    EXPECT_EQ(fin.reconfig_cost, alg->costs().reconfig_cost) << name;
  }
}

TEST(CostLedger, EmptyTrace) {
  const net::Topology topo = net::make_fat_tree(8);
  const trace::Trace t(8, "empty");
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 2;
  inst.alpha = 7;

  for (const std::string& name : kChargedAlgorithms) {
    auto alg = scenario::make_algorithm(name, inst, &t, /*seed=*/3);
    const sim::RunResult r = sim::run_to_completion(*alg, t);
    expect_ledger_identity(*alg);
    ASSERT_EQ(r.checkpoints.size(), 1u) << name;
    EXPECT_EQ(r.final().requests, 0u) << name;
    EXPECT_EQ(r.final().total_cost, 0u) << name;
    EXPECT_EQ(r.final().matching_size, 0u) << name;
  }
}

TEST(CostLedger, SingleRequest) {
  const net::Topology topo = net::make_fat_tree(8);
  trace::Trace t(8, "one");
  t.push_back(Request::make(1, 5));
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 2;
  inst.alpha = 7;
  run_and_check(inst, t);

  // The first request can never be a direct serve (matching starts empty),
  // so routing pays the fixed-network distance.
  auto alg = scenario::make_algorithm("bma", inst, &t);
  sim::run_to_completion(*alg, t);
  EXPECT_EQ(alg->costs().direct_serves, 0u);
  EXPECT_GE(alg->costs().routing_cost, topo.distances(1, 5));
}

TEST(CostLedger, DegreeBoundOne) {
  // b = 1: plain matching; heavy churn on a star workload stresses the
  // eviction paths of every algorithm.
  const net::Topology topo = net::make_star(10);
  const trace::Trace t = trace::generate_round_robin_star(10, 5000, 3);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 1;
  inst.alpha = 4;
  run_and_check(inst, t);
}

TEST(CostLedger, AlphaZero) {
  // α = 0: reconfiguration is free, so reconfig_cost must stay exactly 0
  // no matter how many edges are flipped, and total == routing.
  const net::Topology topo = net::make_fat_tree(12);
  Xoshiro256 rng(43);
  const trace::Trace t = trace::generate_zipf_pairs(12, 8000, 1.2, rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 2;
  inst.alpha = 0;

  for (const std::string& name : kChargedAlgorithms) {
    auto alg = scenario::make_algorithm(name, inst, &t, /*seed=*/3);
    sim::run_to_completion(*alg, t);
    expect_ledger_identity(*alg);
    EXPECT_EQ(alg->costs().reconfig_cost, 0u) << name;
    EXPECT_EQ(alg->costs().total_cost(), alg->costs().routing_cost) << name;
  }
}

TEST(CostLedger, AlphaZeroSingleRequestAndB1Combined) {
  // All edge cases at once: one request, b = 1, α = 0.
  const net::Topology topo = net::make_line(4);
  trace::Trace t(4, "tiny");
  t.push_back(Request::make(0, 3));
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 1;
  inst.alpha = 0;
  run_and_check(inst, t);
}

TEST(CostLedger, RotorPreScheduledOpsAreNotCharged) {
  // The demand-oblivious rotor reconfigures on its hardware duty cycle;
  // those ops are counted but cost no α.
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(47);
  const trace::Trace t = trace::generate_uniform(8, 4000, rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 2;
  inst.alpha = 9;

  auto rotor = scenario::make_algorithm("rotor", inst, &t, /*seed=*/3);
  sim::run_to_completion(*rotor, t);
  const CostStats& c = rotor->costs();
  EXPECT_EQ(c.total_cost(), c.routing_cost + c.reconfig_cost);
  EXPECT_GT(c.prescheduled_ops, 0u);
  // Any charged mutation would have to come through the charging mutators.
  EXPECT_EQ(c.reconfig_cost, inst.alpha * (c.edge_adds + c.edge_removals));
}

TEST(CostLedger, ChargedOpsMatchLedgerUnderChurn) {
  // Long mixed workload: the identity holds at every checkpoint, not just
  // at the end (cumulative fields are monotone).
  const net::Topology topo = net::make_leaf_spine(16, 4);
  Xoshiro256 rng(53);
  const trace::Trace t = trace::generate_hotspot(16, 20000, 0.25, 0.6, rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 3;
  inst.alpha = 11;

  RBma alg(inst, {.seed = 13});
  const sim::RunResult r =
      sim::run_simulation(alg, t, sim::checkpoint_grid(t.size(), 20));
  std::uint64_t prev_total = 0;
  for (const sim::Checkpoint& c : r.checkpoints) {
    EXPECT_EQ(c.total_cost, c.routing_cost + c.reconfig_cost);
    EXPECT_EQ(c.reconfig_cost, inst.alpha * (c.edge_adds + c.edge_removals));
    EXPECT_GE(c.total_cost, prev_total);
    prev_total = c.total_cost;
  }
}

}  // namespace
