// The durable run-lifecycle layer end to end: ATTACH resubscription
// (second connections, checkpoint replay with from=, finished runs),
// journal-backed crash recovery across a daemon restart (re-enqueued
// runs, stable ids, persisted quarantine streaks), the client's
// reconnect-and-ATTACH resume, and graceful drain via SHUTDOWN drain=1.
//
// The in-process counterpart of the chaos soak (cmake/chaos_soak.sh),
// which drives the same paths through the real binaries with SIGKILL.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "common/fault.hpp"
#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "sim/report.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::serve;
namespace fs = std::filesystem;

/// Same tiny/long pair the robustness suite uses: the tiny spec finishes
/// in well under a second with two checkpoints; the long one leaves time
/// to attach or drain while it still has most of its work ahead.
constexpr const char* kTinySpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=2;racks=8;requests=4000;"
    "trials=1;checkpoints=2;seed=11";
constexpr const char* kOtherSpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=2;racks=8;requests=4000;"
    "trials=1;checkpoints=2;seed=12";
constexpr const char* kLongSpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=4;racks=16;requests=1600000;"
    "trials=1;checkpoints=16;seed=3";

std::string unique_path(const std::string& tag, const std::string& suffix) {
  return "/tmp/rdcn_attach_test_" + std::to_string(::getpid()) + "_" + tag +
         suffix;
}

std::string direct_csv(const std::string& spec_text) {
  const scenario::ScenarioResult result =
      scenario::run_scenario(scenario::ScenarioSpec::parse(spec_text));
  std::ostringstream csv;
  sim::write_csv(csv, result.runs, sim::Metric::kRoutingCost);
  return csv.str();
}

ServeOptions small_options(const std::string& tag) {
  ServeOptions options;
  options.socket_path = unique_path(tag, ".sock");
  options.executors = 1;
  options.threads = 1;
  return options;
}

struct DaemonFixture {
  explicit DaemonFixture(ServeOptions options) : daemon(std::move(options)) {
    daemon.start();
    client.connect(daemon.options().socket_path);
  }
  ~DaemonFixture() {
    client.disconnect();
    daemon.stop();
  }
  Daemon daemon;
  Client client;
};

/// Nothing armed before or after any test; scratch dirs cleaned up.
struct AttachTest : ::testing::Test {
  void SetUp() override {
    fault::disarm_all();
    ::unsetenv("RDCN_FAULTS");
  }
  void TearDown() override {
    fault::disarm_all();
    for (const std::string& dir : scratch) fs::remove_all(dir);
  }
  std::string scratch_dir(const std::string& tag, const std::string& kind) {
    scratch.push_back(unique_path(tag, "." + kind));
    fs::remove_all(scratch.back());
    return scratch.back();
  }
  std::vector<std::string> scratch;
};

// ------------------------------------------------------- ATTACH protocol

TEST_F(AttachTest, SecondConnectionAttachesToInFlightRun) {
  DaemonFixture f(small_options("second_conn"));
  const Client::Submission sub = f.client.submit(kLongSpec);
  ASSERT_TRUE(sub.accepted) << sub.error;

  Client other;
  other.connect(f.daemon.options().socket_path);
  const Client::AttachResult at = other.attach(sub.id);
  ASSERT_TRUE(at.attached) << at.error;
  EXPECT_TRUE(at.state == "queued" || at.state == "running") << at.state;

  // Both subscribers stream the same run to DONE with the same payload.
  const Client::RunOutput mine = f.client.collect(sub.id);
  const Client::RunOutput theirs = other.collect(sub.id);
  EXPECT_EQ(mine.status, "ok") << mine.error;
  EXPECT_EQ(theirs.status, "ok") << theirs.error;
  EXPECT_EQ(mine.csv, theirs.csv);
  EXPECT_GE(f.daemon.stats_report().attached, 1u);
}

TEST_F(AttachTest, AttachToUnknownIdIsRefused) {
  DaemonFixture f(small_options("unknown_id"));
  const Client::AttachResult at = f.client.attach(424242);
  EXPECT_FALSE(at.attached);
  EXPECT_NE(at.error.find("unknown_run"), std::string::npos) << at.error;
}

TEST_F(AttachTest, AttachToFinishedRunReplaysCachedResult) {
  DaemonFixture f(small_options("finished"));
  const Client::Submission sub = f.client.submit(kTinySpec);
  ASSERT_TRUE(sub.accepted) << sub.error;
  ASSERT_EQ(f.client.collect(sub.id).status, "ok");

  const Client::AttachResult at = f.client.attach(sub.id);
  ASSERT_TRUE(at.attached) << at.error;
  EXPECT_EQ(at.state, "done");
  EXPECT_EQ(at.last_seq, 2u);  // checkpoints=2 in the spec
  const Client::RunOutput out = f.client.collect(sub.id);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_TRUE(out.cached);
  EXPECT_EQ(out.checkpoints, 2u);  // full replay from seq 1
  EXPECT_EQ(out.csv, direct_csv(kTinySpec));
}

TEST_F(AttachTest, AttachFromSkipsAlreadySeenCheckpoints) {
  DaemonFixture f(small_options("from_seq"));
  const Client::Submission sub = f.client.submit(kTinySpec);
  ASSERT_TRUE(sub.accepted) << sub.error;
  ASSERT_EQ(f.client.collect(sub.id).status, "ok");

  // A resuming client that already saw seq 1 asks from=2: only the
  // second checkpoint replays.
  const Client::AttachResult at = f.client.attach(sub.id, /*from=*/2);
  ASSERT_TRUE(at.attached) << at.error;
  const Client::RunOutput out = f.client.collect(sub.id);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_EQ(out.checkpoints, 1u);
}

// ------------------------------------------- client resume with a journal

TEST_F(AttachTest, ClientResumesMidRunDisconnectWithoutResubmitting) {
  ServeOptions options = small_options("resume");
  options.journal_dir = scratch_dir("resume", "journal");
  DaemonFixture f(std::move(options));

  // The ACCEPTED reply passes; the next send is dropped and the
  // connection torn down.  With a journal the daemon keeps the orphaned
  // run alive, so the client's reconnect lands on ATTACH — not a blind
  // resubmit — and the stream resumes.
  fault::arm("serve.send.drop", {.after = 1, .times = 1});
  Client::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  policy.jitter_seed = 45;
  const Client::RunOutput out = f.client.run_scenario(kTinySpec, policy);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.csv, direct_csv(kTinySpec));
  // The run executed exactly once: the resume attached to the original
  // run instead of resubmitting a second one.
  const StatsReport stats = f.daemon.stats_report();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.attached, 1u);
}

// --------------------------------------------- recovery across a restart

TEST_F(AttachTest, JournalledRunSurvivesDaemonRestart) {
  const std::string journal_dir = scratch_dir("restart", "journal");
  const std::string cache_dir = scratch_dir("restart", "cache");
  const std::string expected = direct_csv(kTinySpec);

  // Daemon A admits the run but has no executors: the run is still
  // queued — journalled, never started — when A shuts down.
  std::uint64_t id = 0;
  {
    ServeOptions options = small_options("restart_a");
    options.executors = 0;
    options.journal_dir = journal_dir;
    options.disk_cache_dir = cache_dir;
    Daemon daemon(std::move(options));
    daemon.start();
    Client client;
    client.connect(daemon.options().socket_path);
    const Client::Submission sub = client.submit(kTinySpec);
    ASSERT_TRUE(sub.accepted) << sub.error;
    id = sub.id;
    client.disconnect();
    daemon.stop();
  }

  // Daemon B on the same dirs recovers the run, executes it, and still
  // answers ATTACH by the original id.
  ServeOptions options = small_options("restart_b");
  options.journal_dir = journal_dir;
  options.disk_cache_dir = cache_dir;
  DaemonFixture f(std::move(options));
  EXPECT_GE(f.daemon.stats_report().recovered, 1u);

  const Client::AttachResult at = f.client.attach(id);
  ASSERT_TRUE(at.attached) << at.error;
  const Client::RunOutput out = f.client.collect(id);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_EQ(out.csv, expected);  // bit-identical to the direct run

  // The id counter moved past the recovered run: new ids never collide.
  const Client::Submission next = f.client.submit(kOtherSpec);
  ASSERT_TRUE(next.accepted) << next.error;
  EXPECT_GT(next.id, id);
  EXPECT_EQ(f.client.collect(next.id).status, "ok");
}

TEST_F(AttachTest, QuarantineStreakPersistsAcrossRestart) {
  const std::string journal_dir = scratch_dir("streak", "journal");

  {
    ServeOptions options = small_options("streak_a");
    options.quarantine_threshold = 2;
    options.journal_dir = journal_dir;
    DaemonFixture f(std::move(options));
    fault::arm("serve.executor.crash", {.times = 2});
    for (int i = 0; i < 2; ++i) {
      const Client::Submission sub = f.client.submit(kTinySpec);
      ASSERT_TRUE(sub.accepted) << sub.error;
      EXPECT_EQ(f.client.collect(sub.id).status, "error");
    }
    fault::disarm_all();
  }

  // The restarted daemon remembers the streak: the spec is refused at
  // admission without risking another executor.
  ServeOptions options = small_options("streak_b");
  options.quarantine_threshold = 2;
  options.journal_dir = journal_dir;
  DaemonFixture f(std::move(options));
  const Client::Submission refused = f.client.submit(kTinySpec);
  EXPECT_FALSE(refused.accepted);
  EXPECT_NE(refused.error.find("quarantined"), std::string::npos)
      << refused.error;
  // Other specs are unaffected.
  const Client::Submission other = f.client.submit(kOtherSpec);
  ASSERT_TRUE(other.accepted) << other.error;
  EXPECT_EQ(f.client.collect(other.id).status, "ok");
}

// ------------------------------------------------------------------ drain

TEST_F(AttachTest, ShutdownDrainFinishesInFlightAndRefusesNewRuns) {
  ServeOptions options = small_options("drain");
  options.drain_ms = 30'000;  // the long run must beat the budget
  Daemon daemon(std::move(options));
  daemon.start();

  Client runner;
  runner.connect(daemon.options().socket_path);
  const Client::Submission sub = runner.submit(kLongSpec);
  ASSERT_TRUE(sub.accepted) << sub.error;

  // A second connection asks for a graceful drain and gets BYE at once.
  Client admin;
  admin.connect(daemon.options().socket_path);
  admin.shutdown_daemon(/*drain=*/true);

  // New submissions are refused while draining...
  Client late;
  late.connect(daemon.options().socket_path);
  const Client::Submission refused = late.submit(kTinySpec);
  EXPECT_FALSE(refused.accepted);
  EXPECT_NE(refused.error.find("draining"), std::string::npos)
      << refused.error;

  // ...but the in-flight run streams to DONE ok, after which the daemon
  // reports itself ready to exit.
  const Client::RunOutput out = runner.collect(sub.id);
  EXPECT_EQ(out.status, "ok") << out.error;
  daemon.wait_for_shutdown_command();
  runner.disconnect();
  late.disconnect();
  daemon.stop();
}

}  // namespace
