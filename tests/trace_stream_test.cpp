// TraceStream equivalence suite: every stream_* producer must emit
// bit-identically the request sequence of its generate_* twin (same seed),
// regardless of how consumption is chunked; MaterializedStream must mirror
// its trace; and a streamed simulation must land on the same ledger as a
// materialized one.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "scenario/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/facebook_like.hpp"
#include "trace/generators.hpp"
#include "trace/microsoft_like.hpp"
#include "trace/trace_stream.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using rdcn::testing::make_instance;

struct GeneratorCase {
  std::string label;
  std::function<trace::Trace(Xoshiro256&)> generate;
  std::function<std::unique_ptr<trace::TraceStream>(const Xoshiro256&)>
      stream;
};

std::vector<GeneratorCase> generator_cases(std::size_t racks,
                                           std::size_t requests) {
  const trace::FlowPoolParams flow{.candidate_pairs = 300,
                                   .zipf_skew = 1.1,
                                   .mean_burst_length = 12.0,
                                   .max_active_flows = 24,
                                   .new_flow_prob = 0.08,
                                   .drift_period = 2500,
                                   .drift_fraction = 0.2,
                                   .hub_fraction = 0.25,
                                   .hub_bias = 0.7,
                                   .noise_fraction = 0.2};
  return {
      {"uniform",
       [=](Xoshiro256& r) { return trace::generate_uniform(racks, requests, r); },
       [=](const Xoshiro256& r) {
         return trace::stream_uniform(racks, requests, r);
       }},
      {"zipf",
       [=](Xoshiro256& r) {
         return trace::generate_zipf_pairs(racks, requests, 1.2, r);
       },
       [=](const Xoshiro256& r) {
         return trace::stream_zipf_pairs(racks, requests, 1.2, r);
       }},
      {"hotspot",
       [=](Xoshiro256& r) {
         return trace::generate_hotspot(racks, requests, 0.25, 0.7, r);
       },
       [=](const Xoshiro256& r) {
         return trace::stream_hotspot(racks, requests, 0.25, 0.7, r);
       }},
      {"permutation",
       [=](Xoshiro256& r) {
         return trace::generate_permutation(racks, requests, r);
       },
       [=](const Xoshiro256& r) {
         return trace::stream_permutation(racks, requests, r);
       }},
      {"flow_pool",
       [=](Xoshiro256& r) {
         return trace::generate_flow_pool(racks, requests, flow, r);
       },
       [=](const Xoshiro256& r) {
         return trace::stream_flow_pool(racks, requests, flow, r);
       }},
      {"elephant_mice",
       [=](Xoshiro256& r) {
         return trace::generate_elephant_mice(racks, requests, 12, 0.6, 18.0,
                                              r);
       },
       [=](const Xoshiro256& r) {
         return trace::stream_elephant_mice(racks, requests, 12, 0.6, 18.0,
                                            r);
       }},
      {"round_robin_star",
       [=](Xoshiro256&) {
         return trace::generate_round_robin_star(racks, requests, 5);
       },
       [=](const Xoshiro256&) {
         return trace::stream_round_robin_star(racks, requests, 5);
       }},
      {"facebook_db",
       [=](Xoshiro256& r) {
         return trace::generate_facebook_like(
             trace::FacebookCluster::kDatabase, racks, requests, r);
       },
       [=](const Xoshiro256& r) {
         return trace::stream_facebook_like(trace::FacebookCluster::kDatabase,
                                            racks, requests, r);
       }},
      {"microsoft",
       [=](Xoshiro256& r) {
         return trace::generate_microsoft_like(racks, requests, {}, r);
       },
       [=](const Xoshiro256& r) {
         return trace::stream_microsoft_like(racks, requests, {}, r);
       }},
  };
}

void expect_same_sequence(const trace::Trace& expected,
                          const std::vector<trace::Request>& got,
                          const std::string& label) {
  ASSERT_EQ(expected.size(), got.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].u, got[i].u) << label << " at " << i;
    ASSERT_EQ(expected[i].v, got[i].v) << label << " at " << i;
  }
}

TEST(TraceStream, EveryGeneratorStreamMatchesMaterializedTwin) {
  constexpr std::size_t kRacks = 24;
  constexpr std::size_t kRequests = 9000;
  for (const GeneratorCase& c : generator_cases(kRacks, kRequests)) {
    Xoshiro256 gen_rng(77);
    const trace::Trace expected = c.generate(gen_rng);
    ASSERT_EQ(expected.size(), kRequests) << c.label;

    auto stream = c.stream(Xoshiro256(77));
    EXPECT_EQ(stream->num_racks(), expected.num_racks()) << c.label;
    EXPECT_EQ(stream->name(), expected.name()) << c.label;
    EXPECT_EQ(stream->total(), kRequests) << c.label;

    // Consume with a chunk size that misaligns with every internal
    // structure (prime, smaller than bursts/drift periods).
    std::vector<trace::Request> got;
    got.reserve(kRequests);
    std::vector<trace::Request> chunk(997);
    while (true) {
      const std::size_t n = stream->next(chunk.data(), chunk.size());
      if (n == 0) break;
      got.insert(got.end(), chunk.begin(),
                 chunk.begin() + static_cast<std::ptrdiff_t>(n));
    }
    EXPECT_EQ(stream->produced(), kRequests) << c.label;
    expect_same_sequence(expected, got, c.label);
  }
}

TEST(TraceStream, ChunkingPatternDoesNotChangeTheSequence) {
  // Single-request pulls and one huge pull produce the same sequence.
  constexpr std::size_t kRacks = 16;
  constexpr std::size_t kRequests = 2000;
  auto one = trace::stream_zipf_pairs(kRacks, kRequests, 1.0, Xoshiro256(5));
  auto big = trace::stream_zipf_pairs(kRacks, kRequests, 1.0, Xoshiro256(5));

  std::vector<trace::Request> from_one(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i)
    ASSERT_EQ(one->next(&from_one[i], 1), 1u);
  std::vector<trace::Request> from_big(kRequests);
  ASSERT_EQ(big->next(from_big.data(), kRequests + 500), kRequests);
  EXPECT_EQ(big->next(from_big.data(), 1), 0u);  // exhausted
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_EQ(from_one[i], from_big[i]) << i;
  }
}

TEST(TraceStream, DoesNotAdvanceTheCallersRng) {
  Xoshiro256 rng(11);
  auto stream = trace::stream_uniform(16, 1000, rng);
  std::vector<trace::Request> chunk(1000);
  stream->next(chunk.data(), chunk.size());
  Xoshiro256 untouched(11);
  EXPECT_EQ(rng.next(), untouched.next());
}

TEST(TraceStream, MaterializedStreamMirrorsItsTrace) {
  Xoshiro256 rng(3);
  const trace::Trace t = trace::generate_uniform(16, 5000, rng);
  trace::MaterializedStream stream(t);
  EXPECT_EQ(stream.total(), t.size());
  std::vector<trace::Request> got;
  std::vector<trace::Request> chunk(640);
  while (true) {
    const std::size_t n = stream.next(chunk.data(), chunk.size());
    if (n == 0) break;
    got.insert(got.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(n));
  }
  expect_same_sequence(t, got, "materialized");
}

TEST(TraceStream, MaterializeRoundTrips) {
  auto stream = trace::stream_hotspot(20, 4000, 0.3, 0.6, Xoshiro256(9));
  const trace::Trace via_stream = trace::materialize(*stream);
  Xoshiro256 rng(9);
  const trace::Trace direct = trace::generate_hotspot(20, 4000, 0.3, 0.6, rng);
  ASSERT_EQ(via_stream.size(), direct.size());
  EXPECT_EQ(via_stream.name(), direct.name());
  EXPECT_EQ(via_stream.num_racks(), direct.num_racks());
  for (std::size_t i = 0; i < direct.size(); ++i)
    ASSERT_EQ(via_stream[i], direct[i]) << i;
}

TEST(TraceStream, StreamedSimulationMatchesMaterializedLedger) {
  // Serving straight from the stream (never materializing the trace) must
  // land on the same ledger at every checkpoint as the materialized run.
  const net::Topology topo = net::make_fat_tree(24);
  constexpr std::size_t kRequests = 12'000;  // spans multiple serve chunks
  Xoshiro256 rng(41);
  const trace::Trace t = trace::generate_facebook_like(
      trace::FacebookCluster::kDatabase, 24, kRequests, rng);
  const core::Instance inst = make_instance(topo.distances, 4, 30);
  const std::vector<std::uint64_t> grid = sim::checkpoint_grid(t.size(), 6);

  for (const char* algorithm : {"bma", "r_bma", "greedy"}) {
    auto from_trace = scenario::make_algorithm(algorithm, inst, &t, 2);
    const sim::RunResult materialized =
        sim::run_simulation(*from_trace, t, grid);

    auto stream = trace::stream_facebook_like(
        trace::FacebookCluster::kDatabase, 24, kRequests, Xoshiro256(41));
    auto from_stream = scenario::make_algorithm(algorithm, inst, &t, 2);
    const sim::RunResult streamed =
        sim::run_simulation(*from_stream, *stream, grid);

    ASSERT_EQ(materialized.checkpoints.size(), streamed.checkpoints.size());
    for (std::size_t i = 0; i < materialized.checkpoints.size(); ++i) {
      const sim::Checkpoint& a = materialized.checkpoints[i];
      const sim::Checkpoint& b = streamed.checkpoints[i];
      EXPECT_EQ(a.requests, b.requests) << algorithm << " cp " << i;
      EXPECT_EQ(a.routing_cost, b.routing_cost) << algorithm << " cp " << i;
      EXPECT_EQ(a.reconfig_cost, b.reconfig_cost) << algorithm << " cp " << i;
      EXPECT_EQ(a.direct_serves, b.direct_serves) << algorithm << " cp " << i;
      EXPECT_EQ(a.matching_size, b.matching_size) << algorithm << " cp " << i;
    }
  }
}

}  // namespace
