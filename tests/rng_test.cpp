// Unit tests for the deterministic RNG substrate (common/rng.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace {

using namespace rdcn;

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownFirstValueOfSeedZero) {
  // Reference value from the published SplitMix64 test vector.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, GoldenStreamAnchor) {
  // Pinned first outputs for seed 2023.  Any change to the seeding
  // construction or the xoshiro step silently re-randomizes every
  // experiment in the repo; this anchor makes such a change loud.
  Xoshiro256 g(2023);
  const std::uint64_t expected[] = {
      0x8e9b348ee3a76e7dULL, 0x9e5a3b305068383eULL, 0x682b72a6bd84eb87ULL,
      0x93adfcf06599e718ULL, 0x649cf86f14003764ULL, 0x6760764eb6cac30dULL,
  };
  for (std::uint64_t e : expected) EXPECT_EQ(g.next(), e);
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(6);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.next_below(10)];
  for (int count : seen) EXPECT_GT(count, 300);  // ~500 expected each
}

TEST(Xoshiro256, NextInInclusiveRange) {
  Xoshiro256 rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(8);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, SplitStreamsAreIndependentish) {
  Xoshiro256 parent(42);
  Xoshiro256 c1 = parent.split(1);
  Xoshiro256 c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1.next() == c2.next());
  EXPECT_LE(equal, 1);
}

TEST(Geometric, MeanMatchesTheory) {
  Xoshiro256 rng(11);
  const double p = 0.2;  // mean failures = (1-p)/p = 4
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(sample_geometric(rng, p));
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.15);
}

TEST(Geometric, PEqualOneAlwaysZero) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_geometric(rng, 1.0), 0u);
}

TEST(Exponential, MeanMatchesTheory) {
  Xoshiro256 rng(13);
  const double lambda = 0.5;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += sample_exponential(rng, lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.08);
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, ActuallyShuffles) {
  Xoshiro256 rng(15);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v.begin(), v.end(), rng);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) fixed_points += (v[i] == i);
  EXPECT_LT(fixed_points, 10);  // expected ~1
}

TEST(ZipfSampler, PmfIsNormalizedAndMonotone) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    total += zipf.pmf(i);
    if (i > 0) EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1) + 1e-12);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(zipf.pmf(i), 0.1, 1e-9);
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  Xoshiro256 rng(16);
  const ZipfSampler zipf(20, 1.2);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t i = 0; i < 20; ++i) {
    const double expected = zipf.pmf(i) * n;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 10.0);
  }
}

TEST(AliasSampler, MatchesWeights) {
  Xoshiro256 rng(17);
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  const AliasSampler sampler(w);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler(rng)];
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected = w[i] / 10.0 * n;
    EXPECT_NEAR(counts[i], expected, 0.05 * expected);
  }
}

TEST(AliasSampler, HandlesZeroWeights) {
  Xoshiro256 rng(18);
  const AliasSampler sampler({0.0, 5.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler(rng), 1u);
}

TEST(AliasSampler, SingleElement) {
  Xoshiro256 rng(19);
  const AliasSampler sampler({3.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler(rng), 0u);
}

TEST(AliasSampler, ExtremeSkew) {
  Xoshiro256 rng(20);
  std::vector<double> w(100, 1e-6);
  w[37] = 1.0;
  const AliasSampler sampler(w);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += (sampler(rng) == 37);
  EXPECT_GT(hits, 9900);
}

}  // namespace
