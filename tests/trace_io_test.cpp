// Round-trip and format tests for trace CSV I/O (trace/trace_io.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "common/param_map.hpp"  // SpecError
#include "common/rng.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::trace;

TEST(TraceIo, RoundTripPreservesEverything) {
  Xoshiro256 rng(1);
  const Trace original = generate_uniform(15, 500, rng);
  std::stringstream buffer;
  write_csv(original, buffer);
  const Trace loaded = read_csv(buffer);
  EXPECT_EQ(loaded.num_racks(), original.num_racks());
  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

TEST(TraceIo, HeaderCarriesMetadata) {
  Trace t(9, "myname");
  t.push_back(Request::make(1, 2));
  std::stringstream buffer;
  write_csv(t, buffer);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# racks=9 name=myname"), std::string::npos);
}

TEST(TraceIo, MissingHeaderInfersUniverse) {
  std::stringstream in("0,5\n3,4\n");
  const Trace t = read_csv(in);
  EXPECT_EQ(t.num_racks(), 6u);  // max id 5 -> 6 racks
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], Request::make(0, 5));
}

TEST(TraceIo, NormalizesPairOrder) {
  std::stringstream in("7,2\n");
  const Trace t = read_csv(in);
  EXPECT_EQ(t[0].u, 2u);
  EXPECT_EQ(t[0].v, 7u);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream in("# racks=4 name=x\n\n0,1\n\n2,3\n");
  const Trace t = read_csv(in);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TraceIo, RejectsTrailingGarbageAndSigns) {
  // Regression: the std::stoull-based importer silently truncated "12abc"
  // to 12 and accepted negative ids via unsigned wrap-around.  Every
  // malformed field must be a SpecError naming the source and line.
  for (const char* body : {"12abc,3", "1,3.5", "-1,3", "2,+4", "1,", ",2"}) {
    std::stringstream in(std::string("0,1\n") + body + "\n");
    try {
      read_csv(in, "bad.csv");
      FAIL() << "accepted malformed line: " << body;
    } catch (const SpecError& e) {
      EXPECT_NE(std::string(e.what()).find("bad.csv:2"), std::string::npos)
          << body << " -> " << e.what();
    }
  }
}

TEST(TraceIo, RejectsMissingComma) {
  std::stringstream in("07\n");
  try {
    read_csv(in, "x.csv");
    FAIL();
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("x.csv:1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("src,dst"), std::string::npos);
  }
}

TEST(TraceIo, RejectsSelfLoops) {
  std::stringstream in("3,3\n");
  EXPECT_THROW(read_csv(in), SpecError);
}

TEST(TraceIo, RejectsRackIdOverflow) {
  // Rack is 32-bit; ids beyond it must error, not wrap.
  std::stringstream in("0,4294967296\n");
  try {
    read_csv(in, "big.csv");
    FAIL();
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos);
  }
}

TEST(TraceIo, RejectsMalformedHeaderRacks) {
  std::stringstream in("# racks=12q name=x\n0,1\n");
  EXPECT_THROW(read_csv(in), SpecError);
}

TEST(TraceIo, RejectsRackBeyondDeclaredUniverse) {
  std::stringstream in("# racks=4\n0,7\n");
  EXPECT_THROW(read_csv(in), SpecError);
}

TEST(TraceIo, UnopenablePathIsSpecError) {
  try {
    read_csv_file("/nonexistent/dir/trace.csv");
    FAIL();
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/trace.csv"),
              std::string::npos);
  }
}

TEST(TraceIo, FileRoundTrip) {
  Xoshiro256 rng(2);
  const Trace original = generate_uniform(8, 100, rng);
  const std::string path = ::testing::TempDir() + "/rdcn_trace_test.csv";
  write_csv_file(original, path);
  const Trace loaded = read_csv_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

}  // namespace
