// Round-trip and format tests for trace CSV I/O (trace/trace_io.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::trace;

TEST(TraceIo, RoundTripPreservesEverything) {
  Xoshiro256 rng(1);
  const Trace original = generate_uniform(15, 500, rng);
  std::stringstream buffer;
  write_csv(original, buffer);
  const Trace loaded = read_csv(buffer);
  EXPECT_EQ(loaded.num_racks(), original.num_racks());
  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

TEST(TraceIo, HeaderCarriesMetadata) {
  Trace t(9, "myname");
  t.push_back(Request::make(1, 2));
  std::stringstream buffer;
  write_csv(t, buffer);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# racks=9 name=myname"), std::string::npos);
}

TEST(TraceIo, MissingHeaderInfersUniverse) {
  std::stringstream in("0,5\n3,4\n");
  const Trace t = read_csv(in);
  EXPECT_EQ(t.num_racks(), 6u);  // max id 5 -> 6 racks
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], Request::make(0, 5));
}

TEST(TraceIo, NormalizesPairOrder) {
  std::stringstream in("7,2\n");
  const Trace t = read_csv(in);
  EXPECT_EQ(t[0].u, 2u);
  EXPECT_EQ(t[0].v, 7u);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream in("# racks=4 name=x\n\n0,1\n\n2,3\n");
  const Trace t = read_csv(in);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TraceIo, FileRoundTrip) {
  Xoshiro256 rng(2);
  const Trace original = generate_uniform(8, 100, rng);
  const std::string path = ::testing::TempDir() + "/rdcn_trace_test.csv";
  write_csv_file(original, path);
  const Trace loaded = read_csv_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

}  // namespace
