// Layout guarantees of the unified per-pair record (core/pair_state.hpp):
// the whole point of the unification is that one FlatMap slot holds all
// request-path state, so the packing is load-bearing for performance and
// pinned down here.
#include <gtest/gtest.h>

#include <cstddef>
#include <type_traits>

#include "common/flat_hash.hpp"
#include "core/pair_state.hpp"

namespace {

using rdcn::FlatMap;
using rdcn::core::PairState;

TEST(PairState, StaysTightlyPacked) {
  EXPECT_EQ(sizeof(PairState), 24u);
  EXPECT_EQ(alignof(PairState), 8u);
  EXPECT_TRUE(std::is_trivially_copyable_v<PairState>);
  EXPECT_TRUE(std::is_standard_layout_v<PairState>);
}

TEST(PairState, ScanHotFieldsLead) {
  // The Θ(b) eviction scan reads only {usage, admitted_at}; they must stay
  // at the front of the record so they share the slot's first cache line
  // with the key.  `charge` is the scan-cold field and goes last.
  EXPECT_EQ(offsetof(PairState, usage), 0u);
  EXPECT_EQ(offsetof(PairState, admitted_at), 8u);
  EXPECT_EQ(offsetof(PairState, charge), 16u);
}

TEST(PairState, DefaultStateIsUnmatchedZero) {
  const PairState s;
  EXPECT_EQ(s.charge, 0u);
  EXPECT_EQ(s.usage, 0u);
  EXPECT_EQ(s.admitted_at, 0u);
}

TEST(PairState, LivesInFlatMapWithValidatedSlotAccess) {
  // The BMA request path stores slot indexes for PairState records and
  // revalidates them via at_index; model that usage pattern end-to-end.
  FlatMap<PairState> m;
  m[7].charge = 41;
  const std::size_t slot = m.find_index(7);
  ASSERT_NE(slot, FlatMap<PairState>::kNoSlot);
  ASSERT_NE(m.at_index(slot, 7), nullptr);
  EXPECT_EQ(m.at_index(slot, 7)->charge, 41u);
  // A different key never validates through the cached slot.
  EXPECT_EQ(m.at_index(slot, 8), nullptr);
  // After an erase the stale index must miss rather than resurrect data.
  m.erase(7);
  EXPECT_EQ(m.at_index(slot, 7), nullptr);
}

}  // namespace
