// The observability subsystem (src/obs): counter/gauge/histogram
// semantics, registry interning and type checks, Prometheus text
// exposition, JSON snapshots, the fault-firing observer, and the RAII
// phase spans — including the "phase totals track wall clock" contract
// that rdcn_sim --profile reports rely on.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/param_map.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using namespace rdcn;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, SumsAcrossThreadStripes) {
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 8000u);
}

TEST(Gauge, SetAddAndNegativeValues) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
}

TEST(Histogram, BucketBoundsAreInclusiveUpperEdges) {
  obs::Histogram h({100, 1000, 10000});
  h.observe_ns(100);    // lands in le=100 (inclusive)
  h.observe_ns(101);    // le=1000
  h.observe_ns(10000);  // le=10000
  h.observe_ns(10001);  // +Inf
  EXPECT_EQ(h.cumulative(0), 1u);  // <= 100
  EXPECT_EQ(h.cumulative(1), 2u);  // <= 1000
  EXPECT_EQ(h.cumulative(2), 3u);  // <= 10000
  EXPECT_EQ(h.cumulative(3), 4u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 100u + 101u + 10000u + 10001u);
}

TEST(Histogram, ObserveSecondsConvertsAndClampsNegatives) {
  obs::Histogram h({1000, 1000000});
  h.observe_seconds(0.0000005);  // 500 ns -> first bucket
  h.observe_seconds(-1.0);       // clamped to 0 -> first bucket
  EXPECT_EQ(h.cumulative(0), 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, DefaultLatencyBucketsSpanMicrosecondsToMinutes) {
  const std::vector<std::uint64_t> bounds =
      obs::default_latency_buckets_ns();
  ASSERT_EQ(bounds.size(), 14u);
  EXPECT_EQ(bounds.front(), 1000u);  // 1 us
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_EQ(bounds[i], bounds[i - 1] * 4);
  EXPECT_GT(bounds.back(), 60'000'000'000ull);  // past a minute
}

TEST(Registry, InterningReturnsTheSameHandle) {
  obs::Registry r;
  obs::Counter& a = r.counter("reqs_total", "requests");
  obs::Counter& b = r.counter("reqs_total", "requests");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(r.counter_value("reqs_total"), 1u);
}

TEST(Registry, LabelOrderIsCanonicalized) {
  obs::Registry r;
  obs::Counter& a =
      r.counter("io_total", "io", {{"op", "read"}, {"dev", "sda"}});
  obs::Counter& b =
      r.counter("io_total", "io", {{"dev", "sda"}, {"op", "read"}});
  obs::Counter& c = r.counter("io_total", "io", {{"op", "write"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.add(3);
  EXPECT_EQ(r.counter_value("io_total", {{"dev", "sda"}, {"op", "read"}}),
            3u);
  EXPECT_EQ(r.counter_value("io_total", {{"op", "write"}}), 0u);
}

TEST(Registry, TypeConflictThrows) {
  obs::Registry r;
  r.counter("thing", "a counter");
  EXPECT_THROW(r.gauge("thing", "now a gauge"), SpecError);
  EXPECT_THROW(r.histogram("thing", "now a histogram", {1000}), SpecError);
}

TEST(Registry, AbsentMetricsReadAsZero) {
  obs::Registry r;
  EXPECT_EQ(r.counter_value("never_registered"), 0u);
  EXPECT_EQ(r.gauge_value("never_registered"), 0);
}

TEST(Registry, PrometheusExpositionFormat) {
  obs::Registry r;
  r.counter("runs_total", "Runs by status", {{"status", "ok"}}).add(3);
  r.counter("runs_total", "Runs by status", {{"status", "error"}});
  r.gauge("depth", "Queue depth").set(-2);
  obs::Histogram& h = r.histogram("lat_seconds", "Latency", {1000, 1000000});
  h.observe_ns(500);
  h.observe_ns(2000);

  const std::string text = r.render_prometheus();
  // Families are sorted by name; children stay in registration order.
  EXPECT_EQ(text,
            "# HELP depth Queue depth\n"
            "# TYPE depth gauge\n"
            "depth -2\n"
            "# HELP lat_seconds Latency\n"
            "# TYPE lat_seconds histogram\n"
            "lat_seconds_bucket{le=\"1e-06\"} 1\n"
            "lat_seconds_bucket{le=\"0.001\"} 2\n"
            "lat_seconds_bucket{le=\"+Inf\"} 2\n"
            "lat_seconds_sum 2.5e-06\n"
            "lat_seconds_count 2\n"
            "# HELP runs_total Runs by status\n"
            "# TYPE runs_total counter\n"
            "runs_total{status=\"ok\"} 3\n"
            "runs_total{status=\"error\"} 0\n");
}

TEST(Registry, PrometheusEscapesLabelValues) {
  obs::Registry r;
  r.counter("weird_total", "odd labels", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = r.render_prometheus();
  EXPECT_NE(text.find("weird_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos);
}

TEST(Registry, JsonSnapshotShape) {
  obs::Registry r;
  r.counter("c_total", "c").add(5);
  r.gauge("g", "g").set(-1);
  r.histogram("h_seconds", "h", {1000}).observe_ns(2000);
  EXPECT_EQ(r.render_json(),
            "{\"c_total\":5,"
            "\"g\":-1,"
            "\"h_seconds\":{\"count\":1,\"sum_seconds\":2e-06,"
            "\"buckets\":{\"1e-06\":0,\"+Inf\":1}}}");
}

TEST(FaultObserver, CountsFiringsByPoint) {
  obs::install_fault_observer();
  fault::disarm_all();
  fault::arm("obs_test.point", {.times = 2});
  const std::uint64_t before = obs::Registry::global().counter_value(
      "rdcn_fault_fires_total", {{"point", "obs_test.point"}});
  EXPECT_TRUE(fault::fire("obs_test.point"));
  EXPECT_TRUE(fault::fire("obs_test.point"));
  EXPECT_FALSE(fault::fire("obs_test.point"));  // times=2 exhausted
  fault::disarm_all();
  EXPECT_EQ(obs::Registry::global().counter_value(
                "rdcn_fault_fires_total", {{"point", "obs_test.point"}}),
            before + 2);
}

TEST(Span, DisabledSpansRecordNothing) {
  obs::set_tracing(false);
  obs::reset_traces();
  { obs::ObsSpan span("obs_test.disabled"); }
  EXPECT_EQ(obs::phase_total_ns(obs::collect_phases(), "obs_test.disabled"),
            0u);
}

TEST(Span, NestedSpansFormAMergedTree) {
  obs::set_tracing(true);
  obs::reset_traces();
  for (int i = 0; i < 3; ++i) {
    obs::ObsSpan outer("obs_test.outer");
    obs::ObsSpan inner("obs_test.inner");
  }
  obs::set_tracing(false);

  const std::vector<obs::PhaseTotal> phases = obs::collect_phases();
  const obs::PhaseTotal* outer = nullptr;
  const obs::PhaseTotal* inner = nullptr;
  for (const obs::PhaseTotal& p : phases) {
    if (p.name == "obs_test.outer") outer = &p;
    if (p.name == "obs_test.inner") inner = &p;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_EQ(inner->depth, outer->depth + 1);
  EXPECT_EQ(inner->path, outer->path + "/obs_test.inner");
  // The child ran strictly inside the parent.
  EXPECT_LE(inner->total_ns, outer->total_ns);
}

TEST(Span, PhaseTotalsTrackWallClock) {
  // The --profile contract: a root span's total tracks the wall clock of
  // the region it brackets (within 5%), and child phases sum to no more
  // than the root.
  obs::set_tracing(true);
  obs::reset_traces();
  const std::uint64_t wall_begin = monotonic_now_ns();
  {
    obs::ObsSpan root("obs_test.root");
    {
      obs::ObsSpan child("obs_test.work");
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    {
      obs::ObsSpan child("obs_test.more_work");
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  }
  const std::uint64_t wall_ns = monotonic_now_ns() - wall_begin;
  obs::set_tracing(false);

  const std::vector<obs::PhaseTotal> phases = obs::collect_phases();
  const std::uint64_t root_ns = obs::phase_total_ns(phases, "obs_test.root");
  const std::uint64_t child_ns =
      obs::phase_total_ns(phases, "obs_test.work") +
      obs::phase_total_ns(phases, "obs_test.more_work");
  ASSERT_GT(root_ns, 0u);
  EXPECT_LE(root_ns, wall_ns);
  EXPECT_GE(root_ns, wall_ns - wall_ns / 20);  // within 5% of wall
  EXPECT_LE(child_ns, root_ns);
  EXPECT_GE(child_ns, root_ns - root_ns / 20);
}

TEST(Span, CollectPhasesSurvivesWideTrees) {
  // Regression: flatten() once recursed with a reference into the output
  // vector as the path prefix; a reallocation mid-recursion left it
  // dangling.  A tree with enough rows to force several reallocations
  // must still produce every path intact.
  static const char* const kKids[] = {"obs_test.k0", "obs_test.k1",
                                      "obs_test.k2", "obs_test.k3",
                                      "obs_test.k4", "obs_test.k5",
                                      "obs_test.k6", "obs_test.k7"};
  static const char* const kGrand[] = {"obs_test.g0", "obs_test.g1"};
  obs::set_tracing(true);
  obs::reset_traces();
  {
    obs::ObsSpan root("obs_test.wide_root");
    for (const char* kid : kKids) {
      obs::ObsSpan k(kid);
      for (const char* grand : kGrand) obs::ObsSpan g(grand);
    }
  }
  obs::set_tracing(false);
  const std::vector<obs::PhaseTotal> phases = obs::collect_phases();
  for (const char* kid : kKids)
    for (const char* grand : kGrand) {
      const std::string want =
          std::string("obs_test.wide_root/") + kid + "/" + grand;
      bool found = false;
      for (const obs::PhaseTotal& p : phases)
        if (p.path == want) {
          found = true;
          EXPECT_EQ(p.depth, 2);
          EXPECT_EQ(p.count, 1u);
        }
      EXPECT_TRUE(found) << "missing path " << want;
    }
}

TEST(Span, ProfileReportListsPhases) {
  obs::set_tracing(true);
  obs::reset_traces();
  {
    obs::ObsSpan outer("obs_test.report_outer");
    obs::ObsSpan inner("obs_test.report_inner");
  }
  obs::set_tracing(false);
  std::ostringstream out;
  obs::write_profile_report(out);
  EXPECT_NE(out.str().find("obs_test.report_outer"), std::string::npos);
  EXPECT_NE(out.str().find("obs_test.report_inner"), std::string::npos);
}

TEST(Span, TraceJsonIsNested) {
  obs::set_tracing(true);
  obs::reset_traces();
  {
    obs::ObsSpan outer("obs_test.json_outer");
    obs::ObsSpan inner("obs_test.json_inner");
  }
  obs::set_tracing(false);
  const std::string json = obs::trace_json();
  const std::size_t outer_pos = json.find("\"obs_test.json_outer\"");
  const std::size_t inner_pos = json.find("\"obs_test.json_inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);  // child serialized inside the parent
}

}  // namespace
