// Unit + property tests for the paging engines (src/paging).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.hpp"
#include "paging/belady.hpp"
#include "paging/factory.hpp"
#include "paging/lru.hpp"
#include "paging/marking.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::paging;

std::vector<Key> drive(PagingAlgorithm& alg, const std::vector<Key>& seq) {
  std::vector<Key> all_evicted, evicted;
  for (Key k : seq) {
    evicted.clear();
    alg.request(k, evicted);
    for (Key e : evicted) all_evicted.push_back(e);
  }
  return all_evicted;
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  Lru lru(3);
  std::vector<Key> ev;
  drive(lru, {1, 2, 3});
  EXPECT_EQ(lru.faults(), 3u);
  lru.request(1, ev);  // hit: 1 becomes most recent
  EXPECT_TRUE(ev.empty());
  lru.request(4, ev);  // fault: 2 is LRU
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 2u);
  EXPECT_TRUE(lru.contains(1));
  EXPECT_TRUE(lru.contains(3));
  EXPECT_TRUE(lru.contains(4));
}

TEST(Lru, HitChainKeepsEverythingResident) {
  Lru lru(2);
  drive(lru, {1, 2, 1, 2, 1, 2, 1, 2});
  EXPECT_EQ(lru.faults(), 2u);
  EXPECT_EQ(lru.hits(), 6u);
}

TEST(Fifo, EvictsInInsertionOrderRegardlessOfHits) {
  auto fifo = make_engine(EngineKind::kFifo, 2, Xoshiro256(1));
  std::vector<Key> ev;
  drive(*fifo, {1, 2, 1, 1, 1});  // many hits on 1
  fifo->request(3, ev);           // evicts 1 (first in), not 2
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 1u);
}

TEST(Marking, NeverEvictsMarkedKeys) {
  Marking m(3, Xoshiro256(5));
  std::vector<Key> ev;
  drive(m, {1, 2, 3});
  // All three were faulted in => marked. Requesting 4 starts a new phase;
  // 4 is then marked, the victim is a random unmarked one of {1,2,3}.
  m.request(4, ev);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_TRUE(m.contains(4));
  EXPECT_TRUE(m.is_marked(4));
  EXPECT_EQ(m.phases(), 1u);
  // Now mark one survivor by requesting it: it must survive the next fault.
  const Key survivor = m.cached_keys()[0] == 4 ? m.cached_keys()[1]
                                               : m.cached_keys()[0];
  m.request(survivor, ev);
  ev.clear();
  m.request(77, ev);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_NE(ev[0], survivor);
  EXPECT_NE(ev[0], 4u);
}

TEST(Marking, PhaseCountMatchesDistinctKeyBlocks) {
  Marking m(2, Xoshiro256(6));
  // Blocks of 2 distinct keys: {1,2}, {3,4}, {5,6} => 2 new phases after
  // the first block fills the cache.
  drive(m, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.phases(), 2u);
}

TEST(Belady, FaultsMatchHandComputedExample) {
  // Classic example: capacity 3, sequence 1 2 3 4 1 2 5 1 2 3 4 5.
  const std::vector<Key> seq = {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
  // OPT(MIN) faults: 1,2,3 (cold), 4 (evict 3), 5 (evict 4), 3, 4 -> total 7.
  EXPECT_EQ(Belady::optimal_faults(3, seq), 7u);
}

TEST(Factory, RoundTripNames) {
  for (const char* name : {"marking", "lru", "fifo", "clock", "random",
                           "flush_when_full", "lfu", "arc"}) {
    const EngineKind kind = parse_engine(name);
    EXPECT_EQ(engine_name(kind), name);
    auto engine = make_engine(kind, 4, Xoshiro256(1));
    EXPECT_EQ(engine->name(), name);
    EXPECT_EQ(engine->capacity(), 4u);
  }
}

// ---------------------------------------------------------------------------
// Property sweep over all engines and capacities.
// ---------------------------------------------------------------------------

class EngineProperty
    : public ::testing::TestWithParam<std::tuple<EngineKind, int>> {};

TEST_P(EngineProperty, CoreInvariantsUnderRandomWorkload) {
  const auto [kind, capacity] = GetParam();
  auto engine = make_engine(kind, capacity, Xoshiro256(11));
  Xoshiro256 rng(12);

  std::vector<Key> evicted;
  std::uint64_t requests = 0;
  for (int step = 0; step < 20000; ++step) {
    const Key k = 1 + rng.next_below(3 * static_cast<std::uint64_t>(capacity));
    evicted.clear();
    engine->request(k, evicted);
    ++requests;
    // 1. The requested key is always resident afterwards (non-bypassing).
    ASSERT_TRUE(engine->contains(k));
    // 2. Capacity is never exceeded.
    ASSERT_LE(engine->size(), engine->capacity());
    // 3. Evicted keys are truly gone (unless re-requested — not here).
    for (Key e : evicted) {
      if (e != k) {
        ASSERT_FALSE(engine->contains(e));
      }
    }
    // 4. Ledger: hits + faults == requests.
    ASSERT_EQ(engine->hits() + engine->faults(), requests);
  }
}

TEST_P(EngineProperty, ResetRestoresColdState) {
  const auto [kind, capacity] = GetParam();
  auto engine = make_engine(kind, capacity, Xoshiro256(21));
  std::vector<Key> evicted;
  for (Key k = 1; k <= 50; ++k) engine->request(k, evicted);
  engine->reset();
  EXPECT_EQ(engine->size(), 0u);
  EXPECT_EQ(engine->faults(), 0u);
  EXPECT_EQ(engine->hits(), 0u);
  // Still works after reset.
  evicted.clear();
  engine->request(7, evicted);
  EXPECT_TRUE(engine->contains(7));
  EXPECT_EQ(engine->faults(), 1u);
}

TEST_P(EngineProperty, WorkingSetWithinCapacityNeverRefaults) {
  const auto [kind, capacity] = GetParam();
  auto engine = make_engine(kind, capacity, Xoshiro256(31));
  Xoshiro256 rng(32);
  std::vector<Key> evicted;
  // Touch exactly `capacity` keys, then hammer them in random order: after
  // the cold misses no engine may fault again.
  for (Key k = 1; k <= static_cast<Key>(capacity); ++k)
    engine->request(k, evicted);
  const std::uint64_t cold = engine->faults();
  EXPECT_EQ(cold, static_cast<std::uint64_t>(capacity));
  for (int i = 0; i < 5000; ++i) {
    const Key k = 1 + rng.next_below(capacity);
    evicted.clear();
    engine->request(k, evicted);
  }
  EXPECT_EQ(engine->faults(), cold);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineProperty,
    ::testing::Combine(::testing::Values(EngineKind::kMarking,
                                         EngineKind::kLru, EngineKind::kFifo,
                                         EngineKind::kClock,
                                         EngineKind::kRandom,
                                         EngineKind::kFlushWhenFull,
                                         EngineKind::kLfu, EngineKind::kArc),
                       ::testing::Values(1, 2, 3, 8, 17)));

}  // namespace
