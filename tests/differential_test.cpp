// Differential tests: cross-check optimized data structures against naive
// reference implementations under randomized workloads.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/b_matching.hpp"
#include "core/cost_model.hpp"
#include "core/oblivious.hpp"
#include "core/r_bma.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

/// Naive b-matching: std::set of pairs + std::map degree counting.
class ReferenceMatching {
 public:
  ReferenceMatching(std::size_t n, std::size_t cap) : n_(n), cap_(cap) {}

  bool has(Rack u, Rack v) const {
    return edges_.count(ordered(u, v)) > 0;
  }
  std::size_t degree(Rack u) const {
    const auto it = degree_.find(u);
    return it == degree_.end() ? 0 : it->second;
  }
  bool can_add(Rack u, Rack v) const {
    return !has(u, v) && degree(u) < cap_ && degree(v) < cap_;
  }
  void add(Rack u, Rack v) {
    edges_.insert(ordered(u, v));
    ++degree_[u];
    ++degree_[v];
  }
  void remove(Rack u, Rack v) {
    edges_.erase(ordered(u, v));
    --degree_[u];
    --degree_[v];
  }
  std::size_t size() const { return edges_.size(); }

 private:
  static std::pair<Rack, Rack> ordered(Rack u, Rack v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }
  std::size_t n_, cap_;
  std::set<std::pair<Rack, Rack>> edges_;
  std::map<Rack, std::size_t> degree_;
};

TEST(Differential, BMatchingAgainstNaiveReference) {
  Xoshiro256 rng(61);
  const std::size_t n = 20, cap = 3;
  BMatching fast(n, cap);
  ReferenceMatching ref(n, cap);
  for (int step = 0; step < 100000; ++step) {
    const Rack u = static_cast<Rack>(rng.next_below(n));
    Rack v = static_cast<Rack>(rng.next_below(n - 1));
    if (v >= u) ++v;
    ASSERT_EQ(fast.has(u, v), ref.has(u, v));
    if (ref.has(u, v)) {
      fast.remove(u, v);
      ref.remove(u, v);
    } else if (ref.can_add(u, v)) {
      fast.add(u, v);
      ref.add(u, v);
    }
    ASSERT_EQ(fast.size(), ref.size());
    ASSERT_EQ(fast.degree(u), ref.degree(u));
    ASSERT_EQ(fast.degree(v), ref.degree(v));
  }
  EXPECT_TRUE(fast.check_invariants());
}

TEST(Differential, SimulatorLedgerAgainstNaiveAccounting) {
  // Recompute R-BMA's routing ledger independently: walk the trace,
  // querying the matching before each serve.
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(62);
  const trace::Trace t = trace::generate_zipf_pairs(16, 15000, 1.1, rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 3;
  inst.alpha = 12;

  RBma alg(inst, {.seed = 5});
  std::uint64_t naive_routing = 0;
  std::uint64_t naive_direct = 0;
  for (const Request& r : t) {
    if (alg.matching().has(r.u, r.v)) {
      naive_routing += 1;
      ++naive_direct;
    } else {
      naive_routing += topo.distances(r.u, r.v);
    }
    alg.serve(r);
  }
  EXPECT_EQ(alg.costs().routing_cost, naive_routing);
  EXPECT_EQ(alg.costs().direct_serves, naive_direct);
}

TEST(Differential, StaticCostEvaluatorAgainstObliviousRun) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(63);
  const trace::Trace t = trace::generate_uniform(16, 8000, rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 2;
  inst.alpha = 5;

  Oblivious obl(inst);
  for (const Request& r : t) obl.serve(r);
  EXPECT_EQ(obl.costs().routing_cost, oblivious_cost(inst, t));
  EXPECT_EQ(obl.costs().routing_cost, static_routing_cost(inst, t, {}));
}

}  // namespace
