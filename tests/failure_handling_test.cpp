// Failure-injection tests: the library must fail loudly and immediately on
// misuse (RDCN_ASSERT aborts; spec-string entry points throw SpecError so
// drivers can report and exit), never silently corrupt an experiment.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "scenario/registry.hpp"
#include "net/topology.hpp"
#include "paging/belady.hpp"
#include "paging/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace rdcn;

TEST(FailureHandling, UnknownMatcherNameThrows) {
  const auto d = net::DistanceMatrix::uniform(4, 1);
  core::Instance inst;
  inst.distances = &d;
  inst.b = 1;
  EXPECT_THROW(scenario::make_algorithm("definitely_not_an_algorithm", inst),
               SpecError);
}

TEST(FailureHandling, SoBmaWithoutTraceThrows) {
  const auto d = net::DistanceMatrix::uniform(4, 1);
  core::Instance inst;
  inst.distances = &d;
  inst.b = 1;
  EXPECT_THROW(scenario::make_algorithm("so_bma", inst, nullptr), SpecError);
}

TEST(FailureHandling, UnknownAlgorithmParameterThrows) {
  const auto d = net::DistanceMatrix::uniform(4, 1);
  core::Instance inst;
  inst.distances = &d;
  inst.b = 1;
  EXPECT_THROW(scenario::make_algorithm("r_bma:enginee=lru", inst), SpecError);
}

TEST(FailureHandling, UnknownPagingEngineAborts) {
  EXPECT_DEATH(paging::parse_engine("belady2"), "unknown paging engine");
}

// Trace import takes user files, so its failures are SpecError (report
// and keep serving) rather than asserts — the serving daemon must survive
// a malformed upload.  Detailed message/location coverage lives in
// trace_io_test; here we pin the failure *mode*.
TEST(FailureHandling, MalformedTraceLineThrows) {
  std::stringstream in("0;1\n");
  EXPECT_THROW(trace::read_csv(in), SpecError);
}

TEST(FailureHandling, SelfLoopRequestThrows) {
  std::stringstream in("3,3\n");
  EXPECT_THROW(trace::read_csv(in), SpecError);
}

TEST(FailureHandling, RackIdBeyondDeclaredUniverseThrows) {
  std::stringstream in("# racks=3 name=x\n0,7\n");
  EXPECT_THROW(trace::read_csv(in), SpecError);
}

TEST(FailureHandling, MissingTraceFileThrows) {
  EXPECT_THROW(trace::read_csv_file("/nonexistent/rdcn/trace.csv"),
               SpecError);
}

TEST(FailureHandling, BeladyReplayDivergenceAborts) {
  paging::Belady b(2, {1, 2, 3});
  std::vector<paging::Key> ev;
  b.request(1, ev);
  EXPECT_DEATH(b.request(9, ev), "diverged");
}

TEST(FailureHandling, BeladyOverrunAborts) {
  paging::Belady b(2, {1});
  std::vector<paging::Key> ev;
  b.request(1, ev);
  EXPECT_DEATH(b.request(1, ev), "past its announced sequence");
}

TEST(FailureHandling, NonIncreasingCheckpointsAbort) {
  const auto d = net::DistanceMatrix::uniform(4, 1);
  core::Instance inst;
  inst.distances = &d;
  inst.b = 1;
  auto m = scenario::make_algorithm("oblivious", inst);
  trace::Trace t(4, "x");
  t.push_back(trace::Request::make(0, 1));
  t.push_back(trace::Request::make(0, 1));
  EXPECT_DEATH(sim::run_simulation(*m, t, {2, 1}), "non-decreasing");
}

TEST(FailureHandling, DisconnectedTopologyAborts) {
  // Distance matrix construction requires all racks reachable.
  net::Graph g(4);
  g.add_edge(0, 1);  // 2 and 3 isolated
  g.finalize();
  EXPECT_DEATH(net::DistanceMatrix(g, {0, 1, 2, 3}), "connect all racks");
}

}  // namespace
