// Unit tests for SmallVector (common/small_vector.hpp).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/small_vector.hpp"

namespace {

using rdcn::SmallVector;

TEST(SmallVector, StartsEmptyWithInlineCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushBackWithinInline) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i * 10);
}

TEST(SmallVector, SpillsToHeapPreservingContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, InitializerList) {
  SmallVector<int, 4> v = {1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVector, CopySemantics) {
  SmallVector<int, 2> v = {1, 2, 3, 4};  // heap-backed
  SmallVector<int, 2> copy(v);
  EXPECT_EQ(copy.size(), 4u);
  copy[0] = 99;
  EXPECT_EQ(v[0], 1);  // deep copy
  v = copy;
  EXPECT_EQ(v[0], 99);
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const int* data = v.data();
  SmallVector<int, 2> moved(std::move(v));
  EXPECT_EQ(moved.data(), data);  // buffer stolen, no copy
  EXPECT_EQ(moved.size(), 50u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(SmallVector, MoveInlineCopies) {
  SmallVector<int, 8> v = {7, 8};
  SmallVector<int, 8> moved(std::move(v));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], 7);
}

TEST(SmallVector, SwapEraseIsO1AndUnordered) {
  SmallVector<int, 8> v = {10, 20, 30, 40};
  v.swap_erase(1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 40);  // last element moved in
}

TEST(SmallVector, EraseValueRemovesFirstOccurrence) {
  SmallVector<int, 8> v = {5, 6, 7};
  EXPECT_TRUE(v.erase_value(6));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(6));
  EXPECT_FALSE(v.erase_value(6));
}

TEST(SmallVector, ContainsAndBack) {
  SmallVector<std::uint32_t, 4> v = {3, 1, 4};
  EXPECT_TRUE(v.contains(4));
  EXPECT_FALSE(v.contains(9));
  EXPECT_EQ(v.back(), 4u);
  v.pop_back();
  EXPECT_EQ(v.back(), 1u);
}

TEST(SmallVector, ClearKeepsCapacity) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVector, RangeForIteration) {
  SmallVector<int, 4> v = {1, 2, 3, 4, 5};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 15);
}

}  // namespace
