// Determinism regression tests: the same seed must yield bit-identical
// RNG streams and bit-identical simulation cost ledgers across runs.
// Guards the repo's core reproducibility contract (common/rng.hpp: "every
// randomized component receives an explicitly seeded generator so that
// experiments are bit-reproducible").
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/bma.hpp"
#include "scenario/registry.hpp"
#include "core/r_bma.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

TEST(Determinism, Xoshiro256SameSeedSameStream) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "stream diverged at step " << i;
  }
}

TEST(Determinism, Xoshiro256DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Determinism, Xoshiro256BoundedDrawsReproducible) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.next_below(7), b.next_below(7));
    ASSERT_EQ(a.next_in(-5, 5), b.next_in(-5, 5));
    ASSERT_DOUBLE_EQ(a.next_double(), b.next_double());
  }
}

TEST(Determinism, Xoshiro256SplitReproducible) {
  Xoshiro256 parent_a(7), parent_b(7);
  Xoshiro256 child_a = parent_a.split(3);
  Xoshiro256 child_b = parent_b.split(3);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(child_a.next(), child_b.next());
  }
  // And the parents stay in lockstep after splitting.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(parent_a.next(), parent_b.next());
  }
}

TEST(Determinism, TraceGenerationReproducible) {
  Xoshiro256 rng_a(31), rng_b(31);
  const trace::Trace ta = trace::generate_zipf_pairs(32, 20000, 1.2, rng_a);
  const trace::Trace tb = trace::generate_zipf_pairs(32, 20000, 1.2, rng_b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].u, tb[i].u);
    ASSERT_EQ(ta[i].v, tb[i].v);
  }
}

// Cost ledgers from two runs must agree at every checkpoint (wall_seconds
// is the only field allowed to differ).
void expect_identical_ledgers(const sim::RunResult& x,
                              const sim::RunResult& y) {
  ASSERT_EQ(x.checkpoints.size(), y.checkpoints.size());
  for (std::size_t i = 0; i < x.checkpoints.size(); ++i) {
    const sim::Checkpoint& cx = x.checkpoints[i];
    const sim::Checkpoint& cy = y.checkpoints[i];
    EXPECT_EQ(cx.requests, cy.requests);
    EXPECT_EQ(cx.routing_cost, cy.routing_cost);
    EXPECT_EQ(cx.reconfig_cost, cy.reconfig_cost);
    EXPECT_EQ(cx.total_cost, cy.total_cost);
    EXPECT_EQ(cx.direct_serves, cy.direct_serves);
    EXPECT_EQ(cx.edge_adds, cy.edge_adds);
    EXPECT_EQ(cx.edge_removals, cy.edge_removals);
    EXPECT_EQ(cx.matching_size, cy.matching_size);
  }
}

TEST(Determinism, RunToCompletionSameSeedSameLedger) {
  const net::Topology topo = net::make_fat_tree(32);
  Xoshiro256 trace_rng(17);
  const trace::Trace t = trace::generate_zipf_pairs(32, 30000, 1.1, trace_rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 4;
  inst.alpha = 20;

  RBma run1(inst, {.seed = 42});
  RBma run2(inst, {.seed = 42});
  const sim::RunResult r1 = sim::run_to_completion(run1, t);
  const sim::RunResult r2 = sim::run_to_completion(run2, t);
  expect_identical_ledgers(r1, r2);
  EXPECT_EQ(run1.special_requests(), run2.special_requests());
  EXPECT_EQ(run1.total_paging_faults(), run2.total_paging_faults());
}

TEST(Determinism, ResetReplaysIdentically) {
  // reset() must return the algorithm to its exact initial state,
  // including the RNG: replaying the same trace gives the same ledger.
  const net::Topology topo = net::make_leaf_spine(24, 4);
  Xoshiro256 trace_rng(23);
  const trace::Trace t =
      trace::generate_hotspot(24, 20000, 0.25, 0.7, trace_rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 3;
  inst.alpha = 15;

  RBma alg(inst, {.seed = 7});
  const sim::RunResult first = sim::run_to_completion(alg, t);
  alg.reset();
  const sim::RunResult second = sim::run_to_completion(alg, t);
  expect_identical_ledgers(first, second);
}

TEST(Determinism, CheckpointedRunMatchesFinalLedger) {
  // Checkpoint snapshots must not perturb the run: a 10-point grid and a
  // single final checkpoint end at the same ledger.
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 trace_rng(29);
  const trace::Trace t = trace::generate_uniform(16, 10000, trace_rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 2;
  inst.alpha = 10;

  RBma a(inst, {.seed = 11}), b(inst, {.seed = 11});
  const sim::RunResult gridded =
      sim::run_simulation(a, t, sim::checkpoint_grid(t.size(), 10));
  const sim::RunResult single = sim::run_to_completion(b, t);
  EXPECT_EQ(gridded.final().total_cost, single.final().total_cost);
  EXPECT_EQ(gridded.final().routing_cost, single.final().routing_cost);
  EXPECT_EQ(gridded.final().edge_adds, single.final().edge_adds);
}

TEST(Determinism, FactoryBuiltMatchersReproducible) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 trace_rng(37);
  const trace::Trace t = trace::generate_zipf_pairs(16, 15000, 1.3, trace_rng);
  Instance inst;
  inst.distances = &topo.distances;
  inst.b = 2;
  inst.alpha = 8;

  for (const char* name : {"r_bma", "bma", "greedy", "oblivious", "rotor"}) {
    auto m1 = scenario::make_algorithm(name, inst, &t, /*seed=*/5);
    auto m2 = scenario::make_algorithm(name, inst, &t, /*seed=*/5);
    const sim::RunResult r1 = sim::run_to_completion(*m1, t);
    const sim::RunResult r2 = sim::run_to_completion(*m2, t);
    EXPECT_EQ(r1.final().total_cost, r2.final().total_cost) << name;
    EXPECT_EQ(r1.final().routing_cost, r2.final().routing_cost) << name;
    EXPECT_EQ(r1.final().reconfig_cost, r2.final().reconfig_cost) << name;
  }
}

}  // namespace
