// Robustness of the serving stack under deliberate failure: a
// malformed-input matrix driven through a real socket, the bounded read
// line, deadline enforcement, executor crash containment + quarantine,
// client retry through REJECT backpressure and mid-run disconnects,
// fd/executor hygiene after torn sends, and disk-cache persistence
// across a daemon restart with a torn entry on disk.
//
// Fault points (common/fault.hpp) make every failure deterministic; the
// fixture guarantees nothing stays armed between tests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fault.hpp"
#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "sim/report.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::serve;
namespace fs = std::filesystem;

/// Small enough to finish in well under a second, big enough to stream
/// checkpoints; the reordered twin canonicalizes identically.
constexpr const char* kTinySpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=2;racks=8;requests=4000;"
    "trials=1;checkpoints=2;seed=11";
constexpr const char* kTinySpecReordered =
    "b=2;workload=zipf:skew=1.1;requests=4000;algorithms=bma;racks=8;"
    "checkpoints=2;trials=1;seed=11";
constexpr const char* kOtherSpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=2;racks=8;requests=4000;"
    "trials=1;checkpoints=2;seed=12";
/// Long enough that a run still has most of its work left when a
/// deadline or disconnect cuts it short (first checkpoint at 100k of
/// 1.6M requests).
constexpr const char* kLongSpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=4;racks=16;requests=1600000;"
    "trials=1;checkpoints=16;seed=3";
/// Multi-second on current hardware — the deadline below must fire long
/// before natural completion even on a much faster machine.
constexpr const char* kSlowSpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=4;racks=16;requests=32000000;"
    "trials=1;checkpoints=16;seed=3";

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/rdcn_robust_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

std::string direct_csv(const std::string& spec_text) {
  const scenario::ScenarioResult result =
      scenario::run_scenario(scenario::ScenarioSpec::parse(spec_text));
  std::ostringstream csv;
  sim::write_csv(csv, result.runs, sim::Metric::kRoutingCost);
  return csv.str();
}

struct DaemonFixture {
  explicit DaemonFixture(ServeOptions options) : daemon(std::move(options)) {
    daemon.start();
    client.connect(daemon.options().socket_path);
  }
  ~DaemonFixture() {
    client.disconnect();
    daemon.stop();
  }
  Daemon daemon;
  Client client;
};

ServeOptions small_options(const std::string& tag) {
  ServeOptions options;
  options.socket_path = unique_socket_path(tag);
  options.executors = 1;
  options.threads = 1;
  return options;
}

/// Polls `pred` every 10 ms until it holds or ~5 s elapse.
template <typename Pred>
bool poll_until(Pred pred) {
  const auto deadline = monotonic_now() + std::chrono::seconds(5);
  while (monotonic_now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       fs::directory_iterator("/proc/self/fd"))
    ++n;
  return n;
}

/// Failure diagnostics: what each open fd points at.
std::string dump_fds() {
  std::string out;
  for (const auto& entry : fs::directory_iterator("/proc/self/fd")) {
    std::error_code ec;
    const fs::path target = fs::read_symlink(entry.path(), ec);
    out += entry.path().filename().string() + " -> " +
           (ec ? "?" : target.string()) + "\n";
  }
  return out;
}

/// Nothing armed before or after any test (the registry is global).
struct RobustnessTest : ::testing::Test {
  void SetUp() override {
    fault::disarm_all();
    ::unsetenv("RDCN_FAULTS");
  }
  void TearDown() override { fault::disarm_all(); }
};

// ------------------------------------------------- malformed-input matrix

TEST_F(RobustnessTest, MalformedInputMatrixKeepsDaemonServing) {
  DaemonFixture f(small_options("matrix"));
  // Every row must draw an ERROR reply — never silence, never a dead
  // daemon.  Rows cover: unknown verbs, missing/garbage arguments,
  // overflowing and signed CANCEL ids, junk after the RUN spec, bad
  // deadline_ms values, truncated and duplicate spec attributes.
  const std::vector<std::string> rows = {
      "FROB",
      "PING extra",
      "RUN",
      "CANCEL",
      "CANCEL x7",
      "CANCEL -1",
      "CANCEL 99999999999999999999999999",  // > 2^64
      "RUN workload=zipf;requests=100 junk_after_spec",
      "RUN workload=zipf;requests=100 deadline_ms=0",
      "RUN workload=zipf;requests=100 deadline_ms=abc",
      "RUN workload=zipf;requests=100 deadline_ms=",
      "RUN topology=",                          // truncated attribute
      "RUN workload=zipf;workload=zipf",        // duplicate key
      "RUN workload=zipf;requests=100;requests=200",
      "RUN requests=",  // empty value
      "RUN workload",   // not key=value
      "RUN no_such_field=1",
      "RUN workload=no_such_workload;requests=100",
  };
  for (const std::string& row : rows) {
    f.client.send_line(row);
    const ServerLine reply = parse_server_line(f.client.read_line());
    EXPECT_EQ(reply.kind, ServerLine::Kind::kError) << "input: " << row;
    f.client.ping();  // still serving, same connection
  }
  // And the daemon still does real work afterwards.
  const Client::Submission sub = f.client.submit(kTinySpec);
  ASSERT_TRUE(sub.accepted) << sub.error;
  EXPECT_EQ(f.client.collect(sub.id).status, "ok");
}

TEST_F(RobustnessTest, OversizedLineIsRefusedAndConnectionClosed) {
  DaemonFixture f(small_options("line_cap"));
  // > 1 MiB with no newline: the daemon must refuse instead of buffering
  // without bound.  Our own send may die with EPIPE once the daemon
  // hangs up mid-stream — that's part of the contract.
  try {
    f.client.send_line(std::string((1u << 20) + (200u << 10), 'x'));
  } catch (const TransportError&) {
  }
  std::string reply;
  try {
    reply = f.client.read_line();
  } catch (const TransportError&) {
  }
  EXPECT_NE(reply.find("line_too_long"), std::string::npos) << reply;
  // The offending connection is gone...
  EXPECT_THROW(
      {
        f.client.send_line("PING");
        f.client.read_line();
        f.client.read_line();
      },
      TransportError);
  // ...but the daemon is healthy for the next client.
  f.client.reconnect();
  f.client.ping();
}

// ------------------------------------------------------------- deadlines

TEST_F(RobustnessTest, DeadlineExceededEndsLongRunEarly) {
  DaemonFixture f(small_options("deadline"));
  const Client::Submission sub = f.client.submit(kSlowSpec, /*deadline_ms=*/250);
  ASSERT_TRUE(sub.accepted) << sub.error;
  const Client::RunOutput out = f.client.collect(sub.id);
  EXPECT_EQ(out.status, "deadline_exceeded");
  EXPECT_TRUE(out.csv.empty());
  // Cut short, not run to completion: a finished kSlowSpec run streams
  // all 16 checkpoints.
  EXPECT_LT(out.checkpoints, 16u);
  EXPECT_EQ(f.daemon.stats_report().deadline_exceeded, 1u);

  // The executor is free again and undamaged.
  const Client::Submission next = f.client.submit(kTinySpec);
  ASSERT_TRUE(next.accepted) << next.error;
  EXPECT_EQ(f.client.collect(next.id).status, "ok");
}

TEST_F(RobustnessTest, RunFinishingBeforeDeadlineIsUntouched) {
  DaemonFixture f(small_options("deadline_ok"));
  const Client::Submission sub =
      f.client.submit(kTinySpec, /*deadline_ms=*/60'000);
  ASSERT_TRUE(sub.accepted) << sub.error;
  EXPECT_EQ(f.client.collect(sub.id).status, "ok");
  EXPECT_EQ(f.daemon.stats_report().deadline_exceeded, 0u);
}

// ------------------------------------------- executor crashes, quarantine

TEST_F(RobustnessTest, ExecutorCrashIsContainedAndStreakResetsOnSuccess) {
  ServeOptions options = small_options("crash");
  options.quarantine_threshold = 2;
  DaemonFixture f(std::move(options));

  fault::arm("serve.executor.crash", {.times = 1});
  const Client::Submission first = f.client.submit(kTinySpec);
  ASSERT_TRUE(first.accepted) << first.error;
  const Client::RunOutput crashed = f.client.collect(first.id);
  EXPECT_EQ(crashed.status, "error");
  EXPECT_NE(crashed.error.find("internal="), std::string::npos)
      << crashed.error;
  EXPECT_EQ(f.daemon.stats_report().crashed, 1u);

  // Fault exhausted: the same spec succeeds, clearing its crash streak.
  const Client::Submission second = f.client.submit(kTinySpec);
  ASSERT_TRUE(second.accepted) << second.error;
  EXPECT_EQ(f.client.collect(second.id).status, "ok");

  // One more crash is streak 1 again — not quarantine (threshold 2).
  fault::arm("serve.executor.crash", {.times = 1});
  const Client::Submission third = f.client.submit(kOtherSpec);
  ASSERT_TRUE(third.accepted) << third.error;
  EXPECT_EQ(f.client.collect(third.id).status, "error");
  const Client::Submission fourth = f.client.submit(kOtherSpec);
  EXPECT_TRUE(fourth.accepted) << fourth.error;
  EXPECT_EQ(f.client.collect(fourth.id).status, "ok");

  const StatsReport stats = f.daemon.stats_report();
  EXPECT_EQ(stats.crashed, 2u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST_F(RobustnessTest, SpecIsQuarantinedAfterConsecutiveCrashes) {
  ServeOptions options = small_options("quarantine");
  options.quarantine_threshold = 2;
  DaemonFixture f(std::move(options));

  fault::arm("serve.executor.crash", {.times = 2});
  for (int i = 0; i < 2; ++i) {
    const Client::Submission sub = f.client.submit(kTinySpec);
    ASSERT_TRUE(sub.accepted) << sub.error;
    EXPECT_EQ(f.client.collect(sub.id).status, "error");
  }

  // Third submission fast-fails at admission — no executor is risked.
  const Client::Submission refused = f.client.submit(kTinySpec);
  EXPECT_FALSE(refused.accepted);
  EXPECT_NE(refused.error.find("quarantined"), std::string::npos)
      << refused.error;

  // The reordered twin shares the canonical key: quarantined too.
  EXPECT_NE(f.client.submit(kTinySpecReordered).error.find("quarantined"),
            std::string::npos);

  // Other specs are unaffected.
  const Client::Submission other = f.client.submit(kOtherSpec);
  ASSERT_TRUE(other.accepted) << other.error;
  EXPECT_EQ(f.client.collect(other.id).status, "ok");

  const StatsReport stats = f.daemon.stats_report();
  EXPECT_EQ(stats.crashed, 2u);
  EXPECT_GE(stats.quarantined, 2u);
}

// ----------------------------------------------------- client retry loop

TEST_F(RobustnessTest, ClientRetriesThroughRejectBackpressure) {
  DaemonFixture f(small_options("retry_reject"));
  // Two injected REJECTs, then normal admission: run_scenario should
  // land on attempt 3 without help.
  fault::arm("serve.admit.reject", {.times = 2});
  Client::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  policy.jitter_seed = 42;
  const Client::RunOutput out = f.client.run_scenario(kTinySpec, policy);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(f.daemon.stats_report().rejected, 2u);
}

TEST_F(RobustnessTest, ClientReconnectsThroughMidRunDisconnect) {
  DaemonFixture f(small_options("retry_drop"));
  // The ACCEPTED reply passes; the next send on this connection (the
  // first progress line) is dropped and the connection torn down —
  // exactly what a daemon-side disconnect looks like mid-run.
  fault::arm("serve.send.drop", {.after = 1, .times = 1});
  Client::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  policy.jitter_seed = 43;
  const Client::RunOutput out = f.client.run_scenario(kTinySpec, policy);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_TRUE(f.client.connected());
}

TEST_F(RobustnessTest, RetryGivesUpWithDiagnosticAfterMaxAttempts) {
  DaemonFixture f(small_options("retry_exhaust"));
  fault::arm("serve.admit.reject");  // every admission rejected
  Client::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 4;
  policy.jitter_seed = 44;
  try {
    f.client.run_scenario(kTinySpec, policy);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("gave up after 3 attempts"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(f.daemon.stats_report().rejected, 3u);
}

// ---------------------------------------------- transport-failure kinds

TEST_F(RobustnessTest, SlowDaemonYieldsTimeoutKindAndIsNotRetried) {
  // executors=0 admits runs but never executes them: from the client's
  // side the daemon is alive but silent — the kTimeout shape.
  ServeOptions options = small_options("timeout_kind");
  options.executors = 0;
  DaemonFixture f(std::move(options));
  f.client.set_read_timeout_seconds(1);
  Client::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_ms = 1;
  policy.jitter_seed = 45;
  try {
    f.client.run_scenario(kTinySpec, policy);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    // Rethrown from attempt 1, not burned through the retry budget:
    // retrying against a wedged daemon only piles work up.
    EXPECT_EQ(e.kind(), TransportError::Kind::kTimeout);
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST_F(RobustnessTest, ClosedConnectionYieldsEofKind) {
  DaemonFixture f(small_options("eof_kind"));
  f.client.send_line("SHUTDOWN");
  EXPECT_EQ(parse_server_line(f.client.read_line()).kind,
            ServerLine::Kind::kBye);
  // After BYE the daemon closes this connection: orderly EOF, clearly
  // distinguishable from a timeout.
  try {
    f.client.read_line();
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kEof);
    EXPECT_NE(std::string(e.what()).find("EOF"), std::string::npos);
  }
}

// ------------------------------------- torn sends, executor/fd hygiene

TEST_F(RobustnessTest, ShortWriteMidResultBreaksConnectionNotDaemon) {
  DaemonFixture f(small_options("short_write"));
  // Prime the caches so the replay path (ACCEPTED, then one RESULT blob)
  // is deterministic to count sends on.
  const Client::Submission prime = f.client.submit(kTinySpec);
  ASSERT_TRUE(prime.accepted) << prime.error;
  ASSERT_EQ(f.client.collect(prime.id).status, "ok");

  // ACCEPTED passes, the RESULT header+payload blob is cut in half.
  fault::arm("serve.send.short_write", {.after = 1, .times = 1});
  const Client::Submission sub = f.client.submit(kTinySpecReordered);
  ASSERT_TRUE(sub.accepted) << sub.error;
  EXPECT_THROW(
      {
        // Reading to DONE can't succeed: the stream dies mid-payload.
        for (int i = 0; i < 10'000; ++i) f.client.read_line();
      },
      TransportError);
  f.client.disconnect();

  // The daemon shrugs it off: fresh connection, full payload, idle stats.
  f.client.reconnect();
  const Client::Submission again = f.client.submit(kTinySpec);
  ASSERT_TRUE(again.accepted) << again.error;
  const Client::RunOutput replay = f.client.collect(again.id);
  EXPECT_EQ(replay.status, "ok");
  EXPECT_TRUE(replay.cached);
  // The executor's slot bookkeeping trails the DONE line slightly.
  EXPECT_TRUE(poll_until([&] {
    const StatsReport s = f.daemon.stats_report();
    return s.active == 0 && s.queued == 0;
  }));
}

TEST_F(RobustnessTest, DisconnectDuringRunFreesExecutorAndFds) {
  DaemonFixture f(small_options("fd_hygiene"));
  Client stats_client;
  stats_client.connect(f.daemon.options().socket_path);
  // A PONG proves the daemon-side fd of each connection exists before the
  // baseline is measured (accept runs asynchronously).
  f.client.ping();
  stats_client.ping();
  const std::size_t fd_baseline = open_fd_count();

  // The very first send to the doomed client (its ACCEPTED line) is
  // torn, breaking the connection while the long run is just starting.
  Client doomed;
  doomed.connect(f.daemon.options().socket_path);
  fault::arm("serve.send.short_write", {.times = 1});
  doomed.send_line(std::string("RUN ") + kLongSpec);
  EXPECT_THROW(doomed.read_line(), TransportError);
  doomed.disconnect();

  // Nobody is left to receive the run: the checkpoint hook notices the
  // broken connection and cancels, freeing the executor — STATS (over a
  // separate live connection) returns to idle well before the run could
  // have finished.
  EXPECT_TRUE(poll_until([&] {
    const StatsReport s = stats_client.stats_report();
    return s.active == 0 && s.queued == 0 && s.cancelled == 1;
  })) << stats_client.stats();

  // And the daemon's side of the dead connection is actually released:
  // open-fd count returns to the baseline (doomed's two fds are gone).
  EXPECT_TRUE(poll_until([&] { return open_fd_count() <= fd_baseline; }))
      << "open fds: " << open_fd_count() << " baseline: " << fd_baseline
      << "\n" << dump_fds();
}

// -------------------------------------- disk persistence across restart

TEST_F(RobustnessTest, DiskCacheServesCompletedRunsAcrossRestart) {
  const std::string dir =
      "/tmp/rdcn_robust_disk_" + std::to_string(::getpid());
  fs::remove_all(dir);
  const std::string expected = direct_csv(kTinySpec);

  {
    ServeOptions options = small_options("persist_a");
    options.disk_cache_dir = dir;
    DaemonFixture a(std::move(options));
    const Client::Submission ok = a.client.submit(kTinySpec);
    ASSERT_TRUE(ok.accepted) << ok.error;
    ASSERT_EQ(a.client.collect(ok.id).status, "ok");

    // The second run completes for its client, but its disk entry is
    // torn mid-write — the restart below must not trust it.
    fault::arm("serve.disk_cache.torn_write", {.times = 1});
    const Client::Submission torn = a.client.submit(kOtherSpec);
    ASSERT_TRUE(torn.accepted) << torn.error;
    ASSERT_EQ(a.client.collect(torn.id).status, "ok");
    fault::disarm_all();
  }  // daemon A gone; only the disk directory survives

  ServeOptions options = small_options("persist_b");
  options.disk_cache_dir = dir;
  DaemonFixture b(std::move(options));
  // The torn entry was detected (and skipped) while loading.
  EXPECT_EQ(b.daemon.disk_cache_stats().corrupt_skipped, 1u);

  // The completed run is served from disk: cached, bit-identical, no
  // recompute (the reordered twin proves canonical keying too).
  const Client::Submission hit = b.client.submit(kTinySpecReordered);
  ASSERT_TRUE(hit.accepted) << hit.error;
  const Client::RunOutput replay = b.client.collect(hit.id);
  EXPECT_EQ(replay.status, "ok");
  EXPECT_TRUE(replay.cached);
  EXPECT_EQ(replay.csv, expected);

  // The torn spec is simply recomputed — degraded, never wrong.
  const Client::Submission redo = b.client.submit(kOtherSpec);
  ASSERT_TRUE(redo.accepted) << redo.error;
  const Client::RunOutput recomputed = b.client.collect(redo.id);
  EXPECT_EQ(recomputed.status, "ok");
  EXPECT_FALSE(recomputed.cached);

  const StatsReport stats = b.daemon.stats_report();
  EXPECT_GE(stats.disk_hits, 1u);
  EXPECT_EQ(stats.disk_corrupt, 1u);
  fs::remove_all(dir);
}

// ---------------------------------------------------- stats on the wire

TEST_F(RobustnessTest, StatsReportRoundTripsOverTheWire) {
  DaemonFixture f(small_options("stats_wire"));
  const Client::Submission run = f.client.submit(kTinySpec);
  ASSERT_TRUE(run.accepted) << run.error;
  ASSERT_EQ(f.client.collect(run.id).status, "ok");
  const Client::Submission hit = f.client.submit(kTinySpecReordered);
  ASSERT_TRUE(hit.accepted) << hit.error;
  ASSERT_EQ(f.client.collect(hit.id).status, "ok");

  // Parsed wire report matches the daemon's own snapshot (the executor's
  // slot bookkeeping trails the DONE line slightly, hence the poll).
  EXPECT_TRUE(poll_until([&] { return f.client.stats_report().active == 0; }));
  const StatsReport wire = f.client.stats_report();
  EXPECT_EQ(wire.active, 0u);
  EXPECT_EQ(wire.queued, 0u);
  EXPECT_EQ(wire.completed, 2u);
  EXPECT_EQ(wire.cache_hits, 1u);
  EXPECT_EQ(wire.cache_entries, 1u);
  EXPECT_EQ(wire.cancelled, 0u);
  EXPECT_EQ(wire.crashed, 0u);
  EXPECT_EQ(wire.deadline_exceeded, 0u);
  EXPECT_EQ(wire.rejected, 0u);
  EXPECT_EQ(wire.quarantined, 0u);
  EXPECT_EQ(wire.disk_hits, 0u);  // disk cache disabled here
}

}  // namespace
