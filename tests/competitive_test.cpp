// Empirical competitive-ratio checks against the exact dynamic optimum
// (OPT-1 / RED-1 in DESIGN.md): the paper's guarantees, made executable on
// exhaustively solvable instances.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/bma.hpp"
#include "core/opt_small.hpp"
#include "core/r_bma.hpp"
#include "net/distance_matrix.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

/// Mean R-BMA cost over `seeds` runs on one trace.
double mean_rbma_cost(const Instance& inst, const trace::Trace& t,
                      int seeds) {
  double total = 0.0;
  for (int s = 1; s <= seeds; ++s) {
    RBma alg(inst, {.seed = static_cast<std::uint64_t>(s)});
    for (const Request& r : t) alg.serve(r);
    total += static_cast<double>(alg.costs().total_cost());
  }
  return total / seeds;
}

class UniformCompetitive : public ::testing::TestWithParam<int> {};

TEST_P(UniformCompetitive, RBmaWithinProvenBoundOfOpt) {
  // Uniform case (α = 1, ℓe = 1), n = 5, b = 2: Corollary 3 gives expected
  // competitive ratio O(γ log b) with γ = 2.  The hidden constant in the
  // analysis is ≤ 4·4·2·(ln b + 1) ≈ huge; what we check empirically is far
  // tighter: mean cost within 8·OPT + β on random traces.
  const int seed = GetParam();
  const auto d = net::DistanceMatrix::uniform(5, 1);
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 13 + 1);
  const trace::Trace t = trace::generate_uniform(5, 300, rng);
  const Instance inst = make_instance(d, 2, 1);

  const std::uint64_t opt = optimal_dynamic_cost(inst, t);
  const double alg = mean_rbma_cost(inst, t, 10);
  const double beta = 40.0;  // additive slack (|V²|·γ·α-style constant)
  EXPECT_LE(alg, 8.0 * static_cast<double>(opt) + beta)
      << "opt=" << opt << " alg=" << alg;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformCompetitive, ::testing::Range(0, 10));

class GeneralCompetitive : public ::testing::TestWithParam<int> {};

TEST_P(GeneralCompetitive, RBmaWithinGammaScaledBoundOfOpt) {
  // General case: distances 3, α = 5 (γ = 1 + 3/5 = 1.6).  The reduction
  // loses a 4γ factor on top of the uniform ratio; the empirical ratio
  // stays an order of magnitude below the proven worst case.
  const int seed = GetParam();
  const auto d = net::DistanceMatrix::uniform(5, 3);
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 17 + 3);
  const trace::Trace t = trace::generate_zipf_pairs(5, 400, 0.8, rng);
  const Instance inst = make_instance(d, 2, 5);

  const std::uint64_t opt = optimal_dynamic_cost(inst, t);
  const double alg = mean_rbma_cost(inst, t, 10);
  const double gamma = inst.gamma();
  const double beta = 10.0 * gamma * static_cast<double>(inst.alpha);
  EXPECT_LE(alg, 8.0 * gamma * static_cast<double>(opt) + beta)
      << "opt=" << opt << " alg=" << alg;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralCompetitive, ::testing::Range(0, 10));

TEST(Competitive, BmaAlsoBoundedButDeterministic) {
  // BMA is Θ(b)-competitive; on these tiny instances it must stay within
  // c·b·OPT + β for a small c.
  const auto d = net::DistanceMatrix::uniform(5, 2);
  const std::size_t b = 2;
  const Instance inst = make_instance(d, b, 4);
  for (int seed = 0; seed < 10; ++seed) {
    Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7 + 2);
    const trace::Trace t = trace::generate_uniform(5, 300, rng);
    Bma alg(inst);
    for (const Request& r : t) alg.serve(r);
    const std::uint64_t opt = optimal_dynamic_cost(inst, t);
    EXPECT_LE(static_cast<double>(alg.costs().total_cost()),
              4.0 * static_cast<double>(b) * static_cast<double>(opt) + 50.0)
        << "seed=" << seed;
  }
}

TEST(Competitive, RBmaTracksOptOnEasyLocalityTraces) {
  // A trace with one dominant pair: every reasonable algorithm should land
  // within a small constant of OPT (this is the regime the paper's Fig 1
  // database workload approximates).
  const auto d = net::DistanceMatrix::uniform(4, 3);
  const Instance inst = make_instance(d, 1, 5);
  trace::Trace t(4, "dominant");
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    if (rng.next_bool(0.9)) {
      t.push_back(Request::make(0, 1));
    } else {
      t.push_back(Request::make(2, 3));
    }
  }
  const std::uint64_t opt = optimal_dynamic_cost(inst, t);
  const double alg = mean_rbma_cost(inst, t, 10);
  EXPECT_LE(alg, 2.5 * static_cast<double>(opt) + 20.0);
}

}  // namespace
