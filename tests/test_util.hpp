// Shared helpers for the rdcn test suites.
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "net/distance_matrix.hpp"

namespace rdcn::testing {

/// Builds a core::Instance over `d` with online degree bound b,
/// reconfiguration cost α, and optional offline degree bound a (0 = "a=b").
/// `d` must outlive the returned instance (it is captured by pointer).
inline core::Instance make_instance(const net::DistanceMatrix& d,
                                    std::size_t b, std::uint64_t alpha,
                                    std::size_t a = 0) {
  core::Instance inst;
  inst.distances = &d;
  inst.b = b;
  inst.a = a;
  inst.alpha = alpha;
  return inst;
}

}  // namespace rdcn::testing
