// Tests for the epoch-based dynamic offline comparator
// (core/offline_dynamic.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/offline_dynamic.hpp"
#include "core/so_bma.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(OfflineDynamic, WindowCountMatchesTraceLength) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(1);
  const trace::Trace t = trace::generate_uniform(16, 10000, rng);
  OfflineDynamicOptions opts;
  opts.window = 3000;
  OfflineDynamic alg(make_instance(topo.distances, 2, 10), t, opts);
  EXPECT_EQ(alg.num_windows(), 4u);  // ceil(10000/3000)
}

TEST(OfflineDynamic, SingleWindowEqualsSoBmaRouting) {
  // With W >= trace length and no prior window, the plan is exactly the
  // SO-BMA matching (same weights, same solver).
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(2);
  const trace::Trace t = trace::generate_zipf_pairs(16, 20000, 1.2, rng);
  const Instance inst = make_instance(topo.distances, 3, 10);

  OfflineDynamicOptions opts;
  opts.window = t.size();
  OfflineDynamic dyn(inst, t, opts);
  SoBma so(inst, t);
  for (const Request& r : t) {
    dyn.serve(r);
    so.serve(r);
  }
  EXPECT_EQ(dyn.costs().routing_cost, so.costs().routing_cost);
  EXPECT_EQ(dyn.costs().total_cost(), so.costs().total_cost());
}

TEST(OfflineDynamic, AdaptsToRegimeChange) {
  // Phase 1 hammers one pair set, phase 2 a disjoint one.  A window
  // aligned to the phase boundary must beat the static matching when b is
  // too small to hold both sets.
  const std::size_t n = 12;
  const auto d = net::DistanceMatrix::uniform(n, 4);
  trace::Trace t(n, "regime");
  for (int i = 0; i < 10000; ++i)
    t.push_back(trace::Request::make(0, 1 + static_cast<trace::Rack>(i % 3)));
  for (int i = 0; i < 10000; ++i)
    t.push_back(trace::Request::make(0, 4 + static_cast<trace::Rack>(i % 3)));
  const Instance inst = make_instance(d, 3, 50);

  OfflineDynamicOptions opts;
  opts.window = 10000;
  OfflineDynamic dyn(inst, t, opts);
  SoBma so(inst, t);
  for (const Request& r : t) {
    dyn.serve(r);
    so.serve(r);
  }
  EXPECT_LT(dyn.costs().total_cost(), so.costs().total_cost());
}

TEST(OfflineDynamic, RetentionBonusReducesSwitching) {
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(3);
  trace::FlowPoolParams p;
  p.candidate_pairs = 150;
  p.mean_burst_length = 20.0;
  const trace::Trace t = trace::generate_flow_pool(20, 60000, p, rng);
  const Instance inst = make_instance(topo.distances, 3, 40);

  OfflineDynamicOptions sticky;
  sticky.window = 5000;
  sticky.retention_bonus = 2.0;
  OfflineDynamicOptions loose = sticky;
  loose.retention_bonus = 0.0;

  OfflineDynamic a(inst, t, sticky), b(inst, t, loose);
  for (const Request& r : t) {
    a.serve(r);
    b.serve(r);
  }
  EXPECT_LE(a.costs().edge_removals, b.costs().edge_removals);
}

TEST(OfflineDynamic, FeasibleThroughoutAndAfterReset) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(4);
  const trace::Trace t = trace::generate_zipf_pairs(16, 30000, 1.0, rng);
  OfflineDynamicOptions opts;
  opts.window = 4000;
  OfflineDynamic alg(make_instance(topo.distances, 2, 10, /*a=*/1), t, opts);
  for (std::size_t i = 0; i < t.size(); ++i) {
    alg.serve(t[i]);
    if (i % 2000 == 0) {
      ASSERT_TRUE(alg.matching().check_invariants());
      // (b,a): the offline comparator keeps degree <= a = 1.
      for (trace::Rack v = 0; v < 16; ++v)
        ASSERT_LE(alg.matching().degree(v), 1u);
    }
  }
  const std::uint64_t cost1 = alg.costs().total_cost();
  alg.reset();
  for (const Request& r : t) alg.serve(r);
  EXPECT_EQ(alg.costs().total_cost(), cost1);
}

}  // namespace
