// Tests for the scenario registries (scenario/registry.hpp): completeness
// (every registered name constructs and is deterministic under a fixed
// seed), unknown-name/parameter diagnostics, spec-list splitting, and the
// generated catalog.
#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "scenario/registry.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "trace/generators.hpp"

namespace {

using namespace rdcn;
using scenario::AlgorithmRegistry;
using scenario::TopologyRegistry;
using scenario::WorkloadRegistry;
using rdcn::testing::make_instance;

TEST(AlgorithmRegistry, EveryEntryConstructsAndIsDeterministicUnderSeed) {
  const auto d = net::DistanceMatrix::uniform(16, 3);
  Xoshiro256 rng(7);
  const trace::Trace t = trace::generate_zipf_pairs(16, 2'000, 1.1, rng);
  for (const std::string& name : AlgorithmRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const core::Instance inst = make_instance(d, 2, 8);
    auto a = scenario::make_algorithm(name, inst, &t, /*seed=*/5);
    auto b = scenario::make_algorithm(name, inst, &t, /*seed=*/5);
    ASSERT_NE(a, nullptr);
    for (const core::Request& r : t) {
      a->serve(r);
      b->serve(r);
    }
    EXPECT_EQ(a->costs().routing_cost, b->costs().routing_cost);
    EXPECT_EQ(a->costs().reconfig_cost, b->costs().reconfig_cost);
    EXPECT_EQ(a->costs().edge_adds, b->costs().edge_adds);
    EXPECT_EQ(a->costs().edge_removals, b->costs().edge_removals);
    EXPECT_GT(a->costs().requests, 0u);
  }
}

TEST(TopologyRegistry, EveryEntryBuildsAValidNetwork) {
  for (const std::string& name : TopologyRegistry::instance().names()) {
    SCOPED_TRACE(name);
    Xoshiro256 rng(3);
    const net::Topology topo =
        scenario::make_topology(name, /*racks=*/16, rng);
    ASSERT_GT(topo.num_racks(), 0u);
    EXPECT_FALSE(topo.name.empty());
    // Distances: zero diagonal, symmetric, positive off-diagonal.
    for (std::size_t u = 0; u < topo.num_racks(); ++u) {
      EXPECT_EQ(topo.distances(u, u), 0);
      for (std::size_t v = u + 1; v < topo.num_racks(); ++v) {
        EXPECT_EQ(topo.distances(u, v), topo.distances(v, u));
        EXPECT_GT(topo.distances(u, v), 0);
      }
    }
  }
}

TEST(WorkloadRegistry, EveryGeneratorIsSeedDeterministic) {
  for (const std::string& name : WorkloadRegistry::instance().names()) {
    if (name == "csv") continue;  // file import, covered below
    SCOPED_TRACE(name);
    Xoshiro256 rng_a(11), rng_b(11);
    const trace::Trace a =
        scenario::make_workload(name, /*racks=*/16, /*requests=*/500, rng_a);
    const trace::Trace b =
        scenario::make_workload(name, /*racks=*/16, /*requests=*/500, rng_b);
    ASSERT_EQ(a.size(), 500u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_LE(a.num_racks(), 16u);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].u, b[i].u);
      EXPECT_EQ(a[i].v, b[i].v);
    }
  }
}

TEST(WorkloadRegistry, CsvImportWithLimit) {
  const std::string path = ::testing::TempDir() + "rdcn_registry_test.csv";
  {
    std::ofstream out(path);
    out << "# racks=4 name=imported\n";
    for (int i = 0; i < 10; ++i) out << "0," << 1 + i % 3 << "\n";
  }
  Xoshiro256 rng(1);
  const trace::Trace all =
      scenario::make_workload("csv:path=" + path, 4, 0, rng);
  EXPECT_EQ(all.size(), 10u);
  const trace::Trace limited =
      scenario::make_workload("csv:path=" + path + ",limit=4", 4, 0, rng);
  EXPECT_EQ(limited.size(), 4u);
}

TEST(WorkloadRegistry, StreamTwinsMaterializeBitIdentically) {
  // Every streamable workload: make_stream(rng) must replay exactly the
  // trace make() produces from the same rng state, without advancing the
  // caller's generator.
  const WorkloadRegistry& registry = WorkloadRegistry::instance();
  std::size_t streamable = 0;
  for (const std::string& name : registry.names()) {
    if (!registry.streamable(name)) continue;
    SCOPED_TRACE(name);
    ++streamable;
    Xoshiro256 rng(91);
    const Xoshiro256 snapshot = rng;
    auto stream = registry.make_stream({name, {}}, /*racks=*/20,
                                       /*requests=*/3'000, rng);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->total(), 3'000u);
    // The snapshot convention: the caller's rng must not have advanced.
    EXPECT_EQ(rng.next(), Xoshiro256(snapshot).next());
    Xoshiro256 gen_rng(91);
    const trace::Trace expected =
        registry.make({name, {}}, 20, 3'000, gen_rng);
    const trace::Trace streamed = trace::materialize(*stream);
    ASSERT_EQ(streamed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(streamed[i], expected[i]) << "request " << i;
    }
  }
  // Everything but the csv import must be streamable.
  EXPECT_EQ(streamable, registry.names().size() - 1);
  EXPECT_FALSE(registry.streamable("csv"));
}

TEST(WorkloadRegistry, StreamlessWorkloadThrowsSpecError) {
  Xoshiro256 rng(5);
  EXPECT_THROW((void)WorkloadRegistry::instance().make_stream(
                   {"csv", {}}, 16, 100, rng),
               SpecError);
}

TEST(Registries, UnknownNamesSuggestNearestMatch) {
  try {
    Xoshiro256 rng(1);
    scenario::make_topology("torsu", 9, rng);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'torus'"),
              std::string::npos);
  }
  try {
    const auto d = net::DistanceMatrix::uniform(4, 1);
    scenario::make_algorithm("r_mba", make_instance(d, 1, 1));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'r_bma'"),
              std::string::npos);
  }
}

TEST(Registries, UnknownParametersAreRejectedWithSuggestion) {
  const auto d = net::DistanceMatrix::uniform(4, 1);
  try {
    scenario::make_algorithm("r_bma:enginee=lru", make_instance(d, 1, 1));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'engine'"),
              std::string::npos);
  }
  // Parameter-free components reject any parameter.
  EXPECT_THROW(scenario::make_algorithm("bma:x=1", make_instance(d, 1, 1)),
               SpecError);
}

TEST(Registries, AlgorithmParametersReachTheAlgorithm) {
  const auto d = net::DistanceMatrix::uniform(8, 4);
  Xoshiro256 rng(3);
  const trace::Trace t = trace::generate_zipf_pairs(8, 3'000, 1.2, rng);
  const core::Instance inst = make_instance(d, 2, 6);
  // RBma::name() echoes engine and eviction mode — the parameters
  // observably reached the constructed algorithm.
  EXPECT_EQ(scenario::make_algorithm("r_bma", inst)->name(),
            "r_bma[marking,lazy]");
  EXPECT_EQ(scenario::make_algorithm("r_bma:engine=lru", inst)->name(),
            "r_bma[lru,lazy]");
  EXPECT_EQ(scenario::make_algorithm("r_bma:engine=lru,eager", inst)->name(),
            "r_bma[lru,eager]");

  // offline_dynamic's window parameter changes the epoch plan.
  auto windowed =
      scenario::make_algorithm("offline_dynamic:window=500", inst, &t, 5);
  auto whole =
      scenario::make_algorithm("offline_dynamic:window=100000", inst, &t, 5);
  for (const core::Request& r : t) {
    windowed->serve(r);
    whole->serve(r);
  }
  EXPECT_NE(windowed->costs().total_cost(), whole->costs().total_cost());
}

TEST(Registries, ParseAlgorithmListSplitsOnNamesNotCommas) {
  const auto specs =
      scenario::parse_algorithm_list("r_bma:engine=lru,eager,bma,so_bma:passes=2");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "r_bma");
  EXPECT_EQ(specs[0].params.to_string(), "engine=lru,eager");
  EXPECT_EQ(specs[1].name, "bma");
  EXPECT_TRUE(specs[1].params.empty());
  EXPECT_EQ(specs[2].name, "so_bma");
  EXPECT_EQ(specs[2].params.to_string(), "passes=2");
}

TEST(Registries, ParseAlgorithmListTrimsSegments) {
  // A space after a comma must not demote an algorithm to a parameter.
  const auto specs = scenario::parse_algorithm_list("r_bma, bma ,  greedy");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "r_bma");
  EXPECT_EQ(specs[1].name, "bma");
  EXPECT_EQ(specs[2].name, "greedy");
}

TEST(Registries, RoundRobinAliasKeepsPreRegistryCliWorking) {
  Xoshiro256 rng_a(2), rng_b(2);
  const trace::Trace a =
      scenario::make_workload("round_robin:k=3", 8, 100, rng_a);
  const trace::Trace b =
      scenario::make_workload("round_robin_star:k=3", 8, 100, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
  }
}

TEST(Registries, CsvWithMissingFileThrowsInsteadOfAborting) {
  Xoshiro256 rng(1);
  EXPECT_THROW(
      scenario::make_workload("csv:path=/nonexistent/rdcn/x.csv", 4, 0, rng),
      SpecError);
}

TEST(Registries, CatalogListsEveryRegisteredName) {
  const std::string catalog = scenario::catalog_text();
  std::vector<std::string> all = AlgorithmRegistry::instance().names();
  for (const std::string& n : TopologyRegistry::instance().names())
    all.push_back(n);
  for (const std::string& n : WorkloadRegistry::instance().names())
    all.push_back(n);
  for (const std::string& name : all)
    EXPECT_NE(catalog.find(name), std::string::npos) << name;
  // Parameter docs are part of the generated text.
  EXPECT_NE(catalog.find("engine=marking"), std::string::npos);
  EXPECT_NE(catalog.find("skew=1.0"), std::string::npos);
}

}  // namespace
