// Unit + fuzz tests for the open-addressing containers (common/flat_hash.hpp).
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"

namespace {

using namespace rdcn;

TEST(FlatMap, BasicInsertFind) {
  FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  m[10] = 5;
  m[20] = 7;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(10), nullptr);
  EXPECT_EQ(*m.find(10), 5);
  ASSERT_NE(m.find(20), nullptr);
  EXPECT_EQ(*m.find(20), 7);
  EXPECT_EQ(m.find(30), nullptr);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint64_t> m;
  EXPECT_EQ(m[42], 0u);
  ++m[42];
  ++m[42];
  EXPECT_EQ(m[42], 2u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseRemovesAndReturnsPresence) {
  FlatMap<int> m;
  m[1] = 1;
  m[2] = 2;
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatMap, GrowsBeyondInitialCapacity) {
  FlatMap<int> m;
  for (std::uint64_t k = 1; k <= 10000; ++k) m[k] = static_cast<int>(k);
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), static_cast<int>(k));
  }
}

TEST(FlatMap, ClearEmptiesButKeepsWorking) {
  FlatMap<int> m;
  for (std::uint64_t k = 1; k <= 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(50), nullptr);
  m[7] = 9;
  EXPECT_EQ(*m.find(7), 9);
}

TEST(FlatMap, ForEachVisitsEverything) {
  FlatMap<int> m;
  for (std::uint64_t k = 1; k <= 200; ++k) m[k] = static_cast<int>(2 * k);
  std::uint64_t key_sum = 0;
  std::int64_t value_sum = 0;
  m.for_each([&](std::uint64_t k, int v) {
    key_sum += k;
    value_sum += v;
  });
  EXPECT_EQ(key_sum, 200ull * 201 / 2);
  EXPECT_EQ(value_sum, 200ll * 201);
}

TEST(FlatMap, BackwardShiftDeletionFuzzAgainstStd) {
  // Interleaved inserts/erases/lookups mirrored against unordered_map;
  // small key space maximizes probe-chain collisions and displacement.
  Xoshiro256 rng(77);
  FlatMap<std::uint32_t> ours;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  for (int step = 0; step < 200000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(512);
    switch (rng.next_below(3)) {
      case 0: {
        const auto v = static_cast<std::uint32_t>(rng.next_below(1000));
        ours[key] = v;
        ref[key] = v;
        break;
      }
      case 1: {
        EXPECT_EQ(ours.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        const std::uint32_t* p = ours.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
      }
    }
  }
  EXPECT_EQ(ours.size(), ref.size());
}

TEST(FlatMap, ReserveAvoidsRehashButStaysCorrect) {
  FlatMap<int> m;
  m.reserve(5000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t k = 1; k <= 5000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 5000u);
}

TEST(FlatSet, BasicOperations) {
  FlatSet s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, FuzzAgainstStd) {
  Xoshiro256 rng(78);
  FlatSet ours;
  std::unordered_set<std::uint64_t> ref;
  for (int step = 0; step < 100000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(256);
    if (rng.next_bool(0.5)) {
      EXPECT_EQ(ours.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(ours.erase(key), ref.erase(key) > 0);
    }
  }
  EXPECT_EQ(ours.size(), ref.size());
  for (std::uint64_t k : ref) EXPECT_TRUE(ours.contains(k));
}

TEST(FlatSet, ForEachEnumeratesExactly) {
  FlatSet s;
  for (std::uint64_t k = 10; k < 60; ++k) s.insert(k);
  std::unordered_set<std::uint64_t> seen;
  s.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 50u);
  for (std::uint64_t k = 10; k < 60; ++k) EXPECT_TRUE(seen.count(k));
}

}  // namespace
