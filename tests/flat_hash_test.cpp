// Unit + fuzz tests for the open-addressing containers (common/flat_hash.hpp).
#include <gtest/gtest.h>

#include <iterator>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"

namespace {

using namespace rdcn;

TEST(FlatMap, BasicInsertFind) {
  FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  m[10] = 5;
  m[20] = 7;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(10), nullptr);
  EXPECT_EQ(*m.find(10), 5);
  ASSERT_NE(m.find(20), nullptr);
  EXPECT_EQ(*m.find(20), 7);
  EXPECT_EQ(m.find(30), nullptr);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint64_t> m;
  EXPECT_EQ(m[42], 0u);
  ++m[42];
  ++m[42];
  EXPECT_EQ(m[42], 2u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseRemovesAndReturnsPresence) {
  FlatMap<int> m;
  m[1] = 1;
  m[2] = 2;
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatMap, GrowsBeyondInitialCapacity) {
  FlatMap<int> m;
  for (std::uint64_t k = 1; k <= 10000; ++k) m[k] = static_cast<int>(k);
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t k = 1; k <= 10000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), static_cast<int>(k));
  }
}

TEST(FlatMap, ClearEmptiesButKeepsWorking) {
  FlatMap<int> m;
  for (std::uint64_t k = 1; k <= 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(50), nullptr);
  m[7] = 9;
  EXPECT_EQ(*m.find(7), 9);
}

TEST(FlatMap, ForEachVisitsEverything) {
  FlatMap<int> m;
  for (std::uint64_t k = 1; k <= 200; ++k) m[k] = static_cast<int>(2 * k);
  std::uint64_t key_sum = 0;
  std::int64_t value_sum = 0;
  m.for_each([&](std::uint64_t k, int v) {
    key_sum += k;
    value_sum += v;
  });
  EXPECT_EQ(key_sum, 200ull * 201 / 2);
  EXPECT_EQ(value_sum, 200ll * 201);
}

TEST(FlatMap, BackwardShiftDeletionFuzzAgainstStd) {
  // Interleaved inserts/erases/lookups mirrored against unordered_map;
  // small key space maximizes probe-chain collisions and displacement.
  Xoshiro256 rng(77);
  FlatMap<std::uint32_t> ours;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  for (int step = 0; step < 200000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(512);
    switch (rng.next_below(3)) {
      case 0: {
        const auto v = static_cast<std::uint32_t>(rng.next_below(1000));
        ours[key] = v;
        ref[key] = v;
        break;
      }
      case 1: {
        EXPECT_EQ(ours.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        const std::uint32_t* p = ours.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
      }
    }
  }
  EXPECT_EQ(ours.size(), ref.size());
}

TEST(FlatMap, ReserveAvoidsRehashButStaysCorrect) {
  FlatMap<int> m;
  m.reserve(5000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t k = 1; k <= 5000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 5000u);
}

TEST(FlatSet, BasicOperations) {
  FlatSet s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, FuzzAgainstStd) {
  Xoshiro256 rng(78);
  FlatSet ours;
  std::unordered_set<std::uint64_t> ref;
  for (int step = 0; step < 100000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(256);
    if (rng.next_bool(0.5)) {
      EXPECT_EQ(ours.insert(key), ref.insert(key).second);
    } else {
      EXPECT_EQ(ours.erase(key), ref.erase(key) > 0);
    }
  }
  EXPECT_EQ(ours.size(), ref.size());
  for (std::uint64_t k : ref) EXPECT_TRUE(ours.contains(k));
}

TEST(FlatMap, ChurnFuzzWithFullContentCrossCheck) {
  // Heavier churn than the basic fuzz: interleaved insert/erase/find plus
  // periodic two-way for_each reconciliation, so backward-shift deletion
  // bugs that leave ghost or lost entries cannot hide.
  Xoshiro256 rng(79);
  FlatMap<std::uint64_t> ours;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int step = 1; step <= 60000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(384);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const std::uint64_t v = rng.next_below(1u << 20);
        ours[key] = v;
        ref[key] = v;
        break;
      }
      case 2:
        ASSERT_EQ(ours.erase(key), ref.erase(key) > 0);
        break;
      default: {
        const std::uint64_t* p = ours.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(p != nullptr, it != ref.end());
        if (p != nullptr) {
          ASSERT_EQ(*p, it->second);
        }
      }
    }
    if (step % 10000 == 0) {
      ASSERT_EQ(ours.size(), ref.size());
      std::size_t visited = 0;
      ours.for_each([&](std::uint64_t k, std::uint64_t v) {
        ++visited;
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end()) << "ghost key " << k;
        ASSERT_EQ(v, it->second);
      });
      ASSERT_EQ(visited, ref.size());
    }
  }
}

TEST(FlatMap, BackwardShiftAcrossWrapAroundBoundary) {
  // Build a displacement cluster that straddles the table's wrap-around
  // (slots near capacity-1 spilling into slot 0), then delete inside it.
  // mix64 is public, so we can hand-pick keys by their home slot.
  FlatMap<int> m;
  const std::size_t cap = m.capacity();  // fresh map: 16 slots
  std::vector<std::uint64_t> near_end;
  for (std::uint64_t k = 1; near_end.size() < 5; ++k) {
    if ((detail::mix64(k) & (cap - 1)) >= cap - 2) near_end.push_back(k);
  }
  for (std::size_t i = 0; i < near_end.size(); ++i) {
    m[near_end[i]] = static_cast<int>(i);
  }
  ASSERT_EQ(m.size(), 5u);  // cluster occupies {14, 15, 0, 1, ...}
  // Erase the entries homed nearest the boundary first; the survivors must
  // backward-shift across the wrap and stay findable.
  for (std::size_t i = 0; i < near_end.size(); ++i) {
    ASSERT_TRUE(m.erase(near_end[i]));
    for (std::size_t j = i + 1; j < near_end.size(); ++j) {
      const int* p = m.find(near_end[j]);
      ASSERT_NE(p, nullptr) << "lost key " << near_end[j] << " after erase "
                            << i;
      ASSERT_EQ(*p, static_cast<int>(j));
    }
  }
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, CachedSlotIndexesSurviveChurn) {
  // find_index/at_index are the request path's slot cache; under churn a
  // cached index must either still resolve to its key or miss — never
  // alias to a different or deleted entry.
  Xoshiro256 rng(81);
  FlatMap<std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  std::unordered_map<std::uint64_t, std::size_t> cached;
  for (int step = 0; step < 40000; ++step) {
    const std::uint64_t key = 1 + rng.next_below(256);
    if (rng.next_bool(0.5)) {
      m[key] = key * 3;
      ref[key] = key * 3;
      cached[key] = m.find_index(key);
    } else {
      m.erase(key);
      ref.erase(key);
    }
    // Validate a random cached hint each step.
    if (!cached.empty()) {
      auto it = cached.begin();
      std::advance(it, rng.next_below(cached.size()));
      const std::uint64_t* via_hint = m.at_index(it->second, it->first);
      const auto live = ref.find(it->first);
      if (via_hint != nullptr) {
        // A validated hit must be the live value, never stale data.
        ASSERT_NE(live, ref.end());
        ASSERT_EQ(*via_hint, live->second);
      } else if (live != ref.end()) {
        // Stale hint on a live key: a fresh find_index must recover it.
        const std::size_t idx = m.find_index(it->first);
        ASSERT_NE(idx, FlatMap<std::uint64_t>::kNoSlot);
        ASSERT_EQ(*m.at_index(idx, it->first), live->second);
      }
    }
  }
}

TEST(FlatMap, FindIndexMatchesFind) {
  FlatMap<int> m;
  for (std::uint64_t k = 1; k <= 300; ++k) m[k] = static_cast<int>(k);
  for (std::uint64_t k = 1; k <= 300; ++k) {
    const std::size_t idx = m.find_index(k);
    ASSERT_NE(idx, FlatMap<int>::kNoSlot);
    EXPECT_EQ(m.at_index(idx, k), m.find(k));
  }
  EXPECT_EQ(m.find_index(12345), FlatMap<int>::kNoSlot);
}

TEST(FlatSet, ForEachEnumeratesExactly) {
  FlatSet s;
  for (std::uint64_t k = 10; k < 60; ++k) s.insert(k);
  std::unordered_set<std::uint64_t> seen;
  s.for_each([&](std::uint64_t k) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 50u);
  for (std::uint64_t k = 10; k < 60; ++k) EXPECT_TRUE(seen.count(k));
}

}  // namespace
