// Tests for the topology builders (net/topology.hpp), including the exact
// hop-count structure the paper's cost model relies on.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::net;

TEST(FatTree, K4HasCanonicalSizes) {
  const Topology t = make_fat_tree_k(4);
  // k=4: 4 pods * (2 edge + 2 agg) + 4 core = 20 switches, 8 racks.
  EXPECT_EQ(t.graph.num_vertices(), 20u);
  EXPECT_EQ(t.num_racks(), 8u);
  // Edges: per pod 2*2 edge-agg + 2*2 agg-core = 8; 4 pods -> 32.
  EXPECT_EQ(t.graph.num_edges(), 32u);
}

TEST(FatTree, IntraPodDistanceIsTwoInterPodIsFour) {
  const Topology t = make_fat_tree_k(4);
  // Racks are in pod-major order, 2 per pod for k=4.
  EXPECT_EQ(t.distances(0, 1), 2);  // same pod, via aggregation
  EXPECT_EQ(t.distances(0, 2), 4);  // different pods, via core
  EXPECT_EQ(t.distances(0, 7), 4);
  EXPECT_EQ(t.distances.max_distance(), 4);
}

TEST(FatTree, RequestedRackCountIsHonored) {
  const Topology t = make_fat_tree(100);
  EXPECT_EQ(t.num_racks(), 100u);
  // k=16 would give 128 racks; paper's 100-rack instance truncates.
  for (std::uint32_t i = 0; i < 100; ++i)
    for (std::uint32_t j = i + 1; j < 100; ++j) {
      EXPECT_GE(t.distances(i, j), 2);
      EXPECT_LE(t.distances(i, j), 4);
    }
}

TEST(FatTree, FiftyRackInstanceForMicrosoftExperiments) {
  const Topology t = make_fat_tree(50);
  EXPECT_EQ(t.num_racks(), 50u);
  EXPECT_EQ(t.distances.max_distance(), 4);
}

TEST(Star, AllRacksTwoApart) {
  const Topology t = make_star(10);
  EXPECT_EQ(t.graph.num_vertices(), 11u);
  for (std::uint32_t i = 0; i < 10; ++i)
    for (std::uint32_t j = 0; j < 10; ++j)
      EXPECT_EQ(t.distances(i, j), i == j ? 0 : 2);
}

TEST(LeafSpine, AllDistinctRacksTwoApart) {
  const Topology t = make_leaf_spine(12, 3);
  for (std::uint32_t i = 0; i < 12; ++i)
    for (std::uint32_t j = 0; j < 12; ++j)
      EXPECT_EQ(t.distances(i, j), i == j ? 0 : 2);
}

TEST(Line, DistancesAreIndexDifferences) {
  const Topology t = make_line(8);
  for (std::uint32_t i = 0; i < 8; ++i)
    for (std::uint32_t j = 0; j < 8; ++j)
      EXPECT_EQ(t.distances(i, j), (i > j ? i - j : j - i));
}

TEST(Ring, DistancesAreCyclic) {
  const Topology t = make_ring(10);
  EXPECT_EQ(t.distances(0, 1), 1);
  EXPECT_EQ(t.distances(0, 5), 5);
  EXPECT_EQ(t.distances(0, 9), 1);
  EXPECT_EQ(t.distances(2, 8), 4);
}

TEST(Torus, ManhattanWrapDistances) {
  const Topology t = make_torus(4, 5);
  EXPECT_EQ(t.num_racks(), 20u);
  // (0,0) to (2,0): min(2, 4-2) = 2 rows.
  EXPECT_EQ(t.distances(0, 2 * 5), 2);
  // (0,0) to (0,3): min(3, 5-3) = 2 cols.
  EXPECT_EQ(t.distances(0, 3), 2);
  // (0,0) to (2,3): 2 + 2.
  EXPECT_EQ(t.distances(0, 2 * 5 + 3), 4);
}

TEST(Hypercube, HammingDistances) {
  const Topology t = make_hypercube(4);
  EXPECT_EQ(t.num_racks(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i)
    for (std::uint32_t j = 0; j < 16; ++j)
      EXPECT_EQ(t.distances(i, j), std::popcount(i ^ j));
}

TEST(RandomRegular, DegreesAndConnectivity) {
  Xoshiro256 rng(3);
  const Topology t = make_random_regular(24, 3, rng);
  EXPECT_EQ(t.num_racks(), 24u);
  EXPECT_TRUE(t.graph.connected());
  for (std::uint32_t v = 0; v < 24; ++v) EXPECT_EQ(t.graph.degree(v), 3u);
}

TEST(Complete, AllPairsAdjacent) {
  const Topology t = make_complete(6);
  for (std::uint32_t i = 0; i < 6; ++i)
    for (std::uint32_t j = 0; j < 6; ++j)
      EXPECT_EQ(t.distances(i, j), i == j ? 0 : 1);
}

// Property sweep: every topology must yield a symmetric distance matrix
// satisfying the triangle inequality (BFS distances are metrics).
class TopologyMetricTest : public ::testing::TestWithParam<int> {};

Topology build_by_index(int idx) {
  Xoshiro256 rng(9);
  switch (idx) {
    case 0: return make_fat_tree(20);
    case 1: return make_star(15);
    case 2: return make_leaf_spine(16, 4);
    case 3: return make_line(12);
    case 4: return make_ring(13);
    case 5: return make_torus(4, 4);
    case 6: return make_hypercube(4);
    case 7: return make_random_regular(18, 3, rng);
    default: return make_complete(10);
  }
}

TEST_P(TopologyMetricTest, DistancesFormAMetric) {
  const Topology t = build_by_index(GetParam());
  const auto n = static_cast<std::uint32_t>(t.num_racks());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(t.distances(i, i), 0);
    for (std::uint32_t j = 0; j < n; ++j) {
      EXPECT_EQ(t.distances(i, j), t.distances(j, i));
      if (i != j) EXPECT_GE(t.distances(i, j), 1);
    }
  }
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = 0; j < n; ++j)
      for (std::uint32_t k = 0; k < n; ++k)
        EXPECT_LE(t.distances(i, j),
                  t.distances(i, k) + t.distances(k, j));
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyMetricTest,
                         ::testing::Range(0, 9));

}  // namespace
