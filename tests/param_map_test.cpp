// Tests for the typed parameter map and compact spec strings
// (common/param_map.hpp) — the data layer of the scenario API.
#include <gtest/gtest.h>

#include <clocale>

#include "common/param_map.hpp"

namespace {

using rdcn::ParamMap;
using rdcn::Spec;
using rdcn::SpecError;

TEST(ParamMap, ParsesKeyValuesAndBareKeys) {
  const ParamMap m = ParamMap::parse("b=16,engine=lru,eager");
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.get<std::size_t>("b"), 16u);
  EXPECT_EQ(m.get<std::string>("engine"), "lru");
  EXPECT_TRUE(m.get<bool>("eager"));  // bare key ≡ key=true
}

TEST(ParamMap, EmptyTextParsesToEmptyMap) {
  EXPECT_TRUE(ParamMap::parse("").empty());
  EXPECT_TRUE(ParamMap::parse("  ").empty());
}

TEST(ParamMap, RoundTripsThroughToString) {
  const char* specs[] = {"b=16,engine=lru,eager", "eager",
                         "skew=1.2,drift=5000", ""};
  for (const char* text : specs) {
    const ParamMap m = ParamMap::parse(text);
    EXPECT_EQ(m.to_string(), text);
    EXPECT_TRUE(ParamMap::parse(m.to_string()) == m);
  }
}

TEST(ParamMap, ToStringPrintsExplicitTrueAsBareKey) {
  // "eager=true" and "eager" are the same map; the canonical print is
  // the compact bare-key form.
  const ParamMap m = ParamMap::parse("eager=true,b=2");
  EXPECT_EQ(m.to_string(), "eager,b=2");
  EXPECT_TRUE(ParamMap::parse(m.to_string()) == m);
}

TEST(ParamMap, PreservesInsertionOrder) {
  const ParamMap m = ParamMap::parse("z=1,a=2,m=3");
  const auto keys = m.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "z");
  EXPECT_EQ(keys[1], "a");
  EXPECT_EQ(keys[2], "m");
  EXPECT_EQ(m.to_string(), "z=1,a=2,m=3");
}

TEST(ParamMap, DuplicateKeyIsAnError) {
  EXPECT_THROW(ParamMap::parse("b=2,b=4"), SpecError);
}

TEST(ParamMap, MalformedItemsAreErrors) {
  EXPECT_THROW(ParamMap::parse("a=1,,b=2"), SpecError);   // empty item
  EXPECT_THROW(ParamMap::parse("=5"), SpecError);          // empty key
}

TEST(ParamMap, RequiredGetterThrowsWhenMissing) {
  const ParamMap m = ParamMap::parse("a=1");
  EXPECT_THROW(m.get<std::size_t>("b"), SpecError);
  EXPECT_THROW(m.get<std::string>("b"), SpecError);
}

TEST(ParamMap, DefaultedGetterFallsBack) {
  const ParamMap m = ParamMap::parse("a=1");
  EXPECT_EQ(m.get<std::size_t>("b", 7), 7u);
  EXPECT_EQ(m.get<std::string>("name", "x"), "x");
  EXPECT_DOUBLE_EQ(m.get<double>("skew", 1.5), 1.5);
  EXPECT_TRUE(m.get<bool>("flag", true));
}

TEST(ParamMap, TypedConversionEdgeCases) {
  const ParamMap m = ParamMap::parse(
      "u=18446744073709551615,neg=-3,d=1e3,frac=0.25,t=yes,f=off");
  EXPECT_EQ(m.get<std::uint64_t>("u"), 18446744073709551615ull);
  EXPECT_EQ(m.get<std::int64_t>("neg"), -3);
  EXPECT_DOUBLE_EQ(m.get<double>("d"), 1000.0);
  EXPECT_DOUBLE_EQ(m.get<double>("frac"), 0.25);
  EXPECT_TRUE(m.get<bool>("t"));
  EXPECT_FALSE(m.get<bool>("f"));
}

TEST(ParamMap, ConversionFailuresThrow) {
  const ParamMap m =
      ParamMap::parse("bad=12x,neg=-3,big=300,word=maybe,empty=");
  EXPECT_THROW(m.get<std::size_t>("bad"), SpecError);   // trailing garbage
  EXPECT_THROW(m.get<std::uint64_t>("neg"), SpecError); // negative→unsigned
  EXPECT_THROW(m.get<std::uint8_t>("big"), SpecError);  // narrowing overflow
  EXPECT_THROW(m.get<bool>("word"), SpecError);
  EXPECT_THROW(m.get<double>("empty"), SpecError);
}

TEST(ParamMap, UnconsumedKeyTracking) {
  const ParamMap m = ParamMap::parse("a=1,b=2,typo=3");
  (void)m.get<std::size_t>("a");
  (void)m.get<std::size_t>("b", 0);
  const auto unconsumed = m.unconsumed_keys();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "typo");
  EXPECT_THROW(m.require_all_consumed("algorithm 'x'"), SpecError);
  (void)m.get<std::size_t>("typo");
  m.require_all_consumed("algorithm 'x'");  // all read now: no throw
}

TEST(ParamMap, ResetConsumptionForgetsReads) {
  const ParamMap m = ParamMap::parse("a=1");
  (void)m.get<std::size_t>("a");
  EXPECT_TRUE(m.unconsumed_keys().empty());
  m.reset_consumption();
  EXPECT_EQ(m.unconsumed_keys().size(), 1u);
}

TEST(ParamMap, SetInsertsAndOverwrites) {
  ParamMap m;
  m.set("a", "1");
  m.set("b", "2");
  m.set("a", "9");
  EXPECT_EQ(m.get<std::size_t>("a"), 9u);
  EXPECT_EQ(m.to_string(), "a=9,b=2");
}

TEST(Spec, ParsesNameOnlyAndNameWithParams) {
  const Spec plain = Spec::parse("bma");
  EXPECT_EQ(plain.name, "bma");
  EXPECT_TRUE(plain.params.empty());

  const Spec full = Spec::parse("r_bma:b=16,engine=lru,eager");
  EXPECT_EQ(full.name, "r_bma");
  EXPECT_EQ(full.params.get<std::size_t>("b"), 16u);
  EXPECT_EQ(full.params.get<std::string>("engine"), "lru");
  EXPECT_TRUE(full.params.get<bool>("eager"));
}

TEST(Spec, RoundTripsThroughToString) {
  for (const char* text :
       {"bma", "r_bma:b=16,engine=lru,eager",
        "flow_pool:pairs=2000,skew=1.2,drift=5000"}) {
    const Spec s = Spec::parse(text);
    EXPECT_EQ(s.to_string(), text);
    EXPECT_TRUE(Spec::parse(s.to_string()) == s);
  }
}

TEST(Spec, EmptyNameIsAnError) {
  EXPECT_THROW(Spec::parse(""), SpecError);
  EXPECT_THROW(Spec::parse(":a=1"), SpecError);
}

TEST(ParamMap, ParseDoubleRejectsNonFiniteAndExotic) {
  // Spec strings mean plain decimal/scientific numbers; hex floats, inf,
  // and nan would round-trip badly (and inf/nan poison every cost
  // average), so they are conversion errors, not values.
  const ParamMap m = ParamMap::parse(
      "hex=0x10,inf=inf,ninf=-inf,nan=nan,loneexp=1e,trail=1.5z,plus=+1");
  EXPECT_THROW(m.get<double>("hex"), SpecError);
  EXPECT_THROW(m.get<double>("inf"), SpecError);
  EXPECT_THROW(m.get<double>("ninf"), SpecError);
  EXPECT_THROW(m.get<double>("nan"), SpecError);
  EXPECT_THROW(m.get<double>("loneexp"), SpecError);
  EXPECT_THROW(m.get<double>("trail"), SpecError);
  EXPECT_THROW(m.get<double>("plus"), SpecError);
  // Scientific notation with an exponent sign stays legal.
  const ParamMap ok = ParamMap::parse("a=1e+3,b=2.5e-2,c=-0.5");
  EXPECT_DOUBLE_EQ(ok.get<double>("a"), 1000.0);
  EXPECT_DOUBLE_EQ(ok.get<double>("b"), 0.025);
  EXPECT_DOUBLE_EQ(ok.get<double>("c"), -0.5);
}

TEST(ParamMap, ParseDoubleIgnoresNumericLocale) {
  // Regression: the old strtod-based conversion honored LC_NUMERIC, so
  // under a comma-decimal locale "skew=1.2" silently parsed as 1.0 —
  // specs must mean the same experiment on every machine.
  const char* previous = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (previous == nullptr) GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  const ParamMap m = ParamMap::parse("skew=1.2");
  const double parsed = m.get<double>("skew");
  std::setlocale(LC_NUMERIC, "C");
  EXPECT_DOUBLE_EQ(parsed, 1.2);
}

TEST(ParamMap, ContainsIsAPureProbe) {
  // Regression: contains() used to mark the entry consumed, so a key that
  // was only probed — never actually read — escaped the unknown-parameter
  // check and typos sailed through.
  const ParamMap m = ParamMap::parse("typo=3");
  EXPECT_TRUE(m.contains("typo"));
  const auto unconsumed = m.unconsumed_keys();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "typo");
  EXPECT_THROW(m.require_all_consumed("algorithm 'x'"), SpecError);
}

TEST(ParamMap, CanonicalStringSortsKeys) {
  EXPECT_EQ(ParamMap::parse("z=1,a=2,m").canonical_string(), "a=2,m,z=1");
  EXPECT_EQ(ParamMap::parse("").canonical_string(), "");
  // Canonical text is itself a valid spec, and canonicalizing is
  // idempotent.  (operator== stays order-sensitive — insertion order is
  // real data for to_string() — so compare canonical forms.)
  const ParamMap m = ParamMap::parse("skew=1.2,pairs=30");
  EXPECT_EQ(ParamMap::parse(m.canonical_string()).canonical_string(),
            m.canonical_string());
}

TEST(Spec, CanonicalStringIsOrderInsensitive) {
  const Spec a = Spec::parse("r_bma:engine=lru,b=16,eager");
  const Spec b = Spec::parse("r_bma:eager,b=16,engine=lru");
  EXPECT_EQ(a.canonical_string(), b.canonical_string());
  EXPECT_EQ(a.canonical_string(), "r_bma:b=16,eager,engine=lru");
  EXPECT_EQ(Spec::parse("bma").canonical_string(), "bma");
  // Different parameter *values* stay different specs.
  EXPECT_NE(Spec::parse("r_bma:b=16").canonical_string(),
            Spec::parse("r_bma:b=12").canonical_string());
}

}  // namespace
