// Tests for the static offline comparator SO-BMA (core/so_bma.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "core/oblivious.hpp"
#include "core/so_bma.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"
#include "trace/microsoft_like.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(SoBma, InstallsOnceAndNeverReconfigures) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(1);
  const trace::Trace t = trace::generate_zipf_pairs(16, 10000, 1.2, rng);
  SoBma alg(make_instance(topo.distances, 3, 10), t);
  const std::uint64_t installed = alg.costs().edge_adds;
  EXPECT_GT(installed, 0u);
  for (const Request& r : t) alg.serve(r);
  EXPECT_EQ(alg.costs().edge_adds, installed);
  EXPECT_EQ(alg.costs().edge_removals, 0u);
  EXPECT_TRUE(alg.matching().check_invariants());
}

TEST(SoBma, MatchesTopPairsOfTheDemand) {
  // A trace dominated by one far pair: SO-BMA must match it.
  const net::Topology topo = net::make_fat_tree(16);
  trace::Trace t(16, "dominant");
  for (int i = 0; i < 1000; ++i) t.push_back(Request::make(0, 15));
  t.push_back(Request::make(3, 4));
  SoBma alg(make_instance(topo.distances, 2, 10), t);
  EXPECT_TRUE(alg.matching().has(0, 15));
}

TEST(SoBma, SkipsAdjacentPairs) {
  // Pairs at fixed-network distance 1 gain nothing from matching.
  const auto d = net::DistanceMatrix::uniform(6, 1);
  trace::Trace t(6, "adjacent");
  for (int i = 0; i < 100; ++i) t.push_back(Request::make(0, 1));
  SoBma alg(make_instance(d, 2, 10), t);
  EXPECT_EQ(alg.matching().size(), 0u);
}

TEST(SoBma, BeatsObliviousOnSkewedTraffic) {
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(2);
  const trace::Trace t = trace::generate_zipf_pairs(20, 30000, 1.3, rng);
  const Instance inst = make_instance(topo.distances, 4, 50);

  SoBma so(inst, t);
  Oblivious obl(inst);
  for (const Request& r : t) {
    so.serve(r);
    obl.serve(r);
  }
  EXPECT_LT(so.costs().total_cost(), obl.costs().total_cost());
}

TEST(SoBma, RespectsOfflineDegreeBoundA) {
  // (b,a)-matching: online cap 4, offline cap 2 — SO-BMA must stay at 2.
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(3);
  const trace::Trace t = trace::generate_zipf_pairs(16, 20000, 1.0, rng);
  SoBma alg(make_instance(topo.distances, 4, 10, /*a=*/2), t);
  for (Rack v = 0; v < 16; ++v) EXPECT_LE(alg.matching().degree(v), 2u);
}

TEST(SoBma, CostEqualsStaticEvaluation) {
  // Running SO-BMA through the simulator must price exactly like the
  // standalone static evaluator on its chosen matching.
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(4);
  const trace::Trace t = trace::generate_zipf_pairs(16, 8000, 1.1, rng);
  const Instance inst = make_instance(topo.distances, 3, 10);
  SoBma alg(inst, t);
  const auto chosen = alg.matching().edge_keys();
  for (const Request& r : t) alg.serve(r);
  EXPECT_EQ(alg.costs().total_cost(),
            static_total_cost(inst, t, chosen));
}

TEST(SoBma, ResetReinstallsIdentically) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(5);
  const trace::Trace t = trace::generate_zipf_pairs(16, 5000, 1.0, rng);
  SoBma alg(make_instance(topo.distances, 2, 10), t);
  auto before = alg.matching().edge_keys();
  std::sort(before.begin(), before.end());
  for (const Request& r : t) alg.serve(r);
  alg.reset();
  auto after = alg.matching().edge_keys();
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
  EXPECT_EQ(alg.costs().requests, 0u);
}

}  // namespace
