// Tests for the simulation engine (sim/simulator.hpp, sim/metrics.hpp).
#include <gtest/gtest.h>

#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "scenario/registry.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/trace_stream.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::sim;

using rdcn::testing::make_instance;

TEST(RunSimulation, EmptyTraceYieldsZeroLedger) {
  const net::Topology topo = net::make_fat_tree(8);
  const trace::Trace t(8, "empty");
  auto alg = scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  const RunResult r = run_to_completion(*alg, t);
  ASSERT_EQ(r.checkpoints.size(), 1u);
  EXPECT_EQ(r.final().requests, 0u);
  EXPECT_EQ(r.final().total_cost, 0u);
  EXPECT_EQ(r.final().matching_size, 0u);
}

TEST(RunSimulation, CheckpointAtZeroSnapshotsPreTraceState) {
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(3);
  const trace::Trace t = trace::generate_uniform(8, 100, rng);
  auto alg = scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  const RunResult r = run_simulation(*alg, t, {0, t.size()});
  ASSERT_EQ(r.checkpoints.size(), 2u);
  EXPECT_EQ(r.checkpoints[0].requests, 0u);
  EXPECT_EQ(r.checkpoints[0].total_cost, 0u);
  EXPECT_EQ(r.checkpoints[1].requests, t.size());
  EXPECT_GT(r.checkpoints[1].total_cost, 0u);
}

TEST(RunSimulation, GridEndingAtZeroServesNothing) {
  // The grid bounds the run: once every checkpoint is emitted, no further
  // request may mutate the matcher.
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(4);
  const trace::Trace t = trace::generate_uniform(8, 100, rng);
  auto alg = scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  const RunResult r = run_simulation(*alg, t, {0});
  ASSERT_EQ(r.checkpoints.size(), 1u);
  EXPECT_EQ(r.final().requests, 0u);
  EXPECT_EQ(alg->costs().requests, 0u);
  EXPECT_EQ(alg->costs().total_cost(), 0u);
}

TEST(CheckpointGrid, EvenAndEndsAtTotal) {
  const auto g = checkpoint_grid(1000, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g[0], 250u);
  EXPECT_EQ(g[1], 500u);
  EXPECT_EQ(g[2], 750u);
  EXPECT_EQ(g[3], 1000u);
}

TEST(CheckpointGrid, RoundingNeverSkipsTheEnd) {
  const auto g = checkpoint_grid(10, 3);
  EXPECT_EQ(g.back(), 10u);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
}

TEST(Simulator, CheckpointsAreCumulativeAndMonotone) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(1);
  const trace::Trace t = trace::generate_zipf_pairs(16, 8000, 1.0, rng);
  auto matcher = scenario::make_algorithm("r_bma", make_instance(topo.distances, 3, 8),
                                    &t, 5);
  const RunResult r = run_simulation(*matcher, t, checkpoint_grid(t.size(), 8));
  ASSERT_EQ(r.checkpoints.size(), 8u);
  for (std::size_t i = 1; i < 8; ++i) {
    const Checkpoint& prev = r.checkpoints[i - 1];
    const Checkpoint& cur = r.checkpoints[i];
    EXPECT_GT(cur.requests, prev.requests);
    EXPECT_GE(cur.routing_cost, prev.routing_cost);
    EXPECT_GE(cur.reconfig_cost, prev.reconfig_cost);
    EXPECT_GE(cur.wall_seconds, prev.wall_seconds);
    EXPECT_EQ(cur.total_cost, cur.routing_cost + cur.reconfig_cost);
  }
  EXPECT_EQ(r.final().requests, t.size());
}

TEST(Simulator, MatchesManualServeLoop) {
  const net::Topology topo = net::make_fat_tree(12);
  Xoshiro256 rng(2);
  const trace::Trace t = trace::generate_uniform(12, 3000, rng);
  const core::Instance inst = make_instance(topo.distances, 2, 6);

  auto a = scenario::make_algorithm("bma", inst, &t, 1);
  const RunResult r = run_to_completion(*a, t);

  auto b = scenario::make_algorithm("bma", inst, &t, 1);
  for (const core::Request& req : t) b->serve(req);

  EXPECT_EQ(r.final().routing_cost, b->costs().routing_cost);
  EXPECT_EQ(r.final().reconfig_cost, b->costs().reconfig_cost);
  EXPECT_EQ(r.final().matching_size, b->matching().size());
}

TEST(Simulator, ObliviousCostIsSumOfDistances) {
  const net::Topology topo = net::make_fat_tree(12);
  Xoshiro256 rng(3);
  const trace::Trace t = trace::generate_uniform(12, 2000, rng);
  auto matcher =
      scenario::make_algorithm("oblivious", make_instance(topo.distances, 2, 6), &t, 1);
  const RunResult r = run_to_completion(*matcher, t);
  std::uint64_t expected = 0;
  for (const core::Request& req : t) expected += topo.distances(req.u, req.v);
  EXPECT_EQ(r.final().routing_cost, expected);
  EXPECT_EQ(r.final().reconfig_cost, 0u);
}

// Chunked replay must clip chunks at checkpoint boundaries: a grid point
// landing anywhere inside a chunk — including adjacent points inside the
// SAME chunk and points straddling chunk edges — snapshots exactly the
// ledger the scalar serve() loop snapshots there.
TEST(Simulator, CheckpointInsideChunkMatchesScalarAtEveryGridPoint) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(51);
  // Longer than two chunks so interior, boundary, and straddling cases all
  // occur (kServeChunk = 4096).
  const trace::Trace t =
      trace::generate_zipf_pairs(16, 2 * sim::kServeChunk + 1234, 1.1, rng);
  const std::vector<std::uint64_t> grid = {
      1,
      2,                      // adjacent points within the first chunk
      sim::kServeChunk - 1,   // just before a chunk boundary
      sim::kServeChunk,       // exactly on it
      sim::kServeChunk + 1,   // just after it
      sim::kServeChunk + 1,   // duplicate grid point
      2 * sim::kServeChunk + 513,
      t.size()};

  for (const char* algorithm : {"bma", "r_bma", "greedy"}) {
    const core::Instance inst = make_instance(topo.distances, 3, 25);
    auto scalar_alg = scenario::make_algorithm(algorithm, inst, &t, 6);
    const RunResult scalar = run_simulation_scalar(*scalar_alg, t, grid);
    auto batched_alg = scenario::make_algorithm(algorithm, inst, &t, 6);
    const RunResult batched = run_simulation(*batched_alg, t, grid);
    ASSERT_EQ(scalar.checkpoints.size(), batched.checkpoints.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const Checkpoint& s = scalar.checkpoints[i];
      const Checkpoint& b = batched.checkpoints[i];
      EXPECT_EQ(s.requests, b.requests) << algorithm << " cp " << i;
      EXPECT_EQ(s.routing_cost, b.routing_cost) << algorithm << " cp " << i;
      EXPECT_EQ(s.reconfig_cost, b.reconfig_cost) << algorithm << " cp " << i;
      EXPECT_EQ(s.direct_serves, b.direct_serves) << algorithm << " cp " << i;
      EXPECT_EQ(s.edge_adds, b.edge_adds) << algorithm << " cp " << i;
      EXPECT_EQ(s.edge_removals, b.edge_removals) << algorithm << " cp " << i;
      EXPECT_EQ(s.matching_size, b.matching_size) << algorithm << " cp " << i;
    }
  }
}

TEST(Simulator, DenseGridForcesSubChunkClipping) {
  // A grid denser than the chunk size degenerates every chunk to the gap
  // between checkpoints; the run must still visit each point exactly once
  // and serve nothing beyond the last.
  const net::Topology topo = net::make_fat_tree(12);
  Xoshiro256 rng(52);
  const trace::Trace t = trace::generate_uniform(12, 300, rng);
  std::vector<std::uint64_t> grid;
  for (std::uint64_t cp = 0; cp <= 250; cp += 10) grid.push_back(cp);

  const core::Instance inst = make_instance(topo.distances, 2, 10);
  auto scalar_alg = scenario::make_algorithm("bma", inst, &t, 1);
  const RunResult scalar = run_simulation_scalar(*scalar_alg, t, grid);
  auto batched_alg = scenario::make_algorithm("bma", inst, &t, 1);
  const RunResult batched = run_simulation(*batched_alg, t, grid);
  ASSERT_EQ(scalar.checkpoints.size(), grid.size());
  ASSERT_EQ(batched.checkpoints.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(scalar.checkpoints[i].requests, batched.checkpoints[i].requests);
    EXPECT_EQ(scalar.checkpoints[i].total_cost,
              batched.checkpoints[i].total_cost);
  }
  // The grid bounds the run in both modes.
  EXPECT_EQ(scalar_alg->costs().requests, 250u);
  EXPECT_EQ(batched_alg->costs().requests, 250u);
}

TEST(Metrics, AverageRunsIsExactForIdenticalRuns) {
  const net::Topology topo = net::make_fat_tree(12);
  Xoshiro256 rng(4);
  const trace::Trace t = trace::generate_uniform(12, 2000, rng);
  const core::Instance inst = make_instance(topo.distances, 2, 6);
  auto m1 = scenario::make_algorithm("bma", inst, &t, 1);
  auto m2 = scenario::make_algorithm("bma", inst, &t, 1);
  const RunResult r1 = run_simulation(*m1, t, checkpoint_grid(t.size(), 4));
  const RunResult r2 = run_simulation(*m2, t, checkpoint_grid(t.size(), 4));
  const RunResult avg = average_runs({r1, r2});
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(avg.checkpoints[p].routing_cost,
              r1.checkpoints[p].routing_cost);
    EXPECT_EQ(avg.checkpoints[p].total_cost, r1.checkpoints[p].total_cost);
  }
}

TEST(RunControl, CancelStopsAtNextChunkBoundary) {
  // Cancel fired from the first checkpoint's hook (one serve chunk in):
  // the run must throw CancelledError without serving the remaining two
  // chunks — the matcher's ledger stops exactly at the boundary.
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(11);
  const trace::Trace t =
      trace::generate_uniform(8, 3 * kServeChunk, rng);  // 3 full chunks
  auto alg =
      scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  RunControl control;
  control.cancel = rdcn::CancelToken::make();
  control.on_checkpoint = [&](const Checkpoint& c) {
    if (c.requests == kServeChunk) control.cancel.request_cancel();
  };
  EXPECT_THROW(
      run_simulation(*alg, t, {kServeChunk, 3 * kServeChunk}, control),
      rdcn::CancelledError);
  EXPECT_EQ(alg->costs().requests, kServeChunk);
}

TEST(RunControl, CancelStopsStreamedRunToo) {
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(12);
  const trace::Trace t = trace::generate_uniform(8, 3 * kServeChunk, rng);
  auto alg =
      scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  trace::MaterializedStream stream(t);
  RunControl control;
  control.cancel = rdcn::CancelToken::make();
  control.on_checkpoint = [&](const Checkpoint&) {
    control.cancel.request_cancel();
  };
  EXPECT_THROW(
      run_simulation(*alg, stream, {kServeChunk, 3 * kServeChunk}, control),
      rdcn::CancelledError);
  EXPECT_EQ(alg->costs().requests, kServeChunk);
}

TEST(RunControl, PreCancelledRunServesNothing) {
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(13);
  const trace::Trace t = trace::generate_uniform(8, 100, rng);
  auto alg =
      scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  RunControl control;
  control.cancel = rdcn::CancelToken::make();
  control.cancel.request_cancel();
  EXPECT_THROW(run_simulation(*alg, t, {t.size()}, control),
               rdcn::CancelledError);
  EXPECT_EQ(alg->costs().requests, 0u);
}

TEST(RunControl, OnCheckpointStreamsTheLedgerInGridOrder) {
  // The hook must see exactly the checkpoints the RunResult reports, in
  // order, with the clock paused (wall time already accounted).
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(14);
  const trace::Trace t = trace::generate_uniform(8, 1000, rng);
  auto alg =
      scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  std::vector<Checkpoint> streamed;
  RunControl control;
  control.on_checkpoint = [&](const Checkpoint& c) {
    streamed.push_back(c);
  };
  const RunResult r = run_simulation(*alg, t, {250, 500, 1000}, control);
  ASSERT_EQ(streamed.size(), r.checkpoints.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].requests, r.checkpoints[i].requests);
    EXPECT_EQ(streamed[i].total_cost, r.checkpoints[i].total_cost);
  }
}

TEST(RunControl, InertDefaultRunsToCompletion) {
  // The default RunControl must not change behaviour: same ledger as a
  // run without one.
  const net::Topology topo = net::make_fat_tree(8);
  Xoshiro256 rng(15);
  const trace::Trace t = trace::generate_uniform(8, 1000, rng);
  auto a =
      scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  auto b =
      scenario::make_algorithm("bma", make_instance(topo.distances, 2, 5));
  const RunResult plain = run_simulation(*a, t, {500, 1000});
  const RunResult controlled =
      run_simulation(*b, t, {500, 1000}, RunControl{});
  ASSERT_EQ(plain.checkpoints.size(), controlled.checkpoints.size());
  for (std::size_t i = 0; i < plain.checkpoints.size(); ++i)
    EXPECT_EQ(plain.checkpoints[i].total_cost,
              controlled.checkpoints[i].total_cost);
}

TEST(Metrics, AverageRunsMeansDifferentSeeds) {
  RunResult a, b;
  a.algorithm = b.algorithm = "x";
  Checkpoint ca, cb;
  ca.requests = cb.requests = 100;
  ca.routing_cost = 10;
  cb.routing_cost = 20;
  ca.total_cost = 10;
  cb.total_cost = 20;
  a.checkpoints = {ca};
  b.checkpoints = {cb};
  const RunResult avg = average_runs({a, b});
  EXPECT_EQ(avg.checkpoints[0].routing_cost, 15u);
}

TEST(Metrics, SummarizeTotalCostEnvelope) {
  RunResult a, b;
  Checkpoint ca, cb;
  ca.requests = cb.requests = 10;
  ca.total_cost = 5;
  cb.total_cost = 9;
  a.checkpoints = {ca};
  b.checkpoints = {cb};
  const SeriesSummary s = summarize_total_cost({a, b});
  EXPECT_DOUBLE_EQ(s.mean[0], 7.0);
  EXPECT_DOUBLE_EQ(s.lo[0], 5.0);
  EXPECT_DOUBLE_EQ(s.hi[0], 9.0);
}

}  // namespace
