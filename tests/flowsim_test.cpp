// Tests for the flow-level simulation substrate (src/flowsim) and the
// shortest-path table (net/path_table.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/b_matching.hpp"
#include "flowsim/fair_share.hpp"
#include "flowsim/flow_simulator.hpp"
#include "flowsim/network.hpp"
#include "net/path_table.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::flowsim;

// ---------------------------------------------------------- PathTable ----

TEST(PathTable, PathLengthsMatchDistanceMatrix) {
  const net::Topology t = net::make_fat_tree(20);
  const net::PathTable paths(t.graph, t.racks);
  for (std::uint32_t a = 0; a < 20; ++a)
    for (std::uint32_t b = 0; b < 20; ++b) {
      if (a == b) {
        EXPECT_TRUE(paths.path(a, b).empty());
      } else {
        EXPECT_EQ(paths.path(a, b).size(), t.distances(a, b));
      }
    }
}

TEST(PathTable, PathsAreContiguousEdgeSequences) {
  const net::Topology t = net::make_fat_tree(12);
  const net::PathTable paths(t.graph, t.racks);
  const auto& edges = t.graph.edge_list();
  for (std::uint32_t a = 0; a < 12; ++a) {
    for (std::uint32_t b = 0; b < 12; ++b) {
      if (a == b) continue;
      net::NodeId cur = t.racks[a];
      for (net::EdgeId e : paths.path(a, b)) {
        const auto& [u, v] = edges[e];
        ASSERT_TRUE(u == cur || v == cur) << "path not contiguous";
        cur = (u == cur) ? v : u;
      }
      EXPECT_EQ(cur, t.racks[b]);
    }
  }
}

// ---------------------------------------------------------- FairShare ----

TEST(FairShare, SingleLinkEvenSplit) {
  const std::vector<FlowRoute> flows = {{{0}}, {{0}}};
  const auto rates = max_min_fair_rates(flows, {10.0});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(FairShare, ClassicTwoBottleneckExample) {
  // L0 (cap 1): f0, f2.  L1 (cap 2): f1, f2.
  // Bottleneck L0 -> f0 = f2 = 0.5; then f1 takes L1's residual 1.5.
  const std::vector<FlowRoute> flows = {{{0}}, {{1}}, {{0, 1}}};
  const auto rates = max_min_fair_rates(flows, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 1.5);
}

TEST(FairShare, EmptyRouteIsUnbounded) {
  const std::vector<FlowRoute> flows = {{{}}, {{0}}};
  const auto rates = max_min_fair_rates(flows, {4.0}, 999.0);
  EXPECT_DOUBLE_EQ(rates[0], 999.0);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
}

class FairShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperty, CapacityAndBottleneckConditionsHold) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t num_links = 2 + rng.next_below(10);
  const std::size_t num_flows = 1 + rng.next_below(30);
  std::vector<double> capacities(num_links);
  for (auto& c : capacities) c = 1.0 + rng.next_double() * 9.0;
  std::vector<FlowRoute> flows(num_flows);
  for (auto& f : flows) {
    const std::size_t hops = 1 + rng.next_below(4);
    for (std::size_t h = 0; h < hops; ++h) {
      const auto l = static_cast<std::uint32_t>(rng.next_below(num_links));
      if (std::find(f.links.begin(), f.links.end(), l) == f.links.end())
        f.links.push_back(l);
    }
  }
  const auto rates = max_min_fair_rates(flows, capacities);

  // 1. Feasibility: no link over capacity.
  std::vector<double> load(num_links, 0.0);
  for (std::size_t f = 0; f < num_flows; ++f)
    for (std::uint32_t l : flows[f].links) load[l] += rates[f];
  for (std::size_t l = 0; l < num_links; ++l)
    EXPECT_LE(load[l], capacities[l] * (1.0 + 1e-9));

  // 2. Max-min bottleneck condition: every flow crosses a saturated link
  //    on which its rate is maximal.
  for (std::size_t f = 0; f < num_flows; ++f) {
    EXPECT_GT(rates[f], 0.0);
    bool has_bottleneck = false;
    for (std::uint32_t l : flows[f].links) {
      if (load[l] < capacities[l] * (1.0 - 1e-9)) continue;  // unsaturated
      bool is_max = true;
      for (std::size_t g = 0; g < num_flows; ++g) {
        if (g == f) continue;
        const bool crosses =
            std::find(flows[g].links.begin(), flows[g].links.end(), l) !=
            flows[g].links.end();
        if (crosses && rates[g] > rates[f] * (1.0 + 1e-9)) is_max = false;
      }
      if (is_max) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " has no bottleneck";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FairShareProperty,
                         ::testing::Range(0, 20));

// -------------------------------------------------------- FlowNetwork ----

TEST(FlowNetwork, OpticalLinkShortcutsMatchedPairs) {
  const net::Topology topo = net::make_fat_tree(12);
  core::BMatching m(12, 2);
  m.add(0, 7);
  const FlowNetwork net(topo, m, 10.0, 25.0);
  EXPECT_EQ(net.num_optical_links(), 1u);
  EXPECT_EQ(net.route(0, 7).links.size(), 1u);
  EXPECT_EQ(net.route_hops(0, 7), 1u);
  // Unmatched pair follows the fabric path.
  EXPECT_EQ(net.route_hops(0, 5), topo.distances(0, 5));
  // The optical link has the optical capacity.
  EXPECT_DOUBLE_EQ(net.capacities().back(), 25.0);
}

// ------------------------------------------------------ FlowSimulator ----

TEST(FlowSimulator, SingleFlowFinishesAtSizeOverCapacity) {
  const net::Topology topo = net::make_star(4);
  core::BMatching m(4, 1);
  const FlowNetwork net(topo, m, 10.0, 10.0);
  // Star rack pair: 2 hops of capacity 10 -> rate 10.
  const SimulationResult r =
      simulate_flows(net, {{0, 1, 50.0, 0.0}});
  EXPECT_NEAR(r.flows[0].duration, 5.0, 1e-9);
  EXPECT_NEAR(r.makespan, 5.0, 1e-9);
  EXPECT_EQ(r.flows[0].hops, 2u);
}

TEST(FlowSimulator, TwoFlowsShareABottleneck) {
  const net::Topology topo = net::make_star(4);
  core::BMatching m(4, 1);
  const FlowNetwork net(topo, m, 10.0, 10.0);
  // Both flows traverse rack 0's uplink: rate 5 each, finish at 10.
  const SimulationResult r = simulate_flows(
      net, {{0, 1, 50.0, 0.0}, {0, 2, 50.0, 0.0}});
  EXPECT_NEAR(r.flows[0].duration, 10.0, 1e-6);
  EXPECT_NEAR(r.flows[1].duration, 10.0, 1e-6);
}

TEST(FlowSimulator, LateArrivalDoesNotSeeFinishedFlows) {
  const net::Topology topo = net::make_star(4);
  core::BMatching m(4, 1);
  const FlowNetwork net(topo, m, 10.0, 10.0);
  const SimulationResult r = simulate_flows(
      net, {{0, 1, 50.0, 0.0}, {0, 1, 50.0, 100.0}});
  EXPECT_NEAR(r.flows[0].duration, 5.0, 1e-9);
  EXPECT_NEAR(r.flows[1].duration, 5.0, 1e-9);
  EXPECT_NEAR(r.makespan, 105.0, 1e-9);
}

TEST(FlowSimulator, OpticalShortcutImprovesCompletionTime) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(5);
  // Heavy pair (0, 9) plus background noise.
  trace::Trace t(16, "flows");
  for (int i = 0; i < 300; ++i) {
    if (i % 2 == 0) {
      t.push_back(trace::Request::make(0, 9));
    } else {
      t.push_back(trace::Request::make(
          static_cast<trace::Rack>(rng.next_below(8)),
          static_cast<trace::Rack>(8 + rng.next_below(8))));
    }
  }
  const auto specs = flows_from_trace(t, 25.0, 2.0);

  core::BMatching none(16, 2);
  core::BMatching matched(16, 2);
  matched.add(0, 9);
  const FlowNetwork base(topo, none, 10.0, 10.0);
  const FlowNetwork optical(topo, matched, 10.0, 10.0);

  const SimulationResult r0 = simulate_flows(base, specs);
  const SimulationResult r1 = simulate_flows(optical, specs);
  EXPECT_LT(r1.mean_fct, r0.mean_fct);
  EXPECT_LT(r1.bandwidth_tax, r0.bandwidth_tax);
  EXPECT_GE(r1.aggregate_throughput, r0.aggregate_throughput * 0.99);
}

TEST(FlowSimulator, BandwidthTaxMatchesHopAverage) {
  const net::Topology topo = net::make_star(5);
  core::BMatching m(5, 1);
  m.add(0, 1);
  const FlowNetwork net(topo, m, 10.0, 10.0);
  // Flow over optical (1 hop) and flow over fabric (2 hops), equal sizes:
  // tax = (1 + 2) / 2 = 1.5.
  const SimulationResult r = simulate_flows(
      net, {{0, 1, 10.0, 0.0}, {2, 3, 10.0, 0.0}});
  EXPECT_NEAR(r.bandwidth_tax, 1.5, 1e-12);
}

TEST(FlowSimulator, TraceConversionPreservesOrderAndTiming) {
  trace::Trace t(4, "x");
  t.push_back(trace::Request::make(0, 1));
  t.push_back(trace::Request::make(2, 3));
  const auto specs = flows_from_trace(t, 7.0, 4.0);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].src, 0u);
  EXPECT_DOUBLE_EQ(specs[0].arrival_time, 0.0);
  EXPECT_DOUBLE_EQ(specs[1].arrival_time, 0.25);
  EXPECT_DOUBLE_EQ(specs[1].size, 7.0);
}

}  // namespace
