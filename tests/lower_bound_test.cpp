// Executable form of the paper's lower-bound construction (§2.4, Lemma 1):
// b-matching on a star graph embeds (b,a)-paging, separating deterministic
// Θ(b) from randomized O(log b).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/adversarial.hpp"
#include "core/bma.hpp"
#include "core/opt_small.hpp"
#include "core/r_bma.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

// Lemma 1 embedding: a paging request to item i becomes a block of α
// requests to the star pair {hub=0, i}.
trace::Trace lemma1_trace(const std::vector<std::uint64_t>& paging_seq,
                          std::size_t num_racks, std::uint64_t alpha) {
  trace::Trace t(num_racks, "lemma1");
  for (std::uint64_t item : paging_seq) {
    for (std::uint64_t i = 0; i < alpha; ++i)
      t.push_back(Request::make(0, static_cast<Rack>(1 + item)));
  }
  return t;
}

TEST(LowerBound, StarTopologyHasTheLemmaOneShape) {
  const net::Topology star = net::make_star(8);
  // Hub is not a rack; racks pairwise at distance 2.
  for (Rack i = 0; i < 8; ++i)
    for (Rack j = i + 1; j < 8; ++j) EXPECT_EQ(star.distances(i, j), 2);
}

TEST(LowerBound, BlockRequestsMakeMatchingDecisionsPagingLike) {
  // With blocks of α requests, R-BMA turns each block into ≈ ℓe·... >= 1
  // special request, i.e. it sees exactly the paging instance.
  const net::Topology star = net::make_star(10);
  const std::uint64_t alpha = 8;
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> paging_seq;
  for (int i = 0; i < 300; ++i) paging_seq.push_back(rng.next_below(6));
  const trace::Trace t = lemma1_trace(paging_seq, 10, alpha);

  RBma alg(make_instance(star.distances, 3, alpha), {.seed = 4});
  for (const Request& r : t) alg.serve(r);
  // ke = ceil(8/2) = 4 -> 2 specials per block of 8.
  EXPECT_EQ(alg.special_requests(), paging_seq.size() * 2);
  for (Rack v = 0; v < 10; ++v) EXPECT_LE(alg.matching().degree(v), 3u);
}

TEST(LowerBound, RoundRobinHurtsSmallDegreeMoreThanLarge) {
  // Round-robin over b+1 hub pairs: with degree b every algorithm churns;
  // with degree b+1 the matching eventually covers all pairs and the cost
  // rate collapses.  This is the cliff the lower bound exploits.
  const net::Topology star = net::make_star(12);
  const std::size_t k = 5;  // pairs {0,1}..{0,6} cycle
  const trace::Trace t = trace::generate_round_robin_star(12, 30000, k);

  auto run_cost = [&](std::size_t b) {
    RBma alg(make_instance(star.distances, b, 4), {.seed = 5});
    for (const Request& r : t) alg.serve(r);
    return alg.costs().total_cost();
  };
  const std::uint64_t cost_tight = run_cost(k);      // b = k < k+1 pairs
  const std::uint64_t cost_loose = run_cost(k + 1);  // all pairs fit
  // With all pairs matched, cost approaches 1 per request; with one pair
  // always missing, faults and 2-hop serves keep the rate strictly higher.
  EXPECT_LT(cost_loose, cost_tight);
  EXPECT_LT(static_cast<double>(cost_loose),
            1.2 * static_cast<double>(t.size()));
}

TEST(LowerBound, DeterministicBmaChurnsOnAdversarialRoundRobin) {
  // BMA admits every pair after α routing cost and must evict another —
  // the deterministic Θ(b) pathology: reconfiguration cost keeps growing
  // linearly in the request count.
  const net::Topology star = net::make_star(12);
  const std::size_t b = 4;
  const trace::Trace t =
      trace::generate_round_robin_star(12, 40000, b);  // b+1 pairs cycling

  Bma bma(make_instance(star.distances, b, 6));
  for (const Request& r : t) bma.serve(r);
  // Each pair re-pays α every cycle: reconfig ops scale with requests/α.
  const double ops_rate =
      static_cast<double>(bma.costs().edge_adds + bma.costs().edge_removals) /
      static_cast<double>(t.size());
  EXPECT_GT(ops_rate, 0.05);
}

TEST(LowerBound, RandomizedBeatsDeterministicOnChasingAdversary) {
  // The deterministic Θ(b) lower bound needs an ADAPTIVE adversary: it
  // always requests a hub pair BMA does not currently have matched.
  // Because BMA is deterministic, that adversary compiles into a fixed
  // sequence (generate_chasing_trace drives a victim copy).  On the very
  // same sequence, a fresh BMA replays the chase and bleeds, while R-BMA's
  // random evictions break the correlation and pay much less.
  const net::Topology star = net::make_star(12);
  const std::size_t b = 6;
  const Instance inst = make_instance(star.distances, b, 6);

  Bma victim(inst);
  const trace::Trace t = generate_chasing_trace(victim, 12, b, 60000);

  Bma bma(inst);
  for (const Request& r : t) bma.serve(r);
  // Determinism check: the fresh copy behaved exactly like the victim.
  EXPECT_EQ(bma.costs().total_cost(), victim.costs().total_cost());
  // Every request was a miss for BMA (the definition of the chase).
  EXPECT_EQ(bma.costs().direct_serves, 0u);

  double rbma_total = 0.0;
  const int seeds = 5;
  for (int s = 1; s <= seeds; ++s) {
    RBma rbma(inst, {.seed = static_cast<std::uint64_t>(s)});
    for (const Request& r : t) rbma.serve(r);
    rbma_total += static_cast<double>(rbma.costs().total_cost());
  }
  const double rbma_mean = rbma_total / seeds;
  EXPECT_LT(rbma_mean, static_cast<double>(bma.costs().total_cost()));
}

}  // namespace
