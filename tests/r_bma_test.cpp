// Tests of R-BMA (core/r_bma.hpp): the Theorem 1 special-request cadence,
// the Theorem 2 intersection invariant, lazy-eviction semantics
// (footnote 2), determinism per seed, and feasibility under load.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/r_bma.hpp"
#include "net/distance_matrix.hpp"
#include "net/topology.hpp"
#include "trace/facebook_like.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(RBma, UniformCaseEveryRequestIsSpecial) {
  // α = 1, ℓe = 1 -> ke = 1: the pure Theorem 2 regime.
  const auto d = net::DistanceMatrix::uniform(6, 1);
  RBma alg(make_instance(d, 2, 1), {.seed = 3});
  for (int i = 0; i < 10; ++i) alg.serve(Request::make(0, 1 + (i % 3)));
  EXPECT_EQ(alg.special_requests(), 10u);
}

TEST(RBma, SpecialCadenceIsCeilAlphaOverDistance) {
  // ℓe = 3, α = 10 -> ke = ceil(10/3) = 4: reconfigures on request 4, 8, ...
  const auto d = net::DistanceMatrix::uniform(4, 3);
  RBma alg(make_instance(d, 2, 10), {.seed = 3});
  const Request r = Request::make(0, 1);
  for (int i = 1; i <= 3; ++i) {
    alg.serve(r);
    EXPECT_EQ(alg.special_requests(), 0u) << "request " << i;
    EXPECT_FALSE(alg.matching().has(0, 1));
  }
  alg.serve(r);
  EXPECT_EQ(alg.special_requests(), 1u);
  EXPECT_TRUE(alg.matching().has(0, 1));  // doubly cached -> matched
  for (int i = 5; i <= 7; ++i) alg.serve(r);
  EXPECT_EQ(alg.special_requests(), 1u);
  alg.serve(r);
  EXPECT_EQ(alg.special_requests(), 2u);
}

TEST(RBma, FirstSpecialRequestCreatesMatchingEdge) {
  const auto d = net::DistanceMatrix::uniform(4, 1);
  RBma alg(make_instance(d, 1, 1), {.seed = 1});
  alg.serve(Request::make(2, 3));
  EXPECT_TRUE(alg.matching().has(2, 3));
  EXPECT_TRUE(alg.cached_at(2, pair_key(2, 3)));
  EXPECT_TRUE(alg.cached_at(3, pair_key(2, 3)));
}

class RBmaInvariant
    : public ::testing::TestWithParam<
          std::tuple<paging::EngineKind, bool, int>> {};

TEST_P(RBmaInvariant, IntersectionInvariantAndFeasibilityUnderChurn) {
  const auto [engine, lazy, b] = GetParam();
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(7);
  const trace::Trace t = trace::generate_zipf_pairs(20, 8000, 1.1, rng);

  RBmaOptions opts;
  opts.engine = engine;
  opts.lazy_eviction = lazy;
  opts.seed = 11;
  RBma alg(make_instance(topo.distances, b, 16), opts);

  for (std::size_t i = 0; i < t.size(); ++i) {
    alg.serve(t[i]);
    if (i % 500 == 0) {
      ASSERT_TRUE(alg.matching().check_invariants()) << "i=" << i;
      ASSERT_TRUE(alg.check_intersection_invariant()) << "i=" << i;
    }
  }
  EXPECT_TRUE(alg.matching().check_invariants());
  EXPECT_TRUE(alg.check_intersection_invariant());
  EXPECT_GT(alg.matching().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesModesDegrees, RBmaInvariant,
    ::testing::Combine(::testing::Values(paging::EngineKind::kMarking,
                                         paging::EngineKind::kLru,
                                         paging::EngineKind::kFifo,
                                         paging::EngineKind::kRandom),
                       ::testing::Bool(), ::testing::Values(1, 3, 6)));

TEST(RBma, EagerModeRemovesEdgesOnEviction) {
  // b = 1, uniform: second pair through a shared endpoint must displace
  // the first, and eagerly drop it from the matching.
  const auto d = net::DistanceMatrix::uniform(4, 1);
  RBmaOptions opts;
  opts.lazy_eviction = false;
  opts.seed = 5;
  RBma alg(make_instance(d, 1, 1), opts);
  alg.serve(Request::make(0, 1));
  ASSERT_TRUE(alg.matching().has(0, 1));
  alg.serve(Request::make(0, 2));  // evicts {0,1} from cache of 0
  EXPECT_TRUE(alg.matching().has(0, 2));
  EXPECT_FALSE(alg.matching().has(0, 1));
  EXPECT_EQ(alg.matching().degree(0), 1u);
}

TEST(RBma, LazyModeKeepsEvictedEdgeUntilCapacityNeedsIt) {
  const auto d = net::DistanceMatrix::uniform(4, 1);
  RBmaOptions opts;
  opts.lazy_eviction = true;
  opts.seed = 5;
  RBma alg(make_instance(d, 1, 1), opts);
  alg.serve(Request::make(0, 1));
  ASSERT_TRUE(alg.matching().has(0, 1));
  alg.serve(Request::make(0, 2));
  // {0,1} left the cache of rack 0 but rack 0's matching degree must make
  // room for {0,2}: with b=1 the marked edge is pruned immediately.
  EXPECT_TRUE(alg.matching().has(0, 2));
  EXPECT_FALSE(alg.matching().has(0, 1));
}

TEST(RBma, LazyModeNeverRemovesMoreThanEager) {
  // Same trace, engine, and seed: lazy eviction only defers removals, so
  // its removal count is at most eager's — and on a bursty workload it is
  // strictly smaller (resurrected edges never pay the removal).
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(21);
  trace::FlowPoolParams p;
  p.candidate_pairs = 120;
  p.mean_burst_length = 25.0;
  const trace::Trace t = trace::generate_flow_pool(20, 20000, p, rng);
  const Instance inst = make_instance(topo.distances, 3, 8);

  RBmaOptions lazy_opts{.engine = paging::EngineKind::kMarking,
                        .lazy_eviction = true,
                        .seed = 9};
  RBmaOptions eager_opts = lazy_opts;
  eager_opts.lazy_eviction = false;
  RBma lazy(inst, lazy_opts), eager(inst, eager_opts);
  for (const Request& r : t) {
    lazy.serve(r);
    eager.serve(r);
  }
  EXPECT_LT(lazy.costs().edge_removals, eager.costs().edge_removals);
  // The paging layers are identical (same seeds), so special counts agree.
  EXPECT_EQ(lazy.special_requests(), eager.special_requests());
}

TEST(RBma, LazyModeMarksEdgesTransiently) {
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(22);
  const trace::Trace t = trace::generate_zipf_pairs(20, 15000, 1.0, rng);
  RBma alg(make_instance(topo.distances, 2, 6),
           {.lazy_eviction = true, .seed = 10});
  bool saw_marked = false;
  for (const Request& r : t) {
    alg.serve(r);
    saw_marked |= (alg.marked_count() > 0);
  }
  EXPECT_TRUE(saw_marked);
}

TEST(RBma, DeterministicGivenSeed) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(9);
  const trace::Trace t = trace::generate_zipf_pairs(16, 5000, 1.0, rng);
  const Instance inst = make_instance(topo.distances, 3, 8);

  RBma a(inst, {.seed = 42}), b(inst, {.seed = 42});
  for (const Request& r : t) {
    a.serve(r);
    b.serve(r);
  }
  EXPECT_EQ(a.costs().routing_cost, b.costs().routing_cost);
  EXPECT_EQ(a.costs().reconfig_cost, b.costs().reconfig_cost);
  EXPECT_EQ(a.special_requests(), b.special_requests());
}

TEST(RBma, DifferentSeedsUsuallyDiffer) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(10);
  const trace::Trace t = trace::generate_zipf_pairs(16, 5000, 1.0, rng);
  const Instance inst = make_instance(topo.distances, 3, 8);
  RBma a(inst, {.seed = 1}), b(inst, {.seed = 2});
  for (const Request& r : t) {
    a.serve(r);
    b.serve(r);
  }
  // Marking evictions are random, so the ledgers should diverge.
  EXPECT_NE(a.costs().total_cost(), b.costs().total_cost());
}

TEST(RBma, ResetReproducesRun) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(11);
  const trace::Trace t = trace::generate_zipf_pairs(16, 3000, 1.0, rng);
  RBma alg(make_instance(topo.distances, 2, 8), {.seed = 7});
  for (const Request& r : t) alg.serve(r);
  const std::uint64_t cost1 = alg.costs().total_cost();
  alg.reset();
  EXPECT_EQ(alg.costs().requests, 0u);
  EXPECT_EQ(alg.matching().size(), 0u);
  for (const Request& r : t) alg.serve(r);
  EXPECT_EQ(alg.costs().total_cost(), cost1);
}

TEST(RBma, ReconfiguresOnlyOnSpecialRequests) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(12);
  const trace::Trace t = trace::generate_zipf_pairs(16, 8000, 1.0, rng);
  RBma alg(make_instance(topo.distances, 3, 20), {.seed = 3});
  std::uint64_t last_specials = 0;
  std::uint64_t last_ops = 0;
  for (const Request& r : t) {
    alg.serve(r);
    const std::uint64_t ops =
        alg.costs().edge_adds + alg.costs().edge_removals;
    if (alg.special_requests() == last_specials) {
      // No special request happened: the matching must not have changed.
      ASSERT_EQ(ops, last_ops);
    }
    last_specials = alg.special_requests();
    last_ops = ops;
  }
}

TEST(RBma, CachesBoundTheMatchingDegree) {
  // Paging caches have capacity b, so no rack can exceed b matched edges
  // even under adversarial star traffic.
  const net::Topology topo = net::make_star(12);
  const trace::Trace t = trace::generate_round_robin_star(12, 4000, 6);
  for (std::size_t b : {1ul, 2ul, 4ul}) {
    RBma alg(make_instance(topo.distances, b, 4), {.seed = 13});
    for (const Request& r : t) alg.serve(r);
    for (Rack v = 0; v < 12; ++v) ASSERT_LE(alg.matching().degree(v), b);
  }
}

}  // namespace
