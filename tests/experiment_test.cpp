// Tests for the experiment driver (sim/experiment.hpp) and the parallel
// runner (sim/parallel_runner.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "sim/experiment.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/report.hpp"
#include "trace/generators.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::sim;

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SingleThreadFallback) {
  int sum = 0;
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelFor, ZeroTasksIsNoop) {
  parallel_for(0, [&](std::size_t) { FAIL(); }, 4);
}

TEST(ParallelMap, CollectsInOrder) {
  const auto out = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; }, 8);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

class ExperimentFixture : public ::testing::Test {
 protected:
  ExperimentFixture()
      : topo_(net::make_fat_tree(16)),
        rng_(3),
        trace_(trace::generate_zipf_pairs(16, 6000, 1.0, rng_)) {
    config_.distances = &topo_.distances;
    config_.alpha = 8;
    config_.checkpoints = 4;
    config_.trials = 3;
    config_.base_seed = 7;
  }

  net::Topology topo_;
  Xoshiro256 rng_;
  trace::Trace trace_;
  ExperimentConfig config_;
};

TEST_F(ExperimentFixture, ProducesOneResultPerSpecInOrder) {
  const std::vector<ExperimentSpec> specs = {
      {.algorithm = "r_bma", .b = 2},
      {.algorithm = "bma", .b = 2},
      {.algorithm = "oblivious", .b = 2},
  };
  const auto results = run_experiment(config_, trace_, specs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].algorithm, "r_bma(b=2)");
  EXPECT_EQ(results[1].algorithm, "bma(b=2)");
  EXPECT_EQ(results[2].algorithm, "oblivious(b=2)");
  for (const auto& r : results)
    EXPECT_EQ(r.checkpoints.size(), config_.checkpoints);
}

TEST_F(ExperimentFixture, ThreadCountDoesNotChangeCosts) {
  const std::vector<ExperimentSpec> specs = {
      {.algorithm = "r_bma", .b = 3},
      {.algorithm = "bma", .b = 3},
  };
  ExperimentConfig serial = config_;
  serial.threads = 1;
  ExperimentConfig parallel = config_;
  parallel.threads = 8;
  const auto rs = run_experiment(serial, trace_, specs);
  const auto rp = run_experiment(parallel, trace_, specs);
  ASSERT_EQ(rs.size(), rp.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    for (std::size_t p = 0; p < rs[i].checkpoints.size(); ++p) {
      EXPECT_EQ(rs[i].checkpoints[p].total_cost,
                rp[i].checkpoints[p].total_cost);
    }
  }
}

TEST_F(ExperimentFixture, CustomLabelIsUsed) {
  const std::vector<ExperimentSpec> specs = {
      {.algorithm = "r_bma", .b = 2, .label = "mine"},
  };
  const auto results = run_experiment(config_, trace_, specs);
  EXPECT_EQ(results[0].algorithm, "mine");
}

TEST_F(ExperimentFixture, PreCancelledConfigThrowsCancelledError) {
  // Cancellation is not a spec problem: it must surface as CancelledError
  // (distinct from SpecError) so serving layers can report "cancelled"
  // rather than "failed".
  config_.cancel = CancelToken::make();
  config_.cancel.request_cancel();
  const std::vector<ExperimentSpec> specs = {{.algorithm = "bma", .b = 2}};
  EXPECT_THROW(run_experiment(config_, trace_, specs), CancelledError);
}

TEST_F(ExperimentFixture, CancelFromCheckpointHookStopsTheExperiment) {
  config_.cancel = CancelToken::make();
  std::atomic<std::size_t> seen{0};
  config_.on_checkpoint = [this, &seen](const ExperimentSpec&, std::uint64_t,
                                        const Checkpoint&) {
    seen.fetch_add(1, std::memory_order_relaxed);
    config_.cancel.request_cancel();
  };
  const std::vector<ExperimentSpec> specs = {
      {.algorithm = "bma", .b = 2},
      {.algorithm = "oblivious", .b = 2},
  };
  EXPECT_THROW(run_experiment(config_, trace_, specs), CancelledError);
  EXPECT_GE(seen.load(), 1u);

  // The same config minus the cancelled token still runs fine (the pool
  // and driver carry no poisoned state).
  config_.cancel = CancelToken{};
  config_.on_checkpoint = {};
  EXPECT_EQ(run_experiment(config_, trace_, specs).size(), 2u);
}

TEST_F(ExperimentFixture, CheckpointHookSeesEverySpecAndSeed) {
  std::mutex mu;
  std::vector<std::string> labels;
  config_.trials = 2;
  config_.on_checkpoint = [&](const ExperimentSpec& spec, std::uint64_t seed,
                              const Checkpoint& c) {
    const std::lock_guard<std::mutex> lock(mu);
    labels.push_back(spec.algorithm + "/" + std::to_string(seed) + "/" +
                     std::to_string(c.requests));
  };
  const std::vector<ExperimentSpec> specs = {{.algorithm = "r_bma", .b = 2}};
  run_experiment(config_, trace_, specs);
  // r_bma is randomized: trials distinct seeds × checkpoints hooks fire.
  EXPECT_EQ(labels.size(), config_.trials * config_.checkpoints);
}

TEST_F(ExperimentFixture, RandomizedFlagging) {
  EXPECT_TRUE(is_randomized("r_bma"));
  EXPECT_FALSE(is_randomized("bma"));
  EXPECT_FALSE(is_randomized("oblivious"));
  EXPECT_FALSE(is_randomized("so_bma"));
}

TEST_F(ExperimentFixture, ReportTablesRenderAllSeries) {
  const std::vector<ExperimentSpec> specs = {
      {.algorithm = "r_bma", .b = 2},
      {.algorithm = "oblivious", .b = 2},
  };
  const auto results = run_experiment(config_, trace_, specs);
  std::ostringstream table;
  print_table(table, results, Metric::kRoutingCost, "test");
  const std::string text = table.str();
  EXPECT_NE(text.find("r_bma(b=2)"), std::string::npos);
  EXPECT_NE(text.find("oblivious(b=2)"), std::string::npos);
  EXPECT_NE(text.find("routing_cost"), std::string::npos);

  std::ostringstream csv;
  write_csv(csv, results, Metric::kRoutingCost);
  // Header + one line per checkpoint.
  std::size_t lines = 0;
  for (char c : csv.str()) lines += (c == '\n');
  EXPECT_EQ(lines, 1 + config_.checkpoints);

  std::ostringstream summary;
  print_summary(summary, results, results.back());
  EXPECT_NE(summary.str().find("reduction"), std::string::npos);
}

TEST_F(ExperimentFixture, ObliviousDominatesDemandAwareOnSkewedTrace) {
  const std::vector<ExperimentSpec> specs = {
      {.algorithm = "r_bma", .b = 4},
      {.algorithm = "bma", .b = 4},
      {.algorithm = "oblivious", .b = 4},
  };
  const auto results = run_experiment(config_, trace_, specs);
  const auto rbma = results[0].final().routing_cost;
  const auto bma = results[1].final().routing_cost;
  const auto obl = results[2].final().routing_cost;
  EXPECT_LT(rbma, obl);
  EXPECT_LT(bma, obl);
}

}  // namespace
