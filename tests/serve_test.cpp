// The serving subsystem end to end: protocol parsing, the LRU results
// cache, and a real in-process Daemon spoken to over its AF_UNIX socket —
// admission, canonical-spec cache hits, cooperative cancellation,
// backpressure, and error reporting.
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "scenario/scenario.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/results_cache.hpp"
#include "sim/report.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::serve;

// ---------------------------------------------------------------- cache

TEST(ResultsCache, HitMissAndStats) {
  ResultsCache cache(4);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "payload-a");
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-a");
  const ResultsCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultsCache, EvictsLeastRecentlyUsed) {
  ResultsCache cache(2);
  cache.put("a", "A");
  cache.put("b", "B");
  ASSERT_TRUE(cache.get("a").has_value());  // "b" is now least recent
  cache.put("c", "C");                      // evicts "b"
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultsCache, PutRefreshesExistingKey) {
  ResultsCache cache(2);
  cache.put("a", "old");
  cache.put("b", "B");
  cache.put("a", "new");  // refresh, not duplicate; "a" most recent again
  cache.put("c", "C");    // evicts "b"
  EXPECT_EQ(cache.get("a").value_or(""), "new");
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultsCache, ZeroCapacityDisables) {
  ResultsCache cache(0);
  cache.put("a", "A");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

// -------------------------------------------------------------- protocol

TEST(Protocol, ParsesCommands) {
  EXPECT_EQ(parse_command("PING").kind, Command::Kind::kPing);
  const Command run = parse_command("RUN workload=zipf;requests=10");
  EXPECT_EQ(run.kind, Command::Kind::kRun);
  EXPECT_EQ(run.spec, "workload=zipf;requests=10");
  const Command cancel = parse_command("CANCEL 17");
  EXPECT_EQ(cancel.kind, Command::Kind::kCancel);
  EXPECT_EQ(cancel.id, 17u);
  EXPECT_EQ(parse_command("STATS").kind, Command::Kind::kStats);
  EXPECT_EQ(parse_command("SHUTDOWN").kind, Command::Kind::kShutdown);
}

TEST(Protocol, RejectsMalformedCommands) {
  EXPECT_EQ(parse_command("FROB").kind, Command::Kind::kInvalid);
  EXPECT_NE(parse_command("FROB").error.find("unknown command"),
            std::string::npos);
  EXPECT_EQ(parse_command("RUN").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("CANCEL").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("CANCEL x7").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("CANCEL -1").kind, Command::Kind::kInvalid);
}

TEST(Protocol, ServerLinesRoundTrip) {
  EXPECT_EQ(parse_server_line(msg_pong()).kind, ServerLine::Kind::kPong);
  const ServerLine acc = parse_server_line(msg_accepted(42));
  EXPECT_EQ(acc.kind, ServerLine::Kind::kAccepted);
  EXPECT_EQ(acc.id, 42u);
  const ServerLine rej = parse_server_line(msg_reject(250));
  EXPECT_EQ(rej.kind, ServerLine::Kind::kReject);
  EXPECT_EQ(rej.retry_ms, 250u);
  const ServerLine res = parse_server_line(msg_result(7, true, 5));
  EXPECT_EQ(res.kind, ServerLine::Kind::kResult);
  EXPECT_EQ(res.id, 7u);
  EXPECT_TRUE(res.cached);
  EXPECT_EQ(res.lines, 5u);
  const ServerLine done = parse_server_line(msg_done(7, "cancelled"));
  EXPECT_EQ(done.kind, ServerLine::Kind::kDone);
  EXPECT_EQ(done.status, "cancelled");
}

TEST(Protocol, ParsesRunDeadlineOption) {
  const Command run = parse_command("RUN workload=zipf deadline_ms=250");
  EXPECT_EQ(run.kind, Command::Kind::kRun);
  EXPECT_EQ(run.spec, "workload=zipf");
  EXPECT_EQ(run.deadline_ms, 250u);
  // No option means no deadline.
  EXPECT_EQ(parse_command("RUN workload=zipf").deadline_ms, 0u);
  // Zero, non-numeric, and unknown options are refused, not ignored.
  EXPECT_EQ(parse_command("RUN w=z deadline_ms=0").kind,
            Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("RUN w=z deadline_ms=abc").kind,
            Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("RUN w=z bogus=1").kind, Command::Kind::kInvalid);
}

TEST(Protocol, ParsesAttachCommand) {
  const Command plain = parse_command("ATTACH 17");
  EXPECT_EQ(plain.kind, Command::Kind::kAttach);
  EXPECT_EQ(plain.id, 17u);
  EXPECT_EQ(plain.from, 1u);  // default: replay everything
  const Command resumed = parse_command("ATTACH 17 from=5");
  EXPECT_EQ(resumed.kind, Command::Kind::kAttach);
  EXPECT_EQ(resumed.id, 17u);
  EXPECT_EQ(resumed.from, 5u);
  // Missing/garbled id, zero or non-numeric from, unknown options: all
  // refused, never guessed at.
  EXPECT_EQ(parse_command("ATTACH").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("ATTACH x7").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("ATTACH 1 from=0").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("ATTACH 1 from=abc").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("ATTACH 1 bogus=2").kind, Command::Kind::kInvalid);
}

TEST(Protocol, ParsesShutdownDrainOption) {
  EXPECT_FALSE(parse_command("SHUTDOWN").drain);
  const Command drain = parse_command("SHUTDOWN drain=1");
  EXPECT_EQ(drain.kind, Command::Kind::kShutdown);
  EXPECT_TRUE(drain.drain);
  const Command immediate = parse_command("SHUTDOWN drain=0");
  EXPECT_EQ(immediate.kind, Command::Kind::kShutdown);
  EXPECT_FALSE(immediate.drain);
  EXPECT_EQ(parse_command("SHUTDOWN drain=2").kind, Command::Kind::kInvalid);
  EXPECT_EQ(parse_command("SHUTDOWN bogus").kind, Command::Kind::kInvalid);
}

TEST(Protocol, AttachedLineRoundTrips) {
  const ServerLine at = parse_server_line(msg_attached(9, "running", 4));
  EXPECT_EQ(at.kind, ServerLine::Kind::kAttached);
  EXPECT_EQ(at.id, 9u);
  EXPECT_EQ(at.status, "running");
  EXPECT_EQ(at.seq, 4u);
}

TEST(Protocol, CheckpointLineCarriesSeq) {
  sim::Checkpoint c;
  c.requests = 100;
  c.routing_cost = 7;
  c.total_cost = 9;
  const ServerLine line =
      parse_server_line(msg_checkpoint(3, 12, "bma", 42, c));
  EXPECT_EQ(line.kind, ServerLine::Kind::kCheckpoint);
  EXPECT_EQ(line.id, 3u);
  EXPECT_EQ(line.seq, 12u);
}

TEST(Protocol, StatsReportRoundTrips) {
  StatsReport r;
  r.active = 1;
  r.queued = 2;
  r.cache_hits = 3;
  r.cache_misses = 4;
  r.cache_entries = 5;
  r.completed = 6;
  r.cancelled = 7;
  r.deadline_exceeded = 8;
  r.crashed = 9;
  r.rejected = 10;
  r.quarantined = 11;
  r.disk_hits = 12;
  r.disk_corrupt = 13;
  r.recovered = 14;
  r.attached = 15;
  const ServerLine line = parse_server_line(msg_stats(r));
  ASSERT_EQ(line.kind, ServerLine::Kind::kStats);
  const StatsReport parsed = parse_stats(line.text);
  EXPECT_EQ(parsed.active, 1u);
  EXPECT_EQ(parsed.queued, 2u);
  EXPECT_EQ(parsed.cache_hits, 3u);
  EXPECT_EQ(parsed.cache_misses, 4u);
  EXPECT_EQ(parsed.cache_entries, 5u);
  EXPECT_EQ(parsed.completed, 6u);
  EXPECT_EQ(parsed.cancelled, 7u);
  EXPECT_EQ(parsed.deadline_exceeded, 8u);
  EXPECT_EQ(parsed.crashed, 9u);
  EXPECT_EQ(parsed.rejected, 10u);
  EXPECT_EQ(parsed.quarantined, 11u);
  EXPECT_EQ(parsed.disk_hits, 12u);
  EXPECT_EQ(parsed.disk_corrupt, 13u);
  EXPECT_EQ(parsed.recovered, 14u);
  EXPECT_EQ(parsed.attached, 15u);
}

TEST(Protocol, DoneStatusCarriesDeadlineExceeded) {
  const ServerLine done = parse_server_line(msg_done(3, "deadline_exceeded"));
  EXPECT_EQ(done.kind, ServerLine::Kind::kDone);
  EXPECT_EQ(done.status, "deadline_exceeded");
}

TEST(Protocol, SanitizeFoldsNewlines) {
  // Error text travels on one line; embedded newlines must not let a spec
  // fragment masquerade as a protocol line.
  EXPECT_EQ(parse_server_line(msg_error("bad\nRUN x")).text, "bad RUN x");
}

// ------------------------------------------------------------ daemon e2e

/// A tiny scenario (same shape as the CLI smoke sweep) and an equivalent
/// twin with every component's parameters reordered.
constexpr const char* kSmallSpec =
    "topology=torus:rows=3,cols=3;workload=flow_pool:pairs=30,skew=1.1;"
    "algorithms=r_bma:engine=lru,bma;b=2,4;racks=9;requests=3000;trials=2;"
    "checkpoints=4;seed=7";
constexpr const char* kSmallSpecReordered =
    "topology=torus:cols=3,rows=3;workload=flow_pool:skew=1.1,pairs=30;"
    "algorithms=r_bma:engine=lru,bma;b=2,4;racks=9;requests=3000;trials=2;"
    "checkpoints=4;seed=7";
/// Long enough that cancellation at the first checkpoint leaves most of
/// the run unserved (first checkpoint after 100k of 1.6M requests).
constexpr const char* kLongSpec =
    "workload=zipf:skew=1.1;algorithms=bma;b=4;racks=16;requests=1600000;"
    "trials=1;checkpoints=16;seed=3";

std::string unique_socket_path(const std::string& tag) {
  return "/tmp/rdcn_serve_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

/// The CSV a direct in-process run produces — what the daemon must serve
/// bit-identically.
std::string direct_csv(const std::string& spec_text) {
  const scenario::ScenarioResult result =
      scenario::run_scenario(scenario::ScenarioSpec::parse(spec_text));
  std::ostringstream csv;
  sim::write_csv(csv, result.runs, sim::Metric::kRoutingCost);
  return csv.str();
}

struct DaemonFixture {
  explicit DaemonFixture(ServeOptions options) : daemon(std::move(options)) {
    daemon.start();
    client.connect(daemon.options().socket_path);
  }
  ~DaemonFixture() {
    client.disconnect();
    daemon.stop();
  }
  Daemon daemon;
  Client client;
};

ServeOptions small_options(const std::string& tag) {
  ServeOptions options;
  options.socket_path = unique_socket_path(tag);
  options.executors = 1;
  options.threads = 1;
  return options;
}

TEST(Daemon, PingAndSpecErrorsKeepDaemonAlive) {
  DaemonFixture f(small_options("ping"));
  f.client.ping();

  f.client.send_line("FROB");
  EXPECT_EQ(parse_server_line(f.client.read_line()).kind,
            ServerLine::Kind::kError);

  // Unknown algorithm: refused with the registry's suggestion, no run id.
  const Client::Submission bad =
      f.client.submit("workload=zipf;algorithms=r_bmaa;requests=100");
  EXPECT_FALSE(bad.accepted);
  EXPECT_NE(bad.error.find("r_bma"), std::string::npos) << bad.error;

  // Unparseable spec text.
  EXPECT_FALSE(f.client.submit("no_such_field=1").error.empty());
  // Shape the registries can't check: grid needs requests >= checkpoints.
  EXPECT_FALSE(
      f.client.submit("workload=zipf;requests=4;checkpoints=8").error.empty());

  f.client.ping();  // still serving after every refusal
}

TEST(Daemon, ServedCsvMatchesDirectRunByteForByte) {
  const std::string expected = direct_csv(kSmallSpec);
  DaemonFixture f(small_options("csv"));
  const Client::Submission sub = f.client.submit(kSmallSpec);
  ASSERT_TRUE(sub.accepted) << sub.error;
  const Client::RunOutput out = f.client.collect(sub.id);
  EXPECT_EQ(out.status, "ok") << out.error;
  EXPECT_FALSE(out.cached);
  EXPECT_GT(out.checkpoints, 0u);
  EXPECT_EQ(out.csv, expected);
}

TEST(Daemon, ReorderedSpecIsServedFromCache) {
  DaemonFixture f(small_options("cache"));
  const Client::Submission first = f.client.submit(kSmallSpec);
  ASSERT_TRUE(first.accepted) << first.error;
  const Client::RunOutput executed = f.client.collect(first.id);
  ASSERT_EQ(executed.status, "ok") << executed.error;
  ASSERT_FALSE(executed.cached);

  // Same experiment, parameters permuted: canonical keying makes it a hit
  // (served without re-running — executors couldn't matter less here).
  const Client::Submission second = f.client.submit(kSmallSpecReordered);
  ASSERT_TRUE(second.accepted) << second.error;
  EXPECT_NE(second.id, first.id);
  const Client::RunOutput cached = f.client.collect(second.id);
  EXPECT_EQ(cached.status, "ok") << cached.error;
  EXPECT_TRUE(cached.cached);
  EXPECT_EQ(cached.csv, executed.csv);
  EXPECT_GE(f.daemon.cache_stats().hits, 1u);
}

TEST(Daemon, CancelStopsRunAtChunkBoundary) {
  DaemonFixture f(small_options("cancel"));
  // Warm the pool first so the spawn counter is settled.
  const Client::Submission warm = f.client.submit(kSmallSpec);
  ASSERT_TRUE(warm.accepted) << warm.error;
  ASSERT_EQ(f.client.collect(warm.id).status, "ok");
  const std::uint64_t spawned = sim::ThreadPool::instance().threads_spawned();

  const Client::Submission sub = f.client.submit(kLongSpec);
  ASSERT_TRUE(sub.accepted) << sub.error;
  bool cancel_sent = false;
  const Client::RunOutput out =
      f.client.collect(sub.id, [&](const std::string&) {
        if (!cancel_sent) {
          cancel_sent = true;
          f.client.send_line("CANCEL " + std::to_string(sub.id));
        }
      });
  ASSERT_TRUE(cancel_sent);  // at least one checkpoint streamed
  EXPECT_EQ(out.status, "cancelled");
  EXPECT_TRUE(out.csv.empty());
  // Cancellation reaches the chunk loop cooperatively — no pool teardown,
  // no replacement threads.
  EXPECT_EQ(sim::ThreadPool::instance().threads_spawned(), spawned);

  // The executor slot is free again: a fresh run completes normally.
  const Client::Submission next = f.client.submit(kSmallSpec);
  ASSERT_TRUE(next.accepted) << next.error;
  EXPECT_EQ(f.client.collect(next.id).status, "ok");
}

TEST(Daemon, CancelUnknownIdReportsError) {
  DaemonFixture f(small_options("cancel_unknown"));
  EXPECT_FALSE(f.client.cancel(999));
}

TEST(Daemon, QueueFullRejectsWithRetryHint) {
  // executors=0: runs are admitted but never drained, so the queue fills
  // deterministically.
  ServeOptions options = small_options("backpressure");
  options.executors = 0;
  options.queue_limit = 2;
  options.retry_hint_ms = 350;
  DaemonFixture f(std::move(options));

  // Distinct specs (different seeds) so nothing is ever answerable from
  // cache.
  const Client::Submission a =
      f.client.submit("workload=zipf;requests=1000;seed=1");
  const Client::Submission b =
      f.client.submit("workload=zipf;requests=1000;seed=2");
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  const Client::Submission c =
      f.client.submit("workload=zipf;requests=1000;seed=3");
  EXPECT_FALSE(c.accepted);
  EXPECT_TRUE(c.rejected);
  EXPECT_EQ(c.retry_ms, 350u);

  const std::string stats = f.client.stats();
  EXPECT_NE(stats.find("queued=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("active=0"), std::string::npos) << stats;

  // Cancelling a queued (never started) run is acknowledged too.
  EXPECT_TRUE(f.client.cancel(a.id));
}

TEST(Daemon, ShutdownCommandUnblocksWait) {
  DaemonFixture f(small_options("shutdown"));
  std::thread waiter([&] { f.daemon.wait_for_shutdown_command(); });
  f.client.shutdown_daemon();
  waiter.join();  // returns because SHUTDOWN was received, not stop()
}

}  // namespace
