// Behavioural tests for the LFU and ARC paging engines.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paging/arc.hpp"
#include "paging/belady.hpp"
#include "paging/lfu.hpp"
#include "paging/lru.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::paging;

void feed(PagingAlgorithm& alg, const std::vector<Key>& seq) {
  std::vector<Key> ev;
  for (Key k : seq) {
    ev.clear();
    alg.request(k, ev);
  }
}

// ---------------------------------------------------------------- LFU ----

TEST(Lfu, TracksFrequencies) {
  Lfu lfu(3);
  feed(lfu, {1, 1, 1, 2, 2, 3});
  EXPECT_EQ(lfu.frequency(1), 3u);
  EXPECT_EQ(lfu.frequency(2), 2u);
  EXPECT_EQ(lfu.frequency(3), 1u);
  EXPECT_EQ(lfu.frequency(99), 0u);
}

TEST(Lfu, EvictsLeastFrequent) {
  Lfu lfu(3);
  feed(lfu, {1, 1, 1, 2, 2, 3});
  std::vector<Key> ev;
  lfu.request(4, ev);  // 3 has the lowest count
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 3u);
  EXPECT_TRUE(lfu.contains(1));
  EXPECT_TRUE(lfu.contains(2));
  EXPECT_TRUE(lfu.contains(4));
}

TEST(Lfu, TieBreaksByRecencyWithinBucket) {
  Lfu lfu(3);
  feed(lfu, {1, 2, 3});  // all frequency 1; LRU within bucket is 1
  std::vector<Key> ev;
  lfu.request(4, ev);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 1u);
}

TEST(Lfu, NewKeysStartAtFrequencyOneEvenAfterChurn) {
  Lfu lfu(2);
  feed(lfu, {1, 1, 1, 2});
  std::vector<Key> ev;
  lfu.request(3, ev);  // evicts 2 (freq 1, LRU)
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 2u);
  EXPECT_EQ(lfu.frequency(3), 1u);
}

TEST(Lfu, WarmedHotSetSurvivesTransientRuns) {
  // Once a hot set has built up frequency, LFU pins it: incoming
  // transients (frequency 1) can only displace each other.  LRU instead
  // loses the whole hot set whenever >= capacity transients arrive in a
  // row.  Capacity 5 = 4 hot keys + 1 churn slot.
  Lfu lfu(5);
  Lru lru(5);
  std::vector<Key> seq;
  for (int round = 0; round < 10; ++round)        // warmup
    for (Key k = 1; k <= 4; ++k) seq.push_back(k);
  Xoshiro256 rng(3);
  Key fresh = 1000;
  for (int i = 0; i < 4000; ++i) {
    seq.push_back(rng.next_bool(0.5) ? 1 + rng.next_below(4) : fresh++);
  }
  feed(lfu, seq);
  feed(lru, seq);
  for (Key k = 1; k <= 4; ++k) EXPECT_TRUE(lfu.contains(k)) << k;
  EXPECT_LT(lfu.faults(), lru.faults());
}

TEST(Lfu, ColdStartThrashOnLongPeriodElephant) {
  // Documented limitation (why the paper's marking engine uses phase
  // resets instead of raw counts): an elephant returning with period >
  // capacity re-enters at frequency 1 each time and keeps getting evicted
  // as the oldest key of the frequency-1 bucket — LFU gains nothing over
  // faulting always.
  Lfu lfu(4);
  Xoshiro256 rng(3);
  std::vector<Key> seq;
  std::size_t elephant_requests = 0;
  for (int i = 0; i < 4000; ++i) {
    const bool elephant = (i % 8 == 0);
    elephant_requests += elephant;
    seq.push_back(elephant ? 1 : 100 + rng.next_below(50));
  }
  feed(lfu, seq);
  // The elephant faults nearly every visit.
  EXPECT_GT(lfu.faults(), elephant_requests);
}

// ---------------------------------------------------------------- ARC ----

TEST(Arc, SecondTouchPromotesToFrequencyList) {
  Arc arc(4);
  feed(arc, {1, 2});
  EXPECT_EQ(arc.recency_list_size(), 2u);
  EXPECT_EQ(arc.frequency_list_size(), 0u);
  feed(arc, {1});
  EXPECT_EQ(arc.recency_list_size(), 1u);
  EXPECT_EQ(arc.frequency_list_size(), 1u);
}

TEST(Arc, GhostHitAdaptsTarget) {
  Arc arc(2);
  // 1,2 fill T1; re-touching 1 moves it to T2; 3 then evicts 2 (the LRU of
  // T1) into the B1 ghost list.
  feed(arc, {1, 2, 1, 3});
  EXPECT_FALSE(arc.contains(2));
  const std::size_t p_before = arc.adaptation_target();
  feed(arc, {2});  // ghost hit in B1 -> p grows
  EXPECT_GT(arc.adaptation_target(), p_before);
  EXPECT_TRUE(arc.contains(2));
}

TEST(Arc, FullRecencyListEvictsWithoutGhost) {
  // The |T1| = c, B1 empty corner of the ARC case analysis: the T1 LRU is
  // dropped outright, so re-requesting it later is a plain miss that does
  // not adapt p.
  Arc arc(2);
  feed(arc, {1, 2, 3});  // T1 full, B1 empty -> 1 dropped without ghost
  EXPECT_FALSE(arc.contains(1));
  const std::size_t p_before = arc.adaptation_target();
  feed(arc, {1});
  EXPECT_EQ(arc.adaptation_target(), p_before);
}

TEST(Arc, ScanResistance) {
  // Establish a hot working set, then stream a long one-shot scan: ARC
  // must fault less than LRU, which lets the scan flush the hot set.
  const std::size_t cap = 8;
  Arc arc(cap);
  Lru lru(cap);
  std::vector<Key> seq;
  Xoshiro256 rng(4);
  for (int round = 0; round < 400; ++round) {
    // Hot set 1..4 touched twice per round (builds frequency), plus two
    // scan keys that never repeat.
    for (Key k = 1; k <= 4; ++k) seq.push_back(k);
    for (Key k = 1; k <= 4; ++k) seq.push_back(k);
    seq.push_back(10000 + 2 * round);
    seq.push_back(10001 + 2 * round);
  }
  feed(arc, seq);
  feed(lru, seq);
  EXPECT_LE(arc.faults(), lru.faults());
  // The hot set must be resident in ARC at the end.
  for (Key k = 1; k <= 4; ++k) EXPECT_TRUE(arc.contains(k));
}

TEST(Arc, NeverBeatsBeladyButStaysReasonable) {
  Xoshiro256 rng(5);
  std::vector<Key> seq;
  for (int i = 0; i < 5000; ++i) seq.push_back(1 + rng.next_below(20));
  Arc arc(6);
  feed(arc, seq);
  const std::uint64_t opt = Belady::optimal_faults(6, seq);
  EXPECT_GE(arc.faults(), opt);
  EXPECT_LT(arc.faults(), 20 * opt);
}

TEST(Arc, ResetClearsAllFourLists) {
  Arc arc(3);
  feed(arc, {1, 2, 3, 4, 5, 1, 2});
  arc.reset();
  EXPECT_EQ(arc.size(), 0u);
  EXPECT_EQ(arc.recency_list_size(), 0u);
  EXPECT_EQ(arc.frequency_list_size(), 0u);
  EXPECT_EQ(arc.adaptation_target(), 0u);
  feed(arc, {7});
  EXPECT_TRUE(arc.contains(7));
}

}  // namespace
