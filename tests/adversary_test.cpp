// Lower-bound machinery tests (paging/adversary.hpp): the separations the
// paper's §2.4 builds on, made executable.
#include <gtest/gtest.h>

#include <cmath>

#include "paging/adversary.hpp"
#include "paging/marking.hpp"
#include "paging/belady.hpp"
#include "paging/factory.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::paging;

TEST(CruelAdversary, ForcesFaultOnEveryRequestForDeterministic) {
  for (EngineKind kind :
       {EngineKind::kLru, EngineKind::kFifo, EngineKind::kClock}) {
    auto engine = make_engine(kind, 5, Xoshiro256(1));
    const CruelAdversary adv(6);  // universe = capacity + 1
    adv.drive(*engine, 300);
    EXPECT_EQ(engine->faults(), 300u) << engine_name(kind);
    EXPECT_EQ(engine->hits(), 0u);
  }
}

TEST(CruelAdversary, OptFaultsAboutOncePerCapacityWindow) {
  // On the cruel sequence against LRU with b+1 keys, OPT (Belady) faults
  // roughly once per b requests: the deterministic Θ(b) separation.
  const std::size_t b = 8;
  auto lru = make_engine(EngineKind::kLru, b, Xoshiro256(1));
  const CruelAdversary adv(b + 1);
  const std::vector<Key> seq = adv.drive(*lru, 4000);
  const std::uint64_t opt = Belady::optimal_faults(b, seq);
  const double ratio = static_cast<double>(lru->faults()) /
                       static_cast<double>(opt);
  // Ratio should be close to b (within [b/2, 2b] generously).
  EXPECT_GE(ratio, static_cast<double>(b) / 2);
  EXPECT_LE(ratio, static_cast<double>(b) * 2);
}

TEST(UniformAdversary, MarkingStaysWithinLogFactorOfOpt) {
  // Against the oblivious uniform adversary over b+1 keys, randomized
  // marking's fault rate is O(H_b) x OPT — exponentially better than the
  // deterministic Θ(b).  Statistical test with generous slack.
  const std::size_t b = 16;
  UniformAdversary adv(b + 1, Xoshiro256(7));
  const std::vector<Key> seq = adv.sequence(60000);

  Marking marking(b, Xoshiro256(8));
  std::vector<Key> ev;
  for (Key k : seq) {
    ev.clear();
    marking.request(k, ev);
  }
  const std::uint64_t opt = Belady::optimal_faults(b, seq);
  ASSERT_GT(opt, 0u);
  const double ratio =
      static_cast<double>(marking.faults()) / static_cast<double>(opt);
  const double bound = 2.0 * (std::log(static_cast<double>(b)) + 1.0);
  EXPECT_LE(ratio, bound + 1.0);  // 2 H_b plus slack for finite-sample noise
}

TEST(UniformAdversary, DeterministicEnginesSufferMoreThanMarking) {
  const std::size_t b = 16;
  UniformAdversary adv(b + 1, Xoshiro256(17));
  const std::vector<Key> seq = adv.sequence(60000);
  std::vector<Key> ev;

  auto run = [&](EngineKind kind) {
    auto engine = make_engine(kind, b, Xoshiro256(18));
    for (Key k : seq) {
      ev.clear();
      engine->request(k, ev);
    }
    return engine->faults();
  };

  // Uniform requests hit every engine ~1/(b+1) of the time, so the fault
  // counts are comparable here; the separation shows against the *cruel*
  // adversary (previous test).  What must hold universally: nothing beats
  // Belady, and marking is not worse than the memoryless baseline.
  const std::uint64_t marking_faults = run(EngineKind::kMarking);
  const std::uint64_t random_faults = run(EngineKind::kRandom);
  const std::uint64_t opt = Belady::optimal_faults(b, seq);
  EXPECT_GE(marking_faults, opt);
  EXPECT_GE(random_faults, opt);
  EXPECT_LE(static_cast<double>(marking_faults),
            1.10 * static_cast<double>(random_faults));
}

// Young '91: randomized marking with cache b against an offline optimum
// with cache a <= b is 2·ln(b/(b-a+1))-competitive (the bound Corollary 3
// plugs into Theorem 2).  Executable check with additive slack for
// finite-sample noise, swept over the augmentation level.
class AugmentedMarking : public ::testing::TestWithParam<int> {};

TEST_P(AugmentedMarking, WithinYoungBoundOfSmallerCacheOpt) {
  const std::size_t b = 16;
  const std::size_t a = static_cast<std::size_t>(GetParam());
  UniformAdversary adv(b + 1, Xoshiro256(40));
  const std::vector<Key> seq = adv.sequence(50000);

  Marking marking(b, Xoshiro256(41));
  std::vector<Key> ev;
  for (Key k : seq) {
    ev.clear();
    marking.request(k, ev);
  }
  const std::uint64_t opt_a = Belady::optimal_faults(a, seq);
  ASSERT_GT(opt_a, 0u);
  const double ratio = static_cast<double>(marking.faults()) /
                       static_cast<double>(opt_a);
  const double bound =
      2.0 * std::log(static_cast<double>(b) /
                     static_cast<double>(b - a + 1));
  EXPECT_LE(ratio, bound + 2.0) << "b=" << b << " a=" << a;
}

INSTANTIATE_TEST_SUITE_P(AugmentationSweep, AugmentedMarking,
                         ::testing::Values(16, 12, 8, 4, 2));

TEST(CruelAdversary, SequenceStaysInsideUniverse) {
  auto lru = make_engine(EngineKind::kLru, 3, Xoshiro256(1));
  const CruelAdversary adv(4);
  const std::vector<Key> seq = adv.drive(*lru, 100);
  for (Key k : seq) EXPECT_LT(k, 4u);
}

TEST(UniformAdversary, DeterministicGivenSeed) {
  UniformAdversary a(10, Xoshiro256(3)), b(10, Xoshiro256(3));
  EXPECT_EQ(a.sequence(50), b.sequence(50));
}

}  // namespace
