// Tests for the dynamic b-matching structure (core/b_matching.hpp) — the
// feasibility invariant of the paper's model.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/b_matching.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

TEST(BMatching, AddHasRemove) {
  BMatching m(5, 2);
  EXPECT_FALSE(m.has(0, 1));
  m.add(0, 1);
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_TRUE(m.has(1, 0));  // unordered
  EXPECT_EQ(m.size(), 1u);
  m.remove(1, 0);
  EXPECT_FALSE(m.has(0, 1));
  EXPECT_EQ(m.size(), 0u);
}

TEST(BMatching, DegreeTracking) {
  BMatching m(5, 3);
  m.add(0, 1);
  m.add(0, 2);
  m.add(0, 3);
  EXPECT_EQ(m.degree(0), 3u);
  EXPECT_EQ(m.degree(1), 1u);
  EXPECT_TRUE(m.full(0));
  EXPECT_FALSE(m.full(1));
  m.remove(0, 2);
  EXPECT_EQ(m.degree(0), 2u);
  EXPECT_FALSE(m.full(0));
}

TEST(BMatching, NeighborsReflectEdges) {
  BMatching m(6, 4);
  m.add(2, 3);
  m.add(2, 5);
  const auto& n2 = m.neighbors(2);
  EXPECT_EQ(n2.size(), 2u);
  EXPECT_TRUE(n2.contains(3));
  EXPECT_TRUE(n2.contains(5));
  EXPECT_TRUE(m.neighbors(3).contains(2));
}

TEST(BMatching, DegreeCapViolationAborts) {
  BMatching m(4, 1);
  m.add(0, 1);
  EXPECT_DEATH(m.add(0, 2), "degree cap");
}

TEST(BMatching, DuplicateAddAborts) {
  BMatching m(4, 2);
  m.add(0, 1);
  EXPECT_DEATH(m.add(1, 0), "already in matching");
}

TEST(BMatching, RemovingAbsentEdgeAborts) {
  BMatching m(4, 2);
  EXPECT_DEATH(m.remove(0, 1), "not in the matching");
}

TEST(BMatching, ClearResets) {
  BMatching m(5, 2);
  m.add(0, 1);
  m.add(2, 3);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.degree(0), 0u);
  EXPECT_FALSE(m.has(0, 1));
  m.add(0, 1);  // still usable
  EXPECT_TRUE(m.check_invariants());
}

TEST(BMatching, EdgeKeysEnumerate) {
  BMatching m(5, 2);
  m.add(0, 1);
  m.add(2, 4);
  auto keys = m.edge_keys();
  ASSERT_EQ(keys.size(), 2u);
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys[0], pair_key(0, 1));
  EXPECT_EQ(keys[1], pair_key(2, 4));
}

TEST(BMatching, InvariantsHoldUnderRandomChurn) {
  Xoshiro256 rng(55);
  const std::size_t n = 12, b = 3;
  BMatching m(n, b);
  for (int step = 0; step < 20000; ++step) {
    const Rack u = static_cast<Rack>(rng.next_below(n));
    Rack v = static_cast<Rack>(rng.next_below(n - 1));
    if (v >= u) ++v;
    if (m.has(u, v)) {
      m.remove(u, v);
    } else if (!m.full(u) && !m.full(v)) {
      m.add(u, v);
    }
    if (step % 1000 == 0) ASSERT_TRUE(m.check_invariants());
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(BMatching, PerfectBMatchingFillsAllDegrees) {
  // Ring of 6 nodes with b=2: every node matched to both neighbors.
  BMatching m(6, 2);
  for (Rack i = 0; i < 6; ++i)
    m.add(i, static_cast<Rack>((i + 1) % 6));
  EXPECT_EQ(m.size(), 6u);
  for (Rack i = 0; i < 6; ++i) EXPECT_TRUE(m.full(i));
  EXPECT_TRUE(m.check_invariants());
}

}  // namespace
