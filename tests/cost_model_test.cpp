// Tests for the standalone cost evaluators (core/cost_model.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/cost_model.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

using rdcn::testing::make_instance;

TEST(CostModel, ObliviousIsSumOfDistances) {
  const auto d = net::DistanceMatrix::uniform(5, 3);
  trace::Trace t(5, "x");
  t.push_back(Request::make(0, 1));
  t.push_back(Request::make(2, 4));
  EXPECT_EQ(oblivious_cost(make_instance(d, 1, 1), t), 6u);
}

TEST(CostModel, StaticRoutingUsesMatchedEdgesAtCostOne) {
  const auto d = net::DistanceMatrix::uniform(5, 4);
  trace::Trace t(5, "x");
  t.push_back(Request::make(0, 1));  // matched -> 1
  t.push_back(Request::make(0, 1));  // matched -> 1
  t.push_back(Request::make(2, 3));  // unmatched -> 4
  const std::vector<std::uint64_t> m = {pair_key(0, 1)};
  EXPECT_EQ(static_routing_cost(make_instance(d, 1, 1), t, m), 6u);
}

TEST(CostModel, StaticTotalAddsInstallation) {
  const auto d = net::DistanceMatrix::uniform(5, 4);
  trace::Trace t(5, "x");
  t.push_back(Request::make(0, 1));
  const std::vector<std::uint64_t> m = {pair_key(0, 1), pair_key(2, 3)};
  const Instance inst = make_instance(d, 1, 7);
  EXPECT_EQ(static_total_cost(inst, t, m),
            static_routing_cost(inst, t, m) + 2 * 7);
}

TEST(CostModel, EmptyMatchingEqualsOblivious) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(1);
  const trace::Trace t = trace::generate_uniform(16, 1000, rng);
  const Instance inst = make_instance(topo.distances, 2, 5);
  EXPECT_EQ(static_routing_cost(inst, t, {}), oblivious_cost(inst, t));
}

TEST(Feasibility, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(is_feasible_b_matching(4, 1, {pair_key(0, 1), pair_key(2, 3)}));
  // Degree violation at node 0.
  EXPECT_FALSE(is_feasible_b_matching(4, 1, {pair_key(0, 1), pair_key(0, 2)}));
  // Duplicate edge.
  EXPECT_FALSE(is_feasible_b_matching(4, 2, {pair_key(0, 1), pair_key(0, 1)}));
  // Rack out of range.
  EXPECT_FALSE(is_feasible_b_matching(3, 1, {pair_key(0, 7)}));
  // Empty matching is always feasible.
  EXPECT_TRUE(is_feasible_b_matching(4, 1, {}));
}

TEST(Instance, GammaFormula) {
  const auto d = net::DistanceMatrix::uniform(5, 4);
  Instance inst = make_instance(d, 1, 8);
  EXPECT_DOUBLE_EQ(inst.gamma(), 1.0 + 4.0 / 8.0);
}

TEST(Instance, OfflineDegreeDefaultsToB) {
  const auto d = net::DistanceMatrix::uniform(5, 1);
  Instance inst = make_instance(d, 6, 1);
  EXPECT_EQ(inst.offline_degree(), 6u);
  inst.a = 2;
  EXPECT_EQ(inst.offline_degree(), 2u);
}

}  // namespace
