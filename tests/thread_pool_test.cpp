// The persistent pool behind parallel_for: started once, reused for every
// parallel region, correct under heavy call churn and concurrent owners.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/thread_pool.hpp"

namespace {

using rdcn::sim::ThreadPool;

TEST(ThreadPool, NoThreadSpawnPerCall) {
  ThreadPool& pool = ThreadPool::instance();
  const std::uint64_t spawned_before = pool.threads_spawned();
  EXPECT_EQ(spawned_before, pool.num_workers());
  // Hundreds of parallel regions: the spawn counter must not move.
  for (int round = 0; round < 300; ++round) {
    std::atomic<std::uint64_t> sum{0};
    rdcn::sim::parallel_for(64, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 64u * 65 / 2);
  }
  EXPECT_EQ(pool.threads_spawned(), spawned_before);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  rdcn::sim::parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRequestRunsInline) {
  // num_threads = 1 must execute on the calling thread (the figure benches
  // rely on this for undistorted panel-b timing).
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> all_inline{true};
  rdcn::sim::parallel_for(
      100,
      [&](std::size_t) {
        if (std::this_thread::get_id() != caller) all_inline = false;
      },
      /*num_threads=*/1);
  EXPECT_TRUE(all_inline.load());
}

TEST(ThreadPool, ZeroCountIsANoop) {
  rdcn::sim::parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, NestedParallelForFallsBackInline) {
  // A parallel_for issued from inside a pool worker must not deadlock.
  std::atomic<std::uint64_t> total{0};
  rdcn::sim::parallel_for(8, [&](std::size_t) {
    rdcn::sim::parallel_for(50, [&](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * (50 * 49 / 2));
}

TEST(ThreadPool, ConcurrentOwnersBothComplete) {
  // Two caller threads race their own parallel regions on the shared pool.
  std::atomic<std::uint64_t> a{0}, b{0};
  std::thread t1([&] {
    for (int r = 0; r < 50; ++r) {
      rdcn::sim::parallel_for(
          200, [&](std::size_t) { a.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  std::thread t2([&] {
    for (int r = 0; r < 50; ++r) {
      rdcn::sim::parallel_for(
          200, [&](std::size_t) { b.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 50u * 200);
  EXPECT_EQ(b.load(), 50u * 200);
}

TEST(ThreadPool, ParallelMapCollectsInIndexOrder) {
  const auto out = rdcn::sim::parallel_map<std::size_t>(
      1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST(ThreadPool, CancelSkipsRemainingIndices) {
  // Fire the token from inside an early task: later indices are claimed
  // but their bodies skipped, and the call still returns normally (the
  // caller inspects the token to learn the run was cut short).
  ThreadPool& pool = ThreadPool::instance();
  const std::uint64_t spawned_before = pool.threads_spawned();
  const rdcn::CancelToken cancel = rdcn::CancelToken::make();
  std::atomic<std::size_t> executed{0};
  rdcn::sim::parallel_for(
      100000,
      [&](std::size_t) {
        executed.fetch_add(1, std::memory_order_relaxed);
        cancel.request_cancel();
      },
      /*num_threads=*/0, cancel);
  EXPECT_GE(executed.load(), 1u);
  EXPECT_LT(executed.load(), 100000u);
  // The pool survives cancellation untouched and runs the next region.
  std::atomic<std::size_t> after{0};
  rdcn::sim::parallel_for(
      64, [&](std::size_t) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 64u);
  EXPECT_EQ(pool.threads_spawned(), spawned_before);
}

TEST(ThreadPool, PreCancelledInlineRunExecutesNothing) {
  const rdcn::CancelToken cancel = rdcn::CancelToken::make();
  cancel.request_cancel();
  rdcn::sim::parallel_for(
      100, [&](std::size_t) { FAIL(); }, /*num_threads=*/1, cancel);
}

TEST(ThreadPool, MutableLambdaAndMoveOnlyState) {
  // The templated trampoline must work for callables std::function could
  // not cheaply wrap (move-only captures).
  auto counter = std::make_unique<std::atomic<int>>(0);
  std::atomic<int>* raw = counter.get();
  auto fn = [c = std::move(counter)](std::size_t) {
    c->fetch_add(1, std::memory_order_relaxed);
  };
  rdcn::sim::parallel_for(128, fn);
  // fn still owns the counter; re-run to prove it was not consumed.
  rdcn::sim::parallel_for(128, fn);
  EXPECT_EQ(raw->load(), 256);
}

}  // namespace
