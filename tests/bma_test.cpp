// Behavioural tests of the deterministic BMA baseline (core/bma.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/bma.hpp"
#include "net/distance_matrix.hpp"
#include "net/topology.hpp"
#include "trace/generators.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

Instance uniform_instance(const net::DistanceMatrix& d, std::size_t b,
                          std::uint64_t alpha) {
  Instance inst;
  inst.distances = &d;
  inst.b = b;
  inst.alpha = alpha;
  return inst;
}

TEST(Bma, AdmitsAfterPayingAlphaInRoutingCost) {
  const auto d = net::DistanceMatrix::uniform(4, 2);  // every pair 2 hops
  Bma bma(uniform_instance(d, 2, 10));
  const Request r = Request::make(0, 1);
  // Charge accumulates 2 per request; threshold 10 -> 5th request admits.
  for (int i = 0; i < 4; ++i) {
    bma.serve(r);
    EXPECT_FALSE(bma.matching().has(0, 1)) << "after request " << i + 1;
  }
  bma.serve(r);
  EXPECT_TRUE(bma.matching().has(0, 1));
  // Admission cost: exactly one α.
  EXPECT_EQ(bma.costs().reconfig_cost, 10u);
  EXPECT_EQ(bma.costs().edge_adds, 1u);
  // Routing: 5 requests x 2 hops (all before the reconfiguration).
  EXPECT_EQ(bma.costs().routing_cost, 10u);
}

TEST(Bma, MatchedRequestsCostOneAndDontCharge) {
  const auto d = net::DistanceMatrix::uniform(4, 3);
  Bma bma(uniform_instance(d, 2, 6));
  const Request r = Request::make(0, 1);
  for (int i = 0; i < 2; ++i) bma.serve(r);  // 3+3 = 6 >= α -> admitted
  ASSERT_TRUE(bma.matching().has(0, 1));
  const std::uint64_t routing_before = bma.costs().routing_cost;
  for (int i = 0; i < 10; ++i) bma.serve(r);
  EXPECT_EQ(bma.costs().routing_cost, routing_before + 10);  // 1 per serve
  EXPECT_EQ(bma.charge(pair_key(0, 1)), 0u);  // no further charging
}

TEST(Bma, EvictsLeastUsedWhenDegreeFull) {
  const auto d = net::DistanceMatrix::uniform(5, 2);
  Bma bma(uniform_instance(d, 2, 2));  // one 2-hop request admits
  // Fill node 0's degree with {0,1} and {0,2}.
  bma.serve(Request::make(0, 1));
  bma.serve(Request::make(0, 2));
  ASSERT_TRUE(bma.matching().has(0, 1));
  ASSERT_TRUE(bma.matching().has(0, 2));
  // Use {0,1} a lot; {0,2} never again.
  for (int i = 0; i < 5; ++i) bma.serve(Request::make(0, 1));
  // Admit {0,3}: node 0 is full; the least-used edge {0,2} must go.
  bma.serve(Request::make(0, 3));
  EXPECT_TRUE(bma.matching().has(0, 3));
  EXPECT_TRUE(bma.matching().has(0, 1));
  EXPECT_FALSE(bma.matching().has(0, 2));
}

TEST(Bma, TieBreakEvictsOldest) {
  const auto d = net::DistanceMatrix::uniform(5, 2);
  Bma bma(uniform_instance(d, 2, 2));
  bma.serve(Request::make(0, 1));  // admitted first
  bma.serve(Request::make(0, 2));  // admitted second
  // Neither is used after admission (usage 0 both) -> evict the older {0,1}.
  bma.serve(Request::make(0, 3));
  EXPECT_FALSE(bma.matching().has(0, 1));
  EXPECT_TRUE(bma.matching().has(0, 2));
  EXPECT_TRUE(bma.matching().has(0, 3));
}

TEST(Bma, IsDeterministic) {
  const net::Topology topo = net::make_fat_tree(12);
  Xoshiro256 rng(3);
  const trace::Trace t = trace::generate_uniform(12, 5000, rng);
  Instance inst = uniform_instance(topo.distances, 3, 8);

  Bma a(inst), b(inst);
  for (const Request& r : t) {
    a.serve(r);
    b.serve(r);
  }
  EXPECT_EQ(a.costs().routing_cost, b.costs().routing_cost);
  EXPECT_EQ(a.costs().reconfig_cost, b.costs().reconfig_cost);
  EXPECT_EQ(a.matching().size(), b.matching().size());
}

TEST(Bma, ResetRestartsLedgersAndState) {
  const auto d = net::DistanceMatrix::uniform(4, 2);
  Bma bma(uniform_instance(d, 2, 2));
  bma.serve(Request::make(0, 1));
  ASSERT_GT(bma.costs().requests, 0u);
  bma.reset();
  EXPECT_EQ(bma.costs().requests, 0u);
  EXPECT_EQ(bma.matching().size(), 0u);
  EXPECT_EQ(bma.charge(pair_key(0, 1)), 0u);
}

TEST(Bma, MatchingInvariantsHoldUnderWorkload) {
  const net::Topology topo = net::make_fat_tree(20);
  Xoshiro256 rng(4);
  const trace::Trace t = trace::generate_zipf_pairs(20, 20000, 1.2, rng);
  Bma bma(uniform_instance(topo.distances, 4, 12));
  for (const Request& r : t) bma.serve(r);
  EXPECT_TRUE(bma.matching().check_invariants());
  // Something was matched on a skewed workload.
  EXPECT_GT(bma.matching().size(), 0u);
  EXPECT_GT(bma.costs().direct_serves, 0u);
}

}  // namespace
