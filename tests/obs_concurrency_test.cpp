// ThreadSanitizer-focused stress of the observability hot paths: striped
// counter/histogram recording from many threads, gauge churn, concurrent
// registration against rendering, span trees built from ThreadPool
// workers, and fault-observer firings racing a METRICS-style scrape.
// Runs in the plain tier too; the tsan preset (label tier1_tsan) is
// where it earns its keep.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace rdcn;

TEST(ObsConcurrency, CountersAndHistogramsUnderContention) {
  obs::Registry r;
  obs::Counter& c = r.counter("stress_total", "contended counter");
  obs::Gauge& g = r.gauge("stress_depth", "contended gauge");
  obs::Histogram& h = r.histogram("stress_seconds", "contended histogram",
                                  {1000, 100000, 10000000});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(i % 2 == 0 ? 1 : -1);
        h.observe_ns(static_cast<std::uint64_t>(t) * 1000 + i);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kIters);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), std::uint64_t{kThreads} * kIters);
}

TEST(ObsConcurrency, RegistrationRacesRendering) {
  obs::Registry r;
  std::atomic<bool> stop{false};
  // Scraper thread renders while writers register and record — the
  // daemon's METRICS verb against live executors.
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = r.render_prometheus();
      const std::string json = r.render_json();
      EXPECT_EQ(json.front(), '{');
      EXPECT_EQ(json.back(), '}');
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        obs::Counter& c =
            r.counter("race_total", "raced",
                      {{"writer", std::to_string(t)},
                       {"mod", std::to_string(i % 7)}});
        c.inc();
        r.gauge("race_depth", "raced gauge").set(i);
        r.latency_histogram("race_seconds", "raced histogram")
            .observe_ns(static_cast<std::uint64_t>(i) * 100);
      }
    });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  std::uint64_t total = 0;
  for (int t = 0; t < 4; ++t)
    for (int m = 0; m < 7; ++m)
      total += r.counter_value("race_total",
                               {{"writer", std::to_string(t)},
                                {"mod", std::to_string(m)}});
  EXPECT_EQ(total, 4u * 500u);
}

TEST(ObsConcurrency, SpansFromPoolWorkers) {
  obs::set_tracing(true);
  obs::reset_traces();
  struct Ctx {
    std::atomic<std::uint64_t> done{0};
  } ctx;
  sim::ThreadPool pool(4);
  pool.run(
      256, 4,
      [](void* p, std::size_t) {
        obs::ObsSpan outer("obs_tsan.pool_outer");
        obs::ObsSpan inner("obs_tsan.pool_inner");
        static_cast<Ctx*>(p)->done.fetch_add(1, std::memory_order_relaxed);
      },
      &ctx);
  obs::set_tracing(false);
  EXPECT_EQ(ctx.done.load(), 256u);
  // Spans from N workers merge into one phase row with the full count.
  const std::vector<obs::PhaseTotal> phases = obs::collect_phases();
  std::uint64_t outer_count = 0;
  for (const obs::PhaseTotal& p : phases)
    if (p.name == "obs_tsan.pool_outer") outer_count += p.count;
  EXPECT_EQ(outer_count, 256u);
}

TEST(ObsConcurrency, CollectRacesRunningSpans) {
  obs::set_tracing(true);
  obs::reset_traces();
  std::atomic<int> running{4};
  std::vector<std::thread> spanners;
  for (int t = 0; t < 4; ++t)
    spanners.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        obs::ObsSpan a("obs_tsan.live");
        obs::ObsSpan b("obs_tsan.live_child");
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  // Collect continuously while spans are being entered/exited — the
  // daemon's metrics-dump thread against live executors.
  while (running.load(std::memory_order_relaxed) > 0) {
    (void)obs::collect_phases();
    (void)obs::trace_json();
  }
  for (std::thread& t : spanners) t.join();
  obs::set_tracing(false);
  const std::vector<obs::PhaseTotal> phases = obs::collect_phases();
  std::uint64_t live_count = 0;
  for (const obs::PhaseTotal& p : phases)
    if (p.name == "obs_tsan.live") live_count += p.count;
  EXPECT_EQ(live_count, 4u * 5000u);
}

TEST(ObsConcurrency, FaultFiringsRaceScrapes) {
  obs::install_fault_observer();
  fault::disarm_all();
  fault::arm("obs_tsan.fault");
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed))
      (void)obs::Registry::global().render_prometheus();
  });
  std::vector<std::thread> firers;
  for (int t = 0; t < 4; ++t)
    firers.emplace_back([] {
      for (int i = 0; i < 2000; ++i) fault::fire("obs_tsan.fault");
    });
  for (std::thread& t : firers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  fault::disarm_all();
  EXPECT_EQ(obs::Registry::global().counter_value(
                "rdcn_fault_fires_total", {{"point", "obs_tsan.fault"}}),
            4u * 2000u);
}

}  // namespace
