// Tests for the learning-augmented extension (core/predictor.hpp,
// paging/predictive_marking.hpp, RBma predictive mode) — the paper's §5
// future-work direction, implemented.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/predictor.hpp"
#include "core/r_bma.hpp"
#include "net/topology.hpp"
#include "paging/belady.hpp"
#include "paging/marking.hpp"
#include "paging/predictive_marking.hpp"
#include "trace/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace rdcn;
using namespace rdcn::core;

TEST(EwmaPredictor, RecentKeysScoreHigher) {
  EwmaPredictor p(100.0);
  for (int i = 0; i < 10; ++i) p.observe(1);
  for (int i = 0; i < 10; ++i) p.observe(2);
  // Key 2 was seen as often but more recently.
  EXPECT_GT(p.score(2), p.score(1));
  EXPECT_GT(p.score(1), 0.0);
  EXPECT_EQ(p.score(99), 0.0);
}

TEST(EwmaPredictor, FrequentKeysScoreHigher) {
  EwmaPredictor p(10000.0);  // long half-life: frequency dominates
  for (int i = 0; i < 100; ++i) p.observe(1);
  p.observe(2);
  EXPECT_GT(p.score(1), p.score(2));
}

TEST(EwmaPredictor, DecayReducesScore) {
  EwmaPredictor p(50.0);
  p.observe(1);
  const double fresh = p.score(1);
  for (int i = 0; i < 500; ++i) p.observe(2);  // time passes
  EXPECT_LT(p.score(1), fresh / 100.0);
}

TEST(OraclePredictor, ScoresByNextOccurrence) {
  trace::Trace t(4, "x");
  t.push_back(trace::Request::make(0, 1));  // pos 0
  t.push_back(trace::Request::make(2, 3));  // pos 1
  t.push_back(trace::Request::make(0, 1));  // pos 2
  OraclePredictor p(t);
  // Before any observation (now=0): {0,1} next at 0 (dist 1),
  // {2,3} next at 1 (dist 2).
  EXPECT_GT(p.score(pair_key(0, 1)), p.score(pair_key(2, 3)));
  p.observe(pair_key(0, 1));  // now=1
  p.observe(pair_key(2, 3));  // now=2
  // {2,3} never occurs again; {0,1} occurs at pos 2.
  EXPECT_EQ(p.score(pair_key(2, 3)), 0.0);
  EXPECT_GT(p.score(pair_key(0, 1)), 0.0);
}

TEST(OraclePredictor, UnknownPairScoresZero) {
  trace::Trace t(4, "x");
  t.push_back(trace::Request::make(0, 1));
  OraclePredictor p(t);
  EXPECT_EQ(p.score(pair_key(2, 3)), 0.0);
}

TEST(NoisyOracle, ZeroErrorEqualsOracle) {
  Xoshiro256 rng(1);
  trace::Trace t = trace::generate_uniform(8, 200, rng);
  OraclePredictor oracle(t);
  NoisyOraclePredictor noisy(t, 0.0, Xoshiro256(2));
  for (const auto& r : t) {
    const std::uint64_t k = trace::pair_key(r);
    EXPECT_DOUBLE_EQ(noisy.score(k), oracle.score(k));
    oracle.observe(k);
    noisy.observe(k);
  }
}

// ---------------------------------------------------------------------
// PredictiveMarking engine.
// ---------------------------------------------------------------------

TEST(PredictiveMarking, FullTrustFollowsAdvice) {
  // Scorer: key's own value — larger keys are "hotter".  With trust 1 the
  // engine must always evict the smallest unmarked key.
  paging::PredictiveMarking pm(
      3, Xoshiro256(3), [](paging::Key k) { return static_cast<double>(k); },
      1.0);
  std::vector<paging::Key> ev;
  for (paging::Key k : {10, 20, 30}) pm.request(k, ev);
  pm.request(40, ev);  // new phase; all unmarked; coldest = 10
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0], 10u);
  EXPECT_EQ(pm.advised_evictions(), 1u);
  EXPECT_EQ(pm.random_evictions(), 0u);
}

TEST(PredictiveMarking, ZeroTrustIsPlainMarking) {
  paging::PredictiveMarking pm(
      4, Xoshiro256(4), [](paging::Key) { return 0.0; }, 0.0);
  std::vector<paging::Key> ev;
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    ev.clear();
    pm.request(1 + rng.next_below(12), ev);
  }
  EXPECT_EQ(pm.advised_evictions(), 0u);
  EXPECT_GT(pm.random_evictions(), 0u);
}

TEST(PredictiveMarking, PerfectAdviceBeatsPlainMarkingTowardBelady) {
  // Build a sequence; the oracle scorer is the reciprocal next-use
  // distance.  PredictiveMarking(trust=1) should fault noticeably less
  // than plain marking and sit between Belady and marking.
  Xoshiro256 seq_rng(6);
  const std::size_t cap = 8;
  std::vector<paging::Key> seq;
  for (int i = 0; i < 30000; ++i) seq.push_back(1 + seq_rng.next_below(24));

  // Oracle infrastructure over raw keys.
  std::vector<std::vector<std::uint32_t>> pos(25);
  for (std::uint32_t i = 0; i < seq.size(); ++i)
    pos[seq[i]].push_back(i);
  std::size_t now = 0;
  auto scorer = [&](paging::Key k) {
    const auto& v = pos[k];
    const auto it = std::lower_bound(v.begin(), v.end(),
                                     static_cast<std::uint32_t>(now));
    return it == v.end() ? 0.0 : 1.0 / (static_cast<double>(*it) - now + 1.0);
  };

  paging::PredictiveMarking predictive(cap, Xoshiro256(7), scorer, 1.0);
  paging::Marking plain(cap, Xoshiro256(7));
  std::vector<paging::Key> ev;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    now = i;
    ev.clear();
    predictive.request(seq[i], ev);
    ev.clear();
    plain.request(seq[i], ev);
  }
  const std::uint64_t opt = paging::Belady::optimal_faults(cap, seq);
  EXPECT_LT(predictive.faults(), plain.faults());
  EXPECT_GE(predictive.faults(), opt);
}

// ---------------------------------------------------------------------
// R-BMA in learning-augmented mode.
// ---------------------------------------------------------------------

using rdcn::testing::make_instance;

TEST(PredictiveRBma, OracleAdviceReducesRoutingCost) {
  const net::Topology topo = net::make_fat_tree(24);
  Xoshiro256 rng(8);
  trace::FlowPoolParams params;
  params.candidate_pairs = 400;
  params.zipf_skew = 0.9;
  params.max_active_flows = 64;
  params.hub_fraction = 0.25;
  const trace::Trace t = trace::generate_flow_pool(24, 40000, params, rng);
  const Instance inst = make_instance(topo.distances, 3, 16);

  auto mean_cost = [&](const RBmaOptions& base) {
    double total = 0.0;
    for (std::uint64_t s = 1; s <= 5; ++s) {
      RBmaOptions opts = base;
      opts.seed = s;
      if (base.predictor != nullptr) {
        opts.predictor = std::make_shared<OraclePredictor>(t);
      }
      RBma alg(inst, opts);
      for (const Request& r : t) alg.serve(r);
      total += static_cast<double>(alg.costs().routing_cost);
    }
    return total / 5.0;
  };

  RBmaOptions plain;
  RBmaOptions advised;
  advised.predictor = std::make_shared<OraclePredictor>(t);
  advised.prediction_trust = 1.0;
  const double plain_cost = mean_cost(plain);
  const double advised_cost = mean_cost(advised);
  EXPECT_LT(advised_cost, plain_cost);
}

TEST(PredictiveRBma, KeepsMatchingInvariants) {
  const net::Topology topo = net::make_fat_tree(16);
  Xoshiro256 rng(9);
  const trace::Trace t = trace::generate_zipf_pairs(16, 10000, 1.0, rng);
  RBmaOptions opts;
  opts.predictor = std::make_shared<EwmaPredictor>(500.0);
  opts.prediction_trust = 0.7;
  opts.seed = 3;
  RBma alg(make_instance(topo.distances, 3, 10), opts);
  for (const Request& r : t) alg.serve(r);
  EXPECT_TRUE(alg.matching().check_invariants());
  EXPECT_TRUE(alg.check_intersection_invariant());
  EXPECT_NE(alg.name().find("predictive:ewma"), std::string::npos);
}

TEST(PredictiveRBma, EwmaPredictorIsOnlineRealizable) {
  // The EWMA predictor must not require the future: build it before the
  // trace exists, stream requests, and still help on a bursty workload.
  const net::Topology topo = net::make_fat_tree(24);
  Xoshiro256 rng(10);
  trace::FlowPoolParams params;
  params.candidate_pairs = 300;
  params.mean_burst_length = 40.0;
  const trace::Trace t = trace::generate_flow_pool(24, 40000, params, rng);
  const Instance inst = make_instance(topo.distances, 3, 16);

  RBmaOptions opts;
  opts.predictor = std::make_shared<EwmaPredictor>(2000.0);
  opts.prediction_trust = 0.8;
  opts.seed = 1;
  RBma alg(inst, opts);
  for (const Request& r : t) alg.serve(r);
  // Sanity only: it runs, is feasible, and matches a useful share.
  EXPECT_GT(alg.costs().direct_fraction(), 0.1);
}

}  // namespace
