// rdcn: dynamic b-matching — the set M of reconfigurable optical links.
//
// Invariant (the feasibility constraint of §1.1): every rack has at most
// `degree_cap` incident matching edges.  Membership queries are on the
// per-request hot path (every routed request asks "is {s,t} matched?"),
// so edges live in a flat hash set keyed by the canonical 64-bit pair id,
// with per-rack adjacency in small inline vectors for O(b) neighbor scans.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/simd.hpp"
#include "common/small_vector.hpp"
#include "core/types.hpp"

namespace rdcn::core {

class BMatching {
 public:
  BMatching(std::size_t num_racks, std::size_t degree_cap)
      : adjacency_(num_racks), degree_cap_(degree_cap) {
    RDCN_ASSERT_MSG(degree_cap >= 1, "degree cap must be at least 1");
  }

  std::size_t num_racks() const noexcept { return adjacency_.size(); }
  std::size_t degree_cap() const noexcept { return degree_cap_; }
  std::size_t size() const noexcept { return edges_.size(); }

  bool has(Rack u, Rack v) const noexcept {
    RDCN_DCHECK(u < adjacency_.size() && v < adjacency_.size());
    // Up to degree 16 the adjacency row is a single cache line of rack
    // ids, so a (SIMD) linear scan beats a hash probe on the per-request
    // membership check; the edge set answers the large-b case.  This row
    // scan is shared machinery: r_bma's and so_bma's batch loops, greedy,
    // and rotor all route their membership checks through it.
    if (degree_cap_ <= 16) {
      const SmallVector<Rack, 8>& row = adjacency_[u];
      return simd::find_u32(row.data(), row.size(), v) != simd::kNpos;
    }
    return edges_.contains(pair_key(u, v));
  }
  bool has_key(std::uint64_t key) const noexcept {
    return edges_.contains(key);
  }

  std::size_t degree(Rack u) const noexcept {
    RDCN_DCHECK(u < adjacency_.size());
    return adjacency_[u].size();
  }

  bool full(Rack u) const noexcept { return degree(u) >= degree_cap_; }

  /// Neighbors of u in M (unordered).
  const SmallVector<Rack, 8>& neighbors(Rack u) const noexcept {
    RDCN_DCHECK(u < adjacency_.size());
    return adjacency_[u];
  }

  /// Adds {u,v}; asserts the edge is absent and both degrees are below cap.
  void add(Rack u, Rack v) {
    RDCN_DCHECK(u != v && u < num_racks() && v < num_racks());
    RDCN_ASSERT_MSG(!full(u) && !full(v),
                    "b-matching degree cap would be violated");
    const bool fresh = edges_.insert(pair_key(u, v));
    RDCN_ASSERT_MSG(fresh, "edge already in matching");
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
  }

  /// Removes {u,v}; asserts presence.
  void remove(Rack u, Rack v) {
    const bool was = edges_.erase(pair_key(u, v));
    RDCN_ASSERT_MSG(was, "removing an edge not in the matching");
    const bool ru = adjacency_[u].erase_value(v);
    const bool rv = adjacency_[v].erase_value(u);
    RDCN_ASSERT(ru && rv);
  }

  void clear() {
    edges_.clear();
    for (auto& adj : adjacency_) adj.clear();
  }

  /// All matching edges as canonical pair keys (order unspecified).
  std::vector<std::uint64_t> edge_keys() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(edges_.size());
    edges_.for_each([&](std::uint64_t k) { keys.push_back(k); });
    return keys;
  }

  /// Full consistency audit: degree caps respected, adjacency symmetric,
  /// adjacency consistent with the edge set.  O(n·b); test/debug use.
  bool check_invariants() const;

 private:
  FlatSet edges_;
  std::vector<SmallVector<Rack, 8>> adjacency_;
  std::size_t degree_cap_;
};

}  // namespace rdcn::core
