// rdcn: DEPRECATED string-keyed construction of online b-matching
// algorithms.
//
// Superseded by scenario::AlgorithmRegistry (scenario/registry.hpp), which
// adds parameterized specs ("r_bma:engine=lru,eager"), self-registration,
// generated docs, and friendly unknown-name errors.  This shim keeps the
// pre-registry signature compiling for downstream code for one release and
// will be removed in the next; in-tree code has been migrated to
// scenario::make_algorithm.
#pragma once

#include <memory>
#include <string>

#include "core/online_matcher.hpp"
#include "core/r_bma.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

/// Algorithm selector for make_matcher.
///   "r_bma"         the paper's randomized algorithm (marking engine)
///   "bma"           deterministic counter baseline
///   "greedy"        greedy online, no eviction
///   "oblivious"     fixed network only
///   "rotor"         demand-oblivious rotor baseline (RotorNet-style)
///   "so_bma"        static offline (requires full_trace)
/// Asserts on unknown names (scenario::make_algorithm throws SpecError
/// with a suggestion instead — prefer it).
[[deprecated("use scenario::make_algorithm / scenario::AlgorithmRegistry")]]
std::unique_ptr<OnlineBMatcher> make_matcher(
    const std::string& name, const Instance& instance,
    const trace::Trace* full_trace = nullptr, std::uint64_t seed = 1,
    const RBmaOptions* r_bma_options = nullptr);

}  // namespace rdcn::core
