// rdcn: string-keyed construction of online b-matching algorithms, so
// benches, examples, and tests can sweep algorithms uniformly.
#pragma once

#include <memory>
#include <string>

#include "core/online_matcher.hpp"
#include "core/r_bma.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

/// Algorithm selector for make_matcher.
///   "r_bma"         the paper's randomized algorithm (marking engine)
///   "bma"           deterministic counter baseline
///   "greedy"        greedy online, no eviction
///   "oblivious"     fixed network only
///   "rotor"         demand-oblivious rotor baseline (RotorNet-style)
///   "so_bma"        static offline (requires full_trace)
std::unique_ptr<OnlineBMatcher> make_matcher(
    const std::string& name, const Instance& instance,
    const trace::Trace* full_trace = nullptr, std::uint64_t seed = 1,
    const RBmaOptions* r_bma_options = nullptr);

}  // namespace rdcn::core
