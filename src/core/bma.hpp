// rdcn: BMA — the deterministic online b-matching baseline
// (Bienkowski, Fuchssteiner, Marcinkowski, Schmid; PERFORMANCE 2020),
// the state of the art the paper benchmarks R-BMA against.
//
// Counter-based scheme (Θ(b)-competitive, asymptotically optimal among
// deterministic algorithms):
//
//   * every non-matched pair e accumulates ℓe per request into a counter
//     c[e] — the routing cost paid on the fixed network since e last
//     left/missed the matching;
//   * when c[e] reaches the reconfiguration cost α, the edge has "paid its
//     dues" and is admitted to M (c[e] resets);
//   * if admission pushes an endpoint over degree b, the incident matching
//     edge with the lowest usage counter (direct serves since admission,
//     ties broken by age) is evicted, and its counter restarts from zero.
//
// Per-request cost profile: following the paper's reference implementation
// (and to keep admission O(1)), BMA maintains the eviction candidate at
// each endpoint eagerly — every request re-scans the ≤ b incident matching
// edges of both endpoints to refresh the candidate.  This Θ(b)
// request-path scan — which the randomized algorithm does not need — is
// the mechanistic source of BMA's runtime growth with b seen in the
// paper's Figs 1b–4b.
//
// Since PR 5 the scan runs entirely over *resident SoA rack rows*
// (core/rack_rows.hpp): each rack keeps dense keys[] / usage[] /
// admitted_at[] columns mirroring its incident matching edges, written
// through at every mutation point (admission, eviction, direct-serve
// usage bump), so the scan is two streaming SIMD kernels
// (simd::argmin_u64_pair + simd::find_u64) with zero hash probes and zero
// pointer-chasing.  The FlatMap<PairState> remains the source of truth
// for lookups (charge accounting); only the matched-request usage bump
// touches it, through a validated cached-slot hint.  Admission clock
// ticks are unique, so the scan's argmin victim is unique and neither row
// order nor SIMD lane order can affect the ledger.
#pragma once

#include "common/flat_hash.hpp"
#include "core/online_matcher.hpp"
#include "core/pair_state.hpp"
#include "core/rack_rows.hpp"

namespace rdcn::core {

class Bma final : public OnlineBMatcher {
 public:
  explicit Bma(const Instance& instance)
      : OnlineBMatcher(instance),
        eviction_candidate_(instance.num_racks(), kNoCandidate),
        rows_(instance.num_racks()) {}

  std::string name() const override { return "bma"; }

  /// Devirtualized chunk loop.  Beyond skipping the per-request virtual
  /// dispatch, it *fuses* the matched-membership check into the two
  /// eviction-candidate scans: the rack rows mirror the matching adjacency
  /// exactly, so the request's pair is matched iff one of the scans found
  /// its key — the separate adjacency probe serve() pays disappears
  /// entirely.
  void serve_batch(std::span<const Request> batch) override;

  void reset() override {
    OnlineBMatcher::reset();
    pairs_.clear();
    std::fill(eviction_candidate_.begin(), eviction_candidate_.end(),
              kNoCandidate);
    rows_.clear();
    clock_ = 0;
  }

  /// Test hook: accumulated charge toward admission for pair key.
  std::uint64_t charge(std::uint64_t key) const {
    const PairState* s = pairs_.find(key);
    return s != nullptr ? s->charge : 0;
  }

 private:
  static constexpr std::uint64_t kNoCandidate = 0;

  void on_request(const Request& r, bool matched) override;

  /// Matched-request tail: bumps the mirrored usage columns at both
  /// endpoint rows (the scans captured the row indices) and the
  /// authoritative map record via its validated slot hint.
  void bump_matched(const Request& r, std::uint64_t key,
                    std::size_t index_u, std::size_t index_v);

  /// Shared non-matched tail of the request path: accumulates `d` into the
  /// pair's counter and admits the pair once it has paid α (evicting at
  /// full endpoints).  `d` must equal dist(r.u, r.v).
  void charge_and_maybe_admit(const Request& r, std::uint64_t key,
                              std::uint64_t d);

  /// Evicts the cached candidate at w (falls back to a scan if stale).
  void evict_at(Rack w);

  FlatMap<PairState> pairs_;  ///< unified per-pair state (source of truth)
  std::vector<std::uint64_t> eviction_candidate_;  ///< per-rack victim key
  RackRows rows_;  ///< scan-resident SoA mirror of the incident edges
  std::uint64_t clock_ = 0;
};

}  // namespace rdcn::core
