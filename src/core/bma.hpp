// rdcn: BMA — the deterministic online b-matching baseline
// (Bienkowski, Fuchssteiner, Marcinkowski, Schmid; PERFORMANCE 2020),
// the state of the art the paper benchmarks R-BMA against.
//
// Counter-based scheme (Θ(b)-competitive, asymptotically optimal among
// deterministic algorithms):
//
//   * every non-matched pair e accumulates ℓe per request into a counter
//     c[e] — the routing cost paid on the fixed network since e last
//     left/missed the matching;
//   * when c[e] reaches the reconfiguration cost α, the edge has "paid its
//     dues" and is admitted to M (c[e] resets);
//   * if admission pushes an endpoint over degree b, the incident matching
//     edge with the lowest usage counter (direct serves since admission,
//     ties broken by age) is evicted, and its counter restarts from zero.
//
// Per-request cost profile: following the paper's reference implementation
// (and to keep admission O(1)), BMA maintains the eviction candidate at
// each endpoint eagerly — every request to a non-matched pair re-scans the
// ≤ b incident matching edges of both endpoints to refresh the candidate.
// This Θ(b) request-path scan — which the randomized algorithm does not
// need — is the mechanistic source of BMA's runtime growth with b seen in
// the paper's Figs 1b–4b.  All per-pair bookkeeping lives in one
// FlatMap<PairState> (see core/pair_state.hpp).  To keep the scan's
// per-edge step cheap, BMA maintains a dense per-rack row of
// {pair key, cached map slot} for the incident matching edges: each scan
// step is then one validated O(1) slot access (FlatMap::at_index) instead
// of a hash probe, with a real find() as the fallback when a slot index
// went stale (rehash or backward-shift).  The rows mirror the matching
// adjacency exactly — both are mutated only at admission and eviction —
// and since admission clock ticks are unique, the scan's argmin victim is
// unique, so row iteration order cannot affect the ledger.
#pragma once

#include "common/flat_hash.hpp"
#include "common/small_vector.hpp"
#include "core/online_matcher.hpp"
#include "core/pair_state.hpp"

namespace rdcn::core {

class Bma final : public OnlineBMatcher {
 public:
  explicit Bma(const Instance& instance)
      : OnlineBMatcher(instance),
        eviction_candidate_(instance.num_racks(), kNoCandidate),
        incident_(instance.num_racks()) {}

  std::string name() const override { return "bma"; }

  /// Devirtualized chunk loop.  Beyond skipping the per-request virtual
  /// dispatch, it *fuses* the matched-membership check into the two
  /// eviction-candidate scans: the incident rows mirror the matching
  /// adjacency exactly, so the request's pair is matched iff one of the
  /// scans captured its record (request_state_) — the separate adjacency
  /// probe serve() pays disappears entirely.
  void serve_batch(std::span<const Request> batch) override;

  void reset() override {
    OnlineBMatcher::reset();
    pairs_.clear();
    std::fill(eviction_candidate_.begin(), eviction_candidate_.end(),
              kNoCandidate);
    for (auto& row : incident_) row.clear();
    clock_ = 0;
  }

  /// Test hook: accumulated charge toward admission for pair key.
  std::uint64_t charge(std::uint64_t key) const {
    const PairState* s = pairs_.find(key);
    return s != nullptr ? s->charge : 0;
  }

 private:
  static constexpr std::uint64_t kNoCandidate = 0;

  /// One incident matching edge at a rack: its canonical pair key plus a
  /// cached slot index into pairs_ (validated on every use, so staleness
  /// is harmless — at_index() just misses and we re-find).
  struct EdgeRef {
    std::uint64_t key;
    std::uint32_t slot;
  };

  void on_request(const Request& r, bool matched) override;

  /// Shared non-matched tail of the request path: accumulates `d` into the
  /// pair's counter and admits the pair once it has paid α (evicting at
  /// full endpoints).  `d` must equal dist(r.u, r.v).
  void charge_and_maybe_admit(const Request& r, std::uint64_t key,
                              std::uint64_t d);

  /// Θ(b) scan: recomputes the least-used incident matching edge at w.
  /// While iterating the row it also captures the record of `request_key`
  /// if that edge is incident to w (side-channel into request_state_), so
  /// a matched request never pays a separate hash probe for its own pair.
  std::uint64_t scan_eviction_candidate(Rack w, std::uint64_t request_key);

  /// Evicts the cached candidate at w (falls back to a scan if stale).
  void evict_at(Rack w);

  /// Removes the victim's row entries at both of its endpoints.
  void drop_incident(std::uint64_t key);

  FlatMap<PairState> pairs_;  ///< unified per-pair state (one probe/step)
  std::vector<std::uint64_t> eviction_candidate_;  ///< per-rack victim key
  /// Per-rack edge rows; 16 inline entries keep the paper's b range
  /// (3–18) off the heap so a scan touches only contiguous memory.
  std::vector<SmallVector<EdgeRef, 16>> incident_;
  PairState* request_state_ = nullptr;  ///< scan side-channel (see above)
  std::uint64_t clock_ = 0;
};

}  // namespace rdcn::core
