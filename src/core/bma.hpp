// rdcn: BMA — the deterministic online b-matching baseline
// (Bienkowski, Fuchssteiner, Marcinkowski, Schmid; PERFORMANCE 2020),
// the state of the art the paper benchmarks R-BMA against.
//
// Counter-based scheme (Θ(b)-competitive, asymptotically optimal among
// deterministic algorithms):
//
//   * every non-matched pair e accumulates ℓe per request into a counter
//     c[e] — the routing cost paid on the fixed network since e last
//     left/missed the matching;
//   * when c[e] reaches the reconfiguration cost α, the edge has "paid its
//     dues" and is admitted to M (c[e] resets);
//   * if admission pushes an endpoint over degree b, the incident matching
//     edge with the lowest usage counter (direct serves since admission,
//     ties broken by age) is evicted, and its counter restarts from zero.
//
// Per-request cost profile: following the paper's reference implementation
// (and to keep admission O(1)), BMA maintains the eviction candidate at
// each endpoint eagerly — every request to a non-matched pair re-scans the
// ≤ b incident matching edges of both endpoints to refresh the candidate.
// This Θ(b) request-path scan — which the randomized algorithm does not
// need — is the mechanistic source of BMA's runtime growth with b seen in
// the paper's Figs 1b–4b.
#pragma once

#include "common/flat_hash.hpp"
#include "core/online_matcher.hpp"

namespace rdcn::core {

class Bma final : public OnlineBMatcher {
 public:
  explicit Bma(const Instance& instance)
      : OnlineBMatcher(instance),
        eviction_candidate_(instance.num_racks(), kNoCandidate) {}

  std::string name() const override { return "bma"; }

  void reset() override {
    OnlineBMatcher::reset();
    charge_.clear();
    usage_.clear();
    admitted_at_.clear();
    std::fill(eviction_candidate_.begin(), eviction_candidate_.end(),
              kNoCandidate);
    clock_ = 0;
  }

  /// Test hook: accumulated charge toward admission for pair key.
  std::uint64_t charge(std::uint64_t key) const {
    const std::uint64_t* c = charge_.find(key);
    return c != nullptr ? *c : 0;
  }

 private:
  static constexpr std::uint64_t kNoCandidate = 0;

  void on_request(const Request& r, bool matched) override;

  /// Θ(b) scan: recomputes the least-used incident matching edge at w.
  std::uint64_t scan_eviction_candidate(Rack w) const;

  /// Evicts the cached candidate at w (falls back to a scan if stale).
  void evict_at(Rack w);

  FlatMap<std::uint64_t> charge_;       ///< pair -> paid routing cost
  FlatMap<std::uint64_t> usage_;        ///< matched pair -> direct serves
  FlatMap<std::uint64_t> admitted_at_;  ///< matched pair -> admission time
  std::vector<std::uint64_t> eviction_candidate_;  ///< per-rack victim key
  std::uint64_t clock_ = 0;
};

}  // namespace rdcn::core
