// rdcn: standalone cost evaluation helpers.
//
// Used by offline comparators and tests to price hypothetical solutions
// (static matchings, reconstructed schedules) under the §1.1 cost model
// without running them through an online algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "core/b_matching.hpp"
#include "core/types.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

/// Routing cost of serving `trace` with a fixed (never reconfigured)
/// matching given as canonical pair keys.  Does not include installation.
std::uint64_t static_routing_cost(const Instance& instance,
                                  const trace::Trace& trace,
                                  const std::vector<std::uint64_t>& edges);

/// Total cost of a static solution: α per installed edge + routing.
std::uint64_t static_total_cost(const Instance& instance,
                                const trace::Trace& trace,
                                const std::vector<std::uint64_t>& edges);

/// Oblivious cost: every request on the fixed network (the paper's violet
/// baseline).
std::uint64_t oblivious_cost(const Instance& instance,
                             const trace::Trace& trace);

/// True iff `edges` forms a feasible matching of maximum degree <= cap.
bool is_feasible_b_matching(std::size_t num_racks, std::size_t cap,
                            const std::vector<std::uint64_t>& edges);

}  // namespace rdcn::core
