#include "core/adversarial.hpp"

namespace rdcn::core {

trace::Trace generate_chasing_trace(OnlineBMatcher& victim,
                                    std::size_t num_racks, std::size_t k,
                                    std::size_t steps) {
  RDCN_ASSERT_MSG(num_racks >= k + 2, "need k+1 hub pairs plus the hub");
  RDCN_ASSERT_MSG(k >= victim.instance().b,
                  "chase needs more pairs than the degree bound");
  trace::Trace t(num_racks, "bma_chase");
  t.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    // Lowest-indexed hub pair not currently matched by the victim.  At
    // most b of the k+1 >= b+1 pairs can be matched, so one always exists.
    Rack target = 0;
    for (Rack v = 1; v <= static_cast<Rack>(k + 1); ++v) {
      if (!victim.matching().has(0, v)) {
        target = v;
        break;
      }
    }
    RDCN_ASSERT_MSG(target != 0, "no unmatched hub pair found");
    const Request r = Request::make(0, target);
    t.push_back(r);
    victim.serve(r);
  }
  return t;
}

}  // namespace rdcn::core
