#include "core/opt_small.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace rdcn::core {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max() / 4;

}  // namespace

std::uint64_t optimal_dynamic_cost(const Instance& instance,
                                   const trace::Trace& trace) {
  const std::size_t n = trace.num_racks();
  RDCN_ASSERT_MSG(n <= 6, "optimal_dynamic_cost: instance too large");
  const std::size_t cap = instance.offline_degree();

  // Enumerate rack pairs; a matching state is a bitmask over pairs.
  std::vector<std::pair<Rack, Rack>> pairs;
  for (Rack u = 0; u < n; ++u)
    for (Rack v = u + 1; v < n; ++v) pairs.emplace_back(u, v);
  const std::size_t m = pairs.size();
  RDCN_ASSERT(m <= 15);

  // Filter feasible states (degree <= cap) and precompute per-request
  // membership and pairwise flip counts.
  std::vector<std::uint32_t> states;
  for (std::uint32_t s = 0; s < (1u << m); ++s) {
    std::size_t degree[6] = {0, 0, 0, 0, 0, 0};
    bool ok = true;
    for (std::size_t i = 0; i < m && ok; ++i) {
      if (!(s & (1u << i))) continue;
      if (++degree[pairs[i].first] > cap || ++degree[pairs[i].second] > cap)
        ok = false;
    }
    if (ok) states.push_back(s);
  }
  const std::size_t S = states.size();

  std::vector<std::uint64_t> dp(S, kInf), next(S, kInf);
  // OPT may pre-install edges before the first request (offline algorithms
  // such as SO-BMA do exactly that), paying α per installed edge.
  RDCN_ASSERT(states[0] == 0);
  for (std::size_t i = 0; i < S; ++i) {
    dp[i] = instance.alpha *
            static_cast<std::uint64_t>(std::popcount(states[i]));
  }

  std::vector<std::uint64_t> serve_then(S);
  for (const Request& r : trace) {
    // Index of the requested pair.
    std::size_t pi = 0;
    while (pairs[pi] != std::make_pair(r.u, r.v) &&
           pairs[pi] != std::make_pair(r.v, r.u))
      ++pi;
    const std::uint32_t bit = 1u << pi;
    const std::uint64_t far_cost = instance.dist(r.u, r.v);

    // Cost after serving in each state.
    for (std::size_t i = 0; i < S; ++i) {
      serve_then[i] =
          dp[i] == kInf ? kInf : dp[i] + ((states[i] & bit) ? 1 : far_cost);
    }
    // Transition: any state change, α per flipped edge.
    for (std::size_t j = 0; j < S; ++j) {
      std::uint64_t best = kInf;
      for (std::size_t i = 0; i < S; ++i) {
        if (serve_then[i] == kInf) continue;
        const int flips = std::popcount(states[i] ^ states[j]);
        const std::uint64_t c =
            serve_then[i] + instance.alpha * static_cast<std::uint64_t>(flips);
        best = std::min(best, c);
      }
      next[j] = best;
    }
    dp.swap(next);
  }
  return *std::min_element(dp.begin(), dp.end());
}

}  // namespace rdcn::core
