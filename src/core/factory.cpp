#include "core/factory.hpp"

#include "common/assert.hpp"
#include "core/bma.hpp"
#include "core/greedy_online.hpp"
#include "core/oblivious.hpp"
#include "core/rotor.hpp"
#include "core/so_bma.hpp"

namespace rdcn::core {

std::unique_ptr<OnlineBMatcher> make_matcher(const std::string& name,
                                             const Instance& instance,
                                             const trace::Trace* full_trace,
                                             std::uint64_t seed,
                                             const RBmaOptions* r_bma_options) {
  if (name == "r_bma") {
    RBmaOptions opts = r_bma_options != nullptr ? *r_bma_options
                                                : RBmaOptions{};
    if (r_bma_options == nullptr) opts.seed = seed;
    return std::make_unique<RBma>(instance, opts);
  }
  if (name == "bma") return std::make_unique<Bma>(instance);
  if (name == "greedy") return std::make_unique<GreedyOnline>(instance);
  if (name == "oblivious") return std::make_unique<Oblivious>(instance);
  if (name == "rotor") return std::make_unique<Rotor>(instance);
  if (name == "so_bma") {
    RDCN_ASSERT_MSG(full_trace != nullptr,
                    "so_bma requires the full trace (it is offline)");
    return std::make_unique<SoBma>(instance, *full_trace);
  }
  RDCN_ASSERT_MSG(false, "unknown matcher name");
  return nullptr;
}

}  // namespace rdcn::core
