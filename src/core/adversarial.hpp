// rdcn: adversarial request generation against the matching layer.
//
// The Θ(b) deterministic lower bound (PERFORMANCE'20, mirrored in §2.4 of
// the paper) uses an ADAPTIVE adversary: on a star with b+1 hub pairs it
// always requests a pair that the deterministic algorithm currently does
// NOT have matched, so the algorithm pays the fixed-network rate forever
// (or churns α endlessly), while OPT parks a fixed b-subset and pays ~1.
//
// Against a deterministic algorithm the adaptive adversary can be
// "compiled out": we simulate a copy of the algorithm online and emit the
// chasing sequence.  Any other algorithm can then be run on that same
// fixed sequence — a randomized algorithm hedges and escapes the chase,
// which is exactly the separation R-BMA proves.
#pragma once

#include "core/online_matcher.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

/// Generates `steps` requests over the hub pairs {0,1}, ..., {0,k+1},
/// always choosing (the lowest-indexed) pair currently unmatched in
/// `victim`'s matching.  `victim` is driven along; pass a fresh instance
/// of the deterministic algorithm under attack.
trace::Trace generate_chasing_trace(OnlineBMatcher& victim,
                                    std::size_t num_racks, std::size_t k,
                                    std::size_t steps);

}  // namespace rdcn::core
