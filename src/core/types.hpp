// rdcn: shared vocabulary of the matching layer.
#pragma once

#include <cstdint>

#include "net/distance_matrix.hpp"
#include "trace/request.hpp"

namespace rdcn::core {

using trace::Rack;
using trace::Request;
using trace::pair_hi;
using trace::pair_key;
using trace::pair_lo;

/// A problem instance: the fixed network (via its rack-to-rack distance
/// matrix), the online degree bound b, and the reconfiguration cost α.
/// The optional `a` (<= b) is the offline degree bound of the
/// (b,a)-matching generalization; online algorithms ignore it, offline
/// comparators respect it.
struct Instance {
  const net::DistanceMatrix* distances = nullptr;
  std::size_t b = 1;
  std::size_t a = 0;  ///< 0 means "a = b"
  std::uint64_t alpha = 1;

  std::size_t num_racks() const noexcept { return distances->num_racks(); }
  std::size_t offline_degree() const noexcept { return a == 0 ? b : a; }
  std::uint16_t dist(Rack u, Rack v) const noexcept {
    return (*distances)(u, v);
  }
  std::uint16_t max_dist() const noexcept { return distances->max_distance(); }

  /// γ = 1 + ℓmax/α — the reduction overhead factor of Theorem 1.
  double gamma() const noexcept {
    return 1.0 + static_cast<double>(max_dist()) /
                     static_cast<double>(alpha);
  }
};

/// Cumulative cost ledger, split as in the paper's cost model (§1.1).
struct CostStats {
  std::uint64_t routing_cost = 0;    ///< Σ (1 if matched else ℓe)
  std::uint64_t reconfig_cost = 0;   ///< α per matching add/remove
  std::uint64_t requests = 0;
  std::uint64_t direct_serves = 0;   ///< requests served on a matching edge
  std::uint64_t edge_adds = 0;
  std::uint64_t edge_removals = 0;
  /// Matching changes by pre-scheduled (demand-oblivious) architectures;
  /// not charged α (see OnlineBMatcher::add_matching_edge_prescheduled).
  std::uint64_t prescheduled_ops = 0;

  std::uint64_t total_cost() const noexcept {
    return routing_cost + reconfig_cost;
  }
  double direct_fraction() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(direct_serves) /
                               static_cast<double>(requests);
  }
};

}  // namespace rdcn::core
