#include "core/rotor.hpp"

#include <algorithm>

#include "common/flat_hash.hpp"

namespace rdcn::core {

Rotor::Rotor(const Instance& inst, const RotorOptions& options)
    : OnlineBMatcher(inst), options_(options) {
  RDCN_ASSERT_MSG(options_.slot_length >= 1, "slot length must be positive");
  build_schedule();
  install_slot(0);
}

void Rotor::build_schedule() {
  // Circle method round-robin tournament over the racks.  For odd n a
  // dummy participant creates a bye; pairs with the dummy are skipped
  // (those racks idle for the round).
  const std::size_t n = instance().num_racks();
  const std::size_t m = n % 2 == 0 ? n : n + 1;  // with dummy if odd
  const std::size_t rounds = m - 1;
  const std::size_t dummy = m - 1;

  schedule_.clear();
  schedule_.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<std::uint64_t> matching;
    matching.reserve(m / 2);
    // Participant m-1 is fixed; the others rotate.
    auto participant = [&](std::size_t position) -> std::size_t {
      return position == m - 1 ? m - 1 : (round + position) % (m - 1);
    };
    for (std::size_t i = 0; i < m / 2; ++i) {
      const std::size_t a = participant(i);
      const std::size_t b = participant(m - 1 - i);
      if (n % 2 == 1 && (a == dummy || b == dummy)) continue;  // bye
      if (a >= n || b >= n) continue;
      matching.push_back(pair_key(static_cast<Rack>(a),
                                  static_cast<Rack>(b)));
    }
    schedule_.push_back(std::move(matching));
  }
}

void Rotor::install_slot(std::size_t slot) {
  const std::size_t L = schedule_.size();
  const std::size_t switches = std::min(instance().b, L);
  const std::size_t stride =
      options_.staggered ? std::max<std::size_t>(1, L / switches) : 1;

  // Union of the b staggered schedule positions, deduplicated.
  FlatSet target;
  for (std::size_t r = 0; r < switches; ++r) {
    for (std::uint64_t key : schedule_[(slot + r * stride) % L])
      target.insert(key);
  }
  // Diff against the current matching (uncharged: rotor duty cycle).
  for (std::uint64_t key : matching_view().edge_keys()) {
    if (!target.contains(key)) remove_matching_edge_prescheduled(key);
  }
  target.for_each([&](std::uint64_t key) {
    if (!matching_view().has_key(key))
      add_matching_edge_prescheduled(pair_lo(key), pair_hi(key));
  });
}

void Rotor::on_request(const Request&, bool) {
  if (++served_in_slot_ >= options_.slot_length) {
    served_in_slot_ = 0;
    current_slot_ = (current_slot_ + 1) % schedule_.size();
    install_slot(current_slot_);
  }
}

void Rotor::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  const BMatching& m = matching_view();
  std::size_t i = 0;
  while (i < batch.size()) {
    // Requests left in the current rotor slot: the matching is constant
    // over this run, so the slot counter moves once per run instead of
    // once per request.  serve() advances the switches after the request
    // that fills the slot, so a run never crosses an install.
    const std::size_t run = std::min(batch.size() - i,
                                     options_.slot_length - served_in_slot_);
    for (std::size_t j = i; j < i + run; ++j) {
      const Request& r = batch[j];
      RDCN_DCHECK(r.u != r.v);
      const bool matched = m.has(r.u, r.v);
      acc.routing_cost += matched ? 1 : dist(r.u, r.v);
      ++acc.requests;
      acc.direct_serves += matched ? 1 : 0;
    }
    i += run;
    served_in_slot_ += run;
    if (served_in_slot_ >= options_.slot_length) {
      served_in_slot_ = 0;
      current_slot_ = (current_slot_ + 1) % schedule_.size();
      install_slot(current_slot_);
    }
  }
  commit_routing(acc);
}

void Rotor::reset() {
  OnlineBMatcher::reset();
  current_slot_ = 0;
  served_in_slot_ = 0;
  install_slot(0);
}

}  // namespace rdcn::core
