#include "core/b_matching.hpp"

namespace rdcn::core {

bool BMatching::check_invariants() const {
  std::size_t adjacency_entries = 0;
  for (Rack u = 0; u < num_racks(); ++u) {
    const auto& adj = adjacency_[u];
    if (adj.size() > degree_cap_) return false;
    adjacency_entries += adj.size();
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const Rack v = adj[i];
      if (v == u || v >= num_racks()) return false;
      if (!edges_.contains(pair_key(u, v))) return false;
      if (!adjacency_[v].contains(u)) return false;
      // No duplicate neighbor entries.
      for (std::size_t j = i + 1; j < adj.size(); ++j)
        if (adj[j] == v) return false;
    }
  }
  if (adjacency_entries != 2 * edges_.size()) return false;

  bool edges_ok = true;
  edges_.for_each([&](std::uint64_t key) {
    const Rack lo = pair_lo(key), hi = pair_hi(key);
    if (lo >= hi || hi >= num_racks() || !adjacency_[lo].contains(hi))
      edges_ok = false;
  });
  return edges_ok;
}

}  // namespace rdcn::core
