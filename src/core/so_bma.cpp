#include "core/so_bma.hpp"

#include "common/flat_hash.hpp"
#include "core/static_bmatching.hpp"

namespace rdcn::core {

SoBma::SoBma(const Instance& inst, const trace::Trace& full_trace,
             const SoBmaOptions& options)
    : OnlineBMatcher(inst) {
  RDCN_ASSERT_MSG(full_trace.num_racks() <= inst.num_racks(),
                  "trace universe exceeds instance");
  // Aggregate demand.
  FlatMap<std::uint64_t> counts(full_trace.size() / 4 + 16);
  for (const Request& r : full_trace) ++counts[pair_key(r)];

  std::vector<WeightedEdge> edges;
  edges.reserve(counts.size());
  counts.for_each([&](std::uint64_t key, std::uint64_t cnt) {
    const std::uint64_t d = inst.dist(pair_lo(key), pair_hi(key));
    if (d > 1) edges.push_back({key, cnt * (d - 1)});
  });

  const std::size_t cap = inst.offline_degree();
  chosen_ = greedy_b_matching(inst.num_racks(), cap, edges);
  if (options.local_search) {
    chosen_ = local_search_b_matching(inst.num_racks(), cap, edges,
                                      std::move(chosen_),
                                      options.local_search_passes);
  }
  install();
}

void SoBma::install() {
  for (std::uint64_t key : chosen_) {
    // Note: installation is bounded by offline_degree() <= b, so the
    // online matching structure (cap b) always accepts it.
    add_matching_edge(pair_lo(key), pair_hi(key));
  }
}

void SoBma::reset() {
  OnlineBMatcher::reset();
  install();
}

}  // namespace rdcn::core
