#include "core/so_bma.hpp"

#include "common/flat_hash.hpp"
#include "core/static_bmatching.hpp"

namespace rdcn::core {

SoBma::SoBma(const Instance& inst, const trace::Trace& full_trace,
             const SoBmaOptions& options)
    : OnlineBMatcher(inst) {
  RDCN_ASSERT_MSG(full_trace.num_racks() <= inst.num_racks(),
                  "trace universe exceeds instance");
  // Aggregate demand.
  FlatMap<std::uint64_t> counts(full_trace.size() / 4 + 16);
  for (const Request& r : full_trace) ++counts[pair_key(r)];

  std::vector<WeightedEdge> edges;
  edges.reserve(counts.size());
  counts.for_each([&](std::uint64_t key, std::uint64_t cnt) {
    const std::uint64_t d = inst.dist(pair_lo(key), pair_hi(key));
    if (d > 1) edges.push_back({key, cnt * (d - 1)});
  });

  const std::size_t cap = inst.offline_degree();
  chosen_ = greedy_b_matching(inst.num_racks(), cap, edges);
  if (options.local_search) {
    chosen_ = local_search_b_matching(inst.num_racks(), cap, edges,
                                      std::move(chosen_),
                                      options.local_search_passes);
  }
  install();
}

void SoBma::install() {
  for (std::uint64_t key : chosen_) {
    // Note: installation is bounded by offline_degree() <= b, so the
    // online matching structure (cap b) always accepts it.
    add_matching_edge(pair_lo(key), pair_hi(key));
  }

  // Freeze membership into a dense bitset (the matching never changes
  // until the next reset/install).  Both orientations are set so the
  // serve loop needs no min/max.
  const std::size_t n = instance().num_racks();
  matched_bits_.clear();
  if (n * n <= std::size_t{64} << 20) {  // cap the table at 8 MiB
    matched_bits_.assign((n * n + 63) / 64, 0);
    for (std::uint64_t key : chosen_) {
      const std::size_t u = pair_lo(key), v = pair_hi(key);
      matched_bits_[(u * n + v) >> 6] |= std::uint64_t{1} << ((u * n + v) & 63);
      matched_bits_[(v * n + u) >> 6] |= std::uint64_t{1} << ((v * n + u) & 63);
    }
  }
}

void SoBma::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  if (!matched_bits_.empty()) {
    const std::uint64_t* bits = matched_bits_.data();
    const std::size_t n = instance().num_racks();
    for (const Request& r : batch) {
      RDCN_DCHECK(r.u != r.v);
      const std::size_t idx = static_cast<std::size_t>(r.u) * n + r.v;
      const bool matched = (bits[idx >> 6] >> (idx & 63)) & 1;
      RDCN_DCHECK(matched == matching_view().has(r.u, r.v));
      acc.routing_cost += matched ? 1 : dist(r.u, r.v);
      ++acc.requests;
      acc.direct_serves += matched ? 1 : 0;
    }
  } else {
    const BMatching& m = matching_view();
    for (const Request& r : batch) {
      RDCN_DCHECK(r.u != r.v);
      const bool matched = m.has(r.u, r.v);
      acc.routing_cost += matched ? 1 : dist(r.u, r.v);
      ++acc.requests;
      acc.direct_serves += matched ? 1 : 0;
    }
  }
  commit_routing(acc);
}

void SoBma::reset() {
  OnlineBMatcher::reset();
  install();
}

}  // namespace rdcn::core
