// rdcn: the oblivious baseline — no reconfigurable links at all; every
// request rides the fixed network (the paper's violet reference line in
// Figs 1a–4a).
#pragma once

#include "core/online_matcher.hpp"

namespace rdcn::core {

class Oblivious final : public OnlineBMatcher {
 public:
  explicit Oblivious(const Instance& instance) : OnlineBMatcher(instance) {}

  std::string name() const override { return "oblivious"; }

 private:
  void on_request(const Request&, bool) override {}
};

}  // namespace rdcn::core
