// rdcn: the oblivious baseline — no reconfigurable links at all; every
// request rides the fixed network (the paper's violet reference line in
// Figs 1a–4a).
#pragma once

#include "core/online_matcher.hpp"

namespace rdcn::core {

class Oblivious final : public OnlineBMatcher {
 public:
  explicit Oblivious(const Instance& instance) : OnlineBMatcher(instance) {}

  std::string name() const override { return "oblivious"; }

  /// Devirtualized chunk loop: the matching is permanently empty (nothing
  /// ever calls the mutators), so a batch is a straight gather over the
  /// distance matrix — no membership probe, no virtual no-op call.
  void serve_batch(std::span<const Request> batch) override;

 private:
  void on_request(const Request&, bool) override {}
};

}  // namespace rdcn::core
