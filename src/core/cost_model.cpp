#include "core/cost_model.hpp"

#include "common/flat_hash.hpp"

namespace rdcn::core {

std::uint64_t static_routing_cost(const Instance& instance,
                                  const trace::Trace& trace,
                                  const std::vector<std::uint64_t>& edges) {
  FlatSet matched(edges.size());
  for (std::uint64_t k : edges) matched.insert(k);
  std::uint64_t cost = 0;
  for (const Request& r : trace) {
    cost += matched.contains(pair_key(r)) ? 1 : instance.dist(r.u, r.v);
  }
  return cost;
}

std::uint64_t static_total_cost(const Instance& instance,
                                const trace::Trace& trace,
                                const std::vector<std::uint64_t>& edges) {
  return static_routing_cost(instance, trace, edges) +
         instance.alpha * edges.size();
}

std::uint64_t oblivious_cost(const Instance& instance,
                             const trace::Trace& trace) {
  std::uint64_t cost = 0;
  for (const Request& r : trace) cost += instance.dist(r.u, r.v);
  return cost;
}

bool is_feasible_b_matching(std::size_t num_racks, std::size_t cap,
                            const std::vector<std::uint64_t>& edges) {
  std::vector<std::size_t> degree(num_racks, 0);
  FlatSet seen(edges.size());
  for (std::uint64_t k : edges) {
    const Rack lo = pair_lo(k), hi = pair_hi(k);
    if (lo >= hi || hi >= num_racks) return false;
    if (!seen.insert(k)) return false;  // duplicate edge
    if (++degree[lo] > cap || ++degree[hi] > cap) return false;
  }
  return true;
}

}  // namespace rdcn::core
