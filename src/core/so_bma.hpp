// rdcn: SO-BMA — the static offline comparator of §3 ("Maximum Weight
// Matching algorithm").
//
// Sees the entire trace up front, aggregates per-pair demand, computes a
// maximum-weight b-matching of the demand graph with edge weight
//     w(e) = count(e) · (ℓe − 1)
// (the total routing cost saved by keeping e matched for the whole run),
// installs it once (α per edge), and never reconfigures.
//
// On traces without temporal structure (the Microsoft workload) this is
// near-optimal and clearly beats any online algorithm (Fig 4c); on bursty
// traces the online algorithms close the gap (Figs 2c, 3c).
#pragma once

#include "core/online_matcher.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

struct SoBmaOptions {
  bool local_search = true;  ///< refine greedy with swap local search
  int local_search_passes = 8;
};

class SoBma final : public OnlineBMatcher {
 public:
  /// `full_trace` is the complete future (this comparator is offline by
  /// definition).  The degree cap used is instance.offline_degree(), so the
  /// (b,a) generalization is exercised by setting instance.a < b.
  SoBma(const Instance& instance, const trace::Trace& full_trace,
        const SoBmaOptions& options = {});

  std::string name() const override { return "so_bma"; }

  /// Devirtualized chunk loop: the matching never changes after install(),
  /// so a batch is a pure membership + distance-gather pass with routing
  /// committed once per chunk (no per-request virtual no-op call).
  /// Membership resolves against a dense bitset frozen at install time —
  /// one load+test per request instead of an adjacency scan or hash probe,
  /// with identical verdicts by construction.
  void serve_batch(std::span<const Request> batch) override;

  void reset() override;

 private:
  void on_request(const Request&, bool) override {}

  void install();

  std::vector<std::uint64_t> chosen_;
  /// Dense pair-membership bitset (row-major u·n+v, both orientations set),
  /// rebuilt by install(): valid for the whole run because nothing mutates
  /// the matching afterwards.  Left empty for huge universes (> 8 MiB of
  /// bits), where serve_batch falls back to BMatching::has.
  std::vector<std::uint64_t> matched_bits_;
};

}  // namespace rdcn::core
