// rdcn: greedy online baseline — matches a requested pair immediately
// whenever both endpoints have spare degree, and never evicts.
//
// Not competitive (an adversary fills the matching with junk once and
// starves it forever), but a useful ablation point: it separates "how much
// of the win is just having *some* shortcuts" from the eviction policy
// contributions of BMA/R-BMA.
#pragma once

#include "core/online_matcher.hpp"

namespace rdcn::core {

class GreedyOnline final : public OnlineBMatcher {
 public:
  explicit GreedyOnline(const Instance& instance)
      : OnlineBMatcher(instance) {}

  std::string name() const override { return "greedy_online"; }

  /// Devirtualized chunk loop: membership, routing accumulation, and the
  /// spare-degree install test in one pass, one distance load per request.
  void serve_batch(std::span<const Request> batch) override;

 private:
  void on_request(const Request& r, bool matched) override {
    if (matched) return;
    if (!matching_view().full(r.u) && !matching_view().full(r.v) &&
        dist(r.u, r.v) > 1) {
      add_matching_edge(r.u, r.v);
    }
  }
};

}  // namespace rdcn::core
