#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rdcn::core {

// ------------------------------------------------------------- EWMA ------

EwmaPredictor::EwmaPredictor(double half_life) {
  RDCN_ASSERT_MSG(half_life > 0.0, "half life must be positive");
  decay_ = std::exp2(-1.0 / half_life);
}

void EwmaPredictor::observe(std::uint64_t pair_key) {
  ++now_;
  Entry& e = entries_[pair_key];
  const double elapsed = static_cast<double>(now_ - e.last_seen);
  e.value = e.value * std::pow(decay_, elapsed) + 1.0;
  e.last_seen = now_;
}

double EwmaPredictor::score(std::uint64_t pair_key) const {
  const Entry* e = entries_.find(pair_key);
  if (e == nullptr) return 0.0;
  const double elapsed = static_cast<double>(now_ - e->last_seen);
  return e->value * std::pow(decay_, elapsed);
}

// ----------------------------------------------------------- Oracle ------

OraclePredictor::OraclePredictor(const trace::Trace& trace) {
  for (std::uint32_t i = 0; i < trace.size(); ++i) {
    const std::uint64_t key = trace::pair_key(trace[i]);
    std::vector<std::uint32_t>** vec = positions_.find(key);
    if (vec == nullptr) {
      storage_.push_back(std::make_unique<std::vector<std::uint32_t>>());
      positions_[key] = storage_.back().get();
      vec = positions_.find(key);
    }
    (*vec)->push_back(i);
  }
}

void OraclePredictor::observe(std::uint64_t /*pair_key*/) { ++now_; }

double OraclePredictor::score(std::uint64_t pair_key) const {
  std::vector<std::uint32_t>* const* vec = positions_.find(pair_key);
  if (vec == nullptr) return 0.0;
  // First occurrence at position >= now_ (now_ = number of requests
  // already observed = index of the next request).
  const auto& pos = **vec;
  const auto it = std::lower_bound(pos.begin(), pos.end(),
                                   static_cast<std::uint32_t>(now_));
  if (it == pos.end()) return 0.0;  // never requested again
  const double distance = static_cast<double>(*it) -
                          static_cast<double>(now_) + 1.0;
  return 1.0 / distance;
}

// ------------------------------------------------------ NoisyOracle ------

NoisyOraclePredictor::NoisyOraclePredictor(const trace::Trace& trace,
                                           double error_rate, Xoshiro256 rng)
    : oracle_(trace), error_rate_(error_rate), rng_(rng) {
  RDCN_ASSERT_MSG(error_rate >= 0.0 && error_rate <= 1.0,
                  "error rate must be a probability");
}

void NoisyOraclePredictor::observe(std::uint64_t pair_key) {
  oracle_.observe(pair_key);
}

double NoisyOraclePredictor::score(std::uint64_t pair_key) const {
  if (rng_.next_bool(error_rate_)) return rng_.next_double();
  return oracle_.score(pair_key);
}

}  // namespace rdcn::core
