// rdcn: RotorNet-style demand-OBLIVIOUS reconfigurable baseline.
//
// The paper's introduction contrasts demand-aware designs (ProjecToR,
// this paper) with demand-oblivious rotor architectures (RotorNet [56],
// Sirius [8]): rotor switches cycle through a fixed round-robin schedule
// of matchings, independent of traffic.  Each of the b rotor switches
// provides one perfect matching at a time; the schedule covers all n-1
// perfect matchings of K_n (circle method), so every rack pair is directly
// connected a 1/(n-1) fraction of the time per switch.
//
// Cost model: a request costs 1 if its pair is in ANY currently active
// rotor matching, else ℓe.  Rotor reconfigurations are pre-scheduled and
// amortized into the hardware duty cycle (RotorNet's core argument), so —
// unlike demand-aware reconfigurations — they are not charged α.  This
// baseline quantifies how much of the win comes from *having* dynamic
// links versus *pointing them at the demand*.
#pragma once

#include <vector>

#include "core/online_matcher.hpp"

namespace rdcn::core {

struct RotorOptions {
  /// Requests served per rotor slot before every switch advances.
  std::size_t slot_length = 100;
  /// Stagger switch r by r * (n-1)/b schedule positions so the b active
  /// matchings are spread over the schedule (RotorNet's phase offset).
  bool staggered = true;
};

class Rotor final : public OnlineBMatcher {
 public:
  Rotor(const Instance& instance, const RotorOptions& options = {});

  std::string name() const override { return "rotor"; }

  /// Devirtualized chunk loop: processes the batch in slot-sized runs —
  /// between two switch advances the schedule state is constant, so the
  /// inner loop carries no per-request slot arithmetic, only the
  /// membership check and routing accumulation.  Bit-identical to the
  /// serve() loop (pinned by the batch differential suite).
  void serve_batch(std::span<const Request> batch) override;

  void reset() override;

  /// Number of distinct matchings in the schedule (n-1 for even n).
  std::size_t schedule_length() const noexcept { return schedule_.size(); }

 private:
  void on_request(const Request& r, bool matched) override;

  void build_schedule();
  void install_slot(std::size_t slot);

  RotorOptions options_;
  /// schedule_[s] = perfect matching s as canonical pair keys.
  std::vector<std::vector<std::uint64_t>> schedule_;
  std::size_t current_slot_ = 0;
  std::uint64_t served_in_slot_ = 0;
};

}  // namespace rdcn::core
