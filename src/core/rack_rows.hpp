// rdcn: resident SoA rack rows — the scan-side mirror of the per-pair map.
//
// PR 2 gave BMA dense per-rack {key, slot} rows so its Θ(b) eviction scan
// could skip the hash probe, but every scan step still pointer-chased the
// cached slot into the FlatMap to read {usage, admitted_at}: at b = 64 a
// request paid ~2×64 dependent cache-line loads.  This structure finishes
// the SoA progression (the same one PR 4 applied to traces): everything
// the scan reads now lives in dense per-rack *columns*
//
//   keys[]         canonical pair ids of the incident matching edges,
//   usage[]        direct serves since admission (mirrored at BOTH
//                  endpoints of an edge — a bump writes both rows),
//   admitted_at[]  admission clock tick,
//   slot[]         cached FlatMap slot hint (validated on use; only the
//                  matched-request bump touches the map at all),
//
// so the scan is two streaming kernel calls over contiguous memory
// (simd::argmin_u64_pair over usage/admitted_at, simd::find_u64 over keys)
// and zero map probes.  The FlatMap remains the source of truth for
// lookups (charge accounting, existence); the rows are a write-through
// mirror, updated at every mutation point — admission, eviction, and the
// direct-serve usage bump.  Columns keep 16 inline entries so the paper's
// b range (3–18) stays off the heap.
//
// Row order is maintained identically to the historical AoS rows
// (push_back on admission, swap-erase on eviction), and admission ticks
// are unique, so the lexicographic (usage, admitted_at) argmin has a
// unique winner and iteration/lane order cannot affect the ledger.
#pragma once

#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "common/small_vector.hpp"
#include "core/types.hpp"

namespace rdcn::core {

class RackRows {
 public:
  static constexpr std::size_t kNone = simd::kNpos;

  RackRows() = default;
  explicit RackRows(std::size_t num_racks) : rows_(num_racks) {}

  std::size_t size(Rack w) const noexcept { return rows_[w].keys.size(); }

  /// What a rack scan yields: the eviction candidate (key of the least
  /// (usage, admitted_at) incident edge; 0 when the row is empty) plus the
  /// row index of `request_key` when that edge is incident here (kNone
  /// otherwise) — the membership side-channel that lets the serve loop
  /// skip a separate adjacency probe.
  struct ScanResult {
    std::uint64_t victim_key;
    std::size_t request_index;
  };

  /// The Θ(b) scan as two streaming kernels over the row's columns.
  ScanResult scan(Rack w, std::uint64_t request_key) const noexcept {
    const Row& row = rows_[w];
    const std::size_t n = row.keys.size();
    ScanResult out;
    out.request_index = simd::find_u64(row.keys.data(), n, request_key);
    const std::size_t min_index =
        simd::argmin_u64_pair(row.usage.data(), row.admitted_at.data(), n);
    out.victim_key = min_index == simd::kNpos ? 0 : row.keys[min_index];
    return out;
  }

  /// Appends the freshly admitted edge at endpoint `w` (usage 0, admission
  /// tick `now`, map slot hint `slot`).
  void admit(Rack w, std::uint64_t key, std::uint32_t slot,
             std::uint64_t now) {
    Row& row = rows_[w];
    row.keys.push_back(key);
    row.usage.push_back(0);
    row.admitted_at.push_back(now);
    row.slot.push_back(slot);
  }

  /// Swap-erases `key` from the row at `w`; returns whether it was found.
  bool evict(Rack w, std::uint64_t key) noexcept {
    Row& row = rows_[w];
    const std::size_t i =
        simd::find_u64(row.keys.data(), row.keys.size(), key);
    if (i == simd::kNpos) return false;
    row.keys.swap_erase(i);
    row.usage.swap_erase(i);
    row.admitted_at.swap_erase(i);
    row.slot.swap_erase(i);
    return true;
  }

  /// Direct-serve bump of the mirrored usage counter at one endpoint.
  void bump_usage(Rack w, std::size_t index) noexcept {
    RDCN_DCHECK(index < rows_[w].usage.size());
    ++rows_[w].usage[index];
  }

  std::uint64_t key_at(Rack w, std::size_t index) const noexcept {
    return rows_[w].keys[index];
  }
  std::uint64_t usage_at(Rack w, std::size_t index) const noexcept {
    return rows_[w].usage[index];
  }

  /// Cached FlatMap slot hint (mutable: callers revalidate through
  /// FlatMap::at_index and refresh a stale hint in place).
  std::uint32_t& slot_at(Rack w, std::size_t index) noexcept {
    return rows_[w].slot[index];
  }

  /// Hints the cache that `w`'s scan columns are about to be read.
  /// Advisory only; used by batch serve loops that know the next request.
  void prefetch(Rack w) const noexcept {
    const Row& row = rows_[w];
    __builtin_prefetch(row.keys.data());
    __builtin_prefetch(row.usage.data());
    __builtin_prefetch(row.admitted_at.data());
  }

  void clear() noexcept {
    for (Row& row : rows_) {
      row.keys.clear();
      row.usage.clear();
      row.admitted_at.clear();
      row.slot.clear();
    }
  }

 private:
  /// Inline capacity 16 per column keeps the paper's b range off the heap;
  /// the columns of one row grow and shrink in lockstep.
  struct Row {
    SmallVector<std::uint64_t, 16> keys;
    SmallVector<std::uint64_t, 16> usage;
    SmallVector<std::uint64_t, 16> admitted_at;
    SmallVector<std::uint32_t, 16> slot;
  };

  std::vector<Row> rows_;
};

}  // namespace rdcn::core
