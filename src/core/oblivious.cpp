#include "core/oblivious.hpp"

namespace rdcn::core {
// Header-only implementation; TU anchors the vtable.
}  // namespace rdcn::core
