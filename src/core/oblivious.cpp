#include "core/oblivious.hpp"

namespace rdcn::core {

void Oblivious::serve_batch(std::span<const Request> batch) {
  RDCN_DCHECK(matching_view().size() == 0);
  RoutingDelta acc;
  for (const Request& r : batch) {
    RDCN_DCHECK(r.u != r.v);
    acc.routing_cost += dist(r.u, r.v);
  }
  acc.requests = batch.size();
  commit_routing(acc);
}

}  // namespace rdcn::core
