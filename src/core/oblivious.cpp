#include "core/oblivious.hpp"

#include <algorithm>

#include "common/simd.hpp"

namespace rdcn::core {

void Oblivious::serve_batch(std::span<const Request> batch) {
  RDCN_DCHECK(matching_view().size() == 0);
  RoutingDelta acc;
  // Oblivious routing is a pure distance reduction, so the whole batch
  // path is one gather-and-sum over the DistanceMatrix's padded u16
  // storage (see DistanceMatrix::data()), blocked to keep the index
  // scratch on the stack.  Integer sums are associative — the ledger is
  // bit-identical to the scalar loop.
  const std::uint16_t* base = instance().distances->data();
  const std::size_t n = instance().num_racks();
  // The gather kernels take signed-32-bit indices (see simd.hpp): a
  // matrix large enough to overflow them (~46k racks) routes through
  // direct lookups instead.
  if (n * n >= (std::size_t{1} << 31)) {
    for (const Request& r : batch) {
      RDCN_DCHECK(r.u != r.v);
      acc.routing_cost += dist(r.u, r.v);
    }
    acc.requests = batch.size();
    commit_routing(acc);
    return;
  }
  constexpr std::size_t kBlock = 256;
  std::uint32_t idx[kBlock];
  for (std::size_t offset = 0; offset < batch.size(); offset += kBlock) {
    const std::size_t count = std::min(kBlock, batch.size() - offset);
    for (std::size_t i = 0; i < count; ++i) {
      const Request& r = batch[offset + i];
      RDCN_DCHECK(r.u != r.v);
      idx[i] = static_cast<std::uint32_t>(r.u * n + r.v);
    }
    acc.routing_cost += simd::gather_sum_u16(base, idx, count);
  }
  acc.requests = batch.size();
  commit_routing(acc);
}

}  // namespace rdcn::core
