// rdcn: Theorem 1 as a reusable combinator.
//
// The paper reduces the general (b,a)-matching problem (arbitrary α,
// arbitrary path lengths ℓe) to the *uniform* case (α = 1, ℓe = 1):
// forward only every ⌈α/ℓe⌉-th request per pair to a uniform-case
// algorithm and mirror its matching decisions, losing a factor 4γ,
// γ = 1 + ℓmax/α.
//
// UniformReduction implements exactly that transformation for ANY inner
// OnlineBMatcher: it owns a uniform instance (complete graph at distance 1,
// α = 1) over the same racks, streams the special requests into the inner
// algorithm, and keeps its own matching identical to the inner one (each
// mirrored add/remove booked at the real α).
//
// R-BMA (core/r_bma.hpp) is the fused version of
// UniformReduction(uniform R-BMA); tests/uniform_reduction_test.cpp checks
// they are behaviourally identical and that the Theorem 1 cost inequality
//     Alg(I) ≤ 2γα·Alg1(I1) + |V²|γα
// holds on every run.
#pragma once

#include <functional>
#include <memory>

#include "common/flat_hash.hpp"
#include "core/online_matcher.hpp"
#include "net/distance_matrix.hpp"

namespace rdcn::core {

class UniformReduction final : public OnlineBMatcher {
 public:
  /// `make_inner` builds the uniform-case algorithm from the uniform
  /// instance (same racks and b, α = 1, all distances 1).
  using InnerFactory =
      std::function<std::unique_ptr<OnlineBMatcher>(const Instance&)>;

  UniformReduction(const Instance& instance, InnerFactory make_inner)
      : OnlineBMatcher(instance),
        uniform_distances_(
            net::DistanceMatrix::uniform(instance.num_racks(), 1)),
        make_inner_(std::move(make_inner)) {
    uniform_instance_.distances = &uniform_distances_;
    uniform_instance_.b = instance.b;
    uniform_instance_.a = instance.a;
    uniform_instance_.alpha = 1;
    inner_ = make_inner_(uniform_instance_);
    RDCN_ASSERT_MSG(inner_ != nullptr, "inner factory returned null");
  }

  std::string name() const override {
    return "uniform_reduction[" + inner_->name() + "]";
  }

  void reset() override {
    OnlineBMatcher::reset();
    counters_.clear();
    specials_ = 0;
    inner_ = make_inner_(uniform_instance_);
  }

  /// The inner algorithm's ledger IS Alg1(I1) of the Theorem 1 proof.
  const OnlineBMatcher& inner() const noexcept { return *inner_; }
  std::uint64_t special_requests() const noexcept { return specials_; }

 private:
  void on_request(const Request& r, bool /*matched*/) override {
    const std::uint64_t key = pair_key(r);
    const std::uint64_t d = dist(r.u, r.v);
    const std::uint64_t ke = (alpha() + d - 1) / d;
    std::uint32_t& counter = counters_[key];
    if (++counter < ke) return;
    counter = 0;
    ++specials_;

    inner_->serve(r);
    mirror_inner_matching(r);
  }

  /// Re-synchronizes our matching with the inner one.  The inner algorithm
  /// only changes edges while serving, so the symmetric difference is
  /// small; we diff the full edge sets for generality (inner algorithms
  /// may restructure arbitrarily under Theorem 2's contract).
  void mirror_inner_matching(const Request& /*r*/) {
    const BMatching& target = inner_->matching();
    // Remove first so degree caps hold throughout.
    for (std::uint64_t k : matching_view().edge_keys()) {
      if (!target.has_key(k)) remove_matching_edge_key(k);
    }
    for (std::uint64_t k : target.edge_keys()) {
      if (!matching_view().has_key(k))
        add_matching_edge(pair_lo(k), pair_hi(k));
    }
  }

  net::DistanceMatrix uniform_distances_;
  Instance uniform_instance_;
  InnerFactory make_inner_;
  std::unique_ptr<OnlineBMatcher> inner_;
  FlatMap<std::uint32_t> counters_;
  std::uint64_t specials_ = 0;
};

}  // namespace rdcn::core
