// rdcn: demand predictors — the paper's future-work direction (§5):
//
//   "In practice, traffic often features temporal structure, and it would
//    be interesting to explore algorithms which can leverage certain
//    predictions about future demands, without losing the worst-case
//    guarantees."
//
// A DemandPredictor observes the online request stream and scores node
// pairs by predicted near-future demand.  R-BMA consumes predictions
// through the PredictiveMarking paging engine (paging/predictive_marking.hpp)
// with a trust parameter that blends prediction-guided and uniform-random
// evictions — retaining an O(log b / (1-trust)) worst-case guarantee while
// approaching the offline behaviour when predictions are good
// (the classic robustness/consistency trade-off of learning-augmented
// algorithms).
//
// Implementations:
//   EwmaPredictor   online, realizable: exponentially-decayed per-pair
//                   request counts (what a production system could run);
//   OraclePredictor offline, perfect: scores by the true distance to the
//                   pair's next occurrence in the trace (upper bound on
//                   what any predictor can achieve);
//   NoisyOracle     oracle degraded with an error probability ε, for
//                   prediction-quality sweeps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

class DemandPredictor {
 public:
  virtual ~DemandPredictor() = default;

  /// Observes the next request in stream order.
  virtual void observe(std::uint64_t pair_key) = 0;

  /// Predicted near-future demand intensity for a pair; only the relative
  /// order of scores matters (higher = keep).
  virtual double score(std::uint64_t pair_key) const = 0;

  virtual std::string name() const = 0;
};

/// Exponentially-weighted moving average of per-pair request rates.
/// Decay is applied lazily per query, so observe() is O(1).
class EwmaPredictor final : public DemandPredictor {
 public:
  /// `half_life` — number of requests after which a pair's weight halves.
  explicit EwmaPredictor(double half_life = 1000.0);

  void observe(std::uint64_t pair_key) override;
  double score(std::uint64_t pair_key) const override;
  std::string name() const override { return "ewma"; }

 private:
  struct Entry {
    double value = 0.0;
    std::uint64_t last_seen = 0;
  };
  double decay_;  // per-request multiplicative decay
  std::uint64_t now_ = 0;
  FlatMap<Entry> entries_;
};

/// Perfect lookahead: scores a pair by the reciprocal distance to its next
/// occurrence in the (fully known) trace.  observe() must be called in
/// trace order.
class OraclePredictor final : public DemandPredictor {
 public:
  explicit OraclePredictor(const trace::Trace& trace);

  void observe(std::uint64_t pair_key) override;
  double score(std::uint64_t pair_key) const override;
  std::string name() const override { return "oracle"; }

 private:
  FlatMap<std::vector<std::uint32_t>*> positions_;
  std::vector<std::unique_ptr<std::vector<std::uint32_t>>> storage_;
  std::uint64_t now_ = 0;
};

/// Oracle whose answer is replaced by uniform noise with probability ε —
/// the prediction-quality knob for the ablation bench.
class NoisyOraclePredictor final : public DemandPredictor {
 public:
  NoisyOraclePredictor(const trace::Trace& trace, double error_rate,
                       Xoshiro256 rng);

  void observe(std::uint64_t pair_key) override;
  double score(std::uint64_t pair_key) const override;
  std::string name() const override { return "noisy_oracle"; }

 private:
  OraclePredictor oracle_;
  double error_rate_;
  mutable Xoshiro256 rng_;
};

}  // namespace rdcn::core
