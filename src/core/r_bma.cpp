#include "core/r_bma.hpp"

#include "paging/predictive_marking.hpp"

namespace rdcn::core {

RBma::RBma(const Instance& instance, const RBmaOptions& options)
    : OnlineBMatcher(instance),
      options_(options),
      master_rng_(options.seed) {
  build_engines();
}

void RBma::build_engines() {
  engines_.clear();
  engines_.reserve(instance().num_racks());
  for (std::size_t v = 0; v < instance().num_racks(); ++v) {
    if (options_.predictor != nullptr) {
      DemandPredictor* predictor = options_.predictor.get();
      engines_.push_back(std::make_unique<paging::PredictiveMarking>(
          b(), master_rng_.split(v),
          [predictor](paging::Key key) { return predictor->score(key); },
          options_.prediction_trust));
    } else {
      engines_.push_back(paging::make_engine(options_.engine, b(),
                                             master_rng_.split(v)));
    }
  }
}

std::string RBma::name() const {
  const std::string engine =
      options_.predictor != nullptr
          ? "predictive:" + options_.predictor->name()
          : paging::engine_name(options_.engine);
  return "r_bma[" + engine + (options_.lazy_eviction ? ",lazy]" : ",eager]");
}

void RBma::reset() {
  OnlineBMatcher::reset();
  master_rng_ = Xoshiro256(options_.seed);
  build_engines();
  pairs_.clear();
  marked_count_ = 0;
  specials_ = 0;
}

std::uint64_t RBma::total_paging_faults() const {
  std::uint64_t faults = 0;
  for (const auto& e : engines_) faults += e->faults();
  return faults;
}

void RBma::on_request(const Request& r, bool /*matched*/) {
  const std::uint64_t key = pair_key(r);

  // Learning-augmented mode: the predictor sees the full stream.
  if (options_.predictor != nullptr) options_.predictor->observe(key);

  // Theorem 1 reduction: act only on every ke-th request to this pair,
  // ke = ceil(alpha / dist).
  const std::uint64_t d = dist(r.u, r.v);
  const std::uint64_t ke = (alpha() + d - 1) / d;
  PairCounter& state = *pairs_.try_emplace(key).first;
  if (++state.counter < ke) return;
  state.counter = 0;
  ++specials_;

  special_request(r, key);
}

void RBma::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  const std::uint64_t a = alpha();
  DemandPredictor* const predictor = options_.predictor.get();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& r = batch[i];
    // One-request lookahead: the Theorem 1 counter probe is the per-request
    // memory dependency; start pulling the next pair's record now.
    if (i + 1 < batch.size()) pairs_.prefetch(pair_key(batch[i + 1]));
    RDCN_DCHECK(r.u != r.v);
    const std::uint64_t key = pair_key(r);
    // Route with the current matching (membership checked before any
    // reconfiguration below, exactly as serve() does).
    const bool matched = matching_view().has(r.u, r.v);
    const std::uint64_t d = dist(r.u, r.v);
    acc.routing_cost += matched ? 1 : d;
    ++acc.requests;
    acc.direct_serves += matched ? 1 : 0;

    if (predictor != nullptr) predictor->observe(key);

    const std::uint64_t ke = (a + d - 1) / d;
    PairCounter& state = *pairs_.try_emplace(key).first;
    if (++state.counter < ke) continue;
    state.counter = 0;
    ++specials_;
    special_request(r, key);
  }
  commit_routing(acc);
}

void RBma::special_request(const Request& r, std::uint64_t key) {
  // Theorem 2 reduction: forward the special request to the paging engines
  // at both endpoints; a request always ends with the pair cached there.
  evicted_scratch_.clear();
  engines_[r.u]->request(key, evicted_scratch_);
  engines_[r.v]->request(key, evicted_scratch_);
  handle_evictions(evicted_scratch_);

  // Intersection invariant: the pair is now in both caches, so it becomes
  // (or stays) a matching edge.
  ensure_matched(r.u, r.v);
}

void RBma::handle_evictions(const std::vector<paging::Key>& evicted) {
  for (const paging::Key key : evicted) {
    if (!matching_view().has_key(key)) continue;  // was never doubly cached
    if (options_.lazy_eviction) {
      // Keep the edge until capacity forces pruning.  A cached key was
      // requested at some point, so its record exists already.
      set_marked(*pairs_.try_emplace(key).first, true);
    } else {
      remove_matching_edge_key(key);
    }
  }
}

void RBma::ensure_matched(Rack u, Rack v) {
  const std::uint64_t key = pair_key(u, v);
  if (matching_view().has_key(key)) {
    // A lazily marked edge that is requested again is doubly cached once
    // more — resurrect it for free (no reconfiguration happened).
    if (PairCounter* s = pairs_.find(key)) set_marked(*s, false);
    return;
  }
  if (matching_view().full(u)) prune_marked_at(u);
  if (matching_view().full(v)) prune_marked_at(v);
  add_matching_edge(u, v);
}

void RBma::prune_marked_at(Rack w) {
  // A marked incident edge must exist: all unmarked matched edges at w are
  // cached at w, the cache holds <= b keys, and the incoming pair occupies
  // one cache slot without being matched yet.
  const auto& neighbors = matching_view().neighbors(w);
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    const std::uint64_t key = pair_key(w, neighbors[i]);
    PairCounter* s = pairs_.find(key);
    if (s != nullptr && s->marked) {
      set_marked(*s, false);
      remove_matching_edge_key(key);
      return;
    }
  }
  RDCN_ASSERT_MSG(false,
                  "lazy eviction invariant violated: no marked edge to prune");
}

bool RBma::check_intersection_invariant() const {
  bool ok = true;
  // Every unmarked matching edge must be cached at both endpoints.
  for (const std::uint64_t key : matching_view().edge_keys()) {
    if (marked_for_removal(key)) continue;
    const Rack lo = pair_lo(key), hi = pair_hi(key);
    if (!engines_[lo]->contains(key) || !engines_[hi]->contains(key))
      ok = false;
  }
  if (!options_.lazy_eviction) {
    // Eager mode: marked set must be empty and the invariant is two-sided —
    // spot-check that doubly-cached pairs that are matched are exact.
    if (marked_count_ != 0) ok = false;
  }
  return ok;
}

}  // namespace rdcn::core
