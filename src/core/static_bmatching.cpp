#include "core/static_bmatching.hpp"

#include <algorithm>

#include "common/flat_hash.hpp"

namespace rdcn::core {

namespace {

struct DegreeTracker {
  explicit DegreeTracker(std::size_t n) : degree(n, 0) {}
  std::vector<std::size_t> degree;

  bool can_add(std::uint64_t key, std::size_t cap) const {
    return degree[pair_lo(key)] < cap && degree[pair_hi(key)] < cap;
  }
  void add(std::uint64_t key) {
    ++degree[pair_lo(key)];
    ++degree[pair_hi(key)];
  }
  void remove(std::uint64_t key) {
    RDCN_DCHECK(degree[pair_lo(key)] > 0 && degree[pair_hi(key)] > 0);
    --degree[pair_lo(key)];
    --degree[pair_hi(key)];
  }
};

}  // namespace

std::vector<std::uint64_t> greedy_b_matching(std::size_t num_racks,
                                             std::size_t degree_cap,
                                             std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight != b.weight ? a.weight > b.weight
                                          : a.key < b.key;
            });
  DegreeTracker deg(num_racks);
  std::vector<std::uint64_t> matching;
  for (const WeightedEdge& e : edges) {
    if (e.weight == 0) break;  // nothing to gain from zero-weight edges
    if (deg.can_add(e.key, degree_cap)) {
      deg.add(e.key);
      matching.push_back(e.key);
    }
  }
  return matching;
}

std::vector<std::uint64_t> local_search_b_matching(
    std::size_t num_racks, std::size_t degree_cap,
    const std::vector<WeightedEdge>& edges,
    std::vector<std::uint64_t> matching, int max_passes) {
  FlatMap<std::uint64_t> weight_of(edges.size());
  for (const WeightedEdge& e : edges) weight_of[e.key] = e.weight;

  FlatSet in_matching(matching.size());
  DegreeTracker deg(num_racks);
  for (std::uint64_t k : matching) {
    in_matching.insert(k);
    deg.add(k);
  }
  // Incident matched edges per rack, for conflict lookups.
  std::vector<std::vector<std::uint64_t>> incident(num_racks);
  for (std::uint64_t k : matching) {
    incident[pair_lo(k)].push_back(k);
    incident[pair_hi(k)].push_back(k);
  }

  auto cheapest_incident = [&](Rack w) -> std::uint64_t {
    std::uint64_t best_key = 0;
    std::uint64_t best_w = ~std::uint64_t{0};
    for (std::uint64_t k : incident[w]) {
      const std::uint64_t* wk = weight_of.find(k);
      const std::uint64_t kw = wk != nullptr ? *wk : 0;
      if (kw < best_w) {
        best_w = kw;
        best_key = k;
      }
    }
    return best_key;
  };

  auto erase_incident = [&](std::uint64_t key) {
    for (Rack w : {pair_lo(key), pair_hi(key)}) {
      auto& vec = incident[w];
      vec.erase(std::remove(vec.begin(), vec.end(), key), vec.end());
    }
  };

  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (const WeightedEdge& e : edges) {
      if (e.weight == 0 || in_matching.contains(e.key)) continue;
      const Rack lo = pair_lo(e.key), hi = pair_hi(e.key);

      // Cost of making room: evict the cheapest incident edge at each
      // saturated endpoint (possibly two distinct evictions).
      std::uint64_t evict_cost = 0;
      std::uint64_t evict_a = 0, evict_b = 0;
      if (deg.degree[lo] >= degree_cap) {
        evict_a = cheapest_incident(lo);
        const std::uint64_t* w = weight_of.find(evict_a);
        evict_cost += w != nullptr ? *w : 0;
      }
      if (deg.degree[hi] >= degree_cap) {
        evict_b = cheapest_incident(hi);
        if (evict_b == evict_a) evict_b = 0;  // same edge frees both ends
        else {
          const std::uint64_t* w = weight_of.find(evict_b);
          evict_cost += w != nullptr ? *w : 0;
        }
      }
      if (e.weight <= evict_cost) continue;

      // Apply the swap.
      for (std::uint64_t victim : {evict_a, evict_b}) {
        if (victim == 0) continue;
        in_matching.erase(victim);
        deg.remove(victim);
        erase_incident(victim);
      }
      in_matching.insert(e.key);
      deg.add(e.key);
      incident[lo].push_back(e.key);
      incident[hi].push_back(e.key);
      improved = true;
    }
    if (!improved) break;
  }

  std::vector<std::uint64_t> out;
  out.reserve(in_matching.size());
  in_matching.for_each([&](std::uint64_t k) { out.push_back(k); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> exact_b_matching(
    std::size_t num_racks, std::size_t degree_cap,
    const std::vector<WeightedEdge>& edges) {
  RDCN_ASSERT_MSG(edges.size() <= 24, "exact solver: too many edges");
  const std::size_t m = edges.size();
  std::uint64_t best_weight = 0;
  std::uint32_t best_mask = 0;
  std::vector<std::size_t> degree(num_racks);
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    std::fill(degree.begin(), degree.end(), 0);
    std::uint64_t w = 0;
    bool feasible = true;
    for (std::size_t i = 0; i < m && feasible; ++i) {
      if (!(mask & (1u << i))) continue;
      const std::uint64_t key = edges[i].key;
      if (++degree[pair_lo(key)] > degree_cap ||
          ++degree[pair_hi(key)] > degree_cap)
        feasible = false;
      w += edges[i].weight;
    }
    if (feasible && w > best_weight) {
      best_weight = w;
      best_mask = mask;
    }
  }
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < m; ++i)
    if (best_mask & (1u << i)) out.push_back(edges[i].key);
  return out;
}

std::uint64_t matching_weight(const std::vector<std::uint64_t>& matching,
                              const std::vector<WeightedEdge>& edges) {
  FlatMap<std::uint64_t> weight_of(edges.size());
  for (const WeightedEdge& e : edges) weight_of[e.key] = e.weight;
  std::uint64_t total = 0;
  for (std::uint64_t k : matching) {
    const std::uint64_t* w = weight_of.find(k);
    if (w != nullptr) total += *w;
  }
  return total;
}

}  // namespace rdcn::core
