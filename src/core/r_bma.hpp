// rdcn: R-BMA — the paper's randomized online (b,a)-matching algorithm.
//
// Composition of the two reductions of §2:
//
//   Theorem 1 (general → uniform): per node pair e, only every
//   ke = ⌈α/ℓe⌉-th request is *special*; the algorithm reconfigures only on
//   special requests.  This costs a factor 4γ, γ = 1 + ℓmax/α ≈ 1.
//
//   Theorem 2 (uniform → paging): every rack v runs an independent
//   (b,a)-paging algorithm over the node pairs incident to v, with cache
//   capacity b.  A special request {u,v} is passed to the engines at u and
//   at v.  The matching maintains the intersection invariant:
//
//       e ∈ M  ⇐⇒  e is cached at both endpoints of e.
//
// With the randomized marking engine (2·ln(b/(b−a+1))-competitive paging,
// Young '91) the composition is O(γ·log(b/(b−a+1)))-competitive
// (Corollary 3) — exponentially better than any deterministic algorithm.
//
// Eviction handling (footnote 2 of the paper): when a pair leaves one
// endpoint's cache, the *eager* policy removes it from M immediately
// (exactly the invariant); the *lazy* policy only marks it and prunes
// marked edges when a rack's matching degree would exceed b — keeping
// useful-but-evicted shortcuts alive longer at zero extra reconfiguration
// cost.  Lazy is the paper's experimental default.
#pragma once

#include <memory>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "core/online_matcher.hpp"
#include "core/predictor.hpp"
#include "paging/factory.hpp"

namespace rdcn::core {

struct RBmaOptions {
  paging::EngineKind engine = paging::EngineKind::kMarking;
  bool lazy_eviction = true;
  std::uint64_t seed = 1;

  /// Learning-augmented mode (the paper's §5 future-work direction): when
  /// set, the per-rack engines become PredictiveMarking instances that
  /// consult this predictor for eviction advice.  `engine` is ignored.
  /// The predictor observes every request (not only special ones).
  std::shared_ptr<DemandPredictor> predictor;
  /// Probability of following the prediction on an eviction; the
  /// remaining mass hedges with uniform-random marking evictions, which
  /// preserves an O(log b / (1 - trust)) worst-case guarantee.
  double prediction_trust = 0.8;
};

class RBma final : public OnlineBMatcher {
 public:
  RBma(const Instance& instance, const RBmaOptions& options);

  std::string name() const override;

  /// Devirtualized chunk loop: one matching-membership probe and one
  /// distance load per request (serve() pays the distance load twice —
  /// once for routing, once for the Theorem 1 counter threshold), with
  /// routing accumulation committed per chunk.  RNG draws happen in
  /// exactly the scalar order, so ledgers and engine states stay
  /// bit-identical.
  void serve_batch(std::span<const Request> batch) override;

  void reset() override;

  /// Diagnostics: total special requests forwarded to paging engines.
  std::uint64_t special_requests() const noexcept { return specials_; }

  /// Diagnostics: paging faults summed over all per-rack engines.
  std::uint64_t total_paging_faults() const;

  /// Test hook: is `e` currently cached at rack `w`?
  bool cached_at(Rack w, std::uint64_t key) const {
    return engines_[w]->contains(key);
  }

  /// Test hook: is `e` marked for (lazy) removal?
  bool marked_for_removal(std::uint64_t key) const {
    const PairCounter* s = pairs_.find(key);
    return s != nullptr && s->marked;
  }

  /// Test hook: number of matching edges currently marked for lazy removal.
  std::size_t marked_count() const noexcept { return marked_count_; }

  /// Verifies the Theorem 2 intersection invariant (strict form under
  /// eager eviction; under lazy eviction every unmarked matched edge must
  /// be in both caches, and every doubly-cached requested pair that is
  /// matched must be unmarked).  O(edges); test use.
  bool check_intersection_invariant() const;

 private:
  /// Unified per-pair record: the Theorem 1 request counter and the lazy
  /// removal mark share one map entry, so the request path resolves both
  /// with a single tagged probe.  `marked` is only ever true for keys
  /// currently in the matching.
  struct PairCounter {
    std::uint32_t counter = 0;  ///< requests since last special request
    bool marked = false;        ///< lazily-removed matching edge?
  };

  void on_request(const Request& r, bool matched) override;

  /// Theorem 2 step for a special request: forward to both endpoint
  /// engines, process evictions, re-establish the intersection invariant.
  void special_request(const Request& r, std::uint64_t key);

  void build_engines();

  /// Flips the mark on `s`, keeping the running marked-edge count exact.
  void set_marked(PairCounter& s, bool marked) {
    if (s.marked != marked) {
      s.marked = marked;
      if (marked) {
        ++marked_count_;
      } else {
        --marked_count_;
      }
    }
  }

  /// Handles keys evicted from rack w's cache.
  void handle_evictions(const std::vector<paging::Key>& evicted);

  /// Ensures e={u,v} (already in both caches) is in M, pruning lazily
  /// marked edges if an endpoint is at its degree cap.
  void ensure_matched(Rack u, Rack v);

  /// Removes one marked edge incident to w from M (must exist).
  void prune_marked_at(Rack w);

  RBmaOptions options_;
  Xoshiro256 master_rng_;
  std::vector<std::unique_ptr<paging::PagingAlgorithm>> engines_;
  FlatMap<PairCounter> pairs_;  ///< unified per-pair state (one probe)
  std::size_t marked_count_ = 0;
  std::vector<paging::Key> evicted_scratch_;
  std::uint64_t specials_ = 0;
};

}  // namespace rdcn::core
