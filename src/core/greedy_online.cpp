#include "core/greedy_online.hpp"

namespace rdcn::core {

void GreedyOnline::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  for (const Request& r : batch) {
    RDCN_DCHECK(r.u != r.v);
    const BMatching& m = matching_view();
    const bool matched = m.has(r.u, r.v);
    const std::uint64_t d = dist(r.u, r.v);
    acc.routing_cost += matched ? 1 : d;
    ++acc.requests;
    acc.direct_serves += matched ? 1 : 0;
    if (!matched && !m.full(r.u) && !m.full(r.v) && d > 1) {
      add_matching_edge(r.u, r.v);
    }
  }
  commit_routing(acc);
}

}  // namespace rdcn::core
