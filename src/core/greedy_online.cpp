#include "core/greedy_online.hpp"

#include <algorithm>

#include "common/simd.hpp"

namespace rdcn::core {

void GreedyOnline::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  // Distances are static state, so the batch path hoists them: one SIMD
  // gather per block fills a dense u16 scratch, and the sequential
  // admission loop (which must see the evolving matching) reads d[i]
  // instead of probing the matrix per request.
  const std::uint16_t* base = instance().distances->data();
  const std::size_t n = instance().num_racks();
  const BMatching& m = matching_view();
  // The gather kernels take signed-32-bit indices (see simd.hpp): a
  // matrix large enough to overflow them (~46k racks) routes through
  // direct lookups instead.
  if (n * n >= (std::size_t{1} << 31)) {
    for (const Request& r : batch) {
      RDCN_DCHECK(r.u != r.v);
      const bool matched = m.has(r.u, r.v);
      const std::uint64_t dist_uv = dist(r.u, r.v);
      acc.routing_cost += matched ? 1 : dist_uv;
      ++acc.requests;
      acc.direct_serves += matched ? 1 : 0;
      if (!matched && !m.full(r.u) && !m.full(r.v) && dist_uv > 1) {
        add_matching_edge(r.u, r.v);
      }
    }
    commit_routing(acc);
    return;
  }
  constexpr std::size_t kBlock = 256;
  std::uint32_t idx[kBlock];
  std::uint16_t d[kBlock];
  for (std::size_t offset = 0; offset < batch.size(); offset += kBlock) {
    const std::size_t count = std::min(kBlock, batch.size() - offset);
    for (std::size_t i = 0; i < count; ++i) {
      const Request& r = batch[offset + i];
      RDCN_DCHECK(r.u != r.v);
      idx[i] = static_cast<std::uint32_t>(r.u * n + r.v);
    }
    simd::gather_u16(base, idx, count, d);
    for (std::size_t i = 0; i < count; ++i) {
      const Request& r = batch[offset + i];
      const bool matched = m.has(r.u, r.v);
      acc.routing_cost += matched ? 1 : d[i];
      ++acc.requests;
      acc.direct_serves += matched ? 1 : 0;
      if (!matched && !m.full(r.u) && !m.full(r.v) && d[i] > 1) {
        add_matching_edge(r.u, r.v);
      }
    }
  }
  commit_routing(acc);
}

}  // namespace rdcn::core
