// rdcn: unified per-pair request-path state.
//
// BMA historically kept three parallel FlatMaps (charge, usage, admission
// time), so every request paid up to three independent hash probes — and
// the Θ(b) eviction scan paid *two* probes per incident matching edge.
// Packing the three counters into one 24-byte record keyed once by the
// pair id gives every request-path step a single probe while keeping the
// cost ledger bit-identical (the record is pure bookkeeping).
//
// Field order is deliberate: the eviction scan reads only {usage,
// admitted_at}, so they lead the struct and land in the same cache line
// as the slot key; `charge` (touched once per non-matched request, never
// by the scan) goes last.
//
// Lifecycle (mirrors the BMA state machine exactly):
//   * a pair not in the map has charge = usage = 0 and is unmatched;
//   * an unmatched pair accumulates `charge`; `usage`/`admitted_at` are 0;
//   * at admission charge resets to 0 and {usage = 0, admitted_at = now}
//     begin tracking the matched edge (a matched pair never carries
//     charge);
//   * eviction erases the record outright — the paper's "counter restarts
//     from zero".
#pragma once

#include <cstdint>

namespace rdcn::core {

struct PairState {
  std::uint64_t usage = 0;        ///< direct serves since admission
  std::uint64_t admitted_at = 0;  ///< admission clock tick (0 = unmatched)
  std::uint64_t charge = 0;       ///< paid routing cost toward admission
};

static_assert(sizeof(PairState) == 24, "PairState must stay tightly packed");

}  // namespace rdcn::core
