// rdcn: the online b-matching algorithm interface.
//
// serve() implements the cost model of §1.1 exactly:
//   1. the request is routed with the *current* matching — cost 1 if
//      {s,t} ∈ M, else ℓ_{s,t} on the fixed network;
//   2. the algorithm may then reconfigure; every edge added to or removed
//      from M costs α (accounted automatically by the protected mutators,
//      so no subclass can cheat the ledger).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "core/b_matching.hpp"
#include "core/types.hpp"

namespace rdcn::core {

class OnlineBMatcher {
 public:
  explicit OnlineBMatcher(const Instance& instance)
      : instance_(instance),
        matching_(instance.num_racks(), instance.b) {}

  virtual ~OnlineBMatcher() = default;

  OnlineBMatcher(const OnlineBMatcher&) = delete;
  OnlineBMatcher& operator=(const OnlineBMatcher&) = delete;

  /// Serves one request end-to-end (routing + reconfiguration accounting).
  void serve(const Request& r) {
    RDCN_DCHECK(r.u != r.v);
    const bool matched = matching_.has(r.u, r.v);
    costs_.routing_cost += matched ? 1 : instance_.dist(r.u, r.v);
    costs_.requests += 1;
    costs_.direct_serves += matched ? 1 : 0;
    on_request(r, matched);
  }

  /// Serves a contiguous chunk of requests.  Semantically equivalent to
  /// calling serve() per request — the ledger after the batch is
  /// bit-identical — but overridable so the hot algorithms can run a
  /// devirtualized inner loop (one virtual dispatch per chunk instead of
  /// one per request, routing accumulation in registers, hoisted instance
  /// state).  Overrides must preserve the cost model exactly: route with
  /// the *current* matching first, then reconfigure.
  virtual void serve_batch(std::span<const Request> batch) {
    for (const Request& r : batch) serve(r);
  }

  const BMatching& matching() const noexcept { return matching_; }
  const CostStats& costs() const noexcept { return costs_; }
  const Instance& instance() const noexcept { return instance_; }

  virtual std::string name() const = 0;

  /// Returns to the initial (empty-matching, zero-cost) state.
  virtual void reset() {
    matching_.clear();
    costs_ = CostStats{};
  }

 protected:
  /// Algorithm step after the request was routed.  `matched` tells whether
  /// it was served on a matching edge.
  virtual void on_request(const Request& r, bool matched) = 0;

  /// Chunk-local routing ledger for serve_batch overrides: the per-request
  /// routing fields accumulate in registers and are committed once per
  /// chunk.  Integer sums are associative, so a commit at the chunk
  /// boundary leaves CostStats bit-identical to per-request accounting
  /// (reconfiguration costs still book immediately via the mutators).
  struct RoutingDelta {
    std::uint64_t routing_cost = 0;
    std::uint64_t requests = 0;
    std::uint64_t direct_serves = 0;
  };
  void commit_routing(const RoutingDelta& d) noexcept {
    costs_.routing_cost += d.routing_cost;
    costs_.requests += d.requests;
    costs_.direct_serves += d.direct_serves;
  }

  /// Reconfiguration mutators — each call books α into the ledger.
  void add_matching_edge(Rack u, Rack v) {
    matching_.add(u, v);
    costs_.reconfig_cost += instance_.alpha;
    costs_.edge_adds += 1;
  }
  void remove_matching_edge(Rack u, Rack v) {
    matching_.remove(u, v);
    costs_.reconfig_cost += instance_.alpha;
    costs_.edge_removals += 1;
  }
  void remove_matching_edge_key(std::uint64_t key) {
    remove_matching_edge(pair_lo(key), pair_hi(key));
  }

  /// Pre-scheduled reconfiguration: mutates the matching WITHOUT charging
  /// α.  Strictly for demand-OBLIVIOUS architectures (rotor switches)
  /// whose reconfigurations are part of the fixed hardware duty cycle and
  /// happen regardless of traffic; demand-aware algorithms must use the
  /// charging mutators above.  Ops are still counted (prescheduled_ops).
  void add_matching_edge_prescheduled(Rack u, Rack v) {
    matching_.add(u, v);
    costs_.prescheduled_ops += 1;
  }
  void remove_matching_edge_prescheduled(std::uint64_t key) {
    matching_.remove(pair_lo(key), pair_hi(key));
    costs_.prescheduled_ops += 1;
  }

  std::uint16_t dist(Rack u, Rack v) const noexcept {
    return instance_.dist(u, v);
  }
  std::uint64_t alpha() const noexcept { return instance_.alpha; }
  std::size_t b() const noexcept { return instance_.b; }
  const BMatching& matching_view() const noexcept { return matching_; }

 private:
  Instance instance_;
  BMatching matching_;
  CostStats costs_;
};

}  // namespace rdcn::core
