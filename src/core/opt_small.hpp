// rdcn: exact dynamic offline optimum for tiny instances.
//
// State-space dynamic program over all feasible a-matchings of the rack
// set: dp[s] = cheapest way to serve the prefix and end in matching state
// s.  Per request, the transition serves with the *current* state (the
// §1.1 ordering: route first, then reconfigure) and then moves to any
// feasible state, paying α per edge flipped.
//
// Exponential in the number of rack pairs — usable for n <= 6 — and the
// ground truth behind the empirical competitive-ratio tests (OPT-1 in
// DESIGN.md).
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

/// Exact optimal total cost (routing + reconfiguration) for serving
/// `trace` with a dynamic matching of maximum degree
/// instance.offline_degree().  OPT may install an initial matching before
/// the first request at α per edge (so it lower-bounds offline algorithms
/// like SO-BMA that pre-install).  Asserts num_racks <= 6.
std::uint64_t optimal_dynamic_cost(const Instance& instance,
                                   const trace::Trace& trace);

}  // namespace rdcn::core
