#include "core/bma.hpp"

#include <algorithm>

namespace rdcn::core {

void Bma::on_request(const Request& r, bool matched) {
  ++clock_;
  const std::uint64_t key = pair_key(r);

  // Request-path bookkeeping (see header): every request can change the
  // usage ranking at its endpoints (a direct serve bumps the served edge;
  // a fixed-network serve moves a pair toward admission), so the reference
  // implementation refreshes the eviction candidate at both endpoints on
  // every request.  This is the Θ(b) component of BMA's per-request cost.
  RDCN_DCHECK(rows_.size(r.u) == matching_view().degree(r.u));
  RDCN_DCHECK(rows_.size(r.v) == matching_view().degree(r.v));
  const RackRows::ScanResult su = rows_.scan(r.u, key);
  const RackRows::ScanResult sv = rows_.scan(r.v, key);
  eviction_candidate_[r.u] = su.victim_key;
  eviction_candidate_[r.v] = sv.victim_key;

  if (matched) {
    // A matched pair is incident to both endpoints, so the scans above
    // already located its row entries — no extra probe.
    bump_matched(r, key, su.request_index, sv.request_index);
    return;
  }

  charge_and_maybe_admit(r, key, dist(r.u, r.v));
}

void Bma::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& r = batch[i];
    // One-request lookahead (only a batch knows its future): pull the next
    // request's pair record and incident row columns toward the cache
    // while the current scans run.  Advisory only — no semantic effect.
    if (i + 1 < batch.size()) {
      const Request& next = batch[i + 1];
      pairs_.prefetch(pair_key(next));
      rows_.prefetch(next.u);
      rows_.prefetch(next.v);
    }
    RDCN_DCHECK(r.u != r.v);
    ++clock_;
    const std::uint64_t key = pair_key(r);
    const RackRows::ScanResult su = rows_.scan(r.u, key);
    const RackRows::ScanResult sv = rows_.scan(r.v, key);
    eviction_candidate_[r.u] = su.victim_key;
    eviction_candidate_[r.v] = sv.victim_key;
    ++acc.requests;
    // The rack rows mirror the matching adjacency (both mutate only at
    // admission/eviction), so the pair is matched iff a scan found its key
    // — same verdict matching().has() would return, one Θ(b) probe
    // cheaper.  The scans read but never mutate the matching, so routing
    // still sees the pre-reconfiguration state the cost model prescribes.
    RDCN_DCHECK((su.request_index != RackRows::kNone) ==
                matching_view().has(r.u, r.v));
    if (su.request_index != RackRows::kNone) {
      acc.routing_cost += 1;
      ++acc.direct_serves;
      bump_matched(r, key, su.request_index, sv.request_index);
      continue;
    }
    const std::uint64_t d = dist(r.u, r.v);
    acc.routing_cost += d;
    charge_and_maybe_admit(r, key, d);
  }
  commit_routing(acc);
}

void Bma::bump_matched(const Request& r, std::uint64_t key,
                       std::size_t index_u, std::size_t index_v) {
  RDCN_DCHECK(index_u != RackRows::kNone && index_v != RackRows::kNone);
  rows_.bump_usage(r.u, index_u);
  rows_.bump_usage(r.v, index_v);
  // Keep the map's record authoritative: one validated O(1) slot access
  // (FlatMap::at_index), with a real find() as the fallback when the
  // cached hint went stale (rehash or backward-shift).
  std::uint32_t& slot = rows_.slot_at(r.u, index_u);
  PairState* s = pairs_.at_index(slot, key);
  if (s == nullptr) {
    const std::size_t index = pairs_.find_index(key);
    slot = static_cast<std::uint32_t>(index);
    s = pairs_.at_index(index, key);
    RDCN_DCHECK(s != nullptr);
  }
  ++s->usage;
  // Mirror invariant: both row copies track the map record exactly.
  RDCN_DCHECK(s->usage == rows_.usage_at(r.u, index_u));
  RDCN_DCHECK(s->usage == rows_.usage_at(r.v, index_v));
}

void Bma::charge_and_maybe_admit(const Request& r, std::uint64_t key,
                                 std::uint64_t d) {
  PairState& s = *pairs_.try_emplace(key).first;
  s.charge += d;
  if (s.charge < alpha()) return;

  // The pair has paid α in fixed-network routing: admit it.
  if (matching_view().full(r.u)) evict_at(r.u);
  if (matching_view().full(r.v)) evict_at(r.v);
  add_matching_edge(r.u, r.v);
  // Eviction above may have backward-shifted the map; re-resolve the slot.
  const std::size_t slot = pairs_.find_index(key);
  PairState& admitted = *pairs_.at_index(slot, key);
  admitted.charge = 0;
  admitted.usage = 0;
  admitted.admitted_at = clock_;
  rows_.admit(r.u, key, static_cast<std::uint32_t>(slot), clock_);
  rows_.admit(r.v, key, static_cast<std::uint32_t>(slot), clock_);
}

void Bma::evict_at(Rack w) {
  std::uint64_t victim_key = eviction_candidate_[w];
  // The cached candidate can be stale (evicted from the other endpoint in
  // this very step); rescan if so.  kNoCandidate (0) is never a pair key,
  // so the rescan's membership side-channel stays empty.
  if (victim_key == kNoCandidate || !matching_view().has_key(victim_key)) {
    victim_key = rows_.scan(w, kNoCandidate).victim_key;
  }
  RDCN_ASSERT_MSG(victim_key != kNoCandidate,
                  "evict_at on rack with no matching edges");
  pairs_.erase(victim_key);
  remove_matching_edge_key(victim_key);
  [[maybe_unused]] const bool lo = rows_.evict(pair_lo(victim_key), victim_key);
  [[maybe_unused]] const bool hi = rows_.evict(pair_hi(victim_key), victim_key);
  RDCN_DCHECK(lo && hi);
  eviction_candidate_[w] = kNoCandidate;
}

}  // namespace rdcn::core
