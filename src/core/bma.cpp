#include "core/bma.hpp"

#include <algorithm>

namespace rdcn::core {

void Bma::on_request(const Request& r, bool matched) {
  ++clock_;
  const std::uint64_t key = pair_key(r);

  // Request-path bookkeeping (see header): every request can change the
  // usage ranking at its endpoints (a direct serve bumps the served edge;
  // a fixed-network serve moves a pair toward admission), so the reference
  // implementation refreshes the eviction candidate at both endpoints on
  // every request.  This is the Θ(b) component of BMA's per-request cost.
  eviction_candidate_[r.u] = scan_eviction_candidate(r.u);
  eviction_candidate_[r.v] = scan_eviction_candidate(r.v);

  if (matched) {
    ++usage_[key];
    return;
  }

  std::uint64_t& c = charge_[key];
  c += dist(r.u, r.v);
  if (c < alpha()) return;

  // The pair has paid α in fixed-network routing: admit it.
  charge_.erase(key);
  if (matching_view().full(r.u)) evict_at(r.u);
  if (matching_view().full(r.v)) evict_at(r.v);
  add_matching_edge(r.u, r.v);
  usage_[key] = 0;
  admitted_at_[key] = clock_;
}

std::uint64_t Bma::scan_eviction_candidate(Rack w) const {
  const auto& neighbors = matching_view().neighbors(w);
  std::uint64_t victim_key = kNoCandidate;
  std::uint64_t best_usage = ~std::uint64_t{0};
  std::uint64_t best_age = ~std::uint64_t{0};
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    const std::uint64_t key = pair_key(w, neighbors[i]);
    const std::uint64_t* use = usage_.find(key);
    const std::uint64_t* adm = admitted_at_.find(key);
    RDCN_DCHECK(use != nullptr && adm != nullptr);
    // Least direct-serve usage; oldest admission breaks ties.
    if (*use < best_usage || (*use == best_usage && *adm < best_age)) {
      best_usage = *use;
      best_age = *adm;
      victim_key = key;
    }
  }
  return victim_key;
}

void Bma::evict_at(Rack w) {
  std::uint64_t victim_key = eviction_candidate_[w];
  // The cached candidate can be stale (evicted from the other endpoint in
  // this very step); rescan if so.
  if (victim_key == kNoCandidate || !matching_view().has_key(victim_key)) {
    victim_key = scan_eviction_candidate(w);
  }
  RDCN_ASSERT_MSG(victim_key != kNoCandidate,
                  "evict_at on rack with no matching edges");
  usage_.erase(victim_key);
  admitted_at_.erase(victim_key);
  remove_matching_edge_key(victim_key);
  eviction_candidate_[w] = kNoCandidate;
}

}  // namespace rdcn::core
