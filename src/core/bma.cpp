#include "core/bma.hpp"

#include <algorithm>

namespace rdcn::core {

void Bma::on_request(const Request& r, bool matched) {
  ++clock_;
  const std::uint64_t key = pair_key(r);

  // Request-path bookkeeping (see header): every request can change the
  // usage ranking at its endpoints (a direct serve bumps the served edge;
  // a fixed-network serve moves a pair toward admission), so the reference
  // implementation refreshes the eviction candidate at both endpoints on
  // every request.  This is the Θ(b) component of BMA's per-request cost.
  request_state_ = nullptr;
  eviction_candidate_[r.u] = scan_eviction_candidate(r.u, key);
  eviction_candidate_[r.v] = scan_eviction_candidate(r.v, key);

  if (matched) {
    // A matched pair is incident to both endpoints, so the scans above
    // already resolved its record — no extra probe.
    RDCN_DCHECK(request_state_ != nullptr);
    ++request_state_->usage;
    return;
  }

  charge_and_maybe_admit(r, key, dist(r.u, r.v));
}

void Bma::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& r = batch[i];
    // One-request lookahead (only a batch knows its future): pull the next
    // request's pair record and incident rows toward the cache while the
    // current scans run.  Advisory only — no semantic effect.
    if (i + 1 < batch.size()) {
      const Request& next = batch[i + 1];
      pairs_.prefetch(pair_key(next));
      __builtin_prefetch(incident_[next.u].data());
      __builtin_prefetch(incident_[next.v].data());
    }
    RDCN_DCHECK(r.u != r.v);
    ++clock_;
    const std::uint64_t key = pair_key(r);
    request_state_ = nullptr;
    eviction_candidate_[r.u] = scan_eviction_candidate(r.u, key);
    eviction_candidate_[r.v] = scan_eviction_candidate(r.v, key);
    ++acc.requests;
    // The incident rows mirror the matching adjacency (both mutate only at
    // admission/eviction), so the pair is matched iff a scan captured its
    // record — same verdict matching().has() would return, one Θ(b) probe
    // cheaper.  The scans read but never mutate the matching, so routing
    // still sees the pre-reconfiguration state the cost model prescribes.
    RDCN_DCHECK((request_state_ != nullptr) ==
                matching_view().has(r.u, r.v));
    if (PairState* matched_state = request_state_) {
      acc.routing_cost += 1;
      ++acc.direct_serves;
      ++matched_state->usage;
      continue;
    }
    const std::uint64_t d = dist(r.u, r.v);
    acc.routing_cost += d;
    charge_and_maybe_admit(r, key, d);
  }
  commit_routing(acc);
}

void Bma::charge_and_maybe_admit(const Request& r, std::uint64_t key,
                                 std::uint64_t d) {
  PairState& s = *pairs_.try_emplace(key).first;
  s.charge += d;
  if (s.charge < alpha()) return;

  // The pair has paid α in fixed-network routing: admit it.
  if (matching_view().full(r.u)) evict_at(r.u);
  if (matching_view().full(r.v)) evict_at(r.v);
  add_matching_edge(r.u, r.v);
  // Eviction above may have backward-shifted the map; re-resolve the slot.
  const std::size_t slot = pairs_.find_index(key);
  PairState& admitted = *pairs_.at_index(slot, key);
  admitted.charge = 0;
  admitted.usage = 0;
  admitted.admitted_at = clock_;
  incident_[r.u].push_back({key, static_cast<std::uint32_t>(slot)});
  incident_[r.v].push_back({key, static_cast<std::uint32_t>(slot)});
}

std::uint64_t Bma::scan_eviction_candidate(Rack w,
                                           std::uint64_t request_key) {
  auto& row = incident_[w];
  RDCN_DCHECK(row.size() == matching_view().degree(w));
  std::uint64_t victim_key = kNoCandidate;
  std::uint64_t best_usage = ~std::uint64_t{0};
  std::uint64_t best_age = ~std::uint64_t{0};
  PairState* found = request_state_;  // keep the capture in a register
  for (std::size_t i = 0; i < row.size(); ++i) {
    EdgeRef& e = row[i];
    PairState* s = pairs_.at_index(e.slot, e.key);
    if (s == nullptr) {  // slot index went stale: re-find and re-cache
      const std::size_t idx = pairs_.find_index(e.key);
      e.slot = static_cast<std::uint32_t>(idx);
      s = pairs_.at_index(idx, e.key);
      RDCN_DCHECK(s != nullptr);
    }
    found = e.key == request_key ? s : found;
    // Least direct-serve usage; oldest admission breaks ties.  Admission
    // ticks are unique, so the argmin is unique and iteration order never
    // changes the outcome (branchless selects keep the loop tight).
    const bool better = (s->usage < best_usage) |
                        ((s->usage == best_usage) & (s->admitted_at < best_age));
    best_usage = better ? s->usage : best_usage;
    best_age = better ? s->admitted_at : best_age;
    victim_key = better ? e.key : victim_key;
  }
  request_state_ = found;
  return victim_key;
}

void Bma::evict_at(Rack w) {
  std::uint64_t victim_key = eviction_candidate_[w];
  // The cached candidate can be stale (evicted from the other endpoint in
  // this very step); rescan if so.
  if (victim_key == kNoCandidate || !matching_view().has_key(victim_key)) {
    victim_key = scan_eviction_candidate(w, kNoCandidate);
  }
  RDCN_ASSERT_MSG(victim_key != kNoCandidate,
                  "evict_at on rack with no matching edges");
  pairs_.erase(victim_key);
  remove_matching_edge_key(victim_key);
  drop_incident(victim_key);
  eviction_candidate_[w] = kNoCandidate;
}

void Bma::drop_incident(std::uint64_t key) {
  for (const Rack w : {pair_lo(key), pair_hi(key)}) {
    auto& row = incident_[w];
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].key == key) {
        row.swap_erase(i);
        break;
      }
    }
    RDCN_DCHECK(row.size() == matching_view().degree(w));
  }
}

}  // namespace rdcn::core
