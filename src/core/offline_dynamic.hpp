// rdcn: epoch-based dynamic offline comparator.
//
// Between the two offline extremes — SO-BMA (one static matching for the
// whole trace) and the exact dynamic OPT (intractable beyond toy sizes) —
// sits the dynamic-offline family studied by Hanauer et al. (INFOCOM'23)
// for reconfigurable datacenters: partition the trace into windows of W
// requests, compute a heavy b-matching of each window's demand, and switch
// matchings at window boundaries, paying α per changed edge.
//
// A hysteresis bonus keeps an edge from the previous window when its new
// demand is close (avoids α-thrash on borderline edges).  Sweeping W in
// bench/ablation_offline_window.cpp exposes the adaptivity/reconfiguration
// trade-off: W → trace length recovers SO-BMA; small W adapts fast but
// pays heavy switching costs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/online_matcher.hpp"
#include "trace/trace.hpp"

namespace rdcn::core {

struct OfflineDynamicOptions {
  std::size_t window = 10000;   ///< requests per epoch
  /// Weight bonus (as a fraction of α) granted to edges already matched in
  /// the previous window — hysteresis against switching thrash.
  double retention_bonus = 1.0;
  bool local_search = true;
};

class OfflineDynamic final : public OnlineBMatcher {
 public:
  /// Offline: consumes the full trace up front and precomputes the
  /// per-window matchings (degree cap = instance.offline_degree()).
  OfflineDynamic(const Instance& instance, const trace::Trace& full_trace,
                 const OfflineDynamicOptions& options = {});

  std::string name() const override { return "offline_dynamic"; }

  /// Devirtualized chunk loop: processes the batch in window-sized runs —
  /// the matching only changes at epoch boundaries, so the inner loop is
  /// pure membership + routing accumulation with no per-request epoch
  /// arithmetic.  Bit-identical to the serve() loop (pinned by the batch
  /// differential suite).
  void serve_batch(std::span<const Request> batch) override;

  void reset() override;

  std::size_t num_windows() const noexcept { return plans_.size(); }

 private:
  void on_request(const Request& r, bool matched) override;

  /// Applies plan `w` (diff against the current matching).
  void apply_plan(std::size_t w);

  std::vector<std::vector<std::uint64_t>> plans_;  ///< matching per window
  std::size_t window_;
  std::uint64_t served_ = 0;
  std::size_t next_plan_ = 0;
};

}  // namespace rdcn::core
