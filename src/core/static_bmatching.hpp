// rdcn: static maximum-weight b-matching solvers.
//
// The SO-BMA comparator (§3, "Maximum Weight Matching algorithm") needs a
// heavy b-matching of the aggregated demand graph.  Exact b-matching is
// polynomial (Anstee '87) but heavyweight; the demand-aware-network
// literature the paper builds on (Hanauer et al., INFOCOM'22) uses greedy
// and local-search families, which we implement:
//
//   * greedy: scan edges by descending weight, add when both endpoints
//     have spare degree — a 1/2-approximation;
//   * local search: single-swap improvement (add one non-matching edge,
//     remove the cheapest conflicting edges) until a local optimum or the
//     pass limit.
//
// For b = 1 on tiny graphs, an exact exponential solver provides ground
// truth for approximation tests.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rdcn::core {

struct WeightedEdge {
  std::uint64_t key;    ///< canonical pair id
  std::uint64_t weight;
};

/// Greedy max-weight b-matching.  Ties broken by key for determinism.
std::vector<std::uint64_t> greedy_b_matching(std::size_t num_racks,
                                             std::size_t degree_cap,
                                             std::vector<WeightedEdge> edges);

/// Improves `matching` by single-edge swaps; returns the improved matching.
/// `max_passes` bounds work (each pass is O(|edges| * b)).
std::vector<std::uint64_t> local_search_b_matching(
    std::size_t num_racks, std::size_t degree_cap,
    const std::vector<WeightedEdge>& edges,
    std::vector<std::uint64_t> matching, int max_passes = 8);

/// Exact maximum-weight b-matching by exhaustive search; only for tests
/// (asserts |edges| <= 24).
std::vector<std::uint64_t> exact_b_matching(std::size_t num_racks,
                                            std::size_t degree_cap,
                                            const std::vector<WeightedEdge>& edges);

/// Total weight of a matching under the given weights.
std::uint64_t matching_weight(const std::vector<std::uint64_t>& matching,
                              const std::vector<WeightedEdge>& edges);

}  // namespace rdcn::core
