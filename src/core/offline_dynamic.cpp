#include "core/offline_dynamic.hpp"

#include <algorithm>

#include "common/flat_hash.hpp"
#include "core/static_bmatching.hpp"

namespace rdcn::core {

OfflineDynamic::OfflineDynamic(const Instance& inst,
                               const trace::Trace& full_trace,
                               const OfflineDynamicOptions& options)
    : OnlineBMatcher(inst), window_(options.window) {
  RDCN_ASSERT_MSG(window_ >= 1, "window must be positive");
  const std::size_t cap = inst.offline_degree();
  const std::size_t num_windows =
      full_trace.empty() ? 0 : (full_trace.size() + window_ - 1) / window_;
  plans_.reserve(num_windows);

  const std::uint64_t bonus = static_cast<std::uint64_t>(
      options.retention_bonus * static_cast<double>(inst.alpha));

  FlatSet previous;
  for (std::size_t w = 0; w < num_windows; ++w) {
    const std::size_t begin = w * window_;
    const std::size_t end =
        std::min(full_trace.size(), begin + window_);
    // Window demand.
    FlatMap<std::uint64_t> counts;
    for (std::size_t i = begin; i < end; ++i)
      ++counts[pair_key(full_trace[i])];

    std::vector<WeightedEdge> edges;
    edges.reserve(counts.size());
    counts.for_each([&](std::uint64_t key, std::uint64_t cnt) {
      const std::uint64_t d = inst.dist(pair_lo(key), pair_hi(key));
      if (d <= 1) return;
      std::uint64_t weight = cnt * (d - 1);
      // Hysteresis: edges kept from the previous window save 2α of
      // switching (no removal + no later re-add), modeled as a bonus.
      if (previous.contains(key)) weight += bonus;
      edges.push_back({key, weight});
    });

    std::vector<std::uint64_t> plan =
        greedy_b_matching(inst.num_racks(), cap, edges);
    if (options.local_search) {
      plan = local_search_b_matching(inst.num_racks(), cap, edges,
                                     std::move(plan));
    }
    previous.clear();
    for (std::uint64_t k : plan) previous.insert(k);
    plans_.push_back(std::move(plan));
  }
  if (!plans_.empty()) apply_plan(0);
  next_plan_ = 1;
}

void OfflineDynamic::apply_plan(std::size_t w) {
  RDCN_ASSERT(w < plans_.size());
  FlatSet target(plans_[w].size());
  for (std::uint64_t k : plans_[w]) target.insert(k);

  // Remove edges not in the target, then add the missing ones (this order
  // keeps degrees feasible throughout).
  for (std::uint64_t k : matching_view().edge_keys()) {
    if (!target.contains(k)) remove_matching_edge_key(k);
  }
  for (std::uint64_t k : plans_[w]) {
    if (!matching_view().has_key(k))
      add_matching_edge(pair_lo(k), pair_hi(k));
  }
}

void OfflineDynamic::on_request(const Request&, bool) {
  ++served_;
  if (served_ % window_ == 0 && next_plan_ < plans_.size()) {
    apply_plan(next_plan_);
    ++next_plan_;
  }
}

void OfflineDynamic::serve_batch(std::span<const Request> batch) {
  RoutingDelta acc;
  const BMatching& m = matching_view();
  std::size_t i = 0;
  while (i < batch.size()) {
    // Requests left in the current epoch: serve() switches plans after the
    // request that completes a window, so a run never crosses a plan
    // application and the matching is constant over it.
    const std::size_t run = std::min<std::size_t>(
        batch.size() - i, window_ - static_cast<std::size_t>(served_ % window_));
    for (std::size_t j = i; j < i + run; ++j) {
      const Request& r = batch[j];
      RDCN_DCHECK(r.u != r.v);
      const bool matched = m.has(r.u, r.v);
      acc.routing_cost += matched ? 1 : dist(r.u, r.v);
      ++acc.requests;
      acc.direct_serves += matched ? 1 : 0;
    }
    i += run;
    served_ += run;
    if (served_ % window_ == 0 && next_plan_ < plans_.size()) {
      apply_plan(next_plan_);
      ++next_plan_;
    }
  }
  commit_routing(acc);
}

void OfflineDynamic::reset() {
  OnlineBMatcher::reset();
  served_ = 0;
  if (!plans_.empty()) apply_plan(0);
  next_plan_ = 1;
}

}  // namespace rdcn::core
