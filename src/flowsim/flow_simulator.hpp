// rdcn: fluid flow-level simulator.
//
// Event-driven simulation of flows sharing the capacitated network under
// max-min fairness: between events every active flow transfers at its fair
// rate; events are flow arrivals and completions; rates are recomputed at
// each event.  This is the standard flow-level model (as used by
// datacenter throughput studies the paper builds on) and turns the
// hop-count cost model into measurable throughput / flow-completion-time
// numbers: shorter routes consume less aggregate capacity ("bandwidth
// tax"), so matchings that shortcut heavy pairs complete the same offered
// load faster.
#pragma once

#include <cstdint>
#include <vector>

#include "flowsim/network.hpp"
#include "trace/trace.hpp"

namespace rdcn::flowsim {

struct FlowSpec {
  std::uint32_t src;
  std::uint32_t dst;
  double size;          ///< bytes (capacity units x seconds)
  double arrival_time;  ///< seconds
};

struct FlowStats {
  double completion_time = 0.0;  ///< absolute finish time
  double duration = 0.0;         ///< finish - arrival
  std::size_t hops = 0;
};

struct SimulationResult {
  std::vector<FlowStats> flows;
  double makespan = 0.0;           ///< when the last flow finished
  double mean_fct = 0.0;
  double p99_fct = 0.0;
  double aggregate_throughput = 0.0;  ///< total bytes / makespan
  /// Bandwidth tax: (Σ bytes·hops) / (Σ bytes) — mean capacity consumed
  /// per delivered byte; 1.0 is the optical ideal.
  double bandwidth_tax = 0.0;

  /// Total offered bytes.
  double total_bytes = 0.0;
};

/// Runs all flows to completion.  `specs` need not be sorted.
/// Rates are recomputed at every arrival/completion (O(events · F · L)
/// worst case; fine for the 10^3..10^4-flow studies in bench/).
SimulationResult simulate_flows(const FlowNetwork& network,
                                std::vector<FlowSpec> specs);

/// Derives flow specs from a request trace: request i becomes a flow of
/// `flow_size` bytes arriving at i / arrival_rate seconds.
std::vector<FlowSpec> flows_from_trace(const trace::Trace& trace,
                                       double flow_size,
                                       double arrival_rate);

}  // namespace rdcn::flowsim
