// rdcn: the capacitated network a flow-level simulation runs on — the
// fixed switch fabric plus the reconfigurable optical links of one
// b-matching snapshot.
//
// Link index space: [0, num_fixed_links) are the topology's physical links
// (ids from net::PathTable / Graph::edge_list()); optical links of the
// matching are appended after them.  A flow between matched racks uses its
// single optical link; otherwise it follows the fixed shortest path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "core/b_matching.hpp"
#include "flowsim/fair_share.hpp"
#include "net/path_table.hpp"
#include "net/topology.hpp"

namespace rdcn::flowsim {

class FlowNetwork {
 public:
  /// `fixed_capacity`: capacity of every fabric link; `optical_capacity`:
  /// capacity of each reconfigurable link (typically equal or larger —
  /// circuit switching carries full line rate).
  FlowNetwork(const net::Topology& topology, const core::BMatching& matching,
              double fixed_capacity, double optical_capacity);

  /// Route of a rack-to-rack flow under segregated routing (§1.1: a
  /// request takes either the fixed network or its direct matching edge).
  FlowRoute route(std::uint32_t src, std::uint32_t dst) const;

  const std::vector<double>& capacities() const noexcept {
    return capacities_;
  }
  std::size_t num_fixed_links() const noexcept { return num_fixed_; }
  std::size_t num_optical_links() const noexcept {
    return capacities_.size() - num_fixed_;
  }

  /// Hop count of the route (1 for optical, path length otherwise);
  /// 0 for src == dst.
  std::size_t route_hops(std::uint32_t src, std::uint32_t dst) const;

 private:
  const net::Topology* topology_;
  net::PathTable paths_;
  FlatMap<std::uint32_t> optical_link_of_pair_;  // pair key -> link index
  std::vector<double> capacities_;
  std::size_t num_fixed_ = 0;
};

}  // namespace rdcn::flowsim
