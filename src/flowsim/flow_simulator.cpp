#include "flowsim/flow_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace rdcn::flowsim {

SimulationResult simulate_flows(const FlowNetwork& network,
                                std::vector<FlowSpec> specs) {
  SimulationResult result;
  result.flows.resize(specs.size());
  if (specs.empty()) return result;

  // Arrival order (stable so equal arrival times keep spec order).
  std::vector<std::uint32_t> order(specs.size());
  for (std::uint32_t i = 0; i < specs.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return specs[a].arrival_time < specs[b].arrival_time;
                   });

  // Precompute routes and static stats.
  std::vector<FlowRoute> routes(specs.size());
  double weighted_hops = 0.0;
  for (std::size_t f = 0; f < specs.size(); ++f) {
    RDCN_ASSERT_MSG(specs[f].size > 0.0, "flow size must be positive");
    routes[f] = network.route(specs[f].src, specs[f].dst);
    result.flows[f].hops = network.route_hops(specs[f].src, specs[f].dst);
    result.total_bytes += specs[f].size;
    weighted_hops +=
        specs[f].size * static_cast<double>(result.flows[f].hops);
  }
  result.bandwidth_tax =
      result.total_bytes > 0.0 ? weighted_hops / result.total_bytes : 0.0;

  // Fluid event loop.
  std::vector<double> remaining(specs.size());
  std::vector<std::uint32_t> active;  // flow indices currently in flight
  std::size_t next_arrival = 0;
  double now = specs[order[0]].arrival_time;

  std::vector<FlowRoute> active_routes;
  std::vector<double> rates;
  while (next_arrival < order.size() || !active.empty()) {
    // Admit all flows arriving at `now`.
    while (next_arrival < order.size() &&
           specs[order[next_arrival]].arrival_time <= now + 1e-12) {
      const std::uint32_t f = order[next_arrival++];
      remaining[f] = specs[f].size;
      active.push_back(f);
    }

    // Recompute max-min fair rates for the active set.
    active_routes.clear();
    active_routes.reserve(active.size());
    for (std::uint32_t f : active) active_routes.push_back(routes[f]);
    rates = max_min_fair_rates(active_routes, network.capacities());

    // Next event: earliest completion or next arrival.
    double next_event = std::numeric_limits<double>::infinity();
    if (next_arrival < order.size())
      next_event = specs[order[next_arrival]].arrival_time;
    for (std::size_t i = 0; i < active.size(); ++i) {
      RDCN_ASSERT_MSG(rates[i] > 0.0, "active flow with zero rate");
      next_event =
          std::min(next_event, now + remaining[active[i]] / rates[i]);
    }
    RDCN_ASSERT(std::isfinite(next_event));
    const double dt = next_event - now;
    now = next_event;

    // Progress transfers; retire completed flows.
    for (std::size_t i = 0; i < active.size();) {
      const std::uint32_t f = active[i];
      remaining[f] -= rates[i] * dt;
      if (remaining[f] <= 1e-9 * specs[f].size + 1e-12) {
        result.flows[f].completion_time = now;
        result.flows[f].duration = now - specs[f].arrival_time;
        active[i] = active.back();
        active.pop_back();
        rates[i] = rates.back();
        rates.pop_back();
      } else {
        ++i;
      }
    }
  }

  // Aggregate metrics.
  result.makespan = 0.0;
  std::vector<double> durations;
  durations.reserve(result.flows.size());
  double sum_fct = 0.0;
  for (const FlowStats& f : result.flows) {
    result.makespan = std::max(result.makespan, f.completion_time);
    durations.push_back(f.duration);
    sum_fct += f.duration;
  }
  result.mean_fct = sum_fct / static_cast<double>(durations.size());
  std::sort(durations.begin(), durations.end());
  result.p99_fct =
      durations[static_cast<std::size_t>(0.99 * (durations.size() - 1))];
  result.aggregate_throughput =
      result.makespan > 0.0 ? result.total_bytes / result.makespan : 0.0;
  return result;
}

std::vector<FlowSpec> flows_from_trace(const trace::Trace& trace,
                                       double flow_size,
                                       double arrival_rate) {
  RDCN_ASSERT(flow_size > 0.0 && arrival_rate > 0.0);
  std::vector<FlowSpec> specs;
  specs.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    specs.push_back({trace[i].u, trace[i].v, flow_size,
                     static_cast<double>(i) / arrival_rate});
  }
  return specs;
}

}  // namespace rdcn::flowsim
