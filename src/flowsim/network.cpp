#include "flowsim/network.hpp"

#include "trace/request.hpp"

namespace rdcn::flowsim {

FlowNetwork::FlowNetwork(const net::Topology& topology,
                         const core::BMatching& matching,
                         double fixed_capacity, double optical_capacity)
    : topology_(&topology),
      paths_(topology.graph, topology.racks),
      num_fixed_(topology.graph.num_edges()) {
  RDCN_ASSERT_MSG(fixed_capacity > 0.0 && optical_capacity > 0.0,
                  "capacities must be positive");
  capacities_.assign(num_fixed_, fixed_capacity);
  for (const std::uint64_t key : matching.edge_keys()) {
    optical_link_of_pair_[key] =
        static_cast<std::uint32_t>(capacities_.size());
    capacities_.push_back(optical_capacity);
  }
}

FlowRoute FlowNetwork::route(std::uint32_t src, std::uint32_t dst) const {
  FlowRoute r;
  if (src == dst) return r;
  const std::uint64_t key = trace::pair_key(src, dst);
  const std::uint32_t* optical = optical_link_of_pair_.find(key);
  if (optical != nullptr) {
    r.links.push_back(*optical);
    return r;
  }
  const std::vector<net::EdgeId>& p = paths_.path(src, dst);
  r.links.assign(p.begin(), p.end());
  return r;
}

std::size_t FlowNetwork::route_hops(std::uint32_t src,
                                    std::uint32_t dst) const {
  if (src == dst) return 0;
  const std::uint64_t key = trace::pair_key(src, dst);
  if (optical_link_of_pair_.contains(key)) return 1;
  return paths_.path(src, dst).size();
}

}  // namespace rdcn::flowsim
