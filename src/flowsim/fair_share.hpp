// rdcn: max-min fair rate allocation (progressive filling / water-filling).
//
// Given a set of flows, each crossing a set of links with finite
// capacities, computes the unique max-min fair rate vector: repeatedly
// find the most-constrained link (smallest fair share = residual capacity
// / unfrozen flows), freeze its flows at that share, subtract, repeat.
// This is the standard fluid model for TCP-like bandwidth sharing and the
// throughput semantics behind the papers the cost model cites (§1.1:
// "throughput of a network is inversely proportional to the route
// length").
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rdcn::flowsim {

/// One flow's routing: indices into the capacity vector.
struct FlowRoute {
  std::vector<std::uint32_t> links;
};

/// Computes max-min fair rates.  `capacities[l]` > 0 for every link used.
/// Flows with empty link sets (same-rack traffic) get rate `unbounded`.
/// Complexity: O(iterations · (F + L)) with iterations <= L.
std::vector<double> max_min_fair_rates(
    const std::vector<FlowRoute>& flows,
    const std::vector<double>& capacities, double unbounded = 1e18);

}  // namespace rdcn::flowsim
