#include "flowsim/fair_share.hpp"

#include <limits>

namespace rdcn::flowsim {

std::vector<double> max_min_fair_rates(
    const std::vector<FlowRoute>& flows,
    const std::vector<double>& capacities, double unbounded) {
  const std::size_t num_flows = flows.size();
  const std::size_t num_links = capacities.size();

  std::vector<double> rates(num_flows, 0.0);
  std::vector<double> residual = capacities;
  std::vector<std::uint32_t> active_on_link(num_links, 0);
  std::vector<std::uint8_t> frozen(num_flows, 0);

  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (flows[f].links.empty()) {
      rates[f] = unbounded;
      frozen[f] = 1;
      continue;
    }
    ++unfrozen;
    for (std::uint32_t l : flows[f].links) {
      RDCN_DCHECK(l < num_links);
      RDCN_DCHECK(capacities[l] > 0.0);
      ++active_on_link[l];
    }
  }

  while (unfrozen > 0) {
    // Bottleneck link: minimal fair share among links with active flows.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_on_link[l] == 0) continue;
      const double share =
          residual[l] / static_cast<double>(active_on_link[l]);
      if (share < bottleneck_share) bottleneck_share = share;
    }
    RDCN_ASSERT_MSG(bottleneck_share <
                        std::numeric_limits<double>::infinity(),
                    "unfrozen flow with no constraining link");

    // Freeze every unfrozen flow crossing a link at the bottleneck share.
    bool froze_any = false;
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      bool at_bottleneck = false;
      for (std::uint32_t l : flows[f].links) {
        const double share =
            residual[l] / static_cast<double>(active_on_link[l]);
        // Tolerance: floating-point equality of shares.
        if (share <= bottleneck_share * (1.0 + 1e-12)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      rates[f] = bottleneck_share;
      frozen[f] = 1;
      froze_any = true;
      --unfrozen;
      for (std::uint32_t l : flows[f].links) {
        residual[l] -= bottleneck_share;
        if (residual[l] < 0.0) residual[l] = 0.0;  // rounding guard
        --active_on_link[l];
      }
    }
    RDCN_ASSERT_MSG(froze_any, "progressive filling made no progress");
  }
  return rates;
}

}  // namespace rdcn::flowsim
