// rdcn: self-registering component registries — the single extension point
// of the scenario API.
//
// The paper's evaluation (§3.1) is a matrix {topologies} × {workloads} ×
// {algorithms, b, α}.  These registries make each axis of that matrix
// string-addressable and extensible:
//
//   AlgorithmRegistry   name + ParamMap + Instance (+ full trace for
//                       offline comparators) → OnlineBMatcher.  Subsumes
//                       core::make_matcher; RBmaOptions / paging-engine
//                       selection / offline windows become parameters
//                       ("r_bma:engine=lru,eager", "offline_dynamic:window=5000").
//   TopologyRegistry    name + ParamMap + rack count → net::Topology,
//                       wrapping the net::make_* builders ("torus:rows=5,cols=10").
//   WorkloadRegistry    name + ParamMap + racks/requests/seed → trace::Trace,
//                       wrapping trace::generate_*, the Facebook/Microsoft
//                       cluster profiles, and CSV import ("csv:path=trace.csv").
//
// Every entry carries a one-line summary plus per-parameter docs, so help
// text, CLI validation, and sweep tooling are *generated* from the
// registries instead of hand-synced (see catalog_text and rdcn_sim).
// Unknown names raise SpecError with a nearest-match suggestion; unknown
// parameters are rejected via ParamMap::require_all_consumed.
//
// Registering a new component is one static object:
//
//   RDCN_REGISTER_WORKLOAD(my_workload, {
//       "my workload summary",
//       {{"knob", "what it does", "42"}},
//       [](std::size_t racks, std::size_t requests, const ParamMap& p,
//          Xoshiro256& rng) { ... return trace; }});
//
// after which "my_workload:knob=7" works in every driver, bench, and test.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/param_map.hpp"
#include "common/rng.hpp"
#include "core/online_matcher.hpp"
#include "net/topology.hpp"
#include "trace/trace.hpp"
#include "trace/trace_stream.hpp"

namespace rdcn::scenario {

/// Documentation for one parameter of a registered component.
struct ParamDoc {
  std::string key;
  std::string doc;
  std::string default_value;  ///< "" = required
};

struct AlgorithmEntry {
  std::string summary;
  std::vector<ParamDoc> params;
  /// Whether behaviour depends on the seed (drives trial repetition).
  bool randomized = false;
  /// Offline comparators need the complete trace up front.
  bool needs_full_trace = false;
  /// Ignores b (a sweep over cache sizes needs only one run).
  bool b_independent = false;
  /// Relative per-request compute weight for serve-side admission cost
  /// estimates (serve/admission.hpp estimate_cost): 1.0 = an ordinary
  /// online matcher; offline comparators and other super-linear
  /// algorithms declare themselves heavier so fair queueing charges them
  /// honestly.  Purely advisory — never affects results.
  double cost_weight = 1.0;
  std::function<std::unique_ptr<core::OnlineBMatcher>(
      const core::Instance& instance, const ParamMap& params,
      const trace::Trace* full_trace, std::uint64_t seed)>
      build;
};

struct TopologyEntry {
  std::string summary;
  std::vector<ParamDoc> params;
  std::function<net::Topology(std::size_t racks, const ParamMap& params,
                              Xoshiro256& rng)>
      build;
};

struct WorkloadEntry {
  std::string summary;
  std::vector<ParamDoc> params;
  std::function<trace::Trace(std::size_t racks, std::size_t requests,
                             const ParamMap& params, Xoshiro256& rng)>
      build;
  /// Optional streaming twin of `build`: produces bit-identically the
  /// trace build() returns for the same RNG state, but chunk by chunk at
  /// constant memory (the rng is snapshotted, never advanced — the
  /// trace/generators.hpp stream_* convention).  Null when the workload
  /// has no streaming form (e.g. csv import).
  std::function<std::unique_ptr<trace::TraceStream>(
      std::size_t racks, std::size_t requests, const ParamMap& params,
      const Xoshiro256& rng)>
      stream;
};

template <typename Entry>
class Registry {
 public:
  /// Registers `name`; duplicate names are a programming error (asserts).
  void add(const std::string& name, Entry entry);

  /// nullptr when unknown (no error).
  const Entry* find(const std::string& name) const;

  /// Throws SpecError with a nearest-match suggestion when unknown.
  const Entry& at(const std::string& name) const;

  /// Cheap static validation (no construction): the name must be
  /// registered and every parameter key documented in the entry's
  /// ParamDocs.  Throws SpecError with suggestions otherwise.  Together
  /// with the post-build consumption check in make() this forces the param
  /// docs to match the implementation exactly — which is what lets help
  /// text and CLI validation be generated instead of hand-synced.
  void validate(const Spec& spec) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

 protected:
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

 private:
  std::map<std::string, Entry> entries_;
  std::string kind_;  ///< "algorithm" | "topology" | "workload" (for errors)
};

class AlgorithmRegistry : public Registry<AlgorithmEntry> {
 public:
  AlgorithmRegistry() : Registry("algorithm") {}

  static AlgorithmRegistry& instance();

  /// Builds, then rejects unconsumed (unknown) parameters.  Throws
  /// SpecError when the algorithm is offline and `full_trace` is null.
  std::unique_ptr<core::OnlineBMatcher> make(const Spec& spec,
                                             const core::Instance& instance,
                                             const trace::Trace* full_trace,
                                             std::uint64_t seed) const;
};

class TopologyRegistry : public Registry<TopologyEntry> {
 public:
  TopologyRegistry() : Registry("topology") {}

  static TopologyRegistry& instance();

  net::Topology make(const Spec& spec, std::size_t racks,
                     Xoshiro256& rng) const;
};

class WorkloadRegistry : public Registry<WorkloadEntry> {
 public:
  WorkloadRegistry() : Registry("workload") {}

  static WorkloadRegistry& instance();

  trace::Trace make(const Spec& spec, std::size_t racks,
                    std::size_t requests, Xoshiro256& rng) const;

  /// Whether `name` has a streaming twin registered.
  bool streamable(const std::string& name) const;

  /// Builds the workload as a TraceStream (constant-memory replay of
  /// arbitrarily long traces).  The rng is snapshotted, not advanced, and
  /// the stream's request sequence is bit-identical to what make() would
  /// return for the same rng state.  Throws SpecError when the workload
  /// has no streaming form.
  std::unique_ptr<trace::TraceStream> make_stream(const Spec& spec,
                                                  std::size_t racks,
                                                  std::size_t requests,
                                                  const Xoshiro256& rng) const;
};

/// Convenience wrappers taking compact spec strings ("r_bma:engine=lru").
/// These are the registry-era replacement for core::make_matcher.
std::unique_ptr<core::OnlineBMatcher> make_algorithm(
    const std::string& spec, const core::Instance& instance,
    const trace::Trace* full_trace = nullptr, std::uint64_t seed = 1);
net::Topology make_topology(const std::string& spec, std::size_t racks,
                            Xoshiro256& rng);
trace::Trace make_workload(const std::string& spec, std::size_t racks,
                           std::size_t requests, Xoshiro256& rng);

/// Splits a comma-separated list of algorithm specs.  Commas both separate
/// specs and parameters; a segment opens a new spec iff its head (text
/// before ':') is a registered algorithm name, otherwise it extends the
/// previous spec's parameters:  "r_bma:engine=lru,eager,bma" →
/// ["r_bma:engine=lru,eager", "bma"].
std::vector<Spec> parse_algorithm_list(const std::string& text);

/// Human-readable catalog of all three registries with per-parameter docs —
/// the generated half of rdcn_sim's --help text.
std::string catalog_text();

/// "did you mean ...?" support: the candidate closest to `name` in edit
/// distance, or "" when nothing is plausibly close.
std::string nearest_name(const std::string& name,
                         const std::vector<std::string>& candidates);

namespace detail {
struct AlgorithmRegistrar {
  AlgorithmRegistrar(const std::string& name, AlgorithmEntry entry);
};
struct TopologyRegistrar {
  TopologyRegistrar(const std::string& name, TopologyEntry entry);
};
struct WorkloadRegistrar {
  WorkloadRegistrar(const std::string& name, WorkloadEntry entry);
};
}  // namespace detail

// Self-registration macros for downstream components.  Place at namespace
// scope in a .cpp that is linked into the final binary.
#define RDCN_REGISTER_ALGORITHM(name, ...)                       \
  static const ::rdcn::scenario::detail::AlgorithmRegistrar      \
      rdcn_algorithm_registrar_##name(#name, __VA_ARGS__)
#define RDCN_REGISTER_TOPOLOGY(name, ...)                        \
  static const ::rdcn::scenario::detail::TopologyRegistrar       \
      rdcn_topology_registrar_##name(#name, __VA_ARGS__)
#define RDCN_REGISTER_WORKLOAD(name, ...)                        \
  static const ::rdcn::scenario::detail::WorkloadRegistrar       \
      rdcn_workload_registrar_##name(#name, __VA_ARGS__)

}  // namespace rdcn::scenario
