#include "scenario/scenario.hpp"

#include <algorithm>
#include <mutex>

#include "common/assert.hpp"
#include "obs/span.hpp"
#include "sim/parallel_runner.hpp"

namespace rdcn::scenario {

namespace {

// Fully qualified: scenario::detail (the registrar helpers) shadows
// rdcn::detail here.
using rdcn::detail::split;
using rdcn::detail::trim;

/// Scalar fields reuse ParamMap's typed conversion (same SpecErrors).
template <typename T>
T parse_scalar(const std::string& key, const std::string& value) {
  ParamMap one;
  one.set(key, value);
  return one.get<T>(key);
}

std::vector<std::size_t> parse_size_list(const std::string& key,
                                         const std::string& text) {
  std::vector<std::size_t> out;
  for (const std::string& raw : split(text, ','))
    out.push_back(parse_scalar<std::size_t>(key, trim(raw)));
  return out;
}

std::string size_list_to_string(const std::vector<std::size_t>& values) {
  std::string out;
  for (std::size_t v : values) {
    if (!out.empty()) out += ',';
    out += std::to_string(v);
  }
  return out;
}

}  // namespace

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::vector<std::string> seen;
  for (const std::string& raw_field : split(text, ';')) {
    const std::string field = trim(raw_field);
    if (!field.empty()) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos)
        throw SpecError("scenario field '" + field +
                        "' is not of the form key=value");
      const std::string key = trim(field.substr(0, eq));
      const std::string value = trim(field.substr(eq + 1));
      // Same stance as ParamMap::parse: within one spec a repeated key is
      // a typo, not an override.
      if (std::find(seen.begin(), seen.end(), key) != seen.end())
        throw SpecError("duplicate scenario field '" + key + "'");
      seen.push_back(key);
      if (key == "topology") {
        spec.topology = Spec::parse(value);
      } else if (key == "workload") {
        spec.workload = Spec::parse(value);
      } else if (key == "algorithms") {
        spec.algorithms = parse_algorithm_list(value);
      } else if (key == "b") {
        spec.cache_sizes = parse_size_list(key, value);
      } else if (key == "racks") {
        spec.racks = parse_scalar<std::size_t>(key, value);
      } else if (key == "requests") {
        spec.requests = parse_scalar<std::size_t>(key, value);
      } else if (key == "a") {
        spec.a = parse_scalar<std::size_t>(key, value);
      } else if (key == "alpha") {
        spec.alpha = parse_scalar<std::uint64_t>(key, value);
      } else if (key == "trials") {
        spec.trials = parse_scalar<std::size_t>(key, value);
      } else if (key == "checkpoints") {
        spec.checkpoints = parse_scalar<std::size_t>(key, value);
      } else if (key == "seed") {
        spec.seed = parse_scalar<std::uint64_t>(key, value);
      } else if (key == "threads") {
        spec.threads = parse_scalar<std::size_t>(key, value);
      } else {
        throw SpecError(
            "unknown scenario field '" + key +
            "'; known: topology, workload, algorithms, b, racks, requests, "
            "a, alpha, trials, checkpoints, seed, threads");
      }
    }
  }
  return spec;
}

namespace {

/// Shared body of to_string/canonical_string.  `canonical` switches the
/// component specs to sorted-param printing and drops execution-only
/// fields, making equal experiments print equal.
std::string spec_to_string(const ScenarioSpec& r, bool canonical) {
  std::string algorithms;
  for (const Spec& a : r.algorithms) {
    if (!algorithms.empty()) algorithms += ',';
    algorithms += canonical ? a.canonical_string() : a.to_string();
  }
  std::string out;
  out += "topology=" +
         (canonical ? r.topology.canonical_string() : r.topology.to_string());
  out += ";workload=" +
         (canonical ? r.workload.canonical_string() : r.workload.to_string());
  out += ";algorithms=" + algorithms;
  out += ";b=" + size_list_to_string(r.cache_sizes);
  out += ";racks=" + std::to_string(r.racks);
  out += ";requests=" + std::to_string(r.requests);
  out += ";a=" + std::to_string(r.a);
  out += ";alpha=" + std::to_string(r.alpha);
  out += ";trials=" + std::to_string(r.trials);
  out += ";checkpoints=" + std::to_string(r.checkpoints);
  out += ";seed=" + std::to_string(r.seed);
  // threads is an execution detail, not part of the experiment's identity:
  // canonical forms drop it entirely (two submissions differing only in
  // thread count are the same experiment), and to_string omits only the
  // default (0 = hardware concurrency) so a pinned count survives the
  // parse/to_string round-trip.
  if (!canonical && r.threads != 0)
    out += ";threads=" + std::to_string(r.threads);
  return out;
}

}  // namespace

std::string ScenarioSpec::to_string() const {
  return spec_to_string(resolved(), /*canonical=*/false);
}

std::string ScenarioSpec::canonical_string() const {
  return spec_to_string(resolved(), /*canonical=*/true);
}

ScenarioSpec ScenarioSpec::resolved() const {
  ScenarioSpec out = *this;
  if (out.algorithms.empty())
    out.algorithms = {Spec{"r_bma", {}}, Spec{"bma", {}},
                      Spec{"oblivious", {}}};
  if (out.cache_sizes.empty()) out.cache_sizes = {12};
  return out;
}

namespace {

/// Shared head of run_scenario / run_scenario_streamed: topology built and
/// the RNG left exactly where workload generation starts.
std::size_t build_topology(const ScenarioSpec& spec, Xoshiro256& rng,
                           ScenarioResult& result) {
  obs::ObsSpan span("scenario.topology");
  result.spec = spec;
  result.topology =
      TopologyRegistry::instance().make(spec.topology, spec.racks, rng);
  // `racks` is a request, not a contract: builders round to their natural
  // sizes (2^dim hypercubes, rows x cols tori).  Generate the workload over
  // what the network actually provides so explicit topology dimensions
  // always yield a runnable scenario.
  return std::min(spec.racks, result.topology.num_racks());
}

void check_workload_fits(const ScenarioSpec& spec, std::size_t workload_racks,
                         const ScenarioResult& result) {
  if (workload_racks > result.topology.num_racks())
    throw SpecError(
        "workload '" + spec.workload.to_string() + "' uses " +
        std::to_string(workload_racks) + " racks but topology '" +
        spec.topology.to_string() + "' provides only " +
        std::to_string(result.topology.num_racks()));
}

sim::ExperimentConfig make_experiment_config(const ScenarioSpec& spec,
                                             const ScenarioResult& result,
                                             const RunHooks& hooks) {
  sim::ExperimentConfig config;
  config.distances = &result.topology.distances;
  config.alpha = spec.alpha;
  config.a = spec.a;
  config.checkpoints = spec.checkpoints;
  config.trials = spec.trials;
  config.base_seed = spec.seed;
  config.threads = spec.threads;
  config.cancel = hooks.cancel;
  if (hooks.on_checkpoint) {
    config.on_checkpoint = [on_checkpoint = hooks.on_checkpoint](
                               const sim::ExperimentSpec& experiment,
                               std::uint64_t seed, const sim::Checkpoint& c) {
      on_checkpoint(experiment.display(), seed, c);
    };
  }
  return config;
}

std::vector<sim::ExperimentSpec> make_experiment_specs(
    const ScenarioSpec& spec) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  std::vector<sim::ExperimentSpec> experiment_specs;
  for (const Spec& algorithm : spec.algorithms) {
    registry.validate(algorithm);
    const bool b_independent = registry.at(algorithm.name).b_independent;
    for (std::size_t b : spec.cache_sizes) {
      sim::ExperimentSpec e;
      e.algorithm = algorithm.name;
      e.b = b;
      e.params = algorithm.params;
      e.label = algorithm.to_string() + "(b=" + std::to_string(b) + ")";
      experiment_specs.push_back(std::move(e));
      if (b_independent) break;  // one column suffices for a b sweep
    }
  }
  return experiment_specs;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, RunHooks{});
}

ScenarioResult run_scenario(const ScenarioSpec& raw_spec,
                            const RunHooks& hooks) {
  const ScenarioSpec spec = raw_spec.resolved();

  // One RNG stream seeds topology construction, then workload generation —
  // the same order the historical rdcn_sim driver used, so a fixed seed
  // reproduces its networks and traces exactly.
  Xoshiro256 rng(spec.seed);
  ScenarioResult result;
  const std::size_t workload_racks = build_topology(spec, rng, result);
  {
    obs::ObsSpan span("scenario.workload");
    result.workload = WorkloadRegistry::instance().make(
        spec.workload, workload_racks, spec.requests, rng);
    check_workload_fits(spec, result.workload.num_racks(), result);
  }

  obs::ObsSpan span("scenario.experiment");
  result.runs =
      sim::run_experiment(make_experiment_config(spec, result, hooks),
                          result.workload, make_experiment_specs(spec));
  return result;
}

ScenarioResult run_scenario_streamed(const ScenarioSpec& spec) {
  return run_scenario_streamed(spec, RunHooks{});
}

ScenarioResult run_scenario_streamed(const ScenarioSpec& raw_spec,
                                     const RunHooks& hooks) {
  const ScenarioSpec spec = raw_spec.resolved();

  Xoshiro256 rng(spec.seed);
  ScenarioResult result;
  const std::size_t workload_racks = build_topology(spec, rng, result);
  // Snapshot the RNG exactly where run_scenario would generate the
  // workload: the stream twins replay bit-identically the trace a
  // materialized run would serve, so both entry points yield the same
  // ledgers for the same spec.
  const Xoshiro256 workload_rng = rng;
  const WorkloadRegistry& workloads = WorkloadRegistry::instance();
  {
    obs::ObsSpan span("scenario.workload");
    // Probe stream: surfaces "no streaming form" / bad parameters on this
    // thread, and carries the name and rack universe for reporting.
    const std::unique_ptr<trace::TraceStream> probe = workloads.make_stream(
        spec.workload, workload_racks, spec.requests, workload_rng);
    check_workload_fits(spec, probe->num_racks(), result);
    result.workload = trace::Trace(probe->num_racks(), probe->name());
  }

  const sim::StreamFactory factory = [&workloads, workload = spec.workload,
                                      workload_racks,
                                      requests = spec.requests,
                                      workload_rng]() {
    return workloads.make_stream(workload, workload_racks, requests,
                                 workload_rng);
  };
  obs::ObsSpan span("scenario.experiment");
  result.runs =
      sim::run_experiment(make_experiment_config(spec, result, hooks),
                          factory, make_experiment_specs(spec));
  return result;
}

std::vector<ScenarioResult> run_matrix(const ScenarioSpec& base,
                                       const std::vector<Spec>& topologies,
                                       const std::vector<Spec>& workloads) {
  const std::vector<Spec> topology_axis =
      topologies.empty() ? std::vector<Spec>{base.topology} : topologies;
  const std::vector<Spec> workload_axis =
      workloads.empty() ? std::vector<Spec>{base.workload} : workloads;

  std::vector<ScenarioSpec> cells;
  cells.reserve(topology_axis.size() * workload_axis.size());
  for (const Spec& topology : topology_axis) {
    for (const Spec& workload : workload_axis) {
      ScenarioSpec cell = base;
      cell.topology = topology;
      cell.workload = workload;
      cells.push_back(std::move(cell));
    }
  }

  // Matrix cells are independent end to end — topology build, workload
  // generation, and every (algorithm, b, trial) run derive only from the
  // cell's own spec (its seed included) — so they shard across the
  // persistent ThreadPool.  Results are written by index, which keeps the
  // row-major output order and makes the CSV independent of thread count
  // and completion order.  parallel_for bodies must not throw; capture the
  // first error (e.g. a workload/topology rack mismatch) and rethrow here.
  std::vector<ScenarioResult> out(cells.size());
  std::mutex error_mutex;
  std::string error;
  bool failed = false;
  sim::parallel_for(
      cells.size(),
      [&](std::size_t i) {
        try {
          out[i] = run_scenario(cells[i]);
        } catch (const std::exception& e) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!failed) error = e.what();
          failed = true;
        }
      },
      base.threads);
  if (failed) throw SpecError(error);
  return out;
}

}  // namespace rdcn::scenario
