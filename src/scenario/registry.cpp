#include "scenario/registry.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "scenario/builtins.hpp"

namespace rdcn::scenario {

namespace {

/// Classic Levenshtein edit distance (names are short; O(n·m) is fine).
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      const std::size_t next =
          std::min({row[j] + 1, row[j - 1] + 1, diagonal + cost});
      diagonal = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

}  // namespace

std::string nearest_name(const std::string& name,
                         const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = 4;  // farther than 3 edits is not a typo
  for (const std::string& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

template <typename Entry>
void Registry<Entry>::add(const std::string& name, Entry entry) {
  const bool inserted = entries_.emplace(name, std::move(entry)).second;
  RDCN_ASSERT_MSG(inserted, "duplicate registry name");
}

template <typename Entry>
const Entry* Registry<Entry>::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

template <typename Entry>
const Entry& Registry<Entry>::at(const std::string& name) const {
  const Entry* entry = find(name);
  if (entry != nullptr) return *entry;
  std::string msg = "unknown " + kind_ + " '" + name + "'";
  const std::string suggestion = nearest_name(name, names());
  if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
  msg += "; known: " + join(names());
  throw SpecError(msg);
}

template <typename Entry>
void Registry<Entry>::validate(const Spec& spec) const {
  const Entry& entry = at(spec.name);
  std::vector<std::string> known;
  known.reserve(entry.params.size());
  for (const ParamDoc& doc : entry.params) known.push_back(doc.key);
  for (const std::string& key : spec.params.keys()) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string msg =
        kind_ + " '" + spec.name + "': unknown parameter '" + key + "'";
    const std::string suggestion = nearest_name(key, known);
    if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
    if (!known.empty()) msg += "; known: " + join(known);
    else msg += "; '" + spec.name + "' takes no parameters";
    throw SpecError(msg);
  }
}

template <typename Entry>
std::vector<std::string> Registry<Entry>::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iterates sorted
}

template class Registry<AlgorithmEntry>;
template class Registry<TopologyEntry>;
template class Registry<WorkloadEntry>;

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry();
    register_builtin_algorithms(*r);
    return r;
  }();
  return *registry;
}

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry* registry = [] {
    auto* r = new TopologyRegistry();
    register_builtin_topologies(*r);
    return r;
  }();
  return *registry;
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    register_builtin_workloads(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<core::OnlineBMatcher> AlgorithmRegistry::make(
    const Spec& spec, const core::Instance& instance,
    const trace::Trace* full_trace, std::uint64_t seed) const {
  validate(spec);
  const AlgorithmEntry& entry = at(spec.name);
  if (entry.needs_full_trace && full_trace == nullptr)
    throw SpecError("algorithm '" + spec.name +
                    "' is offline and requires the full trace");
  // Private copy so consumption tracking is per-build (and thread-safe when
  // one Spec fans out over parallel trials).
  ParamMap params = spec.params;
  params.reset_consumption();
  auto matcher = entry.build(instance, params, full_trace, seed);
  params.require_all_consumed("algorithm '" + spec.name + "'");
  return matcher;
}

net::Topology TopologyRegistry::make(const Spec& spec, std::size_t racks,
                                     Xoshiro256& rng) const {
  validate(spec);
  const TopologyEntry& entry = at(spec.name);
  ParamMap params = spec.params;
  params.reset_consumption();
  net::Topology topology = entry.build(racks, params, rng);
  params.require_all_consumed("topology '" + spec.name + "'");
  return topology;
}

trace::Trace WorkloadRegistry::make(const Spec& spec, std::size_t racks,
                                    std::size_t requests,
                                    Xoshiro256& rng) const {
  validate(spec);
  const WorkloadEntry& entry = at(spec.name);
  ParamMap params = spec.params;
  params.reset_consumption();
  trace::Trace trace = entry.build(racks, requests, params, rng);
  params.require_all_consumed("workload '" + spec.name + "'");
  return trace;
}

bool WorkloadRegistry::streamable(const std::string& name) const {
  const WorkloadEntry* entry = find(name);
  return entry != nullptr && entry->stream != nullptr;
}

std::unique_ptr<trace::TraceStream> WorkloadRegistry::make_stream(
    const Spec& spec, std::size_t racks, std::size_t requests,
    const Xoshiro256& rng) const {
  validate(spec);
  const WorkloadEntry& entry = at(spec.name);
  if (entry.stream == nullptr)
    throw SpecError("workload '" + spec.name +
                    "' has no streaming form (only materialized traces)");
  ParamMap params = spec.params;
  params.reset_consumption();
  std::unique_ptr<trace::TraceStream> stream =
      entry.stream(racks, requests, params, rng);
  params.require_all_consumed("workload '" + spec.name + "'");
  return stream;
}

std::unique_ptr<core::OnlineBMatcher> make_algorithm(
    const std::string& spec, const core::Instance& instance,
    const trace::Trace* full_trace, std::uint64_t seed) {
  return AlgorithmRegistry::instance().make(Spec::parse(spec), instance,
                                            full_trace, seed);
}

net::Topology make_topology(const std::string& spec, std::size_t racks,
                            Xoshiro256& rng) {
  return TopologyRegistry::instance().make(Spec::parse(spec), racks, rng);
}

trace::Trace make_workload(const std::string& spec, std::size_t racks,
                           std::size_t requests, Xoshiro256& rng) {
  return WorkloadRegistry::instance().make(Spec::parse(spec), racks, requests,
                                           rng);
}

std::vector<Spec> parse_algorithm_list(const std::string& text) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::instance();
  std::vector<Spec> out;
  std::string pending;  // current spec text, grown segment by segment
  auto flush = [&] {
    if (!pending.empty()) out.push_back(Spec::parse(pending));
    pending.clear();
  };
  for (const std::string& raw : rdcn::detail::split(text, ',')) {
    const std::string segment = rdcn::detail::trim(raw);
    if (segment.empty()) continue;
    const std::string head = segment.substr(0, segment.find(':'));
    if (pending.empty() || registry.find(head) != nullptr) {
      flush();
      pending = segment;
    } else {
      // Not an algorithm name: this segment is another parameter of the
      // spec under construction ("r_bma:engine=lru,eager").
      pending += pending.find(':') == std::string::npos ? ':' : ',';
      pending += segment;
    }
  }
  flush();
  return out;
}

namespace {

template <typename Reg>
void append_catalog(std::string& out, const std::string& heading,
                    const Reg& registry) {
  out += heading;
  out += "\n";
  for (const std::string& name : registry.names()) {
    const auto* entry = registry.find(name);
    out += "  " + name;
    out.append(name.size() < 18 ? 18 - name.size() : 1, ' ');
    out += entry->summary + "\n";
    for (const ParamDoc& p : entry->params) {
      out += "      " + p.key;
      if (!p.default_value.empty()) out += "=" + p.default_value;
      const std::size_t written = 6 + p.key.size() +
                                  (p.default_value.empty()
                                       ? 0
                                       : 1 + p.default_value.size());
      out.append(written < 30 ? 30 - written : 1, ' ');
      out += p.doc + "\n";
    }
  }
}

}  // namespace

std::string catalog_text() {
  std::string out;
  append_catalog(out, "algorithms (--algorithms=name[:k=v,...],...):",
                 AlgorithmRegistry::instance());
  out += "\n";
  append_catalog(out, "topologies (--topology=name[:k=v,...]):",
                 TopologyRegistry::instance());
  out += "\n";
  append_catalog(out, "workloads (--workload=name[:k=v,...]):",
                 WorkloadRegistry::instance());
  return out;
}

namespace detail {

AlgorithmRegistrar::AlgorithmRegistrar(const std::string& name,
                                       AlgorithmEntry entry) {
  AlgorithmRegistry::instance().add(name, std::move(entry));
}

TopologyRegistrar::TopologyRegistrar(const std::string& name,
                                     TopologyEntry entry) {
  TopologyRegistry::instance().add(name, std::move(entry));
}

WorkloadRegistrar::WorkloadRegistrar(const std::string& name,
                                     WorkloadEntry entry) {
  WorkloadRegistry::instance().add(name, std::move(entry));
}

}  // namespace detail

}  // namespace rdcn::scenario
