// Built-in topology entries wrapping the net::make_* builders.  The
// parameter-free auto-sizing (torus rows, hypercube dim, fat-tree k) mirrors
// what examples/rdcn_sim.cpp historically did, so existing command lines
// keep producing the same networks.
#include "net/topology.hpp"
#include "scenario/builtins.hpp"
#include "scenario/registry.hpp"

namespace rdcn::scenario {

namespace {

TopologyEntry simple(std::string summary,
                     net::Topology (*build)(std::size_t)) {
  TopologyEntry e;
  e.summary = std::move(summary);
  e.build = [build](std::size_t racks, const ParamMap&, Xoshiro256&) {
    return build(racks);
  };
  return e;
}

}  // namespace

void register_builtin_topologies(TopologyRegistry& registry) {
  {
    TopologyEntry e;
    e.summary = "k-ary fat-tree, racks = edge switches (the paper's default)";
    e.params = {{"k", "explicit arity (even); 0 = smallest k fitting racks",
                 "0"}};
    e.build = [](std::size_t racks, const ParamMap& params, Xoshiro256&) {
      const std::size_t k = params.get<std::size_t>("k", 0);
      return k == 0 ? net::make_fat_tree(racks) : net::make_fat_tree_k(k);
    };
    registry.add("fat_tree", std::move(e));
  }
  {
    TopologyEntry e;
    e.summary = "two-tier folded Clos: every rack wired to every spine";
    e.params = {{"spines", "number of spine switches", "8"}};
    e.build = [](std::size_t racks, const ParamMap& params, Xoshiro256&) {
      return net::make_leaf_spine(racks, params.get<std::size_t>("spines", 8));
    };
    registry.add("leaf_spine", std::move(e));
  }
  registry.add("star",
               simple("one hub, racks at the points (the §2.4 lower-bound "
                      "construction)",
                      net::make_star));
  registry.add("line", simple("path graph (worst-case diameter)",
                              net::make_line));
  registry.add("ring", simple("cycle over racks", net::make_ring));
  registry.add("complete",
               simple("complete graph (every distance 1: the uniform case "
                      "of §2)",
                      net::make_complete));
  {
    TopologyEntry e;
    e.summary = "2-D torus over rows x cols racks";
    e.params = {{"rows", "grid rows; 0 = auto from racks", "0"},
                {"cols", "grid cols; 0 = ceil(racks/rows)", "0"}};
    e.build = [](std::size_t racks, const ParamMap& params, Xoshiro256&) {
      std::size_t rows = params.get<std::size_t>("rows", 0);
      std::size_t cols = params.get<std::size_t>("cols", 0);
      if (rows == 0) {
        rows = 3;
        while ((rows + 1) * (rows + 1) <= racks) ++rows;
      }
      if (cols == 0) cols = (racks + rows - 1) / rows;
      return net::make_torus(rows, cols);
    };
    registry.add("torus", std::move(e));
  }
  {
    TopologyEntry e;
    e.summary = "hypercube with 2^dim racks";
    e.params = {{"dim", "dimension; 0 = largest with 2^dim <= racks", "0"}};
    e.build = [](std::size_t racks, const ParamMap& params, Xoshiro256&) {
      std::size_t dim = params.get<std::size_t>("dim", 0);
      if (dim == 0) {
        dim = 1;
        while ((std::size_t{1} << (dim + 1)) <= racks) ++dim;
      }
      return net::make_hypercube(dim);
    };
    registry.add("hypercube", std::move(e));
  }
  {
    TopologyEntry e;
    e.summary = "random d-regular expander (Jellyfish-style); consumes the "
                "scenario seed";
    e.params = {{"degree", "target vertex degree", "4"}};
    e.build = [](std::size_t racks, const ParamMap& params, Xoshiro256& rng) {
      return net::make_random_regular(racks,
                                      params.get<std::size_t>("degree", 4),
                                      rng);
    };
    registry.add("expander", std::move(e));
  }
}

}  // namespace rdcn::scenario
