// rdcn: every experiment as data — ScenarioSpec + the scenario runner.
//
// A ScenarioSpec names one cell (or a b-sweep column) of the paper's
// evaluation matrix: a topology spec, a workload spec, a list of algorithm
// specs, and the shared instance knobs {b values, a, α, trials, seed}.  It
// parses from and prints to a single line
//
//   topology=torus:rows=5,cols=10;workload=flow_pool:pairs=2000,skew=1.2;
//   algorithms=r_bma:engine=lru,bma;b=6,12;racks=50;requests=100000;...
//
// so a whole experiment travels through CLIs, config files, and test
// goldens as one string.  run_scenario() materializes the spec through the
// registries and drives sim::run_experiment (trial repetition + thread
// pool); run_matrix() crosses one base spec with lists of topologies and
// workloads — the §3.1 evaluation matrix in one call.
#pragma once

#include <string>
#include <vector>

#include "common/param_map.hpp"
#include "net/topology.hpp"
#include "scenario/registry.hpp"
#include "sim/experiment.hpp"
#include "trace/trace.hpp"

namespace rdcn::scenario {

struct ScenarioSpec {
  Spec topology{"fat_tree", {}};
  Spec workload{"facebook_db", {}};
  std::vector<Spec> algorithms;  ///< empty = {r_bma, bma, oblivious}
  std::vector<std::size_t> cache_sizes;  ///< b sweep; empty = {12}
  std::size_t racks = 100;
  std::size_t requests = 100'000;
  std::size_t a = 0;         ///< offline degree bound (0 = same as b)
  std::uint64_t alpha = 60;
  std::size_t trials = 5;    ///< repetitions for randomized algorithms
  std::size_t checkpoints = 8;
  std::uint64_t seed = 42;
  std::size_t threads = 0;   ///< 0 = hardware concurrency

  /// Parses the semicolon-separated "key=value;..." form (keys as in the
  /// field names above; "algorithms" uses parse_algorithm_list).  Unknown
  /// keys raise SpecError.
  static ScenarioSpec parse(const std::string& text);

  /// One-line form faithful to the spec as given (resolved defaults,
  /// component params in insertion order); parse(to_string()) round-trips.
  std::string to_string() const;

  /// The *canonical* form: like to_string(), but every component's params
  /// print in sorted order and execution-only fields (threads) are
  /// dropped, so any two specs describing the same experiment — params
  /// given in any order — produce the same string.  This is the identity
  /// the serving daemon's results cache keys on.  Field order, algorithm
  /// list order, and the b list stay as given (they determine result
  /// column order, hence are part of the experiment's identity).
  std::string canonical_string() const;

  /// Defaults applied (algorithms/cache_sizes filled when empty).
  ScenarioSpec resolved() const;
};

struct ScenarioResult {
  ScenarioSpec spec;  ///< resolved spec this result was produced from
  net::Topology topology;
  trace::Trace workload;
  /// One (trial-averaged) result per algorithm × b, in spec order;
  /// b-independent algorithms (oblivious) contribute a single entry.
  std::vector<sim::RunResult> runs;
};

/// Live-run hooks for the serving layer, mapped onto
/// sim::ExperimentConfig's cancellation/progress fields.  Default = none.
struct RunHooks {
  /// Fires cooperatively: running trials stop at their next serve-chunk
  /// boundary and run_scenario throws CancelledError.
  CancelToken cancel{};
  /// Called after every checkpoint of every (algorithm × b, trial) run
  /// with the run's display label — possibly from several pool workers at
  /// once (must be thread-safe).
  std::function<void(const std::string& label, std::uint64_t seed,
                     const sim::Checkpoint& checkpoint)>
      on_checkpoint{};
};

/// Builds topology and workload from the registries (seed-threaded), then
/// runs every algorithm × b through sim::run_experiment.
ScenarioResult run_scenario(const ScenarioSpec& spec);
ScenarioResult run_scenario(const ScenarioSpec& spec, const RunHooks& hooks);

/// Streaming variant: the workload is replayed through
/// WorkloadRegistry::make_stream at constant memory (one serve chunk per
/// worker) instead of being materialized — arbitrarily long traces fit.
/// Ledgers are identical to run_scenario for the same spec (stream twins
/// are bit-identical to their generators; pinned by scenario_test).
/// Offline comparators (need the full trace) and stream-less workloads
/// (csv) raise SpecError.  The result's `workload` member is an empty
/// placeholder Trace carrying only the stream's name and rack universe.
ScenarioResult run_scenario_streamed(const ScenarioSpec& spec);
ScenarioResult run_scenario_streamed(const ScenarioSpec& spec,
                                     const RunHooks& hooks);

/// The §3.1 matrix: `base` crossed with every topology × workload
/// combination, in row-major (topology-outer) order.  Empty lists reuse the
/// base spec's entry.  Cells are independent and run in parallel on the
/// persistent ThreadPool (`base.threads`; 0 = hardware concurrency); every
/// cell derives its topology/workload RNG and per-trial seeds from the
/// spec alone, so results are identical for any thread count.
std::vector<ScenarioResult> run_matrix(const ScenarioSpec& base,
                                       const std::vector<Spec>& topologies,
                                       const std::vector<Spec>& workloads);

}  // namespace rdcn::scenario
