// Built-in algorithm entries: the complete portfolio of the paper's
// evaluation (§3.1) plus the baselines grown around it.  Construction here
// must stay behaviour-identical to direct constructor calls with default
// options — bench/perf_gate.cpp pins this with 30 golden cost ledgers.
#include "core/bma.hpp"
#include "core/greedy_online.hpp"
#include "core/oblivious.hpp"
#include "core/offline_dynamic.hpp"
#include "core/r_bma.hpp"
#include "core/rotor.hpp"
#include "core/so_bma.hpp"
#include "paging/factory.hpp"
#include "scenario/builtins.hpp"
#include "scenario/registry.hpp"

namespace rdcn::scenario {

namespace {

/// "marking|lru|...": engine choices for docs, straight from the paging
/// layer so a new engine shows up here without edits.
std::string engine_choices() {
  std::string out;
  for (const std::string& name : paging::engine_names())
    out += (out.empty() ? "" : "|") + name;
  return out;
}

paging::EngineKind parse_engine_param(const ParamMap& params) {
  const std::string name = params.get<std::string>("engine", "marking");
  paging::EngineKind kind = paging::EngineKind::kMarking;
  // paging::parse_engine asserts on unknown names; a CLI typo must instead
  // surface as a catchable SpecError listing the valid choices.
  if (!paging::try_parse_engine(name, &kind))
    throw SpecError("parameter 'engine': unknown paging engine '" + name +
                    "'; known: " + engine_choices());
  return kind;
}

}  // namespace

void register_builtin_algorithms(AlgorithmRegistry& registry) {
  {
    AlgorithmEntry e;
    e.summary = "the paper's randomized algorithm (per-rack paging engines)";
    e.params = {{"engine", "per-rack paging engine: " + engine_choices(),
                 "marking"},
                {"eager", "eager (non-lazy) eviction from the matching",
                 "false"},
                {"trust",
                 "probability of following predictions (learning-augmented "
                 "mode only)",
                 "0.8"}};
    e.randomized = true;
    e.build = [](const core::Instance& instance, const ParamMap& params,
                 const trace::Trace*, std::uint64_t seed) {
      core::RBmaOptions options;
      options.engine = parse_engine_param(params);
      options.lazy_eviction = !params.get<bool>("eager", false);
      options.prediction_trust = params.get<double>("trust", 0.8);
      options.seed = seed;
      return std::make_unique<core::RBma>(instance, options);
    };
    registry.add("r_bma", std::move(e));
  }
  {
    AlgorithmEntry e;
    e.summary = "deterministic counter-based online baseline (BMA, §3.1)";
    e.build = [](const core::Instance& instance, const ParamMap&,
                 const trace::Trace*, std::uint64_t) {
      return std::make_unique<core::Bma>(instance);
    };
    registry.add("bma", std::move(e));
  }
  {
    AlgorithmEntry e;
    e.summary = "greedy online matching: installs hot pairs, never evicts";
    e.build = [](const core::Instance& instance, const ParamMap&,
                 const trace::Trace*, std::uint64_t) {
      return std::make_unique<core::GreedyOnline>(instance);
    };
    registry.add("greedy", std::move(e));
  }
  {
    AlgorithmEntry e;
    e.summary = "fixed network only (no reconfigurable links)";
    e.b_independent = true;
    e.build = [](const core::Instance& instance, const ParamMap&,
                 const trace::Trace*, std::uint64_t) {
      return std::make_unique<core::Oblivious>(instance);
    };
    registry.add("oblivious", std::move(e));
  }
  {
    AlgorithmEntry e;
    e.summary = "demand-oblivious rotor baseline (RotorNet-style schedule)";
    e.params = {{"slot", "requests served per rotor slot", "100"},
                {"staggered", "phase-offset the b rotor switches", "true"}};
    e.build = [](const core::Instance& instance, const ParamMap& params,
                 const trace::Trace*, std::uint64_t) {
      core::RotorOptions options;
      options.slot_length = params.get<std::size_t>("slot", 100);
      options.staggered = params.get<bool>("staggered", true);
      return std::make_unique<core::Rotor>(instance, options);
    };
    registry.add("rotor", std::move(e));
  }
  {
    AlgorithmEntry e;
    e.summary =
        "static offline comparator: one max-weight b-matching for the "
        "whole trace (§3)";
    e.params = {{"local_search", "refine the greedy matching with swaps",
                 "true"},
                {"passes", "local-search passes", "8"}};
    e.needs_full_trace = true;
    // Builds one global max-weight matching with local-search passes over
    // the full trace — far heavier per request than an online matcher.
    e.cost_weight = 4.0;
    e.build = [](const core::Instance& instance, const ParamMap& params,
                 const trace::Trace* full_trace, std::uint64_t) {
      core::SoBmaOptions options;
      options.local_search = params.get<bool>("local_search", true);
      options.local_search_passes = params.get<int>("passes", 8);
      return std::make_unique<core::SoBma>(instance, *full_trace, options);
    };
    registry.add("so_bma", std::move(e));
  }
  {
    AlgorithmEntry e;
    e.summary =
        "epoch-based dynamic offline comparator (per-window heavy "
        "b-matchings)";
    e.params = {{"window", "requests per epoch", "10000"},
                {"retention",
                 "weight bonus (fraction of alpha) for edges kept across "
                 "windows",
                 "1.0"},
                {"local_search", "refine each window's matching", "true"}};
    e.needs_full_trace = true;
    // Per-window heavy matchings: the costliest entry in the portfolio.
    e.cost_weight = 8.0;
    e.build = [](const core::Instance& instance, const ParamMap& params,
                 const trace::Trace* full_trace, std::uint64_t) {
      core::OfflineDynamicOptions options;
      options.window = params.get<std::size_t>("window", 10'000);
      options.retention_bonus = params.get<double>("retention", 1.0);
      options.local_search = params.get<bool>("local_search", true);
      return std::make_unique<core::OfflineDynamic>(instance, *full_trace,
                                                    options);
    };
    registry.add("offline_dynamic", std::move(e));
  }
}

}  // namespace rdcn::scenario
