// rdcn: internal wiring between the registries and their built-in entries.
//
// The built-in components live in builtin_{algorithms,topologies,workloads}
// .cpp and are registered explicitly on first registry access (deterministic
// and immune to static-library dead-stripping, unlike relying on the
// self-registration macros from within this library).  External code should
// use the RDCN_REGISTER_* macros from registry.hpp instead.
#pragma once

namespace rdcn::scenario {

class AlgorithmRegistry;
class TopologyRegistry;
class WorkloadRegistry;

void register_builtin_algorithms(AlgorithmRegistry& registry);
void register_builtin_topologies(TopologyRegistry& registry);
void register_builtin_workloads(WorkloadRegistry& registry);

}  // namespace rdcn::scenario
