// Built-in workload entries wrapping the trace::generate_* primitives, the
// Facebook/Microsoft cluster profiles, and CSV trace import.  Every builder
// threads the scenario RNG through, so a fixed seed reproduces the trace
// bit-for-bit.  Generators with a stream_* twin also register it (the
// `stream` half of the entry), so `rdcn_sim --stream` and the stream-fed
// simulator overload replay the identical request sequence at constant
// memory.
#include <fstream>

#include "scenario/builtins.hpp"
#include "scenario/registry.hpp"
#include "trace/facebook_like.hpp"
#include "trace/generators.hpp"
#include "trace/microsoft_like.hpp"
#include "trace/trace_io.hpp"

namespace rdcn::scenario {

namespace {

WorkloadEntry facebook(std::string summary, trace::FacebookCluster cluster) {
  WorkloadEntry e;
  e.summary = std::move(summary);
  e.build = [cluster](std::size_t racks, std::size_t requests,
                      const ParamMap&, Xoshiro256& rng) {
    return trace::generate_facebook_like(cluster, racks, requests, rng);
  };
  e.stream = [cluster](std::size_t racks, std::size_t requests,
                       const ParamMap&, const Xoshiro256& rng) {
    return trace::stream_facebook_like(cluster, racks, requests, rng);
  };
  return e;
}

/// Shared by the flow_pool build and stream halves so the two can never
/// drift apart on parameter names or defaults.
trace::FlowPoolParams parse_flow_pool(const ParamMap& params) {
  trace::FlowPoolParams p;
  p.candidate_pairs = params.get<std::size_t>("pairs", 1000);
  p.zipf_skew = params.get<double>("skew", 1.0);
  p.mean_burst_length = params.get<double>("burst", 20.0);
  p.max_active_flows = params.get<std::size_t>("active", 50);
  p.new_flow_prob = params.get<double>("arrival", 0.05);
  p.drift_period = params.get<std::size_t>("drift", 0);
  p.drift_fraction = params.get<double>("drift_fraction", 0.1);
  p.hub_fraction = params.get<double>("hub_fraction", 0.0);
  p.hub_bias = params.get<double>("hub_bias", 0.8);
  p.noise_fraction = params.get<double>("noise", 0.0);
  return p;
}

trace::MicrosoftParams parse_microsoft(const ParamMap& params) {
  trace::MicrosoftParams p;
  p.rack_skew = params.get<double>("rack_skew", 1.2);
  p.num_elephants = params.get<std::size_t>("elephants", 25);
  p.elephant_boost = params.get<double>("boost", 30.0);
  return p;
}

}  // namespace

void register_builtin_workloads(WorkloadRegistry& registry) {
  {
    WorkloadEntry e;
    e.summary = "uniform i.i.d. pairs — no structure at all";
    e.build = [](std::size_t racks, std::size_t requests, const ParamMap&,
                 Xoshiro256& rng) {
      return trace::generate_uniform(racks, requests, rng);
    };
    e.stream = [](std::size_t racks, std::size_t requests, const ParamMap&,
                  const Xoshiro256& rng) {
      return trace::stream_uniform(racks, requests, rng);
    };
    registry.add("uniform", std::move(e));
  }
  {
    WorkloadEntry e;
    e.summary = "Zipf-skewed i.i.d. pairs (pure spatial skew)";
    e.params = {{"skew", "Zipf exponent s", "1.0"}};
    e.build = [](std::size_t racks, std::size_t requests,
                 const ParamMap& params, Xoshiro256& rng) {
      return trace::generate_zipf_pairs(racks, requests,
                                        params.get<double>("skew", 1.0), rng);
    };
    e.stream = [](std::size_t racks, std::size_t requests,
                  const ParamMap& params, const Xoshiro256& rng) {
      return trace::stream_zipf_pairs(racks, requests,
                                      params.get<double>("skew", 1.0), rng);
    };
    registry.add("zipf", std::move(e));
  }
  {
    WorkloadEntry e;
    e.summary = "a few hot racks receive most traffic (incast/outcast)";
    e.params = {{"hot_fraction", "fraction of racks that are hot", "0.1"},
                {"hot_share", "share of traffic hitting hot racks", "0.8"}};
    e.build = [](std::size_t racks, std::size_t requests,
                 const ParamMap& params, Xoshiro256& rng) {
      return trace::generate_hotspot(racks, requests,
                                     params.get<double>("hot_fraction", 0.1),
                                     params.get<double>("hot_share", 0.8),
                                     rng);
    };
    e.stream = [](std::size_t racks, std::size_t requests,
                  const ParamMap& params, const Xoshiro256& rng) {
      return trace::stream_hotspot(racks, requests,
                                   params.get<double>("hot_fraction", 0.1),
                                   params.get<double>("hot_share", 0.8), rng);
    };
    registry.add("hotspot", std::move(e));
  }
  {
    WorkloadEntry e;
    e.summary = "fixed permutation traffic (one matching covers everything)";
    e.build = [](std::size_t racks, std::size_t requests, const ParamMap&,
                 Xoshiro256& rng) {
      return trace::generate_permutation(racks, requests, rng);
    };
    e.stream = [](std::size_t racks, std::size_t requests, const ParamMap&,
                  const Xoshiro256& rng) {
      return trace::stream_permutation(racks, requests, rng);
    };
    registry.add("permutation", std::move(e));
  }
  {
    WorkloadEntry e;
    e.summary = "flow pool: spatial skew + bursts + optional working-set "
                "drift (the model behind the Facebook profiles)";
    e.params = {{"pairs", "size of the popular-pair universe", "1000"},
                {"skew", "Zipf skew over candidate pairs", "1.0"},
                {"burst", "mean flow burst length", "20"},
                {"active", "max concurrently active flows", "50"},
                {"arrival", "new-flow probability per step", "0.05"},
                {"drift", "requests between working-set drifts; 0 = none",
                 "0"},
                {"drift_fraction", "candidate fraction replaced per drift",
                 "0.1"},
                {"hub_fraction", "fraction of racks designated hot; 0 = off",
                 "0"},
                {"hub_bias", "per-endpoint probability of a hot rack", "0.8"},
                {"noise", "fraction of uniform background requests", "0"}};
    e.build = [](std::size_t racks, std::size_t requests,
                 const ParamMap& params, Xoshiro256& rng) {
      return trace::generate_flow_pool(racks, requests,
                                       parse_flow_pool(params), rng);
    };
    e.stream = [](std::size_t racks, std::size_t requests,
                  const ParamMap& params, const Xoshiro256& rng) {
      return trace::stream_flow_pool(racks, requests, parse_flow_pool(params),
                                     rng);
    };
    registry.add("flow_pool", std::move(e));
  }
  {
    WorkloadEntry e;
    e.summary = "elephant flows over uniform mice (Hadoop-style shuffle)";
    e.params = {{"elephants", "number of heavy pairs", "16"},
                {"share", "traffic share carried by elephants", "0.7"},
                {"run", "mean elephant run length", "40"}};
    e.build = [](std::size_t racks, std::size_t requests,
                 const ParamMap& params, Xoshiro256& rng) {
      return trace::generate_elephant_mice(
          racks, requests, params.get<std::size_t>("elephants", 16),
          params.get<double>("share", 0.7), params.get<double>("run", 40.0),
          rng);
    };
    e.stream = [](std::size_t racks, std::size_t requests,
                  const ParamMap& params, const Xoshiro256& rng) {
      return trace::stream_elephant_mice(
          racks, requests, params.get<std::size_t>("elephants", 16),
          params.get<double>("share", 0.7), params.get<double>("run", 40.0),
          rng);
    };
    registry.add("elephant_mice", std::move(e));
  }
  {
    WorkloadEntry e;
    e.summary = "adversarial round-robin over k+1 hub pairs (the Lemma 1 "
                "lower-bound shape; worst case for any online b <= k)";
    e.params = {{"k", "number of competing hub pairs minus one", "8"}};
    e.build = [](std::size_t racks, std::size_t requests,
                 const ParamMap& params, Xoshiro256&) {
      return trace::generate_round_robin_star(
          racks, requests, params.get<std::size_t>("k", 8));
    };
    e.stream = [](std::size_t racks, std::size_t requests,
                  const ParamMap& params, const Xoshiro256&) {
      return trace::stream_round_robin_star(
          racks, requests, params.get<std::size_t>("k", 8));
    };
    WorkloadEntry alias = e;
    alias.summary = "alias of round_robin_star (the pre-registry CLI name)";
    registry.add("round_robin_star", std::move(e));
    registry.add("round_robin", std::move(alias));
  }
  registry.add("facebook_db",
               facebook("Facebook database cluster profile: strong skew, "
                        "long bursts",
                        trace::FacebookCluster::kDatabase));
  registry.add("facebook_web",
               facebook("Facebook web-service cluster profile: mild skew, "
                        "wide working set",
                        trace::FacebookCluster::kWebService));
  registry.add("facebook_hadoop",
               facebook("Facebook Hadoop cluster profile: elephants, "
                        "bursts, drift",
                        trace::FacebookCluster::kHadoop));
  {
    WorkloadEntry e;
    e.summary = "Microsoft/ProjecToR-like i.i.d. samples from a skewed "
                "traffic matrix";
    e.params = {{"rack_skew", "power-law exponent of rack activity", "1.2"},
                {"elephants", "extra super-hot matrix entries", "25"},
                {"boost", "weight multiplier for elephant entries", "30"}};
    e.build = [](std::size_t racks, std::size_t requests,
                 const ParamMap& params, Xoshiro256& rng) {
      return trace::generate_microsoft_like(racks, requests,
                                            parse_microsoft(params), rng);
    };
    e.stream = [](std::size_t racks, std::size_t requests,
                  const ParamMap& params, const Xoshiro256& rng) {
      return trace::stream_microsoft_like(racks, requests,
                                          parse_microsoft(params), rng);
    };
    registry.add("microsoft", std::move(e));
  }
  {
    WorkloadEntry e;
    e.summary = "import a CSV trace (one 'src,dst' per line; '# racks=N' "
                "header optional)";
    e.params = {{"path", "CSV file to read", ""},
                {"limit", "truncate to the first N requests; 0 = all", "0"}};
    // No stream half: a CSV import is materialized by nature (make_stream
    // reports "no streaming form" for it).
    e.build = [](std::size_t, std::size_t, const ParamMap& params,
                 Xoshiro256&) {
      const std::string path = params.get<std::string>("path");
      // read_csv_file asserts (aborts) on unreadable files; spec-string
      // entry points must throw SpecError so drivers can report and exit.
      if (!std::ifstream(path).good())
        throw SpecError("workload 'csv': cannot open '" + path + "'");
      trace::Trace t = trace::read_csv_file(path);
      const std::size_t limit = params.get<std::size_t>("limit", 0);
      return limit != 0 && limit < t.size() ? t.prefix(limit) : t;
    };
    registry.add("csv", std::move(e));
  }
}

}  // namespace rdcn::scenario
