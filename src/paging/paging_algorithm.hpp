// rdcn: the paging (caching) substrate.
//
// Theorem 2 of the paper reduces the uniform (b,a)-matching problem to
// (b,a)-paging: R-BMA runs one paging algorithm per rack, with cache
// capacity b, over the node pairs incident to that rack.  This module
// provides the abstract interface plus the classic algorithms:
//
//   Marking        randomized marking (Fiat et al.); against an offline
//                  optimum with cache a <= b its expected fault rate is
//                  within 2·ln(b/(b-a+1)) + O(1) of optimal (Young '91) —
//                  the engine that gives R-BMA its O(log b) guarantee.
//   LRU, FIFO,     deterministic classics (b-competitive), used as
//   CLOCK          ablation engines inside R-BMA.
//   RandomEviction memoryless randomized baseline.
//   FlushWhenFull  the textbook worst-reasonable baseline.
//   Belady         offline optimal (farthest-in-future), needs the full
//                  sequence up front; used for ground truth in tests and
//                  for the SO-style comparisons.
//
// Cost model: non-bypassing page model — a requested key is always fetched;
// a fault costs 1, eviction is free.  (The matching layer accounts its own
// α-costs; see core/r_bma.cpp for how the two models are glued, mirroring
// the remarks after Theorem 2.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_hash.hpp"

namespace rdcn::paging {

using Key = std::uint64_t;

/// Abstract non-bypassing paging algorithm with capacity `capacity()`.
class PagingAlgorithm {
 public:
  explicit PagingAlgorithm(std::size_t capacity) : capacity_(capacity) {
    RDCN_ASSERT_MSG(capacity >= 1, "paging cache must hold at least 1 key");
  }
  virtual ~PagingAlgorithm() = default;

  PagingAlgorithm(const PagingAlgorithm&) = delete;
  PagingAlgorithm& operator=(const PagingAlgorithm&) = delete;

  /// Serves a request: `key` is in the cache afterwards.  Keys evicted to
  /// make room are appended to `evicted` (at most one for the classic
  /// algorithms).  Returns true on a fault (key was absent).
  bool request(Key key, std::vector<Key>& evicted) {
    const bool fault = !cache_.contains(key);
    if (fault) {
      ++faults_;
      on_fault(key, evicted);
      cache_.insert(key);
      RDCN_ASSERT_MSG(cache_.size() <= capacity_,
                      "paging algorithm exceeded its capacity");
    } else {
      ++hits_;
      on_hit(key);
    }
    return fault;
  }

  bool contains(Key key) const noexcept { return cache_.contains(key); }
  std::size_t size() const noexcept { return cache_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  std::uint64_t faults() const noexcept { return faults_; }
  std::uint64_t hits() const noexcept { return hits_; }

  /// Snapshot of cached keys (test/diagnostic use; order unspecified).
  std::vector<Key> cached_keys() const {
    std::vector<Key> keys;
    keys.reserve(cache_.size());
    cache_.for_each([&](Key k) { keys.push_back(k); });
    return keys;
  }

  virtual void reset() {
    cache_.clear();
    faults_ = 0;
    hits_ = 0;
  }

  virtual std::string name() const = 0;

 protected:
  /// Called on a fault before `key` is inserted.  Must evict (via
  /// evict_from_cache) until size() < capacity().
  virtual void on_fault(Key key, std::vector<Key>& evicted) = 0;

  /// Called on a hit.
  virtual void on_hit(Key /*key*/) {}

  /// Removes `key` from the membership set and records it in `evicted`.
  void evict_from_cache(Key key, std::vector<Key>& evicted) {
    const bool was = cache_.erase(key);
    RDCN_ASSERT_MSG(was, "evicting a key that is not cached");
    evicted.push_back(key);
  }

  bool cache_full() const noexcept { return cache_.size() >= capacity_; }

 private:
  FlatSet cache_;
  std::size_t capacity_;
  std::uint64_t faults_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace rdcn::paging
