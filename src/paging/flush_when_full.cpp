#include "paging/flush_when_full.hpp"

namespace rdcn::paging {
// Header-only implementation; TU anchors the vtable.
}  // namespace rdcn::paging
