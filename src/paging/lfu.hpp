// rdcn: LFU (least-frequently-used) paging.
//
// Evicts the cached key with the fewest accesses since it entered the
// cache (ties: least recently used).  Not competitive in the worst case
// (frequency counts can be poisoned by history), but a strong heuristic on
// heavy-tailed traffic and therefore an interesting R-BMA engine ablation:
// it approximates "keep the elephants matched".
//
// Implementation: O(1) amortized via frequency buckets (the classic
// constant-time LFU structure): buckets are a doubly-linked list of
// frequencies, each holding an LRU-ordered list of keys.
#pragma once

#include <list>

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class Lfu final : public PagingAlgorithm {
 public:
  explicit Lfu(std::size_t capacity) : PagingAlgorithm(capacity) {}

  std::string name() const override { return "lfu"; }

  void reset() override {
    PagingAlgorithm::reset();
    buckets_.clear();
    where_.clear();
  }

  /// Test hook: current access count of a cached key (0 if absent).
  std::uint64_t frequency(Key key) const {
    const Locator* loc = where_.find(key);
    return loc != nullptr ? loc->bucket->frequency : 0;
  }

 protected:
  void on_hit(Key key) override { bump(key); }

  void on_fault(Key key, std::vector<Key>& evicted) override {
    if (cache_full()) {
      // Evict from the lowest-frequency bucket, LRU within the bucket.
      RDCN_DCHECK(!buckets_.empty());
      Bucket& lowest = buckets_.front();
      const Key victim = lowest.keys.back();
      lowest.keys.pop_back();
      where_.erase(victim);
      if (lowest.keys.empty()) buckets_.pop_front();
      evict_from_cache(victim, evicted);
    }
    // Insert at frequency 1.
    if (buckets_.empty() || buckets_.front().frequency != 1) {
      buckets_.push_front(Bucket{1, {}});
    }
    buckets_.front().keys.push_front(key);
    where_[key] = Locator{buckets_.begin(), buckets_.front().keys.begin()};
  }

 private:
  struct Bucket {
    std::uint64_t frequency;
    std::list<Key> keys;  // MRU at front
  };
  using BucketIt = std::list<Bucket>::iterator;

  struct Locator {
    BucketIt bucket;
    std::list<Key>::iterator pos;
  };

  void bump(Key key) {
    Locator* loc = where_.find(key);
    RDCN_DCHECK(loc != nullptr);
    const BucketIt cur = loc->bucket;
    const std::uint64_t next_freq = cur->frequency + 1;
    BucketIt nxt = std::next(cur);
    if (nxt == buckets_.end() || nxt->frequency != next_freq) {
      nxt = buckets_.insert(nxt, Bucket{next_freq, {}});
    }
    nxt->keys.splice(nxt->keys.begin(), cur->keys, loc->pos);
    loc->bucket = nxt;
    loc->pos = nxt->keys.begin();
    if (cur->keys.empty()) buckets_.erase(cur);
  }

  std::list<Bucket> buckets_;   // ascending frequency order
  FlatMap<Locator> where_;
};

}  // namespace rdcn::paging
