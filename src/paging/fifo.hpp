// rdcn: first-in-first-out paging (deterministic, b-competitive).
#pragma once

#include <deque>

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class Fifo final : public PagingAlgorithm {
 public:
  explicit Fifo(std::size_t capacity) : PagingAlgorithm(capacity) {}

  std::string name() const override { return "fifo"; }

  void reset() override {
    PagingAlgorithm::reset();
    queue_.clear();
  }

 protected:
  void on_fault(Key key, std::vector<Key>& evicted) override {
    if (cache_full()) {
      RDCN_DCHECK(!queue_.empty());
      evict_from_cache(queue_.front(), evicted);
      queue_.pop_front();
    }
    queue_.push_back(key);
  }

 private:
  std::deque<Key> queue_;
};

}  // namespace rdcn::paging
