// rdcn: Belady's MIN — the offline-optimal paging algorithm (evict the
// cached key whose next use lies farthest in the future).  Optimal for
// non-bypassing paging with unit fault cost, so it provides the OPT side of
// every empirical competitive-ratio measurement in the tests and benches.
//
// Belady must see the whole request sequence up front; request() calls must
// then replay exactly that sequence.
#pragma once

#include <queue>

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class Belady final : public PagingAlgorithm {
 public:
  Belady(std::size_t capacity, std::vector<Key> sequence);

  std::string name() const override { return "belady"; }

  void reset() override;

  /// Convenience: runs the whole sequence and returns the fault count.
  static std::uint64_t optimal_faults(std::size_t capacity,
                                      const std::vector<Key>& sequence);

 protected:
  void on_hit(Key key) override;
  void on_fault(Key key, std::vector<Key>& evicted) override;

 private:
  void advance(Key key);

  static constexpr std::size_t kNever = ~std::size_t{0};

  std::vector<Key> seq_;
  // next_use_[i] = index of the next occurrence of seq_[i] after i (kNever
  // if none).
  std::vector<std::size_t> next_use_;
  std::size_t cursor_ = 0;
  // Max-heap of (next-use index, key); lazily invalidated entries are
  // skipped on pop by checking against current_next_.
  std::priority_queue<std::pair<std::size_t, Key>> heap_;
  FlatMap<std::size_t> current_next_;  // cached key -> its true next use
};

}  // namespace rdcn::paging
