// rdcn: prediction-augmented marking — learning-augmented paging in the
// style the paper's §5 calls for.
//
// Identical phase structure to randomized marking, but the eviction choice
// among unmarked keys consults a demand scorer:
//
//   * with probability `trust`, evict the unmarked key with the LOWEST
//     predicted near-future demand (follow the advice),
//   * otherwise evict uniformly at random (classic marking).
//
// Consistency: with a perfect scorer and trust -> 1 the evictions approach
// Belady-within-phase.  Robustness: every eviction is uniform-random with
// probability (1-trust), so the expected fault count is within a
// 1/(1-trust) factor of plain marking's 2·H_b guarantee regardless of
// prediction quality — worst-case guarantees are retained, as the paper
// demands.
//
// The scorer is an injected std::function so this layer stays independent
// of where predictions come from (core/predictor.hpp supplies EWMA /
// oracle / noisy-oracle implementations).
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class PredictiveMarking final : public PagingAlgorithm {
 public:
  using Scorer = std::function<double(Key)>;

  PredictiveMarking(std::size_t capacity, Xoshiro256 rng, Scorer scorer,
                    double trust)
      : PagingAlgorithm(capacity),
        rng_(rng),
        scorer_(std::move(scorer)),
        trust_(trust) {
    RDCN_ASSERT_MSG(trust >= 0.0 && trust <= 1.0,
                    "trust must be a probability");
    RDCN_ASSERT_MSG(scorer_ != nullptr, "scorer required");
    unmarked_.reserve(capacity);
  }

  std::string name() const override { return "predictive_marking"; }

  void reset() override {
    PagingAlgorithm::reset();
    unmarked_.clear();
    pos_.clear();
    phases_ = 0;
    advised_evictions_ = 0;
    random_evictions_ = 0;
  }

  std::uint64_t phases() const noexcept { return phases_; }
  std::uint64_t advised_evictions() const noexcept {
    return advised_evictions_;
  }
  std::uint64_t random_evictions() const noexcept {
    return random_evictions_;
  }

 protected:
  void on_hit(Key key) override { mark(key); }

  void on_fault(Key /*key*/, std::vector<Key>& evicted) override {
    if (cache_full()) {
      if (unmarked_.empty()) {
        ++phases_;
        for (Key k : cached_keys()) {
          pos_[k] = unmarked_.size();
          unmarked_.push_back(k);
        }
      }
      std::size_t victim_index;
      if (rng_.next_bool(trust_)) {
        // Follow the advice: evict the coldest unmarked key.
        ++advised_evictions_;
        victim_index = 0;
        double coldest = scorer_(unmarked_[0]);
        for (std::size_t i = 1; i < unmarked_.size(); ++i) {
          const double s = scorer_(unmarked_[i]);
          if (s < coldest) {
            coldest = s;
            victim_index = i;
          }
        }
      } else {
        // Hedge: classic uniform-random marking eviction.
        ++random_evictions_;
        victim_index = rng_.next_below(unmarked_.size());
      }
      const Key victim = unmarked_[victim_index];
      remove_unmarked_at(victim_index);
      evict_from_cache(victim, evicted);
    }
  }

 private:
  void mark(Key key) {
    const std::size_t* p = pos_.find(key);
    if (p != nullptr) remove_unmarked_at(*p);
  }

  void remove_unmarked_at(std::size_t i) {
    const Key victim = unmarked_[i];
    const Key last = unmarked_.back();
    unmarked_[i] = last;
    unmarked_.pop_back();
    if (last != victim) pos_[last] = i;
    pos_.erase(victim);
  }

  Xoshiro256 rng_;
  Scorer scorer_;
  double trust_;
  std::vector<Key> unmarked_;
  FlatMap<std::size_t> pos_;
  std::uint64_t phases_ = 0;
  std::uint64_t advised_evictions_ = 0;
  std::uint64_t random_evictions_ = 0;
};

}  // namespace rdcn::paging
