// rdcn: exact offline paging optima.
//
// * `optimal_faults` — Belady (provably optimal, any scale).
// * `brute_force_faults` — exponential DP over cache states, feasible only
//   for tiny universes; exists purely to cross-validate Belady in tests.
// * `optimal_faults_bypassing` — DP for the *bypassing* variant used by the
//   lower-bound construction (Lemma 1 / Epstein et al. remark): the
//   algorithm may serve a request without fetching, paying 1, or fetch,
//   paying 1; cost is fetches + bypassed faults.  For unit costs this
//   equals the non-bypassing optimum, but we keep the DP as executable
//   documentation of the equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

/// Optimal fault count for non-bypassing paging with cache `capacity`.
std::uint64_t optimal_faults(std::size_t capacity,
                             const std::vector<Key>& sequence);

/// Exhaustive optimum; requires the universe of distinct keys to be tiny
/// (asserts #distinct <= 12 and capacity <= 4).
std::uint64_t brute_force_faults(std::size_t capacity,
                                 const std::vector<Key>& sequence);

/// Exhaustive optimum for paging *with bypassing* (serving a request
/// without fetching costs 1; fetching costs 1 and inserts).  Same size
/// limits as brute_force_faults.
std::uint64_t optimal_faults_bypassing(std::size_t capacity,
                                       const std::vector<Key>& sequence);

}  // namespace rdcn::paging
