#include "paging/arc.hpp"

namespace rdcn::paging {
// Header-only implementation; TU anchors the vtable.
}  // namespace rdcn::paging
