// rdcn: adversarial request generators for the lower-bound experiments
// (§2.4 of the paper).
//
// * CruelAdversary — for deterministic algorithms: always requests a key
//   from a (b+1)-element universe that is NOT currently cached, forcing a
//   fault on every request.  OPT faults only ~1/b of the time, which is the
//   classic Θ(b) deterministic lower bound; lifted to b-matching via the
//   star graph (Lemma 1) this separates BMA from R-BMA.
// * UniformAdversary — oblivious random adversary over b+1 keys; against
//   it every lazy algorithm faults with probability ≈ 1/(b+1) per request
//   while randomized marking tracks OPT within O(log b) (coupon-collector
//   phase structure).  Used to exhibit the Ω(log b) randomized bound.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

/// Generates the next adversarial key for a deterministic algorithm whose
/// cache contents are observable.
class CruelAdversary {
 public:
  /// Universe is {0, ..., universe_size-1}; requires universe > capacity.
  explicit CruelAdversary(std::size_t universe_size)
      : universe_(universe_size) {
    RDCN_ASSERT(universe_size >= 2);
  }

  /// Returns a key not cached by `alg` (scans the small universe).
  Key next(const PagingAlgorithm& alg) const {
    for (Key k = 0; k < universe_; ++k)
      if (!alg.contains(k)) return k;
    RDCN_ASSERT_MSG(false, "adversary universe must exceed cache capacity");
    return 0;
  }

  /// Drives `alg` for `steps` requests; returns the generated sequence.
  std::vector<Key> drive(PagingAlgorithm& alg, std::size_t steps) const;

 private:
  std::size_t universe_;
};

/// Oblivious uniform adversary over {0, ..., universe_size-1}.
class UniformAdversary {
 public:
  UniformAdversary(std::size_t universe_size, Xoshiro256 rng)
      : universe_(universe_size), rng_(rng) {
    RDCN_ASSERT(universe_size >= 2);
  }

  Key next() { return rng_.next_below(universe_); }

  std::vector<Key> sequence(std::size_t steps);

 private:
  std::size_t universe_;
  Xoshiro256 rng_;
};

}  // namespace rdcn::paging
