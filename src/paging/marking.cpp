// Marking is header-only (hot path must inline); this TU anchors the vtable.
#include "paging/marking.hpp"

namespace rdcn::paging {
// Intentionally empty.
}  // namespace rdcn::paging
