#include "paging/offline_opt.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/assert.hpp"
#include "common/flat_hash.hpp"
#include "paging/belady.hpp"

namespace rdcn::paging {

std::uint64_t optimal_faults(std::size_t capacity,
                             const std::vector<Key>& sequence) {
  return Belady::optimal_faults(capacity, sequence);
}

namespace {

/// Remaps arbitrary 64-bit keys onto 0..m-1 and asserts the instance is
/// small enough for the exponential DPs.
std::vector<std::uint32_t> compress_keys(const std::vector<Key>& sequence,
                                         std::size_t capacity,
                                         std::size_t* out_m) {
  FlatMap<std::uint32_t> id;
  std::vector<std::uint32_t> compact;
  compact.reserve(sequence.size());
  for (Key k : sequence) {
    std::uint32_t* v = id.find(k);
    if (v == nullptr) {
      const auto fresh = static_cast<std::uint32_t>(id.size());
      id[k] = fresh;
      compact.push_back(fresh);
    } else {
      compact.push_back(*v);
    }
  }
  *out_m = id.size();
  RDCN_ASSERT_MSG(*out_m <= 12, "brute-force paging DP: universe too large");
  RDCN_ASSERT_MSG(capacity <= 4, "brute-force paging DP: capacity too large");
  return compact;
}

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

}  // namespace

std::uint64_t brute_force_faults(std::size_t capacity,
                                 const std::vector<Key>& sequence) {
  std::size_t m = 0;
  const std::vector<std::uint32_t> seq = compress_keys(sequence, capacity, &m);
  if (seq.empty()) return 0;
  if (m <= capacity) {
    // Everything fits: each distinct key faults exactly once.
    return m;
  }
  const std::size_t num_states = std::size_t{1} << m;
  std::vector<std::uint32_t> cost(num_states, kInf), next(num_states, kInf);
  cost[0] = 0;
  for (std::uint32_t k : seq) {
    std::fill(next.begin(), next.end(), kInf);
    const std::uint32_t bit = std::uint32_t{1} << k;
    for (std::size_t s = 0; s < num_states; ++s) {
      if (cost[s] == kInf) continue;
      if (s & bit) {
        next[s] = std::min(next[s], cost[s]);  // hit
        continue;
      }
      const std::uint32_t c = cost[s] + 1;  // fault
      if (std::popcount(s) < static_cast<int>(capacity)) {
        next[s | bit] = std::min(next[s | bit], c);
      } else {
        for (std::size_t t = s; t != 0; t &= t - 1) {
          const std::size_t evict = t & (~t + 1);  // lowest set bit
          const std::size_t ns = (s & ~evict) | bit;
          next[ns] = std::min(next[ns], c);
        }
      }
    }
    cost.swap(next);
  }
  const std::uint32_t best = *std::min_element(cost.begin(), cost.end());
  RDCN_ASSERT(best != kInf);
  return best;
}

std::uint64_t optimal_faults_bypassing(std::size_t capacity,
                                       const std::vector<Key>& sequence) {
  std::size_t m = 0;
  const std::vector<std::uint32_t> seq = compress_keys(sequence, capacity, &m);
  if (seq.empty()) return 0;
  const std::size_t num_states = std::size_t{1} << m;
  std::vector<std::uint32_t> cost(num_states, kInf), next(num_states, kInf);
  cost[0] = 0;
  for (std::uint32_t k : seq) {
    std::fill(next.begin(), next.end(), kInf);
    const std::uint32_t bit = std::uint32_t{1} << k;
    for (std::size_t s = 0; s < num_states; ++s) {
      if (cost[s] == kInf) continue;
      if (s & bit) {
        next[s] = std::min(next[s], cost[s]);  // cached: free
        continue;
      }
      const std::uint32_t c = cost[s] + 1;
      // Option 1: bypass — serve without fetching.
      next[s] = std::min(next[s], c);
      // Option 2: fetch.
      if (std::popcount(s) < static_cast<int>(capacity)) {
        next[s | bit] = std::min(next[s | bit], c);
      } else {
        for (std::size_t t = s; t != 0; t &= t - 1) {
          const std::size_t evict = t & (~t + 1);
          const std::size_t ns = (s & ~evict) | bit;
          next[ns] = std::min(next[ns], c);
        }
      }
    }
    cost.swap(next);
  }
  const std::uint32_t best = *std::min_element(cost.begin(), cost.end());
  RDCN_ASSERT(best != kInf);
  return best;
}

}  // namespace rdcn::paging
