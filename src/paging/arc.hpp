// rdcn: ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).
//
// Balances recency (list T1: seen once) against frequency (list T2: seen
// at least twice) with ghost lists B1/B2 remembering recently evicted keys;
// a hit in a ghost list shifts the adaptation target p toward the list
// that would have kept the key.  Self-tuning between LRU-like and LFU-like
// behaviour, which makes it a natural "best deterministic heuristic"
// engine for the R-BMA ablation on mixed traffic.
#pragma once

#include <list>

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class Arc final : public PagingAlgorithm {
 public:
  explicit Arc(std::size_t capacity) : PagingAlgorithm(capacity) {}

  std::string name() const override { return "arc"; }

  void reset() override {
    PagingAlgorithm::reset();
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    where_.clear();
    p_ = 0;
  }

  /// Test hooks.
  std::size_t recency_list_size() const noexcept { return t1_.size(); }
  std::size_t frequency_list_size() const noexcept { return t2_.size(); }
  std::size_t adaptation_target() const noexcept { return p_; }

 protected:
  void on_hit(Key key) override {
    // Hit in T1 or T2: promote to MRU of T2 (now seen more than once).
    Locator* loc = where_.find(key);
    RDCN_DCHECK(loc != nullptr && (loc->list == List::kT1 ||
                                   loc->list == List::kT2));
    list_of(loc->list).erase(loc->pos);
    t2_.push_front(key);
    *loc = Locator{List::kT2, t2_.begin()};
  }

  void on_fault(Key key, std::vector<Key>& evicted) override {
    // NOTE: copy the locator — replace() inserts into where_, which can
    // rehash and invalidate the pointer returned by find().
    const Locator* ghost_ptr = where_.find(key);
    if (ghost_ptr != nullptr && ghost_ptr->list == List::kB1) {
      const Locator ghost = *ghost_ptr;
      // Ghost hit in B1: recency was undervalued — grow p.
      const std::size_t delta =
          b1_.size() >= b2_.size() ? 1 : (b2_.size() / b1_.size());
      p_ = std::min(capacity(), p_ + delta);
      replace(key, evicted);
      b1_.erase(ghost.pos);
      t2_.push_front(key);
      where_[key] = Locator{List::kT2, t2_.begin()};
      return;
    }
    if (ghost_ptr != nullptr && ghost_ptr->list == List::kB2) {
      const Locator ghost = *ghost_ptr;
      // Ghost hit in B2: frequency was undervalued — shrink p.
      const std::size_t delta =
          b2_.size() >= b1_.size() ? 1 : (b1_.size() / b2_.size());
      p_ = p_ > delta ? p_ - delta : 0;
      replace(key, evicted);
      b2_.erase(ghost.pos);
      t2_.push_front(key);
      where_[key] = Locator{List::kT2, t2_.begin()};
      return;
    }

    // Brand-new key.
    const std::size_t c = capacity();
    if (t1_.size() + b1_.size() == c) {
      if (t1_.size() < c) {
        drop_ghost(b1_);
        replace(key, evicted);
      } else {
        // T1 itself is full: evict its LRU directly (no ghost space).
        evict_lru(t1_, List::kT1, evicted, /*to_ghost=*/false);
      }
    } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= c) {
      if (t1_.size() + t2_.size() + b1_.size() + b2_.size() == 2 * c) {
        drop_ghost(b2_);
      }
      replace(key, evicted);
    }
    t1_.push_front(key);
    where_[key] = Locator{List::kT1, t1_.begin()};
  }

 private:
  enum class List : std::uint8_t { kT1, kT2, kB1, kB2 };

  struct Locator {
    List list = List::kT1;
    std::list<Key>::iterator pos{};
  };

  std::list<Key>& list_of(List which) {
    switch (which) {
      case List::kT1: return t1_;
      case List::kT2: return t2_;
      case List::kB1: return b1_;
      case List::kB2: return b2_;
    }
    return t1_;
  }

  /// ARC's REPLACE: evict the LRU of T1 or T2 (by the adaptation target p)
  /// into its ghost list.
  void replace(Key incoming, std::vector<Key>& evicted) {
    if (t1_.size() + t2_.size() < capacity()) return;  // room already
    const Locator* ghost = where_.find(incoming);
    const bool incoming_in_b2 =
        ghost != nullptr && ghost->list == List::kB2;
    if (!t1_.empty() &&
        (t1_.size() > p_ || (incoming_in_b2 && t1_.size() == p_))) {
      evict_lru(t1_, List::kT1, evicted, /*to_ghost=*/true);
    } else if (!t2_.empty()) {
      evict_lru(t2_, List::kT2, evicted, /*to_ghost=*/true);
    } else {
      evict_lru(t1_, List::kT1, evicted, /*to_ghost=*/true);
    }
  }

  void evict_lru(std::list<Key>& from, List which, std::vector<Key>& evicted,
                 bool to_ghost) {
    RDCN_DCHECK(!from.empty());
    const Key victim = from.back();
    from.pop_back();
    if (to_ghost) {
      std::list<Key>& ghost = which == List::kT1 ? b1_ : b2_;
      ghost.push_front(victim);
      where_[victim] =
          Locator{which == List::kT1 ? List::kB1 : List::kB2, ghost.begin()};
    } else {
      where_.erase(victim);
    }
    evict_from_cache(victim, evicted);
  }

  void drop_ghost(std::list<Key>& ghost) {
    RDCN_DCHECK(!ghost.empty());
    where_.erase(ghost.back());
    ghost.pop_back();
  }

  std::list<Key> t1_, t2_;  // resident: seen once / seen twice+ (MRU front)
  std::list<Key> b1_, b2_;  // ghosts of t1_/t2_ evictions
  FlatMap<Locator> where_;
  std::size_t p_ = 0;  // target size of t1_
};

}  // namespace rdcn::paging
