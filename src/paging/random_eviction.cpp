#include "paging/random_eviction.hpp"

namespace rdcn::paging {
// Header-only implementation; TU anchors the vtable.
}  // namespace rdcn::paging
