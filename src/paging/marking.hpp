// rdcn: randomized marking algorithm (Fiat, Karp, Luby, McGeoch, Sleator,
// Young '91), the paging engine behind R-BMA's O(log b) guarantee.
//
// Phase structure: every cached key is marked or unmarked.  A request marks
// its key.  On a fault with a full cache, a uniformly random *unmarked* key
// is evicted; if everything is marked, a new phase begins (all marks are
// cleared first).  Against an offline optimum with cache a <= b the expected
// fault count is within factor 2·ln(b/(b-a+1)) + O(1) (Young '91), and
// within 2·H_b for a = b.
#pragma once

#include "common/rng.hpp"
#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class Marking final : public PagingAlgorithm {
 public:
  Marking(std::size_t capacity, Xoshiro256 rng)
      : PagingAlgorithm(capacity), rng_(rng) {
    unmarked_.reserve(capacity);
  }

  std::string name() const override { return "marking"; }

  void reset() override {
    PagingAlgorithm::reset();
    unmarked_.clear();
    pos_.clear();
    phases_ = 0;
  }

  /// Number of completed phases (diagnostics; the competitive analysis
  /// charges OPT per phase).
  std::uint64_t phases() const noexcept { return phases_; }

  bool is_marked(Key key) const noexcept {
    return contains(key) && !pos_.contains(key);
  }

 protected:
  void on_hit(Key key) override { mark(key); }

  void on_fault(Key /*key*/, std::vector<Key>& evicted) override {
    if (cache_full()) {
      if (unmarked_.empty()) {
        // New phase: clear all marks.  All currently cached keys become
        // eviction candidates again.
        ++phases_;
        for (Key k : cached_keys()) {
          pos_[k] = unmarked_.size();
          unmarked_.push_back(k);
        }
      }
      // Evict a uniformly random unmarked key.
      const std::size_t i = rng_.next_below(unmarked_.size());
      const Key victim = unmarked_[i];
      remove_unmarked_at(i);
      evict_from_cache(victim, evicted);
    }
    // The incoming key enters marked (it is being requested right now), so
    // it is *not* added to unmarked_.
  }

 private:
  void mark(Key key) {
    const std::size_t* p = pos_.find(key);
    if (p != nullptr) remove_unmarked_at(*p);
  }

  void remove_unmarked_at(std::size_t i) {
    const Key victim = unmarked_[i];
    const Key last = unmarked_.back();
    unmarked_[i] = last;
    unmarked_.pop_back();
    if (last != victim) pos_[last] = i;
    pos_.erase(victim);
  }

  Xoshiro256 rng_;
  std::vector<Key> unmarked_;        // unmarked keys, unordered
  FlatMap<std::size_t> pos_;         // key -> index in unmarked_
  std::uint64_t phases_ = 0;
};

}  // namespace rdcn::paging
