// rdcn: string-keyed factory for paging engines, so benches/examples can
// select the engine inside R-BMA from the command line.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

enum class EngineKind {
  kMarking,
  kLru,
  kFifo,
  kClock,
  kRandom,
  kFlushWhenFull,
  kLfu,
  kArc,
};

/// Parses "marking" | "lru" | "fifo" | "clock" | "random" |
/// "flush_when_full" | "lfu" | "arc"; asserts on unknown names.
EngineKind parse_engine(const std::string& name);

std::string engine_name(EngineKind kind);

/// Instantiates an engine with the given capacity.  `rng` seeds randomized
/// engines (ignored by deterministic ones).
std::unique_ptr<PagingAlgorithm> make_engine(EngineKind kind,
                                             std::size_t capacity,
                                             Xoshiro256 rng);

}  // namespace rdcn::paging
