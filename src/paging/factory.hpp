// rdcn: string-keyed factory for paging engines, so benches/examples can
// select the engine inside R-BMA from the command line.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

enum class EngineKind {
  kMarking,
  kLru,
  kFifo,
  kClock,
  kRandom,
  kFlushWhenFull,
  kLfu,
  kArc,
};

/// Parses "marking" | "lru" | "fifo" | "clock" | "random" |
/// "flush_when_full" | "lfu" | "arc"; asserts on unknown names.
EngineKind parse_engine(const std::string& name);

/// Non-asserting variant: returns false on unknown names (for callers that
/// want to report instead of abort).  `out` may be null to just probe.
bool try_parse_engine(const std::string& name, EngineKind* out);

/// Every engine name, in declaration order — the single source for help
/// text and validation lists.
const std::vector<std::string>& engine_names();

std::string engine_name(EngineKind kind);

/// Instantiates an engine with the given capacity.  `rng` seeds randomized
/// engines (ignored by deterministic ones).
std::unique_ptr<PagingAlgorithm> make_engine(EngineKind kind,
                                             std::size_t capacity,
                                             Xoshiro256 rng);

}  // namespace rdcn::paging
