#include "paging/belady.hpp"

namespace rdcn::paging {

Belady::Belady(std::size_t capacity, std::vector<Key> sequence)
    : PagingAlgorithm(capacity), seq_(std::move(sequence)) {
  // Backward scan to compute each position's next occurrence.
  next_use_.assign(seq_.size(), kNever);
  FlatMap<std::size_t> last_seen;
  for (std::size_t i = seq_.size(); i-- > 0;) {
    const std::size_t* nxt = last_seen.find(seq_[i]);
    next_use_[i] = (nxt != nullptr) ? *nxt : kNever;
    last_seen[seq_[i]] = i;
  }
}

void Belady::reset() {
  PagingAlgorithm::reset();
  cursor_ = 0;
  heap_ = {};
  current_next_.clear();
}

void Belady::advance(Key key) {
  RDCN_ASSERT_MSG(cursor_ < seq_.size(),
                  "Belady driven past its announced sequence");
  RDCN_ASSERT_MSG(seq_[cursor_] == key,
                  "Belady replay diverged from the announced sequence");
  const std::size_t nxt = next_use_[cursor_];
  ++cursor_;
  current_next_[key] = nxt;
  if (nxt != kNever) heap_.emplace(nxt, key);
}

void Belady::on_hit(Key key) { advance(key); }

void Belady::on_fault(Key key, std::vector<Key>& evicted) {
  if (cache_full()) {
    // Prefer a cached key that is never used again; otherwise pop the
    // farthest-next-use entry, skipping stale heap records.
    Key victim = 0;
    bool found_dead = false;
    current_next_.for_each([&](Key k, std::size_t nxt) {
      if (!found_dead && nxt == kNever) {
        victim = k;
        found_dead = true;
      }
    });
    if (!found_dead) {
      while (true) {
        RDCN_ASSERT_MSG(!heap_.empty(), "Belady heap exhausted");
        const auto [nxt, k] = heap_.top();
        heap_.pop();
        const std::size_t* cur = current_next_.find(k);
        if (cur != nullptr && *cur == nxt) {
          victim = k;
          break;
        }
        // else: stale entry (key evicted or next-use advanced) — skip.
      }
    }
    current_next_.erase(victim);
    evict_from_cache(victim, evicted);
  }
  advance(key);
}

std::uint64_t Belady::optimal_faults(std::size_t capacity,
                                     const std::vector<Key>& sequence) {
  Belady b(capacity, sequence);
  std::vector<Key> evicted;
  for (Key k : sequence) {
    evicted.clear();
    b.request(k, evicted);
  }
  return b.faults();
}

}  // namespace rdcn::paging
