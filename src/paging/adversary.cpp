#include "paging/adversary.hpp"

namespace rdcn::paging {

std::vector<Key> CruelAdversary::drive(PagingAlgorithm& alg,
                                       std::size_t steps) const {
  std::vector<Key> seq;
  seq.reserve(steps);
  std::vector<Key> evicted;
  for (std::size_t i = 0; i < steps; ++i) {
    const Key k = next(alg);
    seq.push_back(k);
    evicted.clear();
    alg.request(k, evicted);
  }
  return seq;
}

std::vector<Key> UniformAdversary::sequence(std::size_t steps) {
  std::vector<Key> seq;
  seq.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) seq.push_back(next());
  return seq;
}

}  // namespace rdcn::paging
