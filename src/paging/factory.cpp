#include "paging/factory.hpp"

#include "common/assert.hpp"
#include "paging/arc.hpp"
#include "paging/clock.hpp"
#include "paging/lfu.hpp"
#include "paging/fifo.hpp"
#include "paging/flush_when_full.hpp"
#include "paging/lru.hpp"
#include "paging/marking.hpp"
#include "paging/random_eviction.hpp"

namespace rdcn::paging {

EngineKind parse_engine(const std::string& name) {
  if (name == "marking") return EngineKind::kMarking;
  if (name == "lru") return EngineKind::kLru;
  if (name == "fifo") return EngineKind::kFifo;
  if (name == "clock") return EngineKind::kClock;
  if (name == "random") return EngineKind::kRandom;
  if (name == "flush_when_full") return EngineKind::kFlushWhenFull;
  if (name == "lfu") return EngineKind::kLfu;
  if (name == "arc") return EngineKind::kArc;
  RDCN_ASSERT_MSG(false, "unknown paging engine name");
  return EngineKind::kMarking;
}

std::string engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMarking: return "marking";
    case EngineKind::kLru: return "lru";
    case EngineKind::kFifo: return "fifo";
    case EngineKind::kClock: return "clock";
    case EngineKind::kRandom: return "random";
    case EngineKind::kFlushWhenFull: return "flush_when_full";
    case EngineKind::kLfu: return "lfu";
    case EngineKind::kArc: return "arc";
  }
  return "unknown";
}

std::unique_ptr<PagingAlgorithm> make_engine(EngineKind kind,
                                             std::size_t capacity,
                                             Xoshiro256 rng) {
  switch (kind) {
    case EngineKind::kMarking:
      return std::make_unique<Marking>(capacity, rng);
    case EngineKind::kLru:
      return std::make_unique<Lru>(capacity);
    case EngineKind::kFifo:
      return std::make_unique<Fifo>(capacity);
    case EngineKind::kClock:
      return std::make_unique<ClockPaging>(capacity);
    case EngineKind::kRandom:
      return std::make_unique<RandomEviction>(capacity, rng);
    case EngineKind::kFlushWhenFull:
      return std::make_unique<FlushWhenFull>(capacity);
    case EngineKind::kLfu:
      return std::make_unique<Lfu>(capacity);
    case EngineKind::kArc:
      return std::make_unique<Arc>(capacity);
  }
  RDCN_ASSERT_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace rdcn::paging
