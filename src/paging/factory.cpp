#include "paging/factory.hpp"

#include <iterator>

#include "common/assert.hpp"
#include "paging/arc.hpp"
#include "paging/clock.hpp"
#include "paging/lfu.hpp"
#include "paging/fifo.hpp"
#include "paging/flush_when_full.hpp"
#include "paging/lru.hpp"
#include "paging/marking.hpp"
#include "paging/random_eviction.hpp"

namespace rdcn::paging {

namespace {

constexpr EngineKind kAllEngines[] = {
    EngineKind::kMarking, EngineKind::kLru,           EngineKind::kFifo,
    EngineKind::kClock,   EngineKind::kRandom,        EngineKind::kFlushWhenFull,
    EngineKind::kLfu,     EngineKind::kArc,
};
// A new EngineKind must be added to kAllEngines or it silently disappears
// from engine_names()/try_parse_engine (and thus the generated docs).
static_assert(std::size(kAllEngines) ==
              static_cast<std::size_t>(EngineKind::kArc) + 1);

}  // namespace

bool try_parse_engine(const std::string& name, EngineKind* out) {
  for (const EngineKind kind : kAllEngines) {
    if (engine_name(kind) == name) {
      if (out != nullptr) *out = kind;
      return true;
    }
  }
  return false;
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string>* names = [] {
    auto* out = new std::vector<std::string>();
    for (const EngineKind kind : kAllEngines)
      out->push_back(engine_name(kind));
    return out;
  }();
  return *names;
}

EngineKind parse_engine(const std::string& name) {
  EngineKind kind = EngineKind::kMarking;
  RDCN_ASSERT_MSG(try_parse_engine(name, &kind),
                  "unknown paging engine name");
  return kind;
}

std::string engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMarking: return "marking";
    case EngineKind::kLru: return "lru";
    case EngineKind::kFifo: return "fifo";
    case EngineKind::kClock: return "clock";
    case EngineKind::kRandom: return "random";
    case EngineKind::kFlushWhenFull: return "flush_when_full";
    case EngineKind::kLfu: return "lfu";
    case EngineKind::kArc: return "arc";
  }
  return "unknown";
}

std::unique_ptr<PagingAlgorithm> make_engine(EngineKind kind,
                                             std::size_t capacity,
                                             Xoshiro256 rng) {
  switch (kind) {
    case EngineKind::kMarking:
      return std::make_unique<Marking>(capacity, rng);
    case EngineKind::kLru:
      return std::make_unique<Lru>(capacity);
    case EngineKind::kFifo:
      return std::make_unique<Fifo>(capacity);
    case EngineKind::kClock:
      return std::make_unique<ClockPaging>(capacity);
    case EngineKind::kRandom:
      return std::make_unique<RandomEviction>(capacity, rng);
    case EngineKind::kFlushWhenFull:
      return std::make_unique<FlushWhenFull>(capacity);
    case EngineKind::kLfu:
      return std::make_unique<Lfu>(capacity);
    case EngineKind::kArc:
      return std::make_unique<Arc>(capacity);
  }
  RDCN_ASSERT_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace rdcn::paging
