// rdcn: CLOCK (second-chance) paging — the classic LRU approximation used
// by real VM systems; included as an ablation engine for R-BMA.
#pragma once

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class ClockPaging final : public PagingAlgorithm {
 public:
  explicit ClockPaging(std::size_t capacity) : PagingAlgorithm(capacity) {
    ring_.reserve(capacity);
  }

  std::string name() const override { return "clock"; }

  void reset() override {
    PagingAlgorithm::reset();
    ring_.clear();
    ref_.clear();
    index_.clear();
    hand_ = 0;
  }

 protected:
  void on_hit(Key key) override {
    const std::uint32_t* s = index_.find(key);
    RDCN_DCHECK(s != nullptr);
    ref_[*s] = 1;
  }

  void on_fault(Key key, std::vector<Key>& evicted) override {
    if (cache_full()) {
      // Sweep: clear reference bits until an unreferenced slot is found.
      while (ref_[hand_] != 0) {
        ref_[hand_] = 0;
        hand_ = (hand_ + 1) % ring_.size();
      }
      const Key victim = ring_[hand_];
      evict_from_cache(victim, evicted);
      index_.erase(victim);
      ring_[hand_] = key;
      ref_[hand_] = 1;
      index_[key] = static_cast<std::uint32_t>(hand_);
      hand_ = (hand_ + 1) % ring_.size();
    } else {
      index_[key] = static_cast<std::uint32_t>(ring_.size());
      ring_.push_back(key);
      ref_.push_back(1);
    }
  }

 private:
  std::vector<Key> ring_;
  std::vector<std::uint8_t> ref_;
  FlatMap<std::uint32_t> index_;
  std::size_t hand_ = 0;
};

}  // namespace rdcn::paging
