// rdcn: memoryless random eviction — evicts a uniformly random cached key
// on every fault.  (b-competitive in expectation; included as the weakest
// randomized baseline for the paging-engine ablation.)
#pragma once

#include "common/rng.hpp"
#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class RandomEviction final : public PagingAlgorithm {
 public:
  RandomEviction(std::size_t capacity, Xoshiro256 rng)
      : PagingAlgorithm(capacity), rng_(rng) {
    keys_.reserve(capacity);
  }

  std::string name() const override { return "random"; }

  void reset() override {
    PagingAlgorithm::reset();
    keys_.clear();
    pos_.clear();
  }

 protected:
  void on_fault(Key key, std::vector<Key>& evicted) override {
    if (cache_full()) {
      const std::size_t i = rng_.next_below(keys_.size());
      const Key victim = keys_[i];
      const Key last = keys_.back();
      keys_[i] = last;
      keys_.pop_back();
      if (last != victim) pos_[last] = i;
      pos_.erase(victim);
      evict_from_cache(victim, evicted);
    }
    pos_[key] = keys_.size();
    keys_.push_back(key);
  }

 private:
  Xoshiro256 rng_;
  std::vector<Key> keys_;
  FlatMap<std::size_t> pos_;
};

}  // namespace rdcn::paging
