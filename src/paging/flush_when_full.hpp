// rdcn: flush-when-full paging — on a fault with a full cache, evict
// everything.  The textbook (2b)-competitive strawman; its pathology inside
// R-BMA (mass simultaneous matching teardown) makes it a useful extreme
// point in the paging-engine ablation.
#pragma once

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class FlushWhenFull final : public PagingAlgorithm {
 public:
  explicit FlushWhenFull(std::size_t capacity) : PagingAlgorithm(capacity) {}

  std::string name() const override { return "flush_when_full"; }

 protected:
  void on_fault(Key /*key*/, std::vector<Key>& evicted) override {
    if (cache_full()) {
      for (Key k : cached_keys()) evict_from_cache(k, evicted);
    }
  }
};

}  // namespace rdcn::paging
