// rdcn: least-recently-used paging (deterministic, b-competitive).
// Intrusive doubly-linked list over slots stored in a free-list arena;
// key -> slot index via flat hash.
#pragma once

#include "paging/paging_algorithm.hpp"

namespace rdcn::paging {

class Lru final : public PagingAlgorithm {
 public:
  explicit Lru(std::size_t capacity) : PagingAlgorithm(capacity) {
    slots_.reserve(capacity);
  }

  std::string name() const override { return "lru"; }

  void reset() override {
    PagingAlgorithm::reset();
    slots_.clear();
    index_.clear();
    head_ = tail_ = kNil;
    free_ = kNil;
  }

 protected:
  void on_hit(Key key) override {
    const std::uint32_t* s = index_.find(key);
    RDCN_DCHECK(s != nullptr);
    touch(*s);
  }

  void on_fault(Key key, std::vector<Key>& evicted) override {
    if (cache_full()) {
      // Evict the tail (least recently used).
      RDCN_DCHECK(tail_ != kNil);
      const std::uint32_t victim = tail_;
      unlink(victim);
      evict_from_cache(slots_[victim].key, evicted);
      index_.erase(slots_[victim].key);
      slots_[victim].next = free_;
      free_ = victim;
    }
    const std::uint32_t s = alloc_slot(key);
    index_[key] = s;
    push_front(s);
  }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Slot {
    Key key;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  std::uint32_t alloc_slot(Key key) {
    std::uint32_t s;
    if (free_ != kNil) {
      s = free_;
      free_ = slots_[s].next;
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back({});
    }
    slots_[s].key = key;
    return s;
  }

  void push_front(std::uint32_t s) {
    slots_[s].prev = kNil;
    slots_[s].next = head_;
    if (head_ != kNil) slots_[head_].prev = s;
    head_ = s;
    if (tail_ == kNil) tail_ = s;
  }

  void unlink(std::uint32_t s) {
    const std::uint32_t p = slots_[s].prev, n = slots_[s].next;
    if (p != kNil) slots_[p].next = n; else head_ = n;
    if (n != kNil) slots_[n].prev = p; else tail_ = p;
  }

  void touch(std::uint32_t s) {
    if (head_ == s) return;
    unlink(s);
    push_front(s);
  }

  std::vector<Slot> slots_;
  FlatMap<std::uint32_t> index_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::uint32_t free_ = kNil;
};

}  // namespace rdcn::paging
