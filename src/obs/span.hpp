// rdcn_obs: phase timers / trace spans.
//
// `ObsSpan` is an RAII phase timer over the shared MonotonicClock.  Each
// thread owns a span *tree*: nested spans on one thread become parent →
// child edges, and a span records (count, total_ns) into its node on
// exit.  `collect_phases()` merges the per-thread trees by name path
// into one aggregate, which renders as JSON (`--metrics-dump`) or as an
// indented text report (`rdcn_sim --profile`, perf_gate's phase_profile).
//
// Cost contract (the fault.hpp bar): tracing is OFF by default, and a
// disabled ObsSpan is ONE relaxed atomic load — no clock read, no TLS
// walk.  The simulator's chunk loop therefore pays one load per chunk
// (4096 requests) when nobody is profiling, which the perf gate cannot
// see.  Enabling tracing (set_tracing(true)) turns on clock reads and
// node bookkeeping; the daemon does this at start(), rdcn_sim does it
// under --profile.
//
// Thread-safety: a node's (count, total_ns) are relaxed atomics written
// by the owning thread and read by collectors.  Tree-structure mutation
// (first entry into a phase on a thread) and collection share one global
// mutex; steady-state span entry/exit touches no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace rdcn::obs {

namespace detail {
extern std::atomic<bool> g_tracing;
struct TraceNode;
/// Pushes a phase node for this thread (creating it on first entry) and
/// returns it; the caller stamps the start time.
TraceNode* span_enter(const char* name);
void span_exit(TraceNode* node, std::uint64_t elapsed_ns);
}  // namespace detail

inline bool tracing_enabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Global switch.  Flipping it mid-span is benign: spans only record on
/// exit if they observed it on on entry.
void set_tracing(bool on);

/// Stable storage for a dynamically-built span name ("algo." + name):
/// ObsSpan keeps only the pointer, so the bytes must outlive every node
/// that references them.  Interned strings live forever (the set is
/// bounded by distinct names — registry entries, not requests).  Returns
/// the same pointer for the same name, keeping span_enter's pointer-
/// equality fast path effective.
const char* intern_span_name(const std::string& name);

class ObsSpan {
 public:
  explicit ObsSpan(const char* name) noexcept {
    if (tracing_enabled()) {
      node_ = detail::span_enter(name);
      start_ns_ = monotonic_now_ns();
    }
  }
  ~ObsSpan() {
    if (node_ != nullptr)
      detail::span_exit(node_, monotonic_now_ns() - start_ns_);
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  detail::TraceNode* node_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// One merged phase, pre-order.  `depth` is 0 for top-level phases;
/// parents precede children.
struct PhaseTotal {
  std::string name;      ///< phase name (one path segment)
  std::string path;      ///< "/"-joined path from a top-level phase
  int depth = 0;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Merges all threads' span trees by name path (same phase on N threads
/// aggregates into one row).  Safe to call while spans are running;
/// in-flight spans simply haven't recorded yet.
std::vector<PhaseTotal> collect_phases();

/// Sum of total_ns over entries matching `name` at any depth (a phase
/// run both on the main thread and inside pool workers counts once per
/// recorded exit either way).
std::uint64_t phase_total_ns(const std::vector<PhaseTotal>& phases,
                             const std::string& name);

/// Zeroes every node's totals (tree structure is kept).
void reset_traces();

/// Merged tree as nested JSON:
///   [{"name":..,"count":N,"total_seconds":S,"children":[...]}, ...]
std::string trace_json();

/// Indented per-phase report; percentages are of each parent's total.
void write_profile_report(std::ostream& out);

}  // namespace rdcn::obs
