// rdcn_obs: process metrics — monotonic counters, gauges, and
// fixed-bucket latency histograms.
//
// Design contract (mirrors common/fault.hpp's "free when off" bar):
//
//   * Registration is the slow path.  `Registry::counter(name, help,
//     labels)` interns the name and label set under a mutex ONCE and
//     hands back a stable `Counter&`.  Call sites hold the reference
//     (typically via a function-local static or a member), so the hot
//     path never touches a map or a string.
//   * Recording is the fast path.  A counter add is one relaxed
//     fetch_add on a thread-striped, cache-line-padded cell — no lock,
//     no false sharing between recording threads.  A histogram observe
//     is two such adds (bucket + sum).
//   * Reading (exposition, STATS) sums the stripes.  Reads are racy by
//     design — a scrape sees *a* recent value, not a linearization
//     point — which is exactly the Prometheus counter contract.
//
// Registries are instantiable: the serve daemon owns one per instance
// (so sequential daemons in one test process start from zero), while
// process-wide subsystems (ThreadPool, simulator, fault hooks) record
// into `Registry::global()`.  Rendering supports Prometheus text
// exposition (the `METRICS` verb) and a JSON snapshot (`--metrics-dump`).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rdcn::obs {

/// Label set for one metric child, e.g. {{"status", "ok"}}.  Order is
/// irrelevant: registration canonicalizes by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Stripe count for sharded cells.  Power of two; 8 stripes keeps the
/// worst-case read cost trivial while spreading writers enough that the
/// perf gate can't see the instrumentation.
inline constexpr std::size_t kStripes = 8;

struct alignas(64) StripeCell {
  std::atomic<std::uint64_t> v{0};
};

/// This thread's stripe.  Threads are assigned round-robin at first
/// use; the id is stable for the thread's lifetime.
std::size_t stripe_index() noexcept;

}  // namespace detail

/// Monotonic counter.  add() is wait-free; value() is a racy sum.
class Counter {
 public:
  Counter() = default;  ///< prefer Registry::counter(); handles live there
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& cell : cells_)
      sum += cell.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  detail::StripeCell cells_[detail::kStripes];
};

/// Last-write-wins signed gauge (queue depths, entry counts).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram.  Bounds are inclusive upper edges in
/// nanoseconds (a trailing +Inf bucket is implicit).  observe_ns() is
/// two striped relaxed adds: the target bucket's count and the sum.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds_ns);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe_ns(std::uint64_t ns) noexcept {
    std::size_t b = 0;
    while (b < bounds_ns_.size() && ns > bounds_ns_[b]) ++b;
    const std::size_t stripe = detail::stripe_index();
    cell(stripe, b).fetch_add(1, std::memory_order_relaxed);
    sum_cell(stripe).fetch_add(ns, std::memory_order_relaxed);
  }
  void observe_seconds(double s) noexcept {
    observe_ns(s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

  const std::vector<std::uint64_t>& bounds_ns() const { return bounds_ns_; }
  std::uint64_t count() const noexcept;   ///< total observations
  std::uint64_t sum_ns() const noexcept;  ///< sum of observed values
  /// Cumulative count of observations <= bounds_ns()[i]; i ==
  /// bounds_ns().size() gives the +Inf bucket (== count()).
  std::uint64_t cumulative(std::size_t i) const noexcept;

 private:
  std::atomic<std::uint64_t>& cell(std::size_t stripe, std::size_t bucket) {
    return cells_[stripe * (bounds_ns_.size() + 2) + bucket].v;
  }
  std::atomic<std::uint64_t>& sum_cell(std::size_t stripe) {
    return cells_[stripe * (bounds_ns_.size() + 2) + bounds_ns_.size() + 1].v;
  }
  const std::atomic<std::uint64_t>& cell_c(std::size_t stripe,
                                           std::size_t bucket) const {
    return cells_[stripe * (bounds_ns_.size() + 2) + bucket].v;
  }

  std::vector<std::uint64_t> bounds_ns_;
  /// kStripes blocks of [bucket 0 .. bucket B (=+Inf), sum].
  std::vector<detail::StripeCell> cells_;
};

/// Default latency bucket edges: 1 us to ~67 s, powers of 4.  Wide
/// enough for a microsecond serve chunk and a minute-long matrix run.
std::vector<std::uint64_t> default_latency_buckets_ns();

/// Installs a fault::FireObserver that bumps
/// rdcn_fault_fires_total{point="..."} in Registry::global() on every
/// fault firing.  Idempotent; costs nothing while faults are disarmed.
void install_fault_observer();

/// A named family of metrics.  counter()/gauge()/histogram() intern the
/// (name, labels) pair: a second registration returns the same handle,
/// so independent call sites can share a metric safely.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (ThreadPool, simulator, fault hooks).
  static Registry& global();

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<std::uint64_t> bounds_ns,
                       const Labels& labels = {});
  Histogram& latency_histogram(const std::string& name,
                               const std::string& help,
                               const Labels& labels = {}) {
    return histogram(name, help, default_latency_buckets_ns(), labels);
  }

  /// Point reads for tests and the STATS re-derivation.  Absent metrics
  /// read as zero.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  std::int64_t gauge_value(const std::string& name,
                           const Labels& labels = {}) const;

  /// Prometheus text exposition format, families sorted by name:
  ///   # HELP name help
  ///   # TYPE name counter|gauge|histogram
  ///   name{label="v"} 123
  /// Histograms expand to name_bucket{le=...}/name_sum/name_count with
  /// le and _sum in seconds.
  std::string render_prometheus() const;

  /// One JSON object {"metric{labels}": value, ...}; histograms render
  /// as {"count": N, "sum_seconds": S, "buckets": {"le": cum, ...}}.
  std::string render_json() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Child {
    Labels labels;        // sorted by key
    std::string rendered; // canonical {k="v",...} or ""
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  struct Family {
    Type type;
    std::string help;
    std::vector<Child> children;  // in registration order
  };

  Child& intern(const std::string& name, const std::string& help, Type type,
                const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  // Deques give stable addresses for handed-out references.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace rdcn::obs
