#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/param_map.hpp"

namespace rdcn::obs {

namespace detail {

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return mine;
}

}  // namespace detail

namespace {

/// Prometheus label value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string render_labels(const Labels& sorted) {
  if (sorted.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape_label(v);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Shortest round-trippable-enough double (le bounds, _sum seconds).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

std::vector<std::uint64_t> default_latency_buckets_ns() {
  // 1 us .. 4^13 us ≈ 67 s, powers of four: 14 finite buckets.
  std::vector<std::uint64_t> bounds;
  std::uint64_t b = 1000;
  for (int i = 0; i < 14; ++i) {
    bounds.push_back(b);
    b *= 4;
  }
  return bounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds_ns)
    : bounds_ns_(std::move(bounds_ns)),
      cells_(detail::kStripes * (bounds_ns_.size() + 2)) {
  RDCN_ASSERT(std::is_sorted(bounds_ns_.begin(), bounds_ns_.end()));
  RDCN_ASSERT(!bounds_ns_.empty());
}

std::uint64_t Histogram::count() const noexcept {
  return cumulative(bounds_ns_.size());
}

std::uint64_t Histogram::sum_ns() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < detail::kStripes; ++s)
    sum += cells_[s * (bounds_ns_.size() + 2) + bounds_ns_.size() + 1].v.load(
        std::memory_order_relaxed);
  return sum;
}

std::uint64_t Histogram::cumulative(std::size_t i) const noexcept {
  RDCN_ASSERT(i <= bounds_ns_.size());
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < detail::kStripes; ++s)
    for (std::size_t b = 0; b <= i; ++b)
      sum += cell_c(s, b).load(std::memory_order_relaxed);
  return sum;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Child& Registry::intern(const std::string& name,
                                  const std::string& help, Type type,
                                  const Labels& labels) {
  // Caller holds mu_.
  auto [fit, inserted] = families_.try_emplace(name);
  Family& family = fit->second;
  if (inserted) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    throw SpecError("metric '" + name +
                    "' re-registered with a different type");
  }
  Labels sorted = sorted_labels(labels);
  for (Child& child : family.children)
    if (child.labels == sorted) return child;
  Child child;
  child.rendered = render_labels(sorted);
  child.labels = std::move(sorted);
  family.children.push_back(std::move(child));
  return family.children.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Child& child = intern(name, help, Type::kCounter, labels);
  if (child.counter == nullptr) {
    counters_.emplace_back();
    child.counter = &counters_.back();
  }
  return *child.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Child& child = intern(name, help, Type::kGauge, labels);
  if (child.gauge == nullptr) {
    gauges_.emplace_back();
    child.gauge = &gauges_.back();
  }
  return *child.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<std::uint64_t> bounds_ns,
                               const Labels& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Child& child = intern(name, help, Type::kHistogram, labels);
  if (child.histogram == nullptr) {
    histograms_.emplace_back(std::move(bounds_ns));
    child.histogram = &histograms_.back();
  }
  return *child.histogram;
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto fit = families_.find(name);
  if (fit == families_.end()) return 0;
  const Labels sorted = sorted_labels(labels);
  for (const Child& child : fit->second.children)
    if (child.labels == sorted && child.counter != nullptr)
      return child.counter->value();
  return 0;
}

std::int64_t Registry::gauge_value(const std::string& name,
                                   const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto fit = families_.find(name);
  if (fit == families_.end()) return 0;
  const Labels sorted = sorted_labels(labels);
  for (const Child& child : fit->second.children)
    if (child.labels == sorted && child.gauge != nullptr)
      return child.gauge->value();
  return 0;
}

std::string Registry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    out += family.type == Type::kCounter
               ? "counter"
               : (family.type == Type::kGauge ? "gauge" : "histogram");
    out += "\n";
    for (const Child& child : family.children) {
      switch (family.type) {
        case Type::kCounter:
          out += name + child.rendered + " " +
                 std::to_string(child.counter->value()) + "\n";
          break;
        case Type::kGauge:
          out += name + child.rendered + " " +
                 std::to_string(child.gauge->value()) + "\n";
          break;
        case Type::kHistogram: {
          const Histogram& h = *child.histogram;
          // Re-render labels with le appended; _sum/_count keep the
          // child's own label set.
          for (std::size_t i = 0; i <= h.bounds_ns().size(); ++i) {
            Labels with_le = child.labels;
            with_le.emplace_back(
                "le", i < h.bounds_ns().size()
                          ? fmt_double(ns_to_seconds(h.bounds_ns()[i]))
                          : "+Inf");
            out += name + "_bucket" + render_labels(sorted_labels(with_le)) +
                   " " + std::to_string(h.cumulative(i)) + "\n";
          }
          out += name + "_sum" + child.rendered + " " +
                 fmt_double(ns_to_seconds(h.sum_ns())) + "\n";
          out += name + "_count" + child.rendered + " " +
                 std::to_string(h.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string Registry::render_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  auto key = [](const std::string& name, const Child& child) {
    std::string k = name + child.rendered;
    std::string escaped;
    for (char c : k) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    return "\"" + escaped + "\"";
  };
  for (const auto& [name, family] : families_) {
    for (const Child& child : family.children) {
      if (!first) out += ",";
      first = false;
      out += key(name, child);
      out += ":";
      switch (family.type) {
        case Type::kCounter:
          out += std::to_string(child.counter->value());
          break;
        case Type::kGauge:
          out += std::to_string(child.gauge->value());
          break;
        case Type::kHistogram: {
          const Histogram& h = *child.histogram;
          out += "{\"count\":" + std::to_string(h.count()) +
                 ",\"sum_seconds\":" + fmt_double(ns_to_seconds(h.sum_ns())) +
                 ",\"buckets\":{";
          for (std::size_t i = 0; i <= h.bounds_ns().size(); ++i) {
            if (i > 0) out += ",";
            out += "\"";
            out += i < h.bounds_ns().size()
                       ? fmt_double(ns_to_seconds(h.bounds_ns()[i]))
                       : "+Inf";
            out += "\":" + std::to_string(h.cumulative(i));
          }
          out += "}}";
          break;
        }
      }
    }
  }
  out += "}";
  return out;
}

namespace {

void count_fault_fire(const char* point) {
  // Fires only happen while faults are armed, so the registration
  // mutex on this path costs nothing in production.
  Registry::global()
      .counter("rdcn_fault_fires_total",
               "Fault-injection point firings (common/fault.hpp)",
               {{"point", point}})
      .inc();
}

}  // namespace

void install_fault_observer() { fault::set_fire_observer(&count_fault_fire); }

}  // namespace rdcn::obs
