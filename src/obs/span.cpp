#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>

namespace rdcn::obs {

namespace detail {

std::atomic<bool> g_tracing{false};

struct TraceNode {
  const char* name = "";
  TraceNode* parent = nullptr;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  // Mutated only by the owning thread, and only under g_trace_mu (so
  // collectors iterating under the same mutex never race a push_back).
  std::vector<TraceNode*> children;
};

namespace {

std::mutex& trace_mu() {
  static std::mutex mu;
  return mu;
}

struct ThreadTrace {
  TraceNode root;
  TraceNode* current = &root;
};

/// All threads' trees.  ThreadTrace objects are heap-allocated and
/// never freed (bounded by thread count), so collect_phases() stays
/// safe after a recording thread has exited.  The container itself is
/// leaked too: a by-value static would be destroyed before
/// LeakSanitizer's exit check, orphaning the intentionally-immortal
/// nodes into "leak" reports.
std::vector<ThreadTrace*>& all_traces() {
  static auto* traces = new std::vector<ThreadTrace*>();
  return *traces;
}

ThreadTrace& this_thread_trace() {
  thread_local ThreadTrace* mine = [] {
    auto* t = new ThreadTrace();
    const std::lock_guard<std::mutex> lock(trace_mu());
    all_traces().push_back(t);
    return t;
  }();
  return *mine;
}

}  // namespace

TraceNode* span_enter(const char* name) {
  ThreadTrace& trace = this_thread_trace();
  TraceNode* parent = trace.current;
  // Owner-only read of children; concurrent collectors don't mutate.
  for (TraceNode* child : parent->children)
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      trace.current = child;
      return child;
    }
  auto* node = new TraceNode();
  node->name = name;
  node->parent = parent;
  {
    const std::lock_guard<std::mutex> lock(trace_mu());
    parent->children.push_back(node);
  }
  trace.current = node;
  return node;
}

void span_exit(TraceNode* node, std::uint64_t elapsed_ns) {
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  this_thread_trace().current = node->parent;
}

}  // namespace detail

void set_tracing(bool on) {
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

const char* intern_span_name(const std::string& name) {
  // Leaked like the trace nodes that will point into it (and for the
  // same LeakSanitizer reason); std::set node stability makes the
  // returned c_str() immortal.
  static auto* names = new std::set<std::string>();
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  return names->insert(name).first->c_str();
}

namespace {

/// Aggregate of one name path across all threads.
struct MergedNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, std::unique_ptr<MergedNode>> children;
};

void merge_into(MergedNode& dst, const detail::TraceNode& src) {
  dst.count += src.count.load(std::memory_order_relaxed);
  dst.total_ns += src.total_ns.load(std::memory_order_relaxed);
  for (const detail::TraceNode* child : src.children) {
    auto& slot = dst.children[child->name];
    if (!slot) {
      slot = std::make_unique<MergedNode>();
      slot->name = child->name;
    }
    merge_into(*slot, *child);
  }
}

/// Merges every thread's tree into one root.  Caller holds no lock.
std::unique_ptr<MergedNode> merge_all() {
  auto root = std::make_unique<MergedNode>();
  const std::lock_guard<std::mutex> lock(detail::trace_mu());
  for (const detail::ThreadTrace* trace : detail::all_traces())
    merge_into(*root, trace->root);
  return root;
}

void flatten(const MergedNode& node, const std::string& prefix, int depth,
             std::vector<PhaseTotal>& out) {
  for (const auto& [name, child] : node.children) {
    PhaseTotal row;
    row.name = name;
    row.path = prefix.empty() ? name : prefix + "/" + name;
    row.depth = depth;
    row.count = child->count;
    row.total_ns = child->total_ns;
    // Keep a copy: recursing grows `out`, which may reallocate and would
    // invalidate a reference into it.
    const std::string path = row.path;
    out.push_back(std::move(row));
    flatten(*child, path, depth + 1, out);
  }
}

void reset_node(detail::TraceNode& node) {
  node.count.store(0, std::memory_order_relaxed);
  node.total_ns.store(0, std::memory_order_relaxed);
  for (detail::TraceNode* child : node.children) reset_node(*child);
}

void json_node(const MergedNode& node, std::string& out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", node.total_ns * 1e-9);
  out += "{\"name\":\"" + node.name + "\"";
  out += ",\"count\":" + std::to_string(node.count);
  out += ",\"total_seconds\":";
  out += buf;
  if (!node.children.empty()) {
    out += ",\"children\":[";
    bool first = true;
    for (const auto& [name, child] : node.children) {
      if (!first) out += ",";
      first = false;
      json_node(*child, out);
    }
    out += "]";
  }
  out += "}";
}

}  // namespace

std::vector<PhaseTotal> collect_phases() {
  std::vector<PhaseTotal> out;
  flatten(*merge_all(), "", 0, out);
  return out;
}

std::uint64_t phase_total_ns(const std::vector<PhaseTotal>& phases,
                             const std::string& name) {
  std::uint64_t sum = 0;
  for (const PhaseTotal& phase : phases)
    if (phase.name == name) sum += phase.total_ns;
  return sum;
}

void reset_traces() {
  const std::lock_guard<std::mutex> lock(detail::trace_mu());
  for (detail::ThreadTrace* trace : detail::all_traces())
    reset_node(trace->root);
}

std::string trace_json() {
  auto root = merge_all();
  std::string out = "[";
  bool first = true;
  for (const auto& [name, child] : root->children) {
    if (!first) out += ",";
    first = false;
    json_node(*child, out);
  }
  out += "]";
  return out;
}

void write_profile_report(std::ostream& out) {
  auto root = merge_all();
  // Recursive text render: seconds, calls, % of parent.
  struct Renderer {
    std::ostream& out;
    void walk(const MergedNode& node, int depth,
              std::uint64_t parent_ns) const {
      for (const auto& [name, child] : node.children) {
        const double pct =
            parent_ns == 0
                ? 100.0
                : 100.0 * static_cast<double>(child->total_ns) /
                      static_cast<double>(parent_ns);
        char line[256];
        std::snprintf(line, sizeof(line), "%*s%-*s %10.6f s  x%-8llu %5.1f%%",
                      2 * depth, "",
                      std::max(1, 34 - 2 * depth), name.c_str(),
                      child->total_ns * 1e-9,
                      static_cast<unsigned long long>(child->count), pct);
        out << line << "\n";
        walk(*child, depth + 1, child->total_ns);
      }
    }
  };
  out << "phase                                   total        calls  of parent\n";
  Renderer{out}.walk(*root, 0, 0);
}

}  // namespace rdcn::obs
