#include "net/distance_matrix.hpp"

#include <algorithm>

namespace rdcn::net {

DistanceMatrix::DistanceMatrix(const Graph& g,
                               const std::vector<NodeId>& racks)
    : n_(racks.size()),
      d_(racks.size() * racks.size() + kGatherPadding, 0) {
  RDCN_ASSERT_MSG(g.finalized(), "graph must be finalized");
  std::vector<std::uint16_t> dist;
  for (std::size_t i = 0; i < n_; ++i) {
    g.bfs(racks[i], dist);
    for (std::size_t j = 0; j < n_; ++j) {
      const std::uint16_t dij = dist[racks[j]];
      RDCN_ASSERT_MSG(dij != Graph::kUnreachable,
                      "fixed network must connect all racks");
      d_[i * n_ + j] = dij;
      if (i != j) max_ = std::max(max_, dij);
    }
  }
}

DistanceMatrix DistanceMatrix::uniform(std::size_t num_racks,
                                       std::uint16_t dist) {
  DistanceMatrix m;
  m.n_ = num_racks;
  m.d_.assign(num_racks * num_racks + kGatherPadding, 0);
  std::fill(m.d_.begin(), m.d_.begin() + num_racks * num_racks, dist);
  for (std::size_t i = 0; i < num_racks; ++i) m.d_[i * num_racks + i] = 0;
  m.max_ = num_racks > 1 ? dist : 0;
  return m;
}

double DistanceMatrix::mean_distance() const {
  if (n_ < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      if (i != j) sum += d_[i * n_ + j];
  return sum / (static_cast<double>(n_) * static_cast<double>(n_ - 1));
}

}  // namespace rdcn::net
