// rdcn: undirected graph for the fixed (non-reconfigurable) network.
//
// The fixed network F in the paper is static for the lifetime of an
// experiment; only shortest-path distances between the n "racks"
// (top-of-rack switches) feed into the cost model.  The graph may contain
// auxiliary switch vertices (aggregation/core layers of a fat-tree) that are
// not racks; topology builders mark which vertices are racks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace rdcn::net {

using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = ~NodeId{0};

/// Simple undirected graph with CSR-style adjacency built on finalize().
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_vertices) : num_vertices_(num_vertices) {}

  std::size_t num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  NodeId add_vertex() {
    RDCN_ASSERT_MSG(!finalized_, "cannot mutate a finalized graph");
    return static_cast<NodeId>(num_vertices_++);
  }

  void add_edge(NodeId u, NodeId v) {
    RDCN_ASSERT_MSG(!finalized_, "cannot mutate a finalized graph");
    RDCN_ASSERT(u < num_vertices_ && v < num_vertices_);
    RDCN_ASSERT_MSG(u != v, "self-loops are not allowed");
    edges_.push_back({u, v});
  }

  /// Builds CSR adjacency; must be called before neighbor queries or BFS.
  void finalize();

  bool finalized() const noexcept { return finalized_; }

  /// Neighbors of u as a contiguous span (valid after finalize()).
  struct NeighborRange {
    const NodeId* first;
    const NodeId* last;
    const NodeId* begin() const noexcept { return first; }
    const NodeId* end() const noexcept { return last; }
    std::size_t size() const noexcept {
      return static_cast<std::size_t>(last - first);
    }
  };
  NeighborRange neighbors(NodeId u) const noexcept {
    RDCN_DCHECK(finalized_ && u < num_vertices_);
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  std::size_t degree(NodeId u) const noexcept {
    RDCN_DCHECK(finalized_ && u < num_vertices_);
    return offsets_[u + 1] - offsets_[u];
  }

  /// Single-source BFS hop distances; unreachable vertices get
  /// kUnreachable.  `out` is resized to num_vertices().
  static constexpr std::uint16_t kUnreachable = 0xFFFF;
  void bfs(NodeId source, std::vector<std::uint16_t>& out) const;

  /// True iff every vertex can reach every other.
  bool connected() const;

  const std::vector<std::pair<NodeId, NodeId>>& edge_list() const noexcept {
    return edges_;
  }

 private:
  std::size_t num_vertices_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adj_;
  bool finalized_ = false;
};

}  // namespace rdcn::net
