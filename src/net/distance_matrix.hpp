// rdcn: all-pairs rack-to-rack distance matrix.
//
// The cost model only ever asks "how many hops between rack s and rack t on
// the fixed network" (ℓe in the paper), so distances are precomputed once
// per topology by BFS from every rack and stored densely as uint16.  For the
// paper's scales (n = 50..100 racks) the matrix is a few KB and lookups are
// a single indexed load.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "net/graph.hpp"

namespace rdcn::net {

class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Computes rack-to-rack distances on `g`.  `racks[i]` is the graph vertex
  /// hosting logical rack i; logical ids 0..racks.size()-1 are what the
  /// matching layer uses.
  DistanceMatrix(const Graph& g, const std::vector<NodeId>& racks);

  /// Uniform matrix: every pair at distance `dist` (the paper's uniform
  /// case has ℓe = 1 for all pairs).
  static DistanceMatrix uniform(std::size_t num_racks, std::uint16_t dist);

  std::size_t num_racks() const noexcept { return n_; }

  std::uint16_t operator()(std::uint32_t a, std::uint32_t b) const noexcept {
    RDCN_DCHECK(a < n_ && b < n_);
    return d_[static_cast<std::size_t>(a) * n_ + b];
  }

  /// Storage is over-allocated by this many u16 elements beyond n*n, so
  /// the 32-bit gathers of the SIMD kernel layer (which read 2 bytes past
  /// the addressed element — see the gather contract in common/simd.hpp)
  /// stay in bounds at every valid index.
  static constexpr std::size_t kGatherPadding = 8;

  /// Gather-friendly raw view: row-major u16 storage, entry (a, b) at
  /// index a * num_racks() + b, padded per kGatherPadding.  Batch serve
  /// loops feed these indices straight into simd::gather_u16 /
  /// simd::gather_sum_u16 (index values must stay below 2^31 — see the
  /// gather contract in common/simd.hpp).
  const std::uint16_t* data() const noexcept { return d_.data(); }

  std::uint16_t max_distance() const noexcept { return max_; }

  /// Mean off-diagonal distance (used in workload/report analytics).
  double mean_distance() const;

 private:
  std::size_t n_ = 0;
  std::uint16_t max_ = 0;
  std::vector<std::uint16_t> d_;
};

}  // namespace rdcn::net
