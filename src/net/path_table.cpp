#include "net/path_table.hpp"

#include <algorithm>

#include "common/flat_hash.hpp"

namespace rdcn::net {

PathTable::PathTable(const Graph& g, const std::vector<NodeId>& racks)
    : n_(racks.size()), paths_(racks.size() * racks.size()) {
  RDCN_ASSERT_MSG(g.finalized(), "graph must be finalized");

  // Edge id lookup: canonical (lo<<32|hi) vertex pair -> edge index.
  FlatMap<EdgeId> edge_ids(g.num_edges());
  for (std::size_t i = 0; i < g.edge_list().size(); ++i) {
    const auto& [u, v] = g.edge_list()[i];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
    edge_ids[key] = static_cast<EdgeId>(i);
  }
  auto edge_between = [&](NodeId u, NodeId v) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
    const EdgeId* id = edge_ids.find(key);
    RDCN_ASSERT_MSG(id != nullptr, "BFS tree edge missing from edge list");
    return *id;
  };

  std::vector<NodeId> parent(g.num_vertices());
  std::vector<std::uint8_t> visited(g.num_vertices());
  std::vector<NodeId> queue;
  for (std::size_t a = 0; a < n_; ++a) {
    // BFS with parent tracking from racks[a].
    std::fill(visited.begin(), visited.end(), 0);
    queue.clear();
    queue.push_back(racks[a]);
    visited[racks[a]] = 1;
    parent[racks[a]] = racks[a];
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (NodeId w : g.neighbors(u)) {
        if (!visited[w]) {
          visited[w] = 1;
          parent[w] = u;
          queue.push_back(w);
        }
      }
    }
    for (std::size_t b = 0; b < n_; ++b) {
      if (a == b) continue;
      RDCN_ASSERT_MSG(visited[racks[b]], "racks must be connected");
      std::vector<EdgeId>& path = paths_[a * n_ + b];
      NodeId cur = racks[b];
      while (cur != racks[a]) {
        path.push_back(edge_between(cur, parent[cur]));
        cur = parent[cur];
      }
      std::reverse(path.begin(), path.end());
    }
  }
}

}  // namespace rdcn::net
