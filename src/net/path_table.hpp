// rdcn: explicit shortest paths between racks.
//
// The matching layer only needs hop counts (net/distance_matrix.hpp); the
// flow-level simulator (src/flowsim) needs the actual links a flow crosses
// to model capacity sharing.  PathTable stores, for every rack pair, one
// BFS shortest path through the switch-level graph as a sequence of edge
// ids (edge id = index into Graph::edge_list()).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "net/graph.hpp"

namespace rdcn::net {

using EdgeId = std::uint32_t;

class PathTable {
 public:
  PathTable() = default;

  /// Precomputes one shortest path per rack pair (BFS tree per source, so
  /// paths from a common source share links — consistent with ECMP-less
  /// deterministic routing).
  PathTable(const Graph& g, const std::vector<NodeId>& racks);

  std::size_t num_racks() const noexcept { return n_; }

  /// Edge ids (into Graph::edge_list()) along the path from rack a to
  /// rack b; empty for a == b.
  const std::vector<EdgeId>& path(std::uint32_t a, std::uint32_t b) const {
    RDCN_DCHECK(a < n_ && b < n_);
    return paths_[a * n_ + b];
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::vector<EdgeId>> paths_;
};

}  // namespace rdcn::net
