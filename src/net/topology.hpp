// rdcn: fixed-network topology builders.
//
// The paper evaluates on a fat-tree (the "typical fat-tree based datacenter
// topology", §3.1, with 100 racks for the Facebook clusters and 50 for the
// Microsoft cluster) and uses a star graph in the lower-bound construction
// (§2.4).  The remaining builders cover the "any other static network"
// remark in §3.1 and feed the topology-sensitivity ablation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/distance_matrix.hpp"
#include "net/graph.hpp"

namespace rdcn::net {

/// A built topology: the full switch-level graph plus the mapping from
/// logical rack ids (what the matching layer sees) to graph vertices, and
/// the precomputed rack-to-rack distance matrix.
struct Topology {
  std::string name;
  Graph graph;
  std::vector<NodeId> racks;
  DistanceMatrix distances;

  std::size_t num_racks() const noexcept { return racks.size(); }
};

/// k-ary fat-tree (Al-Fares et al.): k pods, each with k/2 edge and k/2
/// aggregation switches, and (k/2)^2 core switches.  Racks are the edge
/// (ToR) switches.  If `num_racks` is smaller than the k^2/2 available edge
/// switches, the first `num_racks` (pod-major order) are used; k is chosen
/// as the smallest even k with k^2/2 >= num_racks.
///
/// Rack-to-rack hop counts: 2 within a pod (via aggregation), 4 across pods
/// (via core) — matching the cost structure of §3.1.
Topology make_fat_tree(std::size_t num_racks);

/// Explicit-k variant (k even, >= 2) exposing the full k^2/2 racks.
Topology make_fat_tree_k(std::size_t k);

/// Three-stage folded Clos: racks at the leaves, `num_spines` spine
/// switches, every leaf connected to every spine (leaf-spine fabric).
/// All distinct racks are 2 hops apart.
Topology make_leaf_spine(std::size_t num_racks, std::size_t num_spines);

/// Star: one hub vertex, racks at the points (the Lemma 1 construction:
/// n+1 vertices, every rack 2 hops from every other, 1 from the hub).
/// Racks are the points; the hub is not a rack.
Topology make_star(std::size_t num_racks);

/// Path graph over racks (worst-case diameter; stresses large ℓe).
Topology make_line(std::size_t num_racks);

/// Cycle over racks.
Topology make_ring(std::size_t num_racks);

/// 2-D torus, rows x cols racks.
Topology make_torus(std::size_t rows, std::size_t cols);

/// Hypercube with 2^dim racks.
Topology make_hypercube(std::size_t dim);

/// Random d-regular-ish graph (expander-like, Jellyfish-style): each vertex
/// gets degree ~d via a stub-matching construction; retries until connected.
Topology make_random_regular(std::size_t num_racks, std::size_t degree,
                             Xoshiro256& rng);

/// Complete graph over racks (every ℓe = 1: the uniform case of §2).
Topology make_complete(std::size_t num_racks);

}  // namespace rdcn::net
