#include "net/topology.hpp"

#include <algorithm>
#include <utility>

namespace rdcn::net {

namespace {

Topology finish(std::string name, Graph g, std::vector<NodeId> racks) {
  g.finalize();
  RDCN_ASSERT_MSG(g.connected(), "topology must be connected");
  Topology t;
  t.name = std::move(name);
  t.distances = DistanceMatrix(g, racks);
  t.graph = std::move(g);
  t.racks = std::move(racks);
  return t;
}

}  // namespace

Topology make_fat_tree_k(std::size_t k) {
  RDCN_ASSERT_MSG(k >= 2 && k % 2 == 0, "fat-tree requires even k >= 2");
  const std::size_t half = k / 2;
  const std::size_t num_pods = k;
  const std::size_t edge_per_pod = half;
  const std::size_t agg_per_pod = half;
  const std::size_t num_core = half * half;

  Graph g(num_pods * (edge_per_pod + agg_per_pod) + num_core);
  // Vertex layout: per pod [edge switches | aggregation switches], then core.
  auto edge_sw = [&](std::size_t pod, std::size_t i) {
    return static_cast<NodeId>(pod * (edge_per_pod + agg_per_pod) + i);
  };
  auto agg_sw = [&](std::size_t pod, std::size_t i) {
    return static_cast<NodeId>(pod * (edge_per_pod + agg_per_pod) +
                               edge_per_pod + i);
  };
  auto core_sw = [&](std::size_t i) {
    return static_cast<NodeId>(num_pods * (edge_per_pod + agg_per_pod) + i);
  };

  for (std::size_t pod = 0; pod < num_pods; ++pod) {
    // Full bipartite edge<->aggregation inside the pod.
    for (std::size_t e = 0; e < edge_per_pod; ++e)
      for (std::size_t a = 0; a < agg_per_pod; ++a)
        g.add_edge(edge_sw(pod, e), agg_sw(pod, a));
    // Aggregation switch a connects to core group a (half cores each).
    for (std::size_t a = 0; a < agg_per_pod; ++a)
      for (std::size_t c = 0; c < half; ++c)
        g.add_edge(agg_sw(pod, a), core_sw(a * half + c));
  }

  std::vector<NodeId> racks;
  racks.reserve(num_pods * edge_per_pod);
  for (std::size_t pod = 0; pod < num_pods; ++pod)
    for (std::size_t e = 0; e < edge_per_pod; ++e)
      racks.push_back(edge_sw(pod, e));

  return finish("fat_tree_k" + std::to_string(k), std::move(g),
                std::move(racks));
}

Topology make_fat_tree(std::size_t num_racks) {
  RDCN_ASSERT_MSG(num_racks >= 2, "need at least two racks");
  std::size_t k = 2;
  while (k * k / 2 < num_racks) k += 2;
  Topology t = make_fat_tree_k(k);
  if (t.racks.size() > num_racks) {
    t.racks.resize(num_racks);
    t.distances = DistanceMatrix(t.graph, t.racks);
  }
  t.name = "fat_tree_n" + std::to_string(num_racks);
  return t;
}

Topology make_leaf_spine(std::size_t num_racks, std::size_t num_spines) {
  RDCN_ASSERT_MSG(num_racks >= 2 && num_spines >= 1,
                  "leaf-spine needs >=2 leaves and >=1 spine");
  Graph g(num_racks + num_spines);
  std::vector<NodeId> racks(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i) {
    racks[i] = static_cast<NodeId>(i);
    for (std::size_t s = 0; s < num_spines; ++s)
      g.add_edge(static_cast<NodeId>(i),
                 static_cast<NodeId>(num_racks + s));
  }
  return finish("leaf_spine", std::move(g), std::move(racks));
}

Topology make_star(std::size_t num_racks) {
  RDCN_ASSERT_MSG(num_racks >= 2, "star needs at least two points");
  Graph g(num_racks + 1);
  const NodeId hub = static_cast<NodeId>(num_racks);
  std::vector<NodeId> racks(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i) {
    racks[i] = static_cast<NodeId>(i);
    g.add_edge(static_cast<NodeId>(i), hub);
  }
  return finish("star", std::move(g), std::move(racks));
}

Topology make_line(std::size_t num_racks) {
  RDCN_ASSERT_MSG(num_racks >= 2, "line needs at least two racks");
  Graph g(num_racks);
  std::vector<NodeId> racks(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i)
    racks[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i + 1 < num_racks; ++i)
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  return finish("line", std::move(g), std::move(racks));
}

Topology make_ring(std::size_t num_racks) {
  RDCN_ASSERT_MSG(num_racks >= 3, "ring needs at least three racks");
  Graph g(num_racks);
  std::vector<NodeId> racks(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i)
    racks[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < num_racks; ++i)
    g.add_edge(static_cast<NodeId>(i),
               static_cast<NodeId>((i + 1) % num_racks));
  return finish("ring", std::move(g), std::move(racks));
}

Topology make_torus(std::size_t rows, std::size_t cols) {
  RDCN_ASSERT_MSG(rows >= 3 && cols >= 3, "torus needs >=3x3");
  Graph g(rows * cols);
  std::vector<NodeId> racks(rows * cols);
  auto id = [&](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      racks[r * cols + c] = id(r, c);
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return finish("torus", std::move(g), std::move(racks));
}

Topology make_hypercube(std::size_t dim) {
  RDCN_ASSERT_MSG(dim >= 1 && dim <= 20, "hypercube dim out of range");
  const std::size_t n = std::size_t{1} << dim;
  Graph g(n);
  std::vector<NodeId> racks(n);
  for (std::size_t i = 0; i < n; ++i) {
    racks[i] = static_cast<NodeId>(i);
    for (std::size_t d = 0; d < dim; ++d) {
      const std::size_t j = i ^ (std::size_t{1} << d);
      if (i < j) g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return finish("hypercube_d" + std::to_string(dim), std::move(g),
                std::move(racks));
}

Topology make_random_regular(std::size_t num_racks, std::size_t degree,
                             Xoshiro256& rng) {
  RDCN_ASSERT_MSG(num_racks >= degree + 1, "degree too high for n");
  RDCN_ASSERT_MSG((num_racks * degree) % 2 == 0,
                  "n*degree must be even for a regular graph");
  // Stub matching with rejection of self-loops/multi-edges; retried until
  // simple and connected (succeeds quickly for the sparse cases we use).
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(num_racks * degree);
    for (std::size_t v = 0; v < num_racks; ++v)
      for (std::size_t d = 0; d < degree; ++d)
        stubs.push_back(static_cast<NodeId>(v));
    shuffle(stubs.begin(), stubs.end(), rng);

    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(stubs.size() / 2);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
      NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v) ok = false;
      if (u > v) std::swap(u, v);
      edges.emplace_back(u, v);
    }
    if (!ok) continue;
    std::sort(edges.begin(), edges.end());
    if (std::adjacent_find(edges.begin(), edges.end()) != edges.end())
      continue;

    Graph g(num_racks);
    for (const auto& [u, v] : edges) g.add_edge(u, v);
    g.finalize();
    if (!g.connected()) continue;

    std::vector<NodeId> racks(num_racks);
    for (std::size_t i = 0; i < num_racks; ++i)
      racks[i] = static_cast<NodeId>(i);
    Topology t;
    t.name = "random_regular_d" + std::to_string(degree);
    t.distances = DistanceMatrix(g, racks);
    t.graph = std::move(g);
    t.racks = std::move(racks);
    return t;
  }
  RDCN_ASSERT_MSG(false, "failed to sample a connected regular graph");
  return {};
}

Topology make_complete(std::size_t num_racks) {
  RDCN_ASSERT_MSG(num_racks >= 2, "complete graph needs at least two racks");
  Graph g(num_racks);
  std::vector<NodeId> racks(num_racks);
  for (std::size_t i = 0; i < num_racks; ++i)
    racks[i] = static_cast<NodeId>(i);
  for (std::size_t i = 0; i < num_racks; ++i)
    for (std::size_t j = i + 1; j < num_racks; ++j)
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
  return finish("complete", std::move(g), std::move(racks));
}

}  // namespace rdcn::net
