#include "net/graph.hpp"

#include <algorithm>

namespace rdcn::net {

void Graph::finalize() {
  RDCN_ASSERT_MSG(!finalized_, "finalize() called twice");
  offsets_.assign(num_vertices_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= num_vertices_; ++i) offsets_[i] += offsets_[i - 1];
  adj_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    adj_[cursor[u]++] = v;
    adj_[cursor[v]++] = u;
  }
  finalized_ = true;
}

void Graph::bfs(NodeId source, std::vector<std::uint16_t>& out) const {
  RDCN_ASSERT_MSG(finalized_, "bfs() requires a finalized graph");
  RDCN_ASSERT(source < num_vertices_);
  out.assign(num_vertices_, kUnreachable);
  std::vector<NodeId> frontier, next;
  frontier.reserve(num_vertices_);
  next.reserve(num_vertices_);
  out[source] = 0;
  frontier.push_back(source);
  std::uint16_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId w : neighbors(u)) {
        if (out[w] == kUnreachable) {
          out[w] = depth;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
}

bool Graph::connected() const {
  RDCN_ASSERT_MSG(finalized_, "connected() requires a finalized graph");
  if (num_vertices_ == 0) return true;
  std::vector<std::uint16_t> dist;
  bfs(0, dist);
  return std::all_of(dist.begin(), dist.end(),
                     [](std::uint16_t d) { return d != kUnreachable; });
}

}  // namespace rdcn::net
