#include "common/param_map.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#if !defined(__cpp_lib_to_chars)
#include <locale>
#include <sstream>
#endif

namespace rdcn {

namespace detail {

std::string trim(const std::string& s) {
  std::size_t begin = 0, end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

}  // namespace detail

namespace {

using detail::split;
using detail::trim;

[[noreturn]] void conversion_error(const std::string& key,
                                   const std::string& value,
                                   const char* type) {
  throw SpecError("parameter '" + key + "': cannot parse '" + value +
                  "' as " + type);
}

}  // namespace

std::uint64_t ParamMap::parse_uint(const std::string& key,
                                   const std::string& value) {
  std::uint64_t out = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end)
    conversion_error(key, value, "an unsigned integer");
  return out;
}

std::int64_t ParamMap::parse_int(const std::string& key,
                                 const std::string& value) {
  std::int64_t out = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end)
    conversion_error(key, value, "an integer");
  return out;
}

double ParamMap::parse_double(const std::string& key,
                              const std::string& value) {
  // std::strtod honors the global C locale — a host running under de_DE
  // rejects "0.5" — and accepts forms the from_chars-parsed integers don't
  // mirror (hex floats, "inf", "nan").  Parse locale-free instead:
  // decimal/scientific forms only, full consumption, finite results.
  if (value.empty()) conversion_error(key, value, "a number");
  double out = 0.0;
  const char* begin = value.data();
  const char* end = begin + value.size();
#if defined(__cpp_lib_to_chars)
  const auto [ptr, ec] =
      std::from_chars(begin, end, out, std::chars_format::general);
  if (ec != std::errc{} || ptr != end || !std::isfinite(out))
    conversion_error(key, value, "a finite number");
#else
  // Fallback for standard libraries without floating-point from_chars:
  // restrict the alphabet to the decimal forms from_chars would accept
  // (this rejects hex floats, inf, nan, and locale decimal commas), then
  // parse with a stream pinned to the classic "C" locale.
  if (value.find_first_not_of("0123456789.eE+-") != std::string::npos ||
      value[0] == '+' || value == "-")
    conversion_error(key, value, "a finite number");
  std::istringstream in(value);
  in.imbue(std::locale::classic());
  in >> out;
  if (in.fail() || !in.eof() || !std::isfinite(out))
    conversion_error(key, value, "a finite number");
#endif
  return out;
}

bool ParamMap::parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes" || value == "on")
    return true;
  if (value == "false" || value == "0" || value == "no" || value == "off")
    return false;
  conversion_error(key, value, "a boolean (true/false/1/0/yes/no/on/off)");
}

ParamMap ParamMap::parse(const std::string& text) {
  ParamMap out;
  if (trim(text).empty()) return out;
  for (const std::string& raw : split(text, ',')) {
    const std::string item = trim(raw);
    if (item.empty())
      throw SpecError("empty parameter in spec '" + text + "'");
    const std::size_t eq = item.find('=');
    std::string key = eq == std::string::npos ? item : trim(item.substr(0, eq));
    std::string value =
        eq == std::string::npos ? "true" : trim(item.substr(eq + 1));
    if (key.empty())
      throw SpecError("parameter with empty key in spec '" + text + "'");
    if (out.contains(key))
      throw SpecError("duplicate parameter '" + key + "' in spec '" + text +
                      "'");
    out.entries_.push_back({std::move(key), std::move(value), false});
  }
  return out;
}

namespace {

void append_entry(std::string& out, const std::string& key,
                  const std::string& value) {
  if (!out.empty()) out += ',';
  out += key;
  if (value != "true") {
    out += '=';
    out += value;
  }
}

}  // namespace

std::string ParamMap::to_string() const {
  std::string out;
  for (const Entry& e : entries_) append_entry(out, e.key, e.value);
  return out;
}

std::string ParamMap::canonical_string() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  std::string out;
  for (const Entry* e : sorted) append_entry(out, e->key, e->value);
  return out;
}

void ParamMap::set(const std::string& key, const std::string& value) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.value = value;
      return;
    }
  }
  entries_.push_back({key, value, false});
}

bool ParamMap::contains(const std::string& key) const noexcept {
  // Deliberately NOT routed through find(): contains() is a pure probe and
  // must not mark the entry consumed, or a key checked only via contains()
  // would silently escape require_all_consumed's unknown-key detection.
  for (const Entry& e : entries_)
    if (e.key == key) return true;
  return false;
}

std::vector<std::string> ParamMap::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.key);
  return out;
}

const std::string* ParamMap::find(const std::string& key) const noexcept {
  for (const Entry& e : entries_) {
    if (e.key == key) {
      e.consumed = true;
      return &e.value;
    }
  }
  return nullptr;
}

std::vector<std::string> ParamMap::unconsumed_keys() const {
  std::vector<std::string> out;
  for (const Entry& e : entries_)
    if (!e.consumed) out.push_back(e.key);
  return out;
}

void ParamMap::require_all_consumed(const std::string& context) const {
  const std::vector<std::string> unknown = unconsumed_keys();
  if (unknown.empty()) return;
  std::string msg = context + ": unknown parameter";
  if (unknown.size() > 1) msg += 's';
  for (std::size_t i = 0; i < unknown.size(); ++i)
    msg += (i == 0 ? " '" : ", '") + unknown[i] + "'";
  throw SpecError(msg);
}

Spec Spec::parse(const std::string& text) {
  const std::string trimmed = trim(text);
  const std::size_t colon = trimmed.find(':');
  Spec out;
  out.name = trim(colon == std::string::npos ? trimmed
                                             : trimmed.substr(0, colon));
  if (out.name.empty()) throw SpecError("spec '" + text + "' has no name");
  if (colon != std::string::npos)
    out.params = ParamMap::parse(trimmed.substr(colon + 1));
  return out;
}

std::string Spec::to_string() const {
  const std::string p = params.to_string();
  return p.empty() ? name : name + ":" + p;
}

std::string Spec::canonical_string() const {
  const std::string p = params.canonical_string();
  return p.empty() ? name : name + ":" + p;
}

}  // namespace rdcn
