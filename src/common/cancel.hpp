// rdcn: cooperative cancellation for long-running work.
//
// A CancelToken is a copyable handle onto one shared cancellation flag.
// The producer (a serving daemon, a driver reacting to a signal) keeps one
// copy and calls request_cancel(); consumers (the simulator's chunk loop,
// the thread pool's index drain) poll cancelled() at natural boundaries —
// a serve chunk, a parallel-for index — so a cancelled run stops within
// one boundary without any forced unwinding.  Cancellation is cooperative
// and one-way: once requested it cannot be un-requested.
//
// The default-constructed token is *inert*: it is never cancelled and
// request_cancel() is a no-op.  This makes the token cheap to thread
// through APIs as a defaulted parameter — callers that don't cancel pay a
// null-pointer check per boundary.  Use CancelToken::make() to obtain a
// token that can actually fire.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

namespace rdcn {

/// Thrown by run loops when their token fires mid-run.  Deliberately NOT a
/// SpecError: cancellation is an outcome the caller asked for, not a
/// malformed input, and serving layers report the two differently.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& message)
      : std::runtime_error(message) {}
};

class CancelToken {
 public:
  /// Inert token: cancelled() is always false, request_cancel() a no-op.
  CancelToken() = default;

  /// A live token backed by a fresh shared flag; all copies observe the
  /// same cancellation.
  static CancelToken make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool cancellable() const noexcept { return flag_ != nullptr; }

  bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  void request_cancel() const noexcept {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_release);
  }

  /// The underlying flag (nullptr for inert tokens) — for APIs that poll a
  /// raw atomic on a hot path (ThreadPool::run).  The pointer stays valid
  /// as long as any token copy is alive.
  const std::atomic<bool>* raw() const noexcept { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace rdcn
