// rdcn: assertion macros.
//
// RDCN_ASSERT is active in all build types (the library is a research
// artifact: silent invariant violations would invalidate measurements).
// RDCN_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rdcn::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "rdcn assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace rdcn::detail

#define RDCN_ASSERT(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::rdcn::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);    \
  } while (0)

#define RDCN_ASSERT_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) ::rdcn::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define RDCN_DCHECK(expr) ((void)0)
#else
#define RDCN_DCHECK(expr) RDCN_ASSERT(expr)
#endif
