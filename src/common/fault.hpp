// rdcn: deterministic fault injection for resilience testing.
//
// A fault *point* is a named site in production code — a socket send, a
// cache write, an executor launch — that asks "should I fail here, now?"
// before doing its real work.  Tests (or an operator reproducing an
// incident) *arm* points with a trigger: fire after the first N
// evaluations, at most M times, and/or with probability p from a seeded
// generator — so every failure a test provokes is reproducible.
//
// The subsystem is inert by default and designed to cost nothing when
// disabled: `fault::fire(point)` compiles to one relaxed atomic load and
// a never-taken branch until something is armed (the perf gate's golden
// anchors stay green with the hooks compiled in).  Only once a point is
// armed does evaluation take the registry mutex.
//
// Arming:
//   * programmatically: fault::arm("serve.send.short_write", {.after=3});
//   * via spec string:  fault::arm_from_spec("a=times:1;b=after:2,p:0.5")
//   * via environment:  RDCN_FAULTS with the same syntax (picked up by
//     Daemon::start, so a spawned daemon can be fault-armed from a test).
//
// Spec grammar, mirroring the scenario compact-spec style:
//   faults  := point-spec (';' point-spec)*
//   point   := name ['=' trigger (',' trigger)*]    bare name = always fire
//   trigger := 'after:N' | 'times:N' | 'p:F' | 'seed:N'
//
// Points used by the serving stack (see serve/daemon.cpp, disk_cache.cpp):
//   serve.send.short_write   truncate one socket write, mark conn broken
//   serve.send.drop          shut the connection down instead of sending
//   serve.admit.reject       force a REJECT backpressure reply
//   serve.executor.crash     throw a non-SpecError from an executor
//   serve.disk_cache.torn_write   commit a truncated cache entry
//   serve.disk_cache.write_fail   drop a cache write on the floor
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rdcn::fault {

/// One point's firing rule.  Evaluation k (0-based) fires iff
/// k >= after, fewer than `times` firings have happened, and a draw from
/// the point's seeded stream lands under `probability`.
struct Trigger {
  std::uint64_t after = 0;  ///< skip the first `after` evaluations
  std::uint64_t times = std::numeric_limits<std::uint64_t>::max();
  double probability = 1.0;  ///< fire chance per eligible evaluation
  std::uint64_t seed = 0x5eed'fa17ULL;  ///< stream for `probability` draws
};

namespace detail {
/// True iff at least one point is armed anywhere in the process.  The
/// only state the disabled fast path touches.
extern std::atomic<bool> g_armed;
/// Slow path: full trigger evaluation under the registry mutex.
bool should_fire(const char* point);
}  // namespace detail

/// True when any point is armed (cheap, callable on hot paths).
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// The production-code hook: true when `point` is armed and its trigger
/// fires for this evaluation.  One relaxed load when nothing is armed.
inline bool fire(const char* point) {
  return armed() && detail::should_fire(point);
}

/// Arms (or re-arms, resetting counters) one point.
void arm(const std::string& point, const Trigger& trigger = {});

/// Disarms one point / everything.  disarm_all() also resets counters and
/// is what test fixtures call between cases.
void disarm(const std::string& point);
void disarm_all();

/// Parses and arms a fault spec string (grammar above).  Empty string is
/// a no-op.  Throws SpecError on malformed specs.
void arm_from_spec(const std::string& spec);

/// arm_from_spec(getenv("RDCN_FAULTS")); no-op when unset.
void arm_from_env();

/// How many times `point` fired / was evaluated since armed (0 for
/// unknown points).  Tests assert on these.
std::uint64_t fire_count(const std::string& point);
std::uint64_t eval_count(const std::string& point);

/// Names of currently armed points, sorted (diagnostics/logging).
std::vector<std::string> armed_points();

/// Optional observer invoked (outside the registry mutex) each time a
/// point fires.  rdcn_obs installs one to count firings per point;
/// common/ stays dependency-free.  Not called on the disarmed fast path.
using FireObserver = void (*)(const char* point);
void set_fire_observer(FireObserver observer);

}  // namespace rdcn::fault
