// rdcn: small-size-optimized vector.
//
// Per-node adjacency lists in a b-matching hold at most b entries (b is 3-18
// in all experiments), so inline storage avoids one heap allocation per node
// and keeps neighbor scans on a single cache line.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>

#include "common/assert.hpp"

namespace rdcn {

/// Vector with N elements of inline storage; spills to the heap beyond N.
/// Only supports trivially copyable T (all uses are ids/PODs), which keeps
/// relocation a memcpy.
template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable T");

 public:
  SmallVector() noexcept = default;

  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { copy_from(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { release(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) noexcept {
    RDCN_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    RDCN_DCHECK(i < size_);
    return data_[i];
  }

  T& back() noexcept {
    RDCN_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data_[size_++] = v;
  }

  void pop_back() noexcept {
    RDCN_DCHECK(size_ > 0);
    --size_;
  }

  void clear() noexcept { size_ = 0; }

  /// Removes the element at index i by swapping in the last element.
  /// O(1); does not preserve order (callers never rely on order).
  void swap_erase(std::size_t i) noexcept {
    RDCN_DCHECK(i < size_);
    data_[i] = data_[size_ - 1];
    --size_;
  }

  /// Removes the first occurrence of v (if any); returns whether removed.
  bool erase_value(const T& v) noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] == v) {
        swap_erase(i);
        return true;
      }
    }
    return false;
  }

  bool contains(const T& v) const noexcept {
    return std::find(begin(), end(), v) != end();
  }

 private:
  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = heap;
    capacity_ = new_cap;
  }

  void release() noexcept {
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  void copy_from(const SmallVector& other) {
    if (other.size_ > N) {
      data_ = static_cast<T*>(::operator new(other.capacity_ * sizeof(T)));
      capacity_ = other.capacity_;
    }
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void move_from(SmallVector&& other) noexcept {
    if (other.data_ == other.inline_data()) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(storage_));
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace rdcn
