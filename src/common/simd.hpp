// rdcn: the hot-kernel library — small, portable SIMD primitives behind
// runtime dispatch.
//
// The serve pipeline's innermost loops are four tiny, branch-free array
// kernels over the SoA columns PR 4/5 made resident:
//
//   argmin_u64_pair   BMA's eviction scan: least (usage, admitted_at) with
//                     index capture (lexicographic, lowest index on full
//                     ties, so results never depend on lane order),
//   find_u64/find_u32 membership scans over rack-row keys / b-matching
//                     adjacency (first occurrence),
//   gather_u16 /      batch-path distance gathers over the DistanceMatrix
//   gather_sum_u16    u16 storage (32-bit gathers; see the padding contract
//                     below).
//
// Each kernel has a scalar reference implementation (namespace simd::scalar,
// always compiled, the semantic contract) plus SSE4.2, AVX2, and (for the
// latency-critical argmin) AVX-512 variants selected ONCE at startup by
// runtime CPUID dispatch — the library is built without -mavx2 so one
// binary runs everywhere; vector code is gated behind per-function target
// attributes.  Setting the environment variable
// RDCN_FORCE_SCALAR_KERNELS (to anything but "0") pins the dispatch to the
// scalar reference; set_force_scalar() flips it programmatically (tests and
// perf_gate measure both modes in one process).
//
// Every vector variant is bit-identical to its scalar reference on every
// input (pinned by tests/simd_kernel_test.cpp on fuzzed rows, ties and
// empty/short rows included), so callers may treat dispatch as invisible:
// ledgers cannot depend on the selected ISA.
//
// Value-range contract: argmin_u64_pair compares with *signed* 64-bit SIMD
// compares (AVX2 has no unsigned epi64 compare), so inputs must stay below
// 2^63.  Usage counters and admission clock ticks are bounded by the trace
// length — checked by RDCN_DCHECK in the scalar reference.
//
// Gather contract: gather kernels issue 32-bit loads at base + 2*idx, so
// `base` must be readable for 2 bytes past the highest indexed element.
// net::DistanceMatrix pads its storage accordingly (see
// DistanceMatrix::data()); other callers must over-allocate by one element.
// Index values must stay below 2^31: the AVX2 gather interprets them as
// signed 32-bit offsets (callers with larger index spaces — a distance
// matrix needs ~46k racks to get there — must use direct lookups instead).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"

namespace rdcn::simd {

/// Index sentinel for "not found" / "empty input".
inline constexpr std::size_t kNpos = ~std::size_t{0};

/// Instruction-set level the dispatcher resolved to.
enum class Isa { kScalar, kSse42, kAvx2, kAvx512 };

/// The level the dispatched kernels actually run at (after the
/// RDCN_FORCE_SCALAR_KERNELS override and any set_force_scalar call).
Isa active_isa() noexcept;

/// The best level this CPU supports (ignores the scalar override).
Isa detected_isa() noexcept;

const char* isa_name(Isa isa) noexcept;

/// True when dispatch is pinned to the scalar reference (env var or hook).
bool force_scalar() noexcept;

/// Programmatic override of RDCN_FORCE_SCALAR_KERNELS: `true` pins the
/// dispatch to the scalar reference, `false` restores the detected ISA.
/// Test/bench hook — not meant for concurrent flipping while kernels run.
void set_force_scalar(bool force) noexcept;

// ---------------------------------------------------------------------------
// Scalar reference implementations — the semantic contract of every kernel.
// Always available (equivalence tests and microbenches call them directly).
// ---------------------------------------------------------------------------
namespace scalar {

/// Index of the lexicographically least (primary[i], secondary[i], i):
/// smallest primary, ties by smallest secondary, full ties by lowest index.
/// kNpos when n == 0.  Inputs must be < 2^63 (see header contract).
std::size_t argmin_u64_pair(const std::uint64_t* primary,
                            const std::uint64_t* secondary,
                            std::size_t n) noexcept;

/// First index with keys[i] == needle; kNpos when absent.
std::size_t find_u64(const std::uint64_t* keys, std::size_t n,
                     std::uint64_t needle) noexcept;
std::size_t find_u32(const std::uint32_t* keys, std::size_t n,
                     std::uint32_t needle) noexcept;

/// Sum of base[idx[i]] over i < n (u16 loads, u64 accumulation).
std::uint64_t gather_sum_u16(const std::uint16_t* base,
                             const std::uint32_t* idx,
                             std::size_t n) noexcept;

/// out[i] = base[idx[i]] for i < n.
void gather_u16(const std::uint16_t* base, const std::uint32_t* idx,
                std::size_t n, std::uint16_t* out) noexcept;

}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched entry points.  One relaxed atomic load selects the kernel
// table; rows short enough that vector setup cannot pay for itself take the
// inline scalar fast path below without touching the table.
// ---------------------------------------------------------------------------
namespace detail {

struct KernelTable {
  std::size_t (*argmin_u64_pair)(const std::uint64_t*, const std::uint64_t*,
                                 std::size_t) noexcept;
  std::size_t (*find_u64)(const std::uint64_t*, std::size_t,
                          std::uint64_t) noexcept;
  std::size_t (*find_u32)(const std::uint32_t*, std::size_t,
                          std::uint32_t) noexcept;
  std::uint64_t (*gather_sum_u16)(const std::uint16_t*, const std::uint32_t*,
                                  std::size_t) noexcept;
  void (*gather_u16)(const std::uint16_t*, const std::uint32_t*, std::size_t,
                     std::uint16_t*) noexcept;
  Isa isa;
};

/// The active table (never null after first use).
const KernelTable* active_kernels() noexcept;

}  // namespace detail

inline std::size_t argmin_u64_pair(const std::uint64_t* primary,
                                   const std::uint64_t* secondary,
                                   std::size_t n) noexcept {
  // A 4-lane vector pass cannot beat four branchless compares; keep the
  // smallest rows (b <= 4 in the paper's low range) off the dispatch table.
  if (n <= 4) return scalar::argmin_u64_pair(primary, secondary, n);
  return detail::active_kernels()->argmin_u64_pair(primary, secondary, n);
}

inline std::size_t find_u64(const std::uint64_t* keys, std::size_t n,
                            std::uint64_t needle) noexcept {
  if (n <= 4) return scalar::find_u64(keys, n, needle);
  return detail::active_kernels()->find_u64(keys, n, needle);
}

inline std::size_t find_u32(const std::uint32_t* keys, std::size_t n,
                            std::uint32_t needle) noexcept {
  if (n <= 8) return scalar::find_u32(keys, n, needle);
  return detail::active_kernels()->find_u32(keys, n, needle);
}

inline std::uint64_t gather_sum_u16(const std::uint16_t* base,
                                    const std::uint32_t* idx,
                                    std::size_t n) noexcept {
  if (n <= 8) return scalar::gather_sum_u16(base, idx, n);
  return detail::active_kernels()->gather_sum_u16(base, idx, n);
}

inline void gather_u16(const std::uint16_t* base, const std::uint32_t* idx,
                       std::size_t n, std::uint16_t* out) noexcept {
  if (n <= 8) return scalar::gather_u16(base, idx, n, out);
  return detail::active_kernels()->gather_u16(base, idx, n, out);
}

}  // namespace rdcn::simd
