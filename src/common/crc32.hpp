// rdcn: CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// One checksum for every durable byte the serving stack writes: the
// disk results cache (serve/disk_cache.hpp) and the run journal
// (serve/journal.hpp) both frame their records with it, so corruption
// tests can forge entries for either with the same helper.  Chainable:
// crc32(b, nb, crc32(a, na)) == crc32(ab, na+nb).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rdcn {

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace rdcn
