// rdcn: deterministic, fast pseudo-random number generation.
//
// The library never touches std::random_device or global state: every
// randomized component receives an explicitly seeded generator so that
// experiments are bit-reproducible.  Xoshiro256** is the workhorse
// (sub-nanosecond next(), passes BigCrush); SplitMix64 seeds it and
// derives independent child streams.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace rdcn {

/// SplitMix64: tiny splittable generator, used for seeding and for
/// deriving statistically independent child streams from a master seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: general-purpose 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64
  /// (the construction recommended by the xoshiro authors).
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection
  /// method: unbiased without a modulo on the hot path.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    RDCN_DCHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    RDCN_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derives a child generator with an independent stream.  Children of the
  /// same parent with different tags are pairwise independent for all
  /// practical purposes (distinct SplitMix64 trajectories).
  Xoshiro256 split(std::uint64_t tag) noexcept {
    return Xoshiro256(next() ^ (tag * 0xd1342543de82ef95ULL));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Geometric sample: number of failures before the first success of a
/// Bernoulli(p) process; returns values in {0, 1, 2, ...}.
std::uint64_t sample_geometric(Xoshiro256& rng, double p);

/// Exponential sample with rate lambda (> 0).
double sample_exponential(Xoshiro256& rng, double lambda);

/// Fisher-Yates shuffle of [first, last).
template <typename It>
void shuffle(It first, It last, Xoshiro256& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.next_below(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

/// Precomputed Zipf(s) sampler over {0, ..., n-1} using inverse-CDF binary
/// search on the cumulative weights (exact, O(log n) per sample).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t operator()(Xoshiro256& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

  /// Probability mass of rank i (for tests / analytics).
  double pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

/// Alias-method sampler for arbitrary discrete distributions: O(1) per
/// sample after O(n) preprocessing.  Used for traffic-matrix sampling where
/// millions of i.i.d. draws are needed (the Microsoft workload).
class AliasSampler {
 public:
  /// Weights need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t operator()(Xoshiro256& rng) const;

  std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace rdcn
