#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RDCN_SIMD_X86 1
#else
#define RDCN_SIMD_X86 0
#endif

namespace rdcn::simd {

// ---------------------------------------------------------------------------
// Scalar reference — the contract every vector variant must match bit-for-
// bit.  Branchless selects keep the loops tight (same shape as the old BMA
// scan) so the forced-scalar mode is a fair baseline, not a strawman.
// ---------------------------------------------------------------------------
namespace scalar {

std::size_t argmin_u64_pair(const std::uint64_t* primary,
                            const std::uint64_t* secondary,
                            std::size_t n) noexcept {
  std::size_t best = kNpos;
  std::uint64_t best_primary = ~std::uint64_t{0};
  std::uint64_t best_secondary = ~std::uint64_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    RDCN_DCHECK(primary[i] < (std::uint64_t{1} << 63) &&
                secondary[i] < (std::uint64_t{1} << 63));
    const bool better =
        (primary[i] < best_primary) |
        ((primary[i] == best_primary) & (secondary[i] < best_secondary));
    best_primary = better ? primary[i] : best_primary;
    best_secondary = better ? secondary[i] : best_secondary;
    best = better ? i : best;
  }
  return best;
}

std::size_t find_u64(const std::uint64_t* keys, std::size_t n,
                     std::uint64_t needle) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    if (keys[i] == needle) return i;
  return kNpos;
}

std::size_t find_u32(const std::uint32_t* keys, std::size_t n,
                     std::uint32_t needle) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    if (keys[i] == needle) return i;
  return kNpos;
}

std::uint64_t gather_sum_u16(const std::uint16_t* base,
                             const std::uint32_t* idx,
                             std::size_t n) noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += base[idx[i]];
  return sum;
}

void gather_u16(const std::uint16_t* base, const std::uint32_t* idx,
                std::size_t n, std::uint16_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = base[idx[i]];
}

}  // namespace scalar

#if RDCN_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 variants.  Built with per-function target attributes so the TU
// itself compiles without -mavx2; these bodies only execute after the
// dispatcher confirmed CPU support.
//
// The (primary, secondary) compares are *signed* epi64 (AVX2 has no
// unsigned 64-bit compare); the < 2^63 input contract makes them agree
// with the scalar unsigned compares.  Lanes are merged with a strictly-
// better-than update, so each lane retains its earliest minimum, and the
// final horizontal reduction breaks full ties by lowest index — exactly
// the scalar reference's first-occurrence semantics.
// ---------------------------------------------------------------------------
namespace {

/// One accumulator set of the unrolled argmin: running per-lane best
/// (primary, secondary, index), updated with a strictly-better-than
/// select so every lane retains its earliest minimum.
struct ArgminAcc {
  __m256i p, s, i;
};

__attribute__((target("avx2"), always_inline)) inline void argmin_step(
    ArgminAcc& acc, const std::uint64_t* primary,
    const std::uint64_t* secondary, std::size_t at, __m256i idx) noexcept {
  const __m256i p =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(primary + at));
  const __m256i s =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(secondary + at));
  const __m256i lt = _mm256_cmpgt_epi64(acc.p, p);
  const __m256i eq = _mm256_cmpeq_epi64(acc.p, p);
  const __m256i lt2 = _mm256_cmpgt_epi64(acc.s, s);
  const __m256i better = _mm256_or_si256(lt, _mm256_and_si256(eq, lt2));
  acc.p = _mm256_blendv_epi8(acc.p, p, better);
  acc.s = _mm256_blendv_epi8(acc.s, s, better);
  acc.i = _mm256_blendv_epi8(acc.i, idx, better);
}

/// Folds accumulator `b` into `a` under the full lexicographic
/// (primary, secondary, index) order.  Lane indices are globally distinct
/// across sets, so the index tiebreak reproduces the scalar reference's
/// first-occurrence semantics exactly.
__attribute__((target("avx2"), always_inline)) inline void argmin_merge(
    ArgminAcc& a, const ArgminAcc& b) noexcept {
  const __m256i ltp = _mm256_cmpgt_epi64(a.p, b.p);
  const __m256i eqp = _mm256_cmpeq_epi64(a.p, b.p);
  const __m256i lts = _mm256_cmpgt_epi64(a.s, b.s);
  const __m256i eqs = _mm256_cmpeq_epi64(a.s, b.s);
  const __m256i lti = _mm256_cmpgt_epi64(a.i, b.i);
  const __m256i better = _mm256_or_si256(
      ltp,
      _mm256_and_si256(eqp,
                       _mm256_or_si256(lts, _mm256_and_si256(eqs, lti))));
  a.p = _mm256_blendv_epi8(a.p, b.p, better);
  a.s = _mm256_blendv_epi8(a.s, b.s, better);
  a.i = _mm256_blendv_epi8(a.i, b.i, better);
}

__attribute__((target("avx2"))) ArgminAcc argmin_load(
    const std::uint64_t* primary, const std::uint64_t* secondary,
    std::size_t at) noexcept {
  return ArgminAcc{
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(primary + at)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(secondary + at)),
      _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(at)),
                       _mm256_setr_epi64x(0, 1, 2, 3))};
}

__attribute__((target("avx2"))) std::size_t argmin_u64_pair_avx2(
    const std::uint64_t* primary, const std::uint64_t* secondary,
    std::size_t n) noexcept {
  if (n < 8) return scalar::argmin_u64_pair(primary, secondary, n);
  // Independent accumulator sets break the compare->blend dependency chain
  // (the loop's latency bottleneck): four sets at 16 elements per
  // iteration on wide rows, two sets at 8 on the remainder/short rows.
  ArgminAcc a = argmin_load(primary, secondary, 0);
  ArgminAcc b = argmin_load(primary, secondary, 4);
  std::size_t i = 8;
  if (n >= 32) {
    ArgminAcc c = argmin_load(primary, secondary, 8);
    ArgminAcc d = argmin_load(primary, secondary, 12);
    __m256i idx_a = a.i;
    __m256i idx_b = b.i;
    __m256i idx_c = c.i;
    __m256i idx_d = d.i;
    const __m256i sixteen = _mm256_set1_epi64x(16);
    for (i = 16; i + 16 <= n; i += 16) {
      idx_a = _mm256_add_epi64(idx_a, sixteen);
      idx_b = _mm256_add_epi64(idx_b, sixteen);
      idx_c = _mm256_add_epi64(idx_c, sixteen);
      idx_d = _mm256_add_epi64(idx_d, sixteen);
      argmin_step(a, primary, secondary, i, idx_a);
      argmin_step(b, primary, secondary, i + 4, idx_b);
      argmin_step(c, primary, secondary, i + 8, idx_c);
      argmin_step(d, primary, secondary, i + 12, idx_d);
    }
    argmin_merge(a, c);
    argmin_merge(b, d);
  }
  for (; i + 8 <= n; i += 8) {
    // Indices rebuilt from i: this remainder loop runs at most once after
    // the 16-wide loop and dominates only short (n < 32) rows.
    const __m256i base = _mm256_set1_epi64x(static_cast<long long>(i));
    argmin_step(a, primary, secondary, i,
                _mm256_add_epi64(base, _mm256_setr_epi64x(0, 1, 2, 3)));
    argmin_step(b, primary, secondary, i + 4,
                _mm256_add_epi64(base, _mm256_setr_epi64x(4, 5, 6, 7)));
  }
  argmin_merge(a, b);
  // Horizontal reduction without touching the stack (32-byte stores read
  // back as 8-byte lanes stall on store-forwarding): fold the halves,
  // then the neighbor lanes, with the same lexicographic merge.  The
  // duplicated lanes a permute introduces are full (p, s, i) ties, which
  // the merge keeps stable.
  {
    const ArgminAcc swapped_halves{_mm256_permute4x64_epi64(a.p, 0x4E),
                                   _mm256_permute4x64_epi64(a.s, 0x4E),
                                   _mm256_permute4x64_epi64(a.i, 0x4E)};
    argmin_merge(a, swapped_halves);
    const ArgminAcc swapped_pairs{_mm256_permute4x64_epi64(a.p, 0xB1),
                                  _mm256_permute4x64_epi64(a.s, 0xB1),
                                  _mm256_permute4x64_epi64(a.i, 0xB1)};
    argmin_merge(a, swapped_pairs);
  }
  std::uint64_t bp = static_cast<std::uint64_t>(
      _mm256_extract_epi64(a.p, 0));
  std::uint64_t bs = static_cast<std::uint64_t>(
      _mm256_extract_epi64(a.s, 0));
  std::size_t best = static_cast<std::size_t>(
      _mm256_extract_epi64(a.i, 0));
  // Tail indices exceed every vector index, so strict less-than suffices.
  for (; i < n; ++i) {
    const bool better =
        (primary[i] < bp) | ((primary[i] == bp) & (secondary[i] < bs));
    bp = better ? primary[i] : bp;
    bs = better ? secondary[i] : bs;
    best = better ? i : best;
  }
  return best;
}

__attribute__((target("avx2"))) std::size_t find_u64_avx2(
    const std::uint64_t* keys, std::size_t n, std::uint64_t needle) noexcept {
  const __m256i want = _mm256_set1_epi64x(static_cast<long long>(needle));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi64(k, want));
    if (mask != 0)
      return i + static_cast<std::size_t>(__builtin_ctz(mask)) / 8;
  }
  for (; i < n; ++i)
    if (keys[i] == needle) return i;
  return kNpos;
}

__attribute__((target("avx2"))) std::size_t find_u32_avx2(
    const std::uint32_t* keys, std::size_t n, std::uint32_t needle) noexcept {
  const __m256i want = _mm256_set1_epi32(static_cast<int>(needle));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const int mask = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(k, want)));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  for (; i < n; ++i)
    if (keys[i] == needle) return i;
  return kNpos;
}

__attribute__((target("avx2"))) std::uint64_t gather_sum_u16_avx2(
    const std::uint16_t* base, const std::uint32_t* idx,
    std::size_t n) noexcept {
  // 32-bit gathers at base + 2*idx (scale 2) pull each u16 plus one stray
  // high half-word; the mask strips it.  Requires the 2-byte padding the
  // header contract prescribes.
  const __m256i lo16 = _mm256_set1_epi32(0xFFFF);
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i g = _mm256_and_si256(
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), v, 2),
        lo16);
    acc_lo = _mm256_add_epi64(
        acc_lo, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(g)));
    acc_hi = _mm256_add_epi64(
        acc_hi, _mm256_cvtepu32_epi64(_mm256_extracti128_si256(g, 1)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_add_epi64(acc_lo, acc_hi));
  std::uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += base[idx[i]];
  return sum;
}

__attribute__((target("avx2"))) void gather_u16_avx2(
    const std::uint16_t* base, const std::uint32_t* idx, std::size_t n,
    std::uint16_t* out) noexcept {
  const __m256i lo16 = _mm256_set1_epi32(0xFFFF);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i g = _mm256_and_si256(
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), v, 2),
        lo16);
    // packus over the two 128-bit halves emits lanes 0..7 in order.
    const __m128i packed = _mm_packus_epi32(_mm256_castsi256_si128(g),
                                            _mm256_extracti128_si256(g, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), packed);
  }
  for (; i < n; ++i) out[i] = base[idx[i]];
}

// ---------------------------------------------------------------------------
// AVX-512 argmin.  The AVX2 select loop is port-limited (epi64 compares
// and wide blends fight over the same ports); AVX-512 compares go to mask
// registers (vpcmpuq — natively *unsigned*, so not even the < 2^63
// contract is load-bearing here), mask logic is one k-op, and masked
// moves are single-uop — at twice the lane width.  Only argmin gets a
// 512-bit variant: it is the one kernel on the per-request critical path
// at large b; find/gather reuse the AVX2 bodies in the AVX-512 table.
//
// GCC 12's *unmasked* AVX-512 permute/extract intrinsics expand through
// _mm512_undefined_epi32() in the header, which trips a spurious
// -Wmaybe-uninitialized from the header itself (GCC PR105593); silence it
// for this section only.
// ---------------------------------------------------------------------------
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// One 8-lane accumulator set of the AVX-512 argmin.
struct ArgminAcc512 {
  __m512i p, s, i;
};

__attribute__((target("avx512f"), always_inline)) inline void argmin_step512(
    ArgminAcc512& acc, const std::uint64_t* primary,
    const std::uint64_t* secondary, std::size_t at, __m512i idx) noexcept {
  const __m512i p = _mm512_loadu_si512(primary + at);
  const __m512i s = _mm512_loadu_si512(secondary + at);
  const __mmask8 lt = _mm512_cmplt_epu64_mask(p, acc.p);
  const __mmask8 eq = _mm512_cmpeq_epu64_mask(p, acc.p);
  const __mmask8 lt2 = _mm512_cmplt_epu64_mask(s, acc.s);
  const __mmask8 better =
      static_cast<__mmask8>(lt | (eq & lt2));
  acc.p = _mm512_mask_mov_epi64(acc.p, better, p);
  acc.s = _mm512_mask_mov_epi64(acc.s, better, s);
  acc.i = _mm512_mask_mov_epi64(acc.i, better, idx);
}

/// Folds `b` into `a` under lexicographic (primary, secondary, index).
__attribute__((target("avx512f"), always_inline)) inline void argmin_merge512(
    ArgminAcc512& a, const ArgminAcc512& b) noexcept {
  const __mmask8 ltp = _mm512_cmplt_epu64_mask(b.p, a.p);
  const __mmask8 eqp = _mm512_cmpeq_epu64_mask(b.p, a.p);
  const __mmask8 lts = _mm512_cmplt_epu64_mask(b.s, a.s);
  const __mmask8 eqs = _mm512_cmpeq_epu64_mask(b.s, a.s);
  const __mmask8 lti = _mm512_cmplt_epu64_mask(b.i, a.i);
  const __mmask8 better =
      static_cast<__mmask8>(ltp | (eqp & (lts | (eqs & lti))));
  a.p = _mm512_mask_mov_epi64(a.p, better, b.p);
  a.s = _mm512_mask_mov_epi64(a.s, better, b.s);
  a.i = _mm512_mask_mov_epi64(a.i, better, b.i);
}

__attribute__((target("avx512f"))) std::size_t argmin_u64_pair_avx512(
    const std::uint64_t* primary, const std::uint64_t* secondary,
    std::size_t n) noexcept {
  if (n < 16) return argmin_u64_pair_avx2(primary, secondary, n);
  const __m512i lane_offsets = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  ArgminAcc512 a{_mm512_loadu_si512(primary), _mm512_loadu_si512(secondary),
                 lane_offsets};
  ArgminAcc512 b{
      _mm512_loadu_si512(primary + 8), _mm512_loadu_si512(secondary + 8),
      _mm512_add_epi64(lane_offsets, _mm512_set1_epi64(8))};
  __m512i idx_a = a.i;
  __m512i idx_b = b.i;
  const __m512i sixteen = _mm512_set1_epi64(16);
  std::size_t i = 16;
  for (; i + 16 <= n; i += 16) {
    idx_a = _mm512_add_epi64(idx_a, sixteen);
    idx_b = _mm512_add_epi64(idx_b, sixteen);
    argmin_step512(a, primary, secondary, i, idx_a);
    argmin_step512(b, primary, secondary, i + 8, idx_b);
  }
  argmin_merge512(a, b);
  // In-register horizontal reduction: fold 256-bit halves, then 128-bit
  // halves, then neighbor lanes.  Permute-duplicated lanes are full
  // (p, s, i) ties, which the merge keeps stable.
  {
    // permutexvar instead of shuffle_i64x2: same one-uop lane swap, and it
    // sidesteps a GCC 12 -Wmaybe-uninitialized false positive in the
    // unmasked shuffle's header wrapper.
    const __m512i half_swap = _mm512_setr_epi64(4, 5, 6, 7, 0, 1, 2, 3);
    const ArgminAcc512 h{_mm512_permutexvar_epi64(half_swap, a.p),
                         _mm512_permutexvar_epi64(half_swap, a.s),
                         _mm512_permutexvar_epi64(half_swap, a.i)};
    argmin_merge512(a, h);
    const ArgminAcc512 q{_mm512_permutex_epi64(a.p, 0x4E),
                         _mm512_permutex_epi64(a.s, 0x4E),
                         _mm512_permutex_epi64(a.i, 0x4E)};
    argmin_merge512(a, q);
    const ArgminAcc512 w{_mm512_permutex_epi64(a.p, 0xB1),
                         _mm512_permutex_epi64(a.s, 0xB1),
                         _mm512_permutex_epi64(a.i, 0xB1)};
    argmin_merge512(a, w);
  }
  std::uint64_t bp = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm512_castsi512_si128(a.p)));
  std::uint64_t bs = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm512_castsi512_si128(a.s)));
  std::size_t best = static_cast<std::size_t>(
      _mm_cvtsi128_si64(_mm512_castsi512_si128(a.i)));
  // Branchless scalar tail; tail indices exceed every vector index.
  for (; i < n; ++i) {
    const bool better =
        (primary[i] < bp) | ((primary[i] == bp) & (secondary[i] < bs));
    bp = better ? primary[i] : bp;
    bs = better ? secondary[i] : bs;
    best = better ? i : best;
  }
  return best;
}

#pragma GCC diagnostic pop

// ---------------------------------------------------------------------------
// SSE4.2 variants (2-lane epi64 / 4-lane epi32).  No gather instruction at
// this level — the gathers fall through to the scalar reference, which the
// dispatch table encodes directly.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2"))) std::size_t argmin_u64_pair_sse42(
    const std::uint64_t* primary, const std::uint64_t* secondary,
    std::size_t n) noexcept {
  if (n < 2) return scalar::argmin_u64_pair(primary, secondary, n);
  __m128i best_p = _mm_loadu_si128(reinterpret_cast<const __m128i*>(primary));
  __m128i best_s =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(secondary));
  __m128i best_i = _mm_set_epi64x(1, 0);
  __m128i idx = best_i;
  const __m128i two = _mm_set1_epi64x(2);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) {
    idx = _mm_add_epi64(idx, two);
    const __m128i p =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(primary + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(secondary + i));
    const __m128i lt = _mm_cmpgt_epi64(best_p, p);
    const __m128i eq = _mm_cmpeq_epi64(best_p, p);
    const __m128i lt2 = _mm_cmpgt_epi64(best_s, s);
    const __m128i better = _mm_or_si128(lt, _mm_and_si128(eq, lt2));
    best_p = _mm_blendv_epi8(best_p, p, better);
    best_s = _mm_blendv_epi8(best_s, s, better);
    best_i = _mm_blendv_epi8(best_i, idx, better);
  }
  alignas(16) std::uint64_t lane_p[2], lane_s[2], lane_i[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lane_p), best_p);
  _mm_store_si128(reinterpret_cast<__m128i*>(lane_s), best_s);
  _mm_store_si128(reinterpret_cast<__m128i*>(lane_i), best_i);
  std::size_t best = static_cast<std::size_t>(lane_i[0]);
  std::uint64_t bp = lane_p[0], bs = lane_s[0];
  const bool lane1 =
      lane_p[1] < bp ||
      (lane_p[1] == bp &&
       (lane_s[1] < bs || (lane_s[1] == bs && lane_i[1] < best)));
  if (lane1) {
    bp = lane_p[1];
    bs = lane_s[1];
    best = static_cast<std::size_t>(lane_i[1]);
  }
  for (; i < n; ++i) {
    const bool better =
        primary[i] < bp || (primary[i] == bp && secondary[i] < bs);
    if (better) {
      bp = primary[i];
      bs = secondary[i];
      best = i;
    }
  }
  return best;
}

__attribute__((target("sse4.2"))) std::size_t find_u64_sse42(
    const std::uint64_t* keys, std::size_t n, std::uint64_t needle) noexcept {
  const __m128i want = _mm_set1_epi64x(static_cast<long long>(needle));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi64(k, want));
    if (mask != 0)
      return i + static_cast<std::size_t>(__builtin_ctz(mask)) / 8;
  }
  for (; i < n; ++i)
    if (keys[i] == needle) return i;
  return kNpos;
}

__attribute__((target("sse4.2"))) std::size_t find_u32_sse42(
    const std::uint32_t* keys, std::size_t n, std::uint32_t needle) noexcept {
  const __m128i want = _mm_set1_epi32(static_cast<int>(needle));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    const int mask =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(k, want)));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  for (; i < n; ++i)
    if (keys[i] == needle) return i;
  return kNpos;
}

}  // namespace

#endif  // RDCN_SIMD_X86

namespace {

constexpr detail::KernelTable kScalarTable = {
    scalar::argmin_u64_pair, scalar::find_u64,   scalar::find_u32,
    scalar::gather_sum_u16,  scalar::gather_u16, Isa::kScalar,
};

#if RDCN_SIMD_X86
constexpr detail::KernelTable kSse42Table = {
    argmin_u64_pair_sse42,  find_u64_sse42,     find_u32_sse42,
    scalar::gather_sum_u16, scalar::gather_u16, Isa::kSse42,
};

constexpr detail::KernelTable kAvx2Table = {
    argmin_u64_pair_avx2, find_u64_avx2,   find_u32_avx2,
    gather_sum_u16_avx2,  gather_u16_avx2, Isa::kAvx2,
};

constexpr detail::KernelTable kAvx512Table = {
    argmin_u64_pair_avx512, find_u64_avx2,   find_u32_avx2,
    gather_sum_u16_avx2,    gather_u16_avx2, Isa::kAvx512,
};
#endif

const detail::KernelTable* native_table() noexcept {
#if RDCN_SIMD_X86
  static const detail::KernelTable* table = [] {
    if (__builtin_cpu_supports("avx512f")) return &kAvx512Table;
    if (__builtin_cpu_supports("avx2")) return &kAvx2Table;
    if (__builtin_cpu_supports("sse4.2")) return &kSse42Table;
    return &kScalarTable;
  }();
  return table;
#else
  return &kScalarTable;
#endif
}

bool env_force_scalar() noexcept {
  const char* value = std::getenv("RDCN_FORCE_SCALAR_KERNELS");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

std::atomic<bool>& forced_flag() noexcept {
  static std::atomic<bool> forced{env_force_scalar()};
  return forced;
}

std::atomic<const detail::KernelTable*>& active_table() noexcept {
  static std::atomic<const detail::KernelTable*> table{
      forced_flag().load(std::memory_order_relaxed) ? &kScalarTable
                                                    : native_table()};
  return table;
}

}  // namespace

const detail::KernelTable* detail::active_kernels() noexcept {
  return active_table().load(std::memory_order_relaxed);
}

Isa active_isa() noexcept { return detail::active_kernels()->isa; }

Isa detected_isa() noexcept { return native_table()->isa; }

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kSse42:
      return "sse4.2";
    case Isa::kScalar:
      return "scalar";
  }
  return "unknown";
}

bool force_scalar() noexcept {
  return forced_flag().load(std::memory_order_relaxed);
}

void set_force_scalar(bool force) noexcept {
  forced_flag().store(force, std::memory_order_relaxed);
  active_table().store(force ? &kScalarTable : native_table(),
                       std::memory_order_relaxed);
}

}  // namespace rdcn::simd
