// rdcn: open-addressing hash containers keyed by 64-bit integers.
//
// The matching algorithms keep one record per *node pair* that has ever
// been requested; on multi-hundred-thousand-request traces this map is the
// hottest data structure in the simulator.  std::unordered_map's
// node-per-entry layout is cache-hostile, so we provide a flat,
// linear-probing map with tombstone-free backward-shift deletion.
//
// Tagged layout (TurboHash-style cell/tag probing): occupancy and a 7-bit
// hash fingerprint live in a *separate* contiguous 1-byte tag array, so a
// probe sequence walks densely packed tags (64 per cache line) and touches
// the wide {key, value} slot array only when a tag matches.  With 7
// fingerprint bits a tag hit is a true key match ~127/128 of the time, so
// a lookup typically costs one tag-line read plus one slot read.
//
// Tag invariants:
//   * tags_[i] == kEmptyTag (0)  ⇔  slot i is unoccupied; the key/value in
//     an unoccupied slot are unspecified and must never be read;
//   * occupied tags have the high bit set (0x80 | top 7 bits of the mixed
//     hash), so they can never collide with kEmptyTag;
//   * backward-shift deletion moves tags in lockstep with slots, so there
//     are no tombstones and the two arrays always agree.
//
// Keys are required to be != kEmptyKey (0xFFFF'FFFF'FFFF'FFFF), which edge
// ids never are (see core/types.hpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace rdcn {

namespace detail {

/// Finalizer from MurmurHash3: good avalanche for integer keys.
inline std::uint64_t mix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace detail

/// Flat hash map from std::uint64_t to V with tagged linear probing.
///
/// Deletion uses backward shifting, so lookup never scans tombstones and
/// the table stays dense under churn (matching edges are added and removed
/// constantly).  Iteration order is unspecified.
template <typename V>
class FlatMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatMap() { rehash(16); }
  explicit FlatMap(std::size_t capacity_hint) {
    std::size_t cap = 16;
    while (cap < capacity_hint * 2) cap <<= 1;
    rehash(cap);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    std::fill(tags_.begin(), tags_.end(), kEmptyTag);
    for (auto& s : slots_) s.key = kEmptyKey;  // key-scrub invariant
    size_ = 0;
  }

  /// Single-probe upsert: returns {pointer to value, inserted?}; the value
  /// is default-constructed when newly inserted.
  std::pair<V*, bool> try_emplace(std::uint64_t key) {
    RDCN_DCHECK(key != kEmptyKey);
    maybe_grow();
    const std::uint64_t h = detail::mix64(key);
    const std::uint8_t tag = tag_of(h);
    std::size_t i = h & mask_;
    while (true) {
      const std::uint8_t t = tags_[i];
      if (t == tag && slots_[i].key == key) return {&slots_[i].value, false};
      if (t == kEmptyTag) {
        tags_[i] = tag;
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return {&slots_[i].value, true};
      }
      i = next(i);
    }
  }

  /// Returns the value for `key`, default-constructing it if absent.
  V& operator[](std::uint64_t key) { return *try_emplace(key).first; }

  /// Returns nullptr if absent.
  V* find(std::uint64_t key) noexcept {
    const std::uint64_t h = detail::mix64(key);
    const std::uint8_t tag = tag_of(h);
    std::size_t i = h & mask_;
    while (true) {
      const std::uint8_t t = tags_[i];
      if (t == tag && slots_[i].key == key) return &slots_[i].value;
      if (t == kEmptyTag) return nullptr;
      i = next(i);
    }
  }
  const V* find(std::uint64_t key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// Sentinel for "no cached slot" (see find_index / at_index).
  /// Out-of-range values (including kNoSlot truncated to any width) simply
  /// fail at_index validation, so callers may store indexes narrowed to
  /// uint32 as long as the table stays below 2^32 slots.
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Like find(), but returns the slot index of `key` (kNoSlot if absent).
  /// The index stays valid until a rehash, or until a backward-shifting
  /// erase displaces the entry — callers must therefore treat it as a
  /// *hint* and re-validate through at_index().
  std::size_t find_index(std::uint64_t key) const noexcept {
    const std::uint64_t h = detail::mix64(key);
    const std::uint8_t tag = tag_of(h);
    std::size_t i = h & mask_;
    while (true) {
      const std::uint8_t t = tags_[i];
      if (t == tag && slots_[i].key == key) return i;
      if (t == kEmptyTag) return kNoSlot;
      i = next(i);
    }
  }

  /// Validated O(1) access through a cached slot index: returns the value
  /// iff `index` currently holds `key` (i.e. the hint is still fresh),
  /// nullptr otherwise — never a stale or deleted entry, because
  /// unoccupied slots always carry kEmptyKey (see the key-scrub invariant
  /// in erase/clear/rehash), so a single key compare decides validity.
  /// This skips the hash mix and probe walk entirely, which is what makes
  /// BMA's Θ(b) eviction scan cheap: the scan caches one slot index per
  /// incident matching edge.
  V* at_index(std::size_t index, std::uint64_t key) noexcept {
    RDCN_DCHECK(key != kEmptyKey);
    if (index > mask_ || slots_[index].key != key) return nullptr;
    return &slots_[index].value;
  }
  const V* at_index(std::size_t index, std::uint64_t key) const noexcept {
    return const_cast<FlatMap*>(this)->at_index(index, key);
  }

  /// Removes `key` if present; returns whether it was present.
  bool erase(std::uint64_t key) noexcept {
    const std::uint64_t h = detail::mix64(key);
    const std::uint8_t tag = tag_of(h);
    std::size_t i = h & mask_;
    while (true) {
      const std::uint8_t t = tags_[i];
      if (t == tag && slots_[i].key == key) break;
      if (t == kEmptyTag) return false;
      i = next(i);
    }
    // Backward-shift deletion: pull subsequent displaced entries back.
    std::size_t hole = i;
    std::size_t j = next(i);
    while (tags_[j] != kEmptyTag) {
      const std::size_t home = probe_start(slots_[j].key);
      // Can slot j legally move into the hole? Yes iff the hole lies in the
      // cyclic probe interval [home, j).
      const bool movable = (hole <= j)
                               ? (home <= hole || home > j)
                               : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = std::move(slots_[j]);
        tags_[hole] = tags_[j];
        hole = j;
      }
      j = next(j);
    }
    tags_[hole] = kEmptyTag;
    slots_[hole].key = kEmptyKey;  // key-scrub invariant (see at_index)
    --size_;
    return true;
  }

  /// Calls f(key, value&) for every entry.
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < tags_.size(); ++i)
      if (tags_[i] != kEmptyTag) f(slots_[i].key, slots_[i].value);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < tags_.size(); ++i)
      if (tags_[i] != kEmptyTag) f(slots_[i].key, slots_[i].value);
  }

  void reserve(std::size_t n) {
    std::size_t cap = capacity();
    while (cap < n * 2) cap <<= 1;
    if (cap != capacity()) rehash(cap);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Hints the cache that a lookup for `key` is imminent: touches the tag
  /// line and home slot a probe for `key` starts at.  Purely advisory (no
  /// semantic effect); used by batch serve loops that know the next
  /// request while processing the current one.
  void prefetch(std::uint64_t key) const noexcept {
    const std::uint64_t h = detail::mix64(key);
    __builtin_prefetch(tags_.data() + (h & mask_));
    __builtin_prefetch(slots_.data() + (h & mask_));
  }

 private:
  static constexpr std::uint8_t kEmptyTag = 0;

  struct Slot {
    // Unoccupied slots must hold kEmptyKey (the key-scrub invariant), so
    // at_index() can validate a cached slot index with one key compare.
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  /// 0x80 | top 7 bits of the mixed hash — never kEmptyTag.  The probe
  /// index uses the *low* bits of the same hash, so tag and index are
  /// nearly independent.
  static std::uint8_t tag_of(std::uint64_t h) noexcept {
    return static_cast<std::uint8_t>(0x80u | (h >> 57));
  }

  std::size_t probe_start(std::uint64_t key) const noexcept {
    return detail::mix64(key) & mask_;
  }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & mask_; }

  void maybe_grow() {
    if (size_ * 4 >= capacity() * 3) rehash(capacity() * 2);  // 0.75 load
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint8_t> old_tags = std::move(tags_);
    std::vector<Slot> old_slots = std::move(slots_);
    tags_.assign(new_cap, kEmptyTag);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (std::size_t s = 0; s < old_tags.size(); ++s) {
      if (old_tags[s] == kEmptyTag) continue;
      const std::uint64_t h = detail::mix64(old_slots[s].key);
      std::size_t i = h & mask_;
      while (tags_[i] != kEmptyTag) i = next(i);
      tags_[i] = old_tags[s];
      slots_[i] = std::move(old_slots[s]);
    }
  }

  std::vector<std::uint8_t> tags_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Flat hash set of std::uint64_t built on FlatMap.
class FlatSet {
 public:
  FlatSet() = default;
  explicit FlatSet(std::size_t capacity_hint) : map_(capacity_hint) {}

  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Returns true if newly inserted (single probe — no pre-check).
  bool insert(std::uint64_t key) { return map_.try_emplace(key).second; }
  bool contains(std::uint64_t key) const noexcept {
    return map_.contains(key);
  }
  bool erase(std::uint64_t key) noexcept { return map_.erase(key); }

  template <typename F>
  void for_each(F&& f) const {
    map_.for_each([&](std::uint64_t k, const Unit&) { f(k); });
  }

 private:
  struct Unit {};
  FlatMap<Unit> map_;
};

}  // namespace rdcn
