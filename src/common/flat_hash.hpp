// rdcn: open-addressing hash containers keyed by 64-bit integers.
//
// The matching algorithms keep one counter per *node pair* that has ever
// been requested; on multi-hundred-thousand-request traces this map is the
// hottest data structure in the simulator.  std::unordered_map's
// node-per-entry layout is cache-hostile, so we provide a flat,
// linear-probing map with tombstone-free backward-shift deletion.
//
// Keys are required to be != kEmptyKey (0xFFFF'FFFF'FFFF'FFFF), which edge
// ids never are (see core/types.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace rdcn {

namespace detail {

/// Finalizer from MurmurHash3: good avalanche for integer keys.
inline std::uint64_t mix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace detail

/// Flat hash map from std::uint64_t to V with linear probing.
///
/// Deletion uses backward shifting, so lookup never scans tombstones and
/// the table stays dense under churn (matching edges are added and removed
/// constantly).  Iteration order is unspecified.
template <typename V>
class FlatMap {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatMap() { rehash(16); }
  explicit FlatMap(std::size_t capacity_hint) {
    std::size_t cap = 16;
    while (cap < capacity_hint * 2) cap <<= 1;
    rehash(cap);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    for (auto& s : slots_) s.key = kEmptyKey;
    size_ = 0;
  }

  /// Returns the value for `key`, default-constructing it if absent.
  V& operator[](std::uint64_t key) {
    RDCN_DCHECK(key != kEmptyKey);
    maybe_grow();
    std::size_t i = probe_start(key);
    while (true) {
      if (slots_[i].key == key) return slots_[i].value;
      if (slots_[i].key == kEmptyKey) {
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
      }
      i = next(i);
    }
  }

  /// Returns nullptr if absent.
  V* find(std::uint64_t key) noexcept {
    std::size_t i = probe_start(key);
    while (true) {
      if (slots_[i].key == key) return &slots_[i].value;
      if (slots_[i].key == kEmptyKey) return nullptr;
      i = next(i);
    }
  }
  const V* find(std::uint64_t key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// Removes `key` if present; returns whether it was present.
  bool erase(std::uint64_t key) noexcept {
    std::size_t i = probe_start(key);
    while (true) {
      if (slots_[i].key == kEmptyKey) return false;
      if (slots_[i].key == key) break;
      i = next(i);
    }
    // Backward-shift deletion: pull subsequent displaced entries back.
    std::size_t hole = i;
    std::size_t j = next(i);
    while (slots_[j].key != kEmptyKey) {
      const std::size_t home = probe_start(slots_[j].key);
      // Can slot j legally move into the hole? Yes iff the hole lies in the
      // cyclic probe interval [home, j).
      const bool movable = (hole <= j)
                               ? (home <= hole || home > j)
                               : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = next(j);
    }
    slots_[hole].key = kEmptyKey;
    --size_;
    return true;
  }

  /// Calls f(key, value&) for every entry.
  template <typename F>
  void for_each(F&& f) {
    for (auto& s : slots_)
      if (s.key != kEmptyKey) f(s.key, s.value);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& s : slots_)
      if (s.key != kEmptyKey) f(s.key, s.value);
  }

  void reserve(std::size_t n) {
    std::size_t cap = capacity();
    while (cap < n * 2) cap <<= 1;
    if (cap != capacity()) rehash(cap);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  std::size_t probe_start(std::uint64_t key) const noexcept {
    return detail::mix64(key) & mask_;
  }
  std::size_t next(std::size_t i) const noexcept { return (i + 1) & mask_; }

  void maybe_grow() {
    if (size_ * 4 >= capacity() * 3) rehash(capacity() * 2);  // 0.75 load
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    size_ = 0;
    for (auto& s : old) {
      if (s.key == kEmptyKey) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].key != kEmptyKey) i = next(i);
      slots_[i] = std::move(s);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Flat hash set of std::uint64_t built on FlatMap.
class FlatSet {
 public:
  FlatSet() = default;
  explicit FlatSet(std::size_t capacity_hint) : map_(capacity_hint) {}

  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Returns true if newly inserted.
  bool insert(std::uint64_t key) {
    if (map_.contains(key)) return false;
    map_[key] = Unit{};
    return true;
  }
  bool contains(std::uint64_t key) const noexcept {
    return map_.contains(key);
  }
  bool erase(std::uint64_t key) noexcept { return map_.erase(key); }

  template <typename F>
  void for_each(F&& f) const {
    map_.for_each([&](std::uint64_t k, const Unit&) { f(k); });
  }

 private:
  struct Unit {};
  FlatMap<Unit> map_;
};

}  // namespace rdcn
