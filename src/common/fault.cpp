#include "common/fault.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/param_map.hpp"
#include "common/rng.hpp"

namespace rdcn::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct PointState {
  Trigger trigger;
  SplitMix64 rng{0};
  std::uint64_t evals = 0;
  std::uint64_t fires = 0;
};

/// Registry mutex + map.  Only touched once something is armed (the
/// disabled fast path never gets here), so an ordered map keeps
/// armed_points() trivial and contention is irrelevant.
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, PointState>& registry() {
  static std::map<std::string, PointState> points;
  return points;
}

/// Uniform draw in [0,1) from the point's stream.
double next_unit(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

}  // namespace

namespace {

std::atomic<FireObserver> g_fire_observer{nullptr};

}  // namespace

namespace detail {

bool should_fire(const char* point) {
  {
    const std::lock_guard<std::mutex> lock(registry_mu());
    const auto it = registry().find(point);
    if (it == registry().end()) return false;
    PointState& state = it->second;
    const std::uint64_t eval = state.evals++;
    if (eval < state.trigger.after) return false;
    if (state.fires >= state.trigger.times) return false;
    if (state.trigger.probability < 1.0 &&
        next_unit(state.rng) >= state.trigger.probability)
      return false;
    ++state.fires;
  }
  // Outside the mutex: the observer may itself take locks (metric
  // registration) and must not be able to deadlock against arm/disarm.
  if (FireObserver obs = g_fire_observer.load(std::memory_order_acquire))
    obs(point);
  return true;
}

}  // namespace detail

void set_fire_observer(FireObserver observer) {
  g_fire_observer.store(observer, std::memory_order_release);
}

void arm(const std::string& point, const Trigger& trigger) {
  const std::lock_guard<std::mutex> lock(registry_mu());
  PointState state;
  state.trigger = trigger;
  state.rng = SplitMix64(trigger.seed);
  registry().insert_or_assign(point, state);
  detail::g_armed.store(true, std::memory_order_release);
}

void disarm(const std::string& point) {
  const std::lock_guard<std::mutex> lock(registry_mu());
  registry().erase(point);
  if (registry().empty())
    detail::g_armed.store(false, std::memory_order_release);
}

void disarm_all() {
  const std::lock_guard<std::mutex> lock(registry_mu());
  registry().clear();
  detail::g_armed.store(false, std::memory_order_release);
}

void arm_from_spec(const std::string& spec) {
  // faults := point ['=' trigger (',' trigger)*] (';' point ...)*
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    const std::string name = item.substr(0, eq);
    if (name.empty())
      throw SpecError("fault spec '" + item + "': empty point name");
    Trigger trigger;
    if (eq != std::string::npos) {
      std::size_t tpos = eq + 1;
      while (tpos <= item.size()) {
        std::size_t tend = item.find(',', tpos);
        if (tend == std::string::npos) tend = item.size();
        const std::string part = item.substr(tpos, tend - tpos);
        tpos = tend + 1;
        const std::size_t colon = part.find(':');
        if (colon == std::string::npos)
          throw SpecError("fault trigger '" + part +
                          "' is not key:value (after/times/p/seed)");
        const std::string key = part.substr(0, colon);
        const std::string value = part.substr(colon + 1);
        // ParamMap's strict numeric parsers give uniform error text.
        ParamMap one;
        one.set(key, value);
        if (key == "after") {
          trigger.after = one.get<std::uint64_t>("after");
        } else if (key == "times") {
          trigger.times = one.get<std::uint64_t>("times");
        } else if (key == "p") {
          trigger.probability = one.get<double>("p");
          if (trigger.probability < 0.0 || trigger.probability > 1.0)
            throw SpecError("fault trigger p=" + value +
                            " must be in [0,1]");
        } else if (key == "seed") {
          trigger.seed = one.get<std::uint64_t>("seed");
        } else {
          throw SpecError("unknown fault trigger '" + key +
                          "'; known: after, times, p, seed");
        }
        if (tend == item.size()) break;
      }
    }
    arm(name, trigger);
  }
}

void arm_from_env() {
  const char* spec = std::getenv("RDCN_FAULTS");
  if (spec != nullptr && *spec != '\0') arm_from_spec(spec);
}

std::uint64_t fire_count(const std::string& point) {
  const std::lock_guard<std::mutex> lock(registry_mu());
  const auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.fires;
}

std::uint64_t eval_count(const std::string& point) {
  const std::lock_guard<std::mutex> lock(registry_mu());
  const auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.evals;
}

std::vector<std::string> armed_points() {
  const std::lock_guard<std::mutex> lock(registry_mu());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, state] : registry()) names.push_back(name);
  return names;
}

}  // namespace rdcn::fault
