// rdcn: the one monotonic clock shared by every measurement path.
//
// All timing in this codebase — Stopwatch, obs::ObsSpan phase traces,
// daemon deadlines, pool wait/run histograms — reads MonotonicClock
// (std::chrono::steady_clock).  Wall clocks (system_clock, time(),
// gettimeofday) jump under NTP slew and DST and must never back a
// measurement or a deadline; they are acceptable only for log
// timestamps meant for humans.
#pragma once

#include <chrono>
#include <cstdint>

namespace rdcn {

using MonotonicClock = std::chrono::steady_clock;

inline MonotonicClock::time_point monotonic_now() noexcept {
  return MonotonicClock::now();
}

/// Nanoseconds since an arbitrary (per-process) epoch.  The subtraction
/// of two readings is a duration; a single reading carries no meaning.
inline std::uint64_t monotonic_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now().time_since_epoch())
          .count());
}

constexpr double ns_to_seconds(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace rdcn
