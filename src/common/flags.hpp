// rdcn: minimal command-line flag parsing for the example/bench binaries.
//
// Accepts "--key=value" and "--key value" forms plus bare positionals.
// Typed getters with defaults; unknown-flag detection for user-facing
// tools.  Deliberately tiny — no external dependency.
//
// A token starting with '-' is never consumed as a space-form value (it
// could equally be the next flag or a negative-number positional, and a
// boolean flag in front would silently swallow it); negative values must
// use the '=' form: "--delta=-3".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace rdcn {

class Flags {
 public:
  Flags(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        arg = arg.substr(2);
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
          kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
          kv_.emplace_back(arg, argv[++i]);
        } else {
          kv_.emplace_back(arg, "true");  // boolean flag
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool has(const std::string& key) const {
    return find(key) != nullptr;
  }

  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    const std::string* v = find(key);
    return v != nullptr ? *v : fallback;
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const std::string* v = find(key);
    return v != nullptr ? std::stoll(*v) : fallback;
  }

  std::uint64_t get_uint(const std::string& key,
                         std::uint64_t fallback) const {
    const std::string* v = find(key);
    return v != nullptr ? std::stoull(*v) : fallback;
  }

  double get_double(const std::string& key, double fallback) const {
    const std::string* v = find(key);
    return v != nullptr ? std::stod(*v) : fallback;
  }

  bool get_bool(const std::string& key, bool fallback) const {
    const std::string* v = find(key);
    if (v == nullptr) return fallback;
    return *v == "true" || *v == "1" || *v == "yes";
  }

  /// Comma-separated list value ("--b=6,12,18").
  std::vector<std::string> get_list(const std::string& key) const {
    std::vector<std::string> out;
    const std::string* v = find(key);
    if (v == nullptr) return out;
    std::size_t start = 0;
    while (start <= v->size()) {
      const std::size_t comma = v->find(',', start);
      if (comma == std::string::npos) {
        out.push_back(v->substr(start));
        break;
      }
      out.push_back(v->substr(start, comma - start));
      start = comma + 1;
    }
    return out;
  }

  std::vector<std::uint64_t> get_uint_list(const std::string& key) const {
    std::vector<std::uint64_t> out;
    for (const std::string& s : get_list(key)) out.push_back(std::stoull(s));
    return out;
  }

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Returns the flags that are not in `known` (for error reporting).
  std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : kv_) {
      bool found = false;
      for (const std::string& ok : known) found |= (k == ok);
      if (!found) out.push_back(k);
    }
    return out;
  }

 private:
  const std::string* find(const std::string& key) const {
    // Last occurrence wins (allows overriding earlier flags).
    const std::string* result = nullptr;
    for (const auto& [k, v] : kv_)
      if (k == key) result = &v;
    return result;
  }

  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> positional_;
};

}  // namespace rdcn
