// rdcn: typed parameter maps and compact spec strings.
//
// The scenario API (scenario/registry.hpp) describes every configurable
// component — algorithm, topology, workload — as a name plus a small
// key/value parameter set.  ParamMap is that parameter set: an ordered
// string→string map parsed from (and printed back to) the compact form
//
//     b=16,engine=lru,eager          (bare key ≡ key=true)
//
// and read through typed getters with defaults.  A Spec bundles the name
// with its parameters ("r_bma:engine=lru,eager").  Reads are tracked so a
// consumer can reject typo'd keys after construction (unknown-key
// detection); malformed values and missing required keys raise SpecError,
// which user-facing drivers catch and turn into friendly diagnostics.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace rdcn {

/// Raised on malformed spec strings, unknown names/keys, and values that
/// fail typed conversion.  Carries a human-readable message suitable for
/// direct CLI display.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& message)
      : std::runtime_error(message) {}
};

namespace detail {
/// Shared spec-string helpers (used by ParamMap and the scenario layer, so
/// the two spec layers cannot disagree on whitespace/list handling).
std::string trim(const std::string& s);
std::vector<std::string> split(const std::string& text, char sep);
}  // namespace detail

class ParamMap {
 public:
  ParamMap() = default;

  /// Parses "k1=v1,k2,k3=v3" (bare key ≡ key=true).  Empty text yields an
  /// empty map.  Duplicate keys raise SpecError (within one compact spec a
  /// repeated key is a typo, not an override).
  static ParamMap parse(const std::string& text);

  /// Inverse of parse(): "k1=v1,k2,k3=v3", insertion order preserved,
  /// values equal to "true" printed as bare keys.  parse(to_string())
  /// round-trips to an equivalent map.
  std::string to_string() const;

  /// Like to_string() but with entries sorted by key — the *canonical*
  /// form: two maps equal up to insertion order print identically, so
  /// equivalent specs hash/compare equal.  Cache keys and dedup logic use
  /// this; to_string() stays faithful to the user's input order.
  std::string canonical_string() const;

  /// Programmatic insertion (overwrites an existing key in place).
  void set(const std::string& key, const std::string& value);

  /// Pure membership probe.  Does NOT mark the entry consumed: a key only
  /// ever probed via contains() still shows up in unconsumed_keys().
  bool contains(const std::string& key) const noexcept;
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// All keys in insertion order.
  std::vector<std::string> keys() const;

  /// Typed getters.  The one-argument form is *required*: a missing key
  /// raises SpecError.  The two-argument form returns `fallback` when the
  /// key is absent.  Supported T: std::string, bool, any arithmetic type
  /// (size_t, uint64_t, int, double, ...).  Conversion failures (trailing
  /// garbage, overflow, negative where unsigned) raise SpecError.
  template <typename T>
  T get(const std::string& key) const {
    const std::string* v = find(key);
    if (v == nullptr)
      throw SpecError("missing required parameter '" + key + "'");
    if constexpr (std::is_same_v<T, std::string>) {
      return *v;
    } else if constexpr (std::is_same_v<T, bool>) {
      return parse_bool(key, *v);
    } else if constexpr (std::is_floating_point_v<T>) {
      return static_cast<T>(parse_double(key, *v));
    } else if constexpr (std::is_unsigned_v<T>) {
      return narrow<T>(key, *v, parse_uint(key, *v));
    } else {
      static_assert(std::is_signed_v<T> && std::is_integral_v<T>,
                    "unsupported ParamMap::get<T>");
      return narrow<T>(key, *v, parse_int(key, *v));
    }
  }

  template <typename T>
  T get(const std::string& key, T fallback) const {
    return find(key) == nullptr ? fallback : get<T>(key);
  }

  /// Keys never read by any getter — i.e. keys the consumer does not
  /// understand (contains() probes don't count as reads).  Registries call
  /// this after building a component to reject typos (see
  /// require_all_consumed).
  std::vector<std::string> unconsumed_keys() const;

  /// Raises SpecError naming every unconsumed key; `context` names the
  /// component being built ("algorithm 'r_bma'").
  void require_all_consumed(const std::string& context) const;

  /// Forgets which keys have been read (copies inherit consumption marks;
  /// registries reset their private copy before building).
  void reset_consumption() const noexcept {
    for (const Entry& e : entries_) e.consumed = false;
  }

  friend bool operator==(const ParamMap& a, const ParamMap& b) {
    if (a.entries_.size() != b.entries_.size()) return false;
    for (std::size_t i = 0; i < a.entries_.size(); ++i) {
      if (a.entries_[i].key != b.entries_[i].key ||
          a.entries_[i].value != b.entries_[i].value)
        return false;
    }
    return true;
  }

 private:
  struct Entry {
    std::string key;
    std::string value;
    mutable bool consumed = false;
  };

  /// nullptr when absent; marks the entry consumed otherwise.
  const std::string* find(const std::string& key) const noexcept;

  static bool parse_bool(const std::string& key, const std::string& value);
  static double parse_double(const std::string& key, const std::string& value);
  static std::uint64_t parse_uint(const std::string& key,
                                  const std::string& value);
  static std::int64_t parse_int(const std::string& key,
                                const std::string& value);

  template <typename T, typename Wide>
  static T narrow(const std::string& key, const std::string& value,
                  Wide wide) {
    const T narrowed = static_cast<T>(wide);
    if (static_cast<Wide>(narrowed) != wide)
      throw SpecError("parameter '" + key + "': value '" + value +
                      "' out of range");
    return narrowed;
  }

  std::vector<Entry> entries_;
};

/// A named, parameterized component: "name" or "name:k=v,k2,...".
struct Spec {
  std::string name;
  ParamMap params;

  static Spec parse(const std::string& text);
  std::string to_string() const;

  /// to_string() with params in canonical (sorted) order; see
  /// ParamMap::canonical_string.
  std::string canonical_string() const;

  friend bool operator==(const Spec& a, const Spec& b) {
    return a.name == b.name && a.params == b.params;
  }
};

}  // namespace rdcn
