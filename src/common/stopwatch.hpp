// rdcn: monotonic stopwatch for the execution-time measurements that back
// the paper's Figs 1b-4b (algorithm processing time, excluding trace
// generation and I/O).  Reads common/clock.hpp's MonotonicClock — never a
// wall clock — so measurements are immune to NTP slew.
#pragma once

#include <chrono>

#include "common/clock.hpp"

namespace rdcn {

class Stopwatch {
 public:
  using Clock = MonotonicClock;

  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept {
    start_ = Clock::now();
    accumulated_ = {};
    running_ = true;
  }

  /// Pauses accumulation (used to exclude bookkeeping between checkpoints).
  void pause() noexcept {
    if (running_) {
      accumulated_ += Clock::now() - start_;
      running_ = false;
    }
  }

  void resume() noexcept {
    if (!running_) {
      start_ = Clock::now();
      running_ = true;
    }
  }

  double seconds() const noexcept {
    auto total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
  Clock::duration accumulated_{};
  bool running_ = true;
};

}  // namespace rdcn
