#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace rdcn {

std::uint64_t sample_geometric(Xoshiro256& rng, double p) {
  RDCN_ASSERT_MSG(p > 0.0 && p <= 1.0, "geometric probability out of range");
  if (p >= 1.0) return 0;
  // Inverse CDF: floor(log(U) / log(1-p)).
  const double u = 1.0 - rng.next_double();  // u in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double sample_exponential(Xoshiro256& rng, double lambda) {
  RDCN_ASSERT_MSG(lambda > 0.0, "exponential rate must be positive");
  const double u = 1.0 - rng.next_double();  // u in (0, 1]
  return -std::log(u) / lambda;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : cdf_(n), exponent_(exponent) {
  RDCN_ASSERT_MSG(n > 0, "Zipf sampler over empty support");
  RDCN_ASSERT_MSG(exponent >= 0.0, "Zipf exponent must be non-negative");
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  // Normalize so cdf_.back() == 1 exactly.
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::operator()(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
  RDCN_ASSERT(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

AliasSampler::AliasSampler(const std::vector<double>& weights)
    : prob_(weights.size()), alias_(weights.size(), 0) {
  const std::size_t n = weights.size();
  RDCN_ASSERT_MSG(n > 0, "alias sampler over empty support");
  double total = 0.0;
  for (double w : weights) {
    RDCN_ASSERT_MSG(w >= 0.0, "alias sampler weight must be non-negative");
    total += w;
  }
  RDCN_ASSERT_MSG(total > 0.0, "alias sampler weights must not all be zero");

  // Vose's algorithm: split scaled probabilities into "small" (< 1) and
  // "large" (>= 1) worklists and pair them up.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t l : large) prob_[l] = 1.0;
  for (std::uint32_t s : small) prob_[s] = 1.0;  // numerical leftovers
}

std::size_t AliasSampler::operator()(Xoshiro256& rng) const {
  const std::size_t i = rng.next_below(prob_.size());
  return rng.next_double() < prob_[i] ? i : alias_[i];
}

}  // namespace rdcn
