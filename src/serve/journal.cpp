#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <unordered_map>

#include "common/crc32.hpp"
#include "common/param_map.hpp"
#include "obs/span.hpp"
#include "serve/admission.hpp"

namespace rdcn::serve {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'R', 'D', 'J', '1'};
constexpr const char* kLogName = "wal.rdj";
/// A record payload is one short text line; anything past this is a
/// corrupt length field, not a real record — reject before allocating.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(char((value >> (8 * i)) & 0xff));
}

std::uint32_t read_u32(const std::string& bytes, std::size_t pos) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i)
    value = (value << 8) |
            static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]);
  return value;
}

std::string frame(const std::string& payload) {
  std::string out;
  out.reserve(8 + payload.size());
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u32(out, crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

/// Splits a payload into its space-separated tokens; the LAST field of
/// admit/streak records (the spec) swallows the rest of the line.
std::vector<std::string> tokens(const std::string& payload,
                                std::size_t max_fields) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < payload.size() && out.size() + 1 < max_fields) {
    const std::size_t space = payload.find(' ', pos);
    if (space == std::string::npos) break;
    out.push_back(payload.substr(pos, space - pos));
    pos = space + 1;
  }
  if (pos <= payload.size()) out.push_back(payload.substr(pos));
  return out;
}

}  // namespace

Journal::Journal(std::string directory, obs::Registry* registry)
    : directory_(std::move(directory)),
      own_registry_(registry == nullptr ? std::make_unique<obs::Registry>()
                                        : nullptr),
      appends_((registry != nullptr ? *registry : *own_registry_)
                   .counter("rdcn_journal_appends_total",
                            "Run-journal records appended")),
      replayed_((registry != nullptr ? *registry : *own_registry_)
                    .counter("rdcn_journal_replayed_total",
                             "Run-journal records replayed at startup")),
      corrupt_((registry != nullptr ? *registry : *own_registry_)
                   .counter("rdcn_journal_corrupt_total",
                            "Corrupt/torn run-journal records skipped")) {
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec)
    throw SpecError("cannot create journal directory '" + directory_ +
                    "': " + ec.message());
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Journal::Recovery Journal::recover(std::uint64_t fallback_next_id) {
  Recovery out;
  out.next_id = fallback_next_id;
  if (!enabled()) return out;
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string path = directory_ + "/" + kLogName;

  // ---- replay ----------------------------------------------------------
  // Spans are siblings, not nested: replay time should not absorb the
  // compaction rewrite below.
  std::optional<obs::ObsSpan> replay_span;
  replay_span.emplace("serve.journal.replay");
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (in)
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  }
  // Replay state: admit order preserved so recovered runs re-enqueue in
  // their original admission order.
  std::vector<RecoveredRun> runs;
  std::unordered_map<std::uint64_t, std::size_t> by_id;  ///< id → runs index
  std::unordered_map<std::uint64_t, std::string> finished;  ///< id → status
  std::unordered_map<std::string, std::size_t> streaks;
  std::size_t pos = 0;
  if (bytes.size() >= sizeof(kMagic) &&
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) == 0) {
    pos = sizeof(kMagic);
  } else if (!bytes.empty()) {
    // Wrong magic: nothing after it can be trusted.
    std::cerr << "rdcn_serve: journal: bad magic in " << path
              << ", starting fresh\n";
    out.corrupt += 1;
    corrupt_.inc();
    pos = bytes.size();
  }
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {  // torn frame header
      out.corrupt += 1;
      break;
    }
    const std::uint32_t len = read_u32(bytes, pos);
    const std::uint32_t crc = read_u32(bytes, pos + 4);
    if (len > kMaxPayloadBytes || bytes.size() - pos - 8 < len) {
      out.corrupt += 1;  // truncated tail (or a corrupt length field)
      break;
    }
    const std::string payload = bytes.substr(pos + 8, len);
    if (crc32(payload.data(), payload.size()) != crc) {
      // A bit-flipped record: everything after it has unknown framing,
      // so the replay stops here — the valid prefix is still good.
      out.corrupt += 1;
      break;
    }
    pos += 8 + len;
    out.replayed += 1;

    const std::vector<std::string> t = tokens(payload, 3);
    std::uint64_t id = 0;
    if (t.size() >= 2 && t[0] == "nextid" && parse_u64(t[1], id)) {
      if (id > out.next_id) out.next_id = id;
    } else if (t.size() >= 3 && t[0] == "admit" && parse_u64(t[1], id)) {
      if (by_id.count(id) == 0 && finished.count(id) == 0) {
        by_id.emplace(id, runs.size());
        runs.push_back(RecoveredRun{id, t[2], false, 0, "anon", 1});
      }
      if (id + 1 > out.next_id) out.next_id = id + 1;
    } else if (t[0] == "admit2") {
      // Re-tokenize: admit2 carries priority + client before the spec.
      const std::vector<std::string> t2 = tokens(payload, 5);
      std::uint64_t priority = 0;
      if (t2.size() >= 5 && parse_u64(t2[1], id) &&
          parse_u64(t2[2], priority) && priority <= 2 &&
          is_valid_client_name(t2[3])) {
        if (by_id.count(id) == 0 && finished.count(id) == 0) {
          by_id.emplace(id, runs.size());
          runs.push_back(RecoveredRun{id, t2[4], false, 0, t2[3],
                                      static_cast<int>(priority)});
        }
        if (id + 1 > out.next_id) out.next_id = id + 1;
      }
    } else if (t.size() >= 2 && t[0] == "start" && parse_u64(t[1], id)) {
      const auto it = by_id.find(id);
      if (it != by_id.end()) runs[it->second].started = true;
    } else if (t.size() >= 3 && t[0] == "ckpt" && parse_u64(t[1], id)) {
      std::uint64_t seq = 0;
      const auto it = by_id.find(id);
      if (it != by_id.end() && parse_u64(t[2], seq) &&
          seq > runs[it->second].checkpoint_seq)
        runs[it->second].checkpoint_seq = seq;
    } else if (t.size() >= 3 && t[0] == "done" && parse_u64(t[1], id)) {
      // Duplicate terminal records are idempotent: the first wins.
      finished.emplace(id, t[2]);
      const auto it = by_id.find(id);
      if (it != by_id.end()) {
        runs[it->second].id = 0;  // tombstone; compacted out below
        by_id.erase(it);
      }
    } else if (t.size() >= 3 && t[0] == "streak") {
      std::uint64_t n = 0;
      if (parse_u64(t[1], n)) {
        if (n == 0)
          streaks.erase(t[2]);
        else
          streaks[t[2]] = static_cast<std::size_t>(n);
      }
    }
    // Unknown record types are skipped (forward compatibility).
  }
  replayed_.add(out.replayed);
  if (out.corrupt > 0) {
    corrupt_.add(out.corrupt);
    std::cerr << "rdcn_serve: journal: skipped " << out.corrupt
              << " corrupt/torn record(s) at the tail of " << path << "\n";
  }
  for (const RecoveredRun& run : runs)
    if (run.id != 0) out.incomplete.push_back(run);
  out.quarantine.assign(streaks.begin(), streaks.end());
  replay_span.reset();

  // ---- compact ---------------------------------------------------------
  // Rewrite live state only (temp-file + rename, like the disk cache):
  // the log's size is bounded by live state, and the torn tail is gone.
  const obs::ObsSpan compact_span("serve.journal.compact");
  const std::string temp = path + ".tmp";
  std::string fresh(kMagic, sizeof(kMagic));
  fresh += frame("nextid " + std::to_string(out.next_id));
  for (const auto& [spec, streak] : out.quarantine)
    fresh += frame("streak " + std::to_string(streak) + " " + spec);
  for (const RecoveredRun& run : out.incomplete)
    fresh += frame("admit2 " + std::to_string(run.id) + " " +
                   std::to_string(run.priority) + " " + run.client + " " +
                   run.spec);
  const int temp_fd = ::open(temp.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  bool committed = false;
  if (temp_fd >= 0) {
    std::size_t written = 0;
    while (written < fresh.size()) {
      const ssize_t n = ::write(temp_fd, fresh.data() + written,
                                fresh.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    committed = written == fresh.size() && ::fsync(temp_fd) == 0;
    ::close(temp_fd);
    if (committed && std::rename(temp.c_str(), path.c_str()) != 0)
      committed = false;
  }
  if (!committed) {
    // A disk too broken to compact degrades to appending onto the old
    // log (replay handles the torn tail again next time) — never fatal.
    std::cerr << "rdcn_serve: journal: cannot compact " << path << ": "
              << std::strerror(errno) << "\n";
    ::unlink(temp.c_str());
    // Ensure the file at least exists with a magic header for appends.
    const int probe = ::open(path.c_str(),
                             O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (probe >= 0) {
      off_t size = ::lseek(probe, 0, SEEK_END);
      if (size == 0) {
        [[maybe_unused]] const ssize_t n =
            ::write(probe, kMagic, sizeof(kMagic));
      }
      ::close(probe);
    }
  }

  // ---- open for appends ------------------------------------------------
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0)
    std::cerr << "rdcn_serve: journal: cannot open " << path
              << " for append: " << std::strerror(errno) << "\n";
  return out;
}

void Journal::append(const std::string& payload, bool sync) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;  // recover() not called or the disk is gone
  const std::string framed = frame(payload);
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A failed append degrades durability, never correctness: the
      // record's run merely recomputes after a crash.
      std::cerr << "rdcn_serve: journal: append failed: "
                << std::strerror(errno) << "\n";
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  appends_.inc();
  if (sync) ::fsync(fd_);
}

void Journal::admitted(std::uint64_t id, const std::string& spec,
                       const std::string& client, int priority) {
  append("admit2 " + std::to_string(id) + " " + std::to_string(priority) +
             " " + client + " " + spec,
         /*sync=*/false);
}

void Journal::started(std::uint64_t id) {
  append("start " + std::to_string(id), /*sync=*/false);
}

void Journal::checkpoint(std::uint64_t id, std::uint64_t seq) {
  append("ckpt " + std::to_string(id) + " " + std::to_string(seq),
         /*sync=*/false);
}

void Journal::terminal(std::uint64_t id, const std::string& status) {
  append("done " + std::to_string(id) + " " + status, /*sync=*/true);
}

void Journal::quarantine_streak(const std::string& spec, std::size_t streak) {
  append("streak " + std::to_string(streak) + " " + spec, /*sync=*/false);
}

void Journal::flush() {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) ::fsync(fd_);
}

}  // namespace rdcn::serve
