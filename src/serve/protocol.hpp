// rdcn: the rdcn_serve line protocol.
//
// Serving mode speaks a newline-delimited text protocol over a local
// stream socket — one scenario spec string in, progress lines and a CSV
// payload back.  Everything here is pure string parsing/formatting shared
// by the daemon, the client library, and the protocol tests; no sockets.
//
// Client → server, one command per line (lines over 1 MiB are answered
// with `ERROR reason=line_too_long` and the connection is closed):
//
//   PING                          liveness probe
//   HELLO client=<name>           bind this connection to a tenant: later
//                                 RUNs charge <name>'s quota and fairness
//                                 lane (1-64 chars of [A-Za-z0-9._-]);
//                                 anonymous connections pool under "anon"
//   RUN <scenario-spec> [deadline_ms=<n>] [client=<name>] [priority=<0-2>]
//                                 submit (ScenarioSpec::parse form); with
//                                 deadline_ms the daemon arms a monotonic
//                                 watchdog: a run still going n ms after
//                                 admission is cancelled cooperatively and
//                                 finishes DONE status=deadline_exceeded.
//                                 client= overrides the HELLO binding for
//                                 this one run (proxies submitting on
//                                 behalf of tenants); priority= (default
//                                 1) orders load shedding under brownout —
//                                 lower priorities shed first
//   CANCEL <id>                   cooperative cancel of a submitted run
//   RESET spec=<canonical> | RESET all=1
//                                 operator verb: clear the quarantine /
//                                 crash-streak state of one canonical
//                                 spec (or all of them) without a daemon
//                                 restart; journaled as streak-0 records
//   ATTACH <id> [from=<k>]        resubscribe to a queued/running/recently
//                                 finished run (ids are stable across
//                                 daemon restarts when a journal is
//                                 armed); missed CHECKPOINT lines with
//                                 seq >= k replay from a bounded per-run
//                                 ring, then the stream continues live
//   STATS                         queue/cache/failure counters
//   METRICS                       full Prometheus text exposition
//   SHUTDOWN [drain=<0|1>]        stop the daemon; drain=1 stops
//                                 admissions, lets in-flight runs finish
//                                 (bounded by the daemon's --drain-ms),
//                                 then exits
//
// Server → client:
//
//   PONG
//   ERROR <message>               malformed command / SpecError text.
//                                 Machine-readable refusals lead with a
//                                 reason= token: reason=line_too_long,
//                                 reason=quarantined (spec fast-failed
//                                 after repeated executor crashes).
//                                 Executor crashes (non-SpecError escapes)
//                                 report as ERROR internal=<what> before
//                                 their DONE status=error line.
//   ACCEPTED id=<n>               run admitted (queued or cache hit)
//   WELCOME client=<name>         HELLO accepted; the binding is live
//   REJECT retry_ms=<n> reason=<queue_full|quota|shed>
//                                 backpressure: try again after retry_ms.
//                                 queue_full = admission queue at bound
//                                 (hint from the measured drain rate);
//                                 quota = the client's token bucket or
//                                 concurrent-run cap refused (hint from
//                                 the bucket refill); shed = brownout
//                                 load shedding dropped this priority
//                                 (hint scales with the brownout level)
//   CANCELLING id=<n>             cancel request acknowledged
//   RESETOK cleared=<n>           RESET done; n streak entries cleared
//   ATTACHED id=<n> state=<queued|running|done> last_seq=<m>
//                                 ATTACH accepted; replayed CHECKPOINTs
//                                 (if any) and the rest of the run's
//                                 stream follow.  last_seq is the highest
//                                 checkpoint seq emitted so far.
//   CHECKPOINT id=<n> seq=<m> label=<l> seed=<s> requests=<r> routing=<c>
//              total=<c> wall=<sec>        one line per trial checkpoint;
//                                 seq numbers a run's checkpoints from 1
//                                 so ATTACH from=<k> can resume exactly
//   RESULT id=<n> cached=<0|1> lines=<k>   followed by k raw CSV lines
//   DONE id=<n> status=<ok|cancelled|deadline_exceeded|stalled|error>
//                                 run finished (terminal); stalled = the
//                                 progress watchdog cancelled a run whose
//                                 checkpoint seq stopped advancing
//   STATS active=<n> queued=<n> cache_hits=<n> cache_misses=<n>
//         cache_entries=<n> completed=<n> cancelled=<n>
//         deadline_exceeded=<n> crashed=<n> rejected=<n> quarantined=<n>
//         disk_hits=<n> disk_corrupt=<n> recovered=<n> attached=<n>
//         shed=<n> stalled=<n> brownout=<0|1|2> clients=<n>
//   METRICS lines=<k>             followed by k raw Prometheus text
//                                 exposition lines (obs registry render);
//                                 header + payload travel as one write
//                                 unit like RESULT
//   BYE                           shutdown acknowledged (connection closes)
//
// A RUN's lifetime on the wire: ACCEPTED, zero or more CHECKPOINTs,
// optionally ERROR (execution failure), RESULT + payload on success, and
// always exactly one DONE.  An ERROR *without* a preceding ACCEPTED means
// the submission was refused (bad spec, quarantined) — no DONE follows.
// Lines for different runs may interleave on one connection (the id
// attributes them).
#pragma once

#include <cstdint>
#include <string>

#include "sim/metrics.hpp"

namespace rdcn::serve {

struct Command {
  enum class Kind {
    kPing,
    kHello,
    kRun,
    kCancel,
    kAttach,
    kReset,
    kStats,
    kMetrics,
    kShutdown,
    kInvalid,
  };
  Kind kind = Kind::kInvalid;
  std::string spec;       ///< kRun: spec text; kReset: canonical spec
  std::uint64_t id = 0;   ///< kCancel/kAttach: the run id
  std::uint64_t deadline_ms = 0;  ///< kRun: watchdog deadline (0 = none)
  std::uint64_t from = 1;  ///< kAttach: first checkpoint seq to replay
  bool drain = false;      ///< kShutdown: finish in-flight runs first
  std::string client;  ///< kHello: binding; kRun: per-run override ("")
  int priority = 1;    ///< kRun: shed order under brownout (0-2)
  bool all = false;    ///< kReset: clear every streak
  std::string error;      ///< kInvalid: what was wrong
};

/// Parses one client line.  Never throws; malformed input yields kInvalid
/// with a diagnostic the daemon echoes back as an ERROR line.
Command parse_command(const std::string& line);

/// The STATS reply, both directions: the daemon fills one and formats it
/// with msg_stats; clients parse the reply's attribute text back into the
/// same struct with parse_stats (unknown attributes are ignored, missing
/// ones stay zero — the pair is forward/backward compatible).
struct StatsReport {
  std::size_t active = 0;             ///< runs currently executing
  std::size_t queued = 0;             ///< runs waiting for an executor
  std::uint64_t cache_hits = 0;       ///< in-memory results-cache hits
  std::uint64_t cache_misses = 0;
  std::size_t cache_entries = 0;
  std::uint64_t completed = 0;          ///< runs finished DONE status=ok
  std::uint64_t cancelled = 0;          ///< ... status=cancelled
  std::uint64_t deadline_exceeded = 0;  ///< ... status=deadline_exceeded
  std::uint64_t crashed = 0;    ///< executor crashes (ERROR internal=...)
  std::uint64_t rejected = 0;   ///< REJECTs issued (backpressure)
  std::uint64_t quarantined = 0;  ///< submissions refused as quarantined
  std::uint64_t disk_hits = 0;    ///< runs served from the on-disk cache
  std::uint64_t disk_corrupt = 0;  ///< corrupt disk entries skipped
  std::uint64_t recovered = 0;  ///< runs re-enqueued from the journal
  std::uint64_t attached = 0;   ///< successful ATTACH subscriptions
  std::uint64_t shed = 0;       ///< REJECT reason=shed (brownout drops)
  std::uint64_t stalled = 0;    ///< DONE status=stalled (progress watchdog)
  std::size_t brownout = 0;     ///< current brownout level (0 = healthy)
  std::size_t clients = 0;      ///< distinct client lanes seen so far
};
StatsReport parse_stats(const std::string& attrs);

/// Newlines embedded in `text` (e.g. multi-line exception messages) would
/// break line framing; fold them into spaces.
std::string sanitize(std::string text);

std::string msg_pong();
std::string msg_error(const std::string& what);
std::string msg_accepted(std::uint64_t id);
std::string msg_welcome(const std::string& client);
/// `reason` is one of queue_full | quota | shed (wire contract above).
std::string msg_reject(std::uint32_t retry_ms,
                       const std::string& reason = "queue_full");
std::string msg_cancelling(std::uint64_t id);
std::string msg_resetok(std::size_t cleared);
/// ATTACHED reply: `state` is queued | running | done.
std::string msg_attached(std::uint64_t id, const std::string& state,
                         std::uint64_t last_seq);
std::string msg_checkpoint(std::uint64_t id, std::uint64_t seq,
                           const std::string& label, std::uint64_t seed,
                           const sim::Checkpoint& c);
std::string msg_result(std::uint64_t id, bool cached, std::size_t lines);
std::string msg_done(std::uint64_t id, const std::string& status);
std::string msg_stats(const StatsReport& report);
/// Header of a METRICS reply; `lines` raw exposition lines follow.
std::string msg_metrics(std::size_t lines);
std::string msg_bye();

/// Client-side view of one server line.
struct ServerLine {
  enum class Kind {
    kPong,
    kError,
    kAccepted,
    kWelcome,
    kReject,
    kCancelling,
    kResetOk,
    kAttached,
    kCheckpoint,
    kResult,
    kDone,
    kStats,
    kMetrics,
    kBye,
    kOther,  ///< unrecognized (forward-compatible: clients skip these)
  };
  Kind kind = Kind::kOther;
  std::uint64_t id = 0;        ///< runs: ACCEPTED/CHECKPOINT/RESULT/DONE/...
  std::string text;            ///< kError: message; kWelcome: client name;
                               ///< kOther: whole line
  std::uint32_t retry_ms = 0;  ///< kReject
  bool cached = false;         ///< kResult
  std::size_t lines = 0;  ///< kResult/kMetrics: payload line count;
                          ///< kResetOk: streak entries cleared
  std::string status;  ///< kDone: ok|...|error; kAttached: state;
                       ///< kReject: reason (queue_full|quota|shed)
  std::uint64_t seq = 0;  ///< kCheckpoint: seq; kAttached: last_seq
};

/// Parses one server line.  Never throws; unknown verbs yield kOther.
ServerLine parse_server_line(const std::string& line);

}  // namespace rdcn::serve
