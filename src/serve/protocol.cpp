#include "serve/protocol.hpp"

#include <charconv>

#include "serve/admission.hpp"

namespace rdcn::serve {

namespace {

/// Strict u64 parse mirroring ParamMap::parse_uint: full consumption, no
/// signs, no trailing garbage.
bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

/// Splits "VERB rest" at the first space; rest is "" when absent.
void split_verb(const std::string& line, std::string& verb,
                std::string& rest) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    verb = line;
    rest.clear();
    return;
  }
  verb = line.substr(0, space);
  std::size_t begin = space;
  while (begin < line.size() && line[begin] == ' ') ++begin;
  rest = line.substr(begin);
}

/// Extracts "key=<value>" from an attribute line ("ACCEPTED id=3"); value
/// runs to the next space.  Returns "" when absent.
std::string attr(const std::string& rest, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = 0;
  while (pos < rest.size()) {
    const std::size_t item_end = rest.find(' ', pos);
    const std::size_t len =
        (item_end == std::string::npos ? rest.size() : item_end) - pos;
    if (rest.compare(pos, needle.size(), needle) == 0)
      return rest.substr(pos + needle.size(), len - needle.size());
    if (item_end == std::string::npos) break;
    pos = item_end + 1;
  }
  return "";
}

std::uint64_t attr_u64(const std::string& rest, const std::string& key) {
  std::uint64_t out = 0;
  parse_u64(attr(rest, key), out);
  return out;
}

}  // namespace

Command parse_command(const std::string& line) {
  Command cmd;
  std::string verb, rest;
  split_verb(line, verb, rest);
  if (verb == "PING") {
    cmd.kind = rest.empty() ? Command::Kind::kPing : Command::Kind::kInvalid;
    if (!rest.empty()) cmd.error = "PING takes no arguments";
  } else if (verb == "HELLO") {
    constexpr const char* kClientKey = "client=";
    if (rest.compare(0, 7, kClientKey) == 0 &&
        is_valid_client_name(rest.substr(7))) {
      cmd.kind = Command::Kind::kHello;
      cmd.client = rest.substr(7);
    } else {
      cmd.error =
          "HELLO needs a client name ('HELLO client=<name>', 1-64 chars "
          "from [A-Za-z0-9._-])";
    }
  } else if (verb == "RESET") {
    constexpr const char* kSpecKey = "spec=";
    if (rest == "all=1") {
      cmd.kind = Command::Kind::kReset;
      cmd.all = true;
    } else if (rest.compare(0, 5, kSpecKey) == 0 && rest.size() > 5 &&
               rest.find(' ') == std::string::npos) {
      cmd.kind = Command::Kind::kReset;
      cmd.spec = rest.substr(5);
    } else {
      cmd.error =
          "RESET needs 'spec=<canonical spec>' or 'all=1' ('RESET "
          "spec=...' clears one quarantine streak)";
    }
  } else if (verb == "RUN") {
    if (rest.empty()) {
      cmd.error = "RUN needs a scenario spec ('RUN <spec>')";
    } else {
      // The spec itself never contains spaces; anything after the first
      // token must be a recognized run option.
      cmd.kind = Command::Kind::kRun;
      const std::size_t space = rest.find(' ');
      cmd.spec = rest.substr(0, space);
      std::size_t pos = space;
      while (pos != std::string::npos && pos < rest.size()) {
        while (pos < rest.size() && rest[pos] == ' ') ++pos;
        if (pos >= rest.size()) break;
        const std::size_t end = rest.find(' ', pos);
        const std::string token =
            rest.substr(pos, end == std::string::npos ? std::string::npos
                                                      : end - pos);
        constexpr const char* kDeadlineKey = "deadline_ms=";
        constexpr const char* kClientKey = "client=";
        constexpr const char* kPriorityKey = "priority=";
        if (token.compare(0, 12, kDeadlineKey) == 0 &&
            parse_u64(token.substr(12), cmd.deadline_ms) &&
            cmd.deadline_ms > 0) {
          pos = end;
          continue;
        }
        if (token.compare(0, 7, kClientKey) == 0 &&
            is_valid_client_name(token.substr(7))) {
          cmd.client = token.substr(7);
          pos = end;
          continue;
        }
        std::uint64_t priority = 0;
        if (token.compare(0, 9, kPriorityKey) == 0 &&
            parse_u64(token.substr(9), priority) && priority <= 2) {
          cmd.priority = static_cast<int>(priority);
          pos = end;
          continue;
        }
        cmd.kind = Command::Kind::kInvalid;
        cmd.error = "unrecognized RUN option '" + token +
                    "'; known: deadline_ms=<positive integer>, "
                    "client=<name>, priority=<0-2>";
        break;
      }
    }
  } else if (verb == "CANCEL") {
    if (!parse_u64(rest, cmd.id)) {
      cmd.error = "CANCEL needs a run id ('CANCEL <id>')";
    } else {
      cmd.kind = Command::Kind::kCancel;
    }
  } else if (verb == "ATTACH") {
    const std::size_t space = rest.find(' ');
    const std::string id_text = rest.substr(0, space);
    if (!parse_u64(id_text, cmd.id)) {
      cmd.error = "ATTACH needs a run id ('ATTACH <id> [from=<k>]')";
    } else {
      cmd.kind = Command::Kind::kAttach;
      std::size_t pos = space;
      while (pos != std::string::npos && pos < rest.size()) {
        while (pos < rest.size() && rest[pos] == ' ') ++pos;
        if (pos >= rest.size()) break;
        const std::size_t end = rest.find(' ', pos);
        const std::string token =
            rest.substr(pos, end == std::string::npos ? std::string::npos
                                                      : end - pos);
        constexpr const char* kFromKey = "from=";
        if (token.compare(0, 5, kFromKey) == 0 &&
            parse_u64(token.substr(5), cmd.from) && cmd.from > 0) {
          pos = end;
          continue;
        }
        cmd.kind = Command::Kind::kInvalid;
        cmd.error = "unrecognized ATTACH option '" + token +
                    "'; known: from=<positive integer>";
        break;
      }
    }
  } else if (verb == "STATS") {
    cmd.kind = Command::Kind::kStats;
  } else if (verb == "METRICS") {
    cmd.kind = Command::Kind::kMetrics;
  } else if (verb == "SHUTDOWN") {
    if (rest.empty()) {
      cmd.kind = Command::Kind::kShutdown;
    } else if (rest == "drain=1") {
      cmd.kind = Command::Kind::kShutdown;
      cmd.drain = true;
    } else if (rest == "drain=0") {
      cmd.kind = Command::Kind::kShutdown;
    } else {
      cmd.error = "unrecognized SHUTDOWN option '" + rest +
                  "'; known: drain=<0|1>";
    }
  } else {
    cmd.error = "unknown command '" + verb +
                "'; known: PING, HELLO, RUN, CANCEL, ATTACH, RESET, STATS, "
                "METRICS, SHUTDOWN";
  }
  return cmd;
}

std::string sanitize(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

std::string msg_pong() { return "PONG"; }

std::string msg_error(const std::string& what) {
  return "ERROR " + sanitize(what);
}

std::string msg_accepted(std::uint64_t id) {
  return "ACCEPTED id=" + std::to_string(id);
}

std::string msg_welcome(const std::string& client) {
  return "WELCOME client=" + client;
}

std::string msg_reject(std::uint32_t retry_ms, const std::string& reason) {
  return "REJECT retry_ms=" + std::to_string(retry_ms) +
         " reason=" + reason;
}

std::string msg_resetok(std::size_t cleared) {
  return "RESETOK cleared=" + std::to_string(cleared);
}

std::string msg_cancelling(std::uint64_t id) {
  return "CANCELLING id=" + std::to_string(id);
}

std::string msg_attached(std::uint64_t id, const std::string& state,
                         std::uint64_t last_seq) {
  return "ATTACHED id=" + std::to_string(id) + " state=" + state +
         " last_seq=" + std::to_string(last_seq);
}

std::string msg_checkpoint(std::uint64_t id, std::uint64_t seq,
                           const std::string& label, std::uint64_t seed,
                           const sim::Checkpoint& c) {
  return "CHECKPOINT id=" + std::to_string(id) +
         " seq=" + std::to_string(seq) + " label=" + sanitize(label) +
         " seed=" + std::to_string(seed) +
         " requests=" + std::to_string(c.requests) +
         " routing=" + std::to_string(c.routing_cost) +
         " total=" + std::to_string(c.total_cost) +
         " wall=" + std::to_string(c.wall_seconds);
}

std::string msg_result(std::uint64_t id, bool cached, std::size_t lines) {
  return "RESULT id=" + std::to_string(id) +
         " cached=" + (cached ? "1" : "0") +
         " lines=" + std::to_string(lines);
}

std::string msg_done(std::uint64_t id, const std::string& status) {
  return "DONE id=" + std::to_string(id) + " status=" + status;
}

std::string msg_stats(const StatsReport& r) {
  return "STATS active=" + std::to_string(r.active) +
         " queued=" + std::to_string(r.queued) +
         " cache_hits=" + std::to_string(r.cache_hits) +
         " cache_misses=" + std::to_string(r.cache_misses) +
         " cache_entries=" + std::to_string(r.cache_entries) +
         " completed=" + std::to_string(r.completed) +
         " cancelled=" + std::to_string(r.cancelled) +
         " deadline_exceeded=" + std::to_string(r.deadline_exceeded) +
         " crashed=" + std::to_string(r.crashed) +
         " rejected=" + std::to_string(r.rejected) +
         " quarantined=" + std::to_string(r.quarantined) +
         " disk_hits=" + std::to_string(r.disk_hits) +
         " disk_corrupt=" + std::to_string(r.disk_corrupt) +
         " recovered=" + std::to_string(r.recovered) +
         " attached=" + std::to_string(r.attached) +
         " shed=" + std::to_string(r.shed) +
         " stalled=" + std::to_string(r.stalled) +
         " brownout=" + std::to_string(r.brownout) +
         " clients=" + std::to_string(r.clients);
}

StatsReport parse_stats(const std::string& attrs) {
  StatsReport r;
  r.active = static_cast<std::size_t>(attr_u64(attrs, "active"));
  r.queued = static_cast<std::size_t>(attr_u64(attrs, "queued"));
  r.cache_hits = attr_u64(attrs, "cache_hits");
  r.cache_misses = attr_u64(attrs, "cache_misses");
  r.cache_entries = static_cast<std::size_t>(attr_u64(attrs, "cache_entries"));
  r.completed = attr_u64(attrs, "completed");
  r.cancelled = attr_u64(attrs, "cancelled");
  r.deadline_exceeded = attr_u64(attrs, "deadline_exceeded");
  r.crashed = attr_u64(attrs, "crashed");
  r.rejected = attr_u64(attrs, "rejected");
  r.quarantined = attr_u64(attrs, "quarantined");
  r.disk_hits = attr_u64(attrs, "disk_hits");
  r.disk_corrupt = attr_u64(attrs, "disk_corrupt");
  r.recovered = attr_u64(attrs, "recovered");
  r.attached = attr_u64(attrs, "attached");
  r.shed = attr_u64(attrs, "shed");
  r.stalled = attr_u64(attrs, "stalled");
  r.brownout = static_cast<std::size_t>(attr_u64(attrs, "brownout"));
  r.clients = static_cast<std::size_t>(attr_u64(attrs, "clients"));
  return r;
}

std::string msg_metrics(std::size_t lines) {
  return "METRICS lines=" + std::to_string(lines);
}

std::string msg_bye() { return "BYE"; }

ServerLine parse_server_line(const std::string& line) {
  ServerLine out;
  std::string verb, rest;
  split_verb(line, verb, rest);
  if (verb == "PONG") {
    out.kind = ServerLine::Kind::kPong;
  } else if (verb == "ERROR") {
    out.kind = ServerLine::Kind::kError;
    out.text = rest;
  } else if (verb == "ACCEPTED") {
    out.kind = ServerLine::Kind::kAccepted;
    out.id = attr_u64(rest, "id");
  } else if (verb == "WELCOME") {
    out.kind = ServerLine::Kind::kWelcome;
    out.text = attr(rest, "client");
  } else if (verb == "REJECT") {
    out.kind = ServerLine::Kind::kReject;
    out.retry_ms = static_cast<std::uint32_t>(attr_u64(rest, "retry_ms"));
    out.status = attr(rest, "reason");
  } else if (verb == "RESETOK") {
    out.kind = ServerLine::Kind::kResetOk;
    out.lines = static_cast<std::size_t>(attr_u64(rest, "cleared"));
  } else if (verb == "CANCELLING") {
    out.kind = ServerLine::Kind::kCancelling;
    out.id = attr_u64(rest, "id");
  } else if (verb == "ATTACHED") {
    out.kind = ServerLine::Kind::kAttached;
    out.id = attr_u64(rest, "id");
    out.status = attr(rest, "state");
    out.seq = attr_u64(rest, "last_seq");
  } else if (verb == "CHECKPOINT") {
    out.kind = ServerLine::Kind::kCheckpoint;
    out.id = attr_u64(rest, "id");
    out.seq = attr_u64(rest, "seq");
    out.text = rest;
  } else if (verb == "RESULT") {
    out.kind = ServerLine::Kind::kResult;
    out.id = attr_u64(rest, "id");
    out.cached = attr_u64(rest, "cached") != 0;
    out.lines = static_cast<std::size_t>(attr_u64(rest, "lines"));
  } else if (verb == "DONE") {
    out.kind = ServerLine::Kind::kDone;
    out.id = attr_u64(rest, "id");
    out.status = attr(rest, "status");
  } else if (verb == "STATS") {
    out.kind = ServerLine::Kind::kStats;
    out.text = rest;
  } else if (verb == "METRICS") {
    out.kind = ServerLine::Kind::kMetrics;
    out.lines = static_cast<std::size_t>(attr_u64(rest, "lines"));
  } else if (verb == "BYE") {
    out.kind = ServerLine::Kind::kBye;
  } else {
    out.text = line;
  }
  return out;
}

}  // namespace rdcn::serve
