// rdcn: the serve daemon's durable run journal (write-ahead log).
//
// A run's lifetime used to be bound to the daemon process: a restart
// forgot every queued/running run, every quarantine streak, and the id
// counter.  The journal closes that gap with an append-only log the
// daemon writes as run state changes and replays at startup — the same
// durability discipline the disk cache uses (temp-file + rename +
// CRC32), applied to in-flight state instead of finished results.
//
// On-disk format — one file, `<dir>/wal.rdj`:
//
//   "RDJ1"            4-byte magic (format version 1)
//   records           back to back, each framed as
//     payload_len     u32 little-endian
//     crc32           u32 LE, IEEE 802.3 polynomial over the payload
//                     (common/crc32.hpp — shared with the disk cache)
//     payload         one ASCII line, no trailing newline
//
// Payload grammar (first token is the record type; specs are canonical
// ScenarioSpec strings and never contain spaces):
//
//   nextid <n>                    id-counter snapshot (ids of journalled
//                                 runs stay unique across restarts)
//   admit <id> <spec>             run admitted to the queue (legacy form;
//                                 replays as client "anon", priority 1)
//   admit2 <id> <priority> <client> <spec>
//                                 run admitted with its fairness identity:
//                                 recovery re-enqueues into the right DRR
//                                 lane and re-charges the client's
//                                 concurrent-run quota
//   start <id>                    an executor picked the run up
//   ckpt <id> <seq>               checkpoint high-water mark (ATTACH
//                                 replay bookkeeping, diagnostics)
//   done <id> <status>            terminal: ok | cancelled |
//                                 deadline_exceeded | stalled | error
//   streak <n> <spec>             quarantine streak update (0 clears)
//
// Write policy: records append under one mutex; only terminal records
// (and flush()) fsync — an admit lost to a crash merely loses the run,
// a terminal record lost would recompute it, both safe.  Records are
// appended BEFORE the corresponding wire line goes out (the daemon's
// counter-before-DONE invariant extended to disk), so a client that saw
// ACCEPTED or DONE can trust a restarted daemon to agree.
//
// Recovery: recover() replays the log — records with a bad CRC or a
// truncated frame end the replay (a torn tail, counted, never trusted;
// duplicate terminal records are idempotent) — then compacts: live
// state only (nextid, streaks, incomplete runs) is rewritten to a temp
// file and renamed over the log, so the journal's size is bounded by
// the daemon's live state, not its history.  The daemon re-enqueues the
// incomplete runs (deterministic recompute; results land in the disk
// cache) and restores quarantine streaks.
//
// An empty directory string disables the journal entirely: every method
// returns immediately — zero syscalls on the serve fast path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace rdcn::serve {

class Journal {
 public:
  /// One incomplete run reconstructed by recover().
  struct RecoveredRun {
    std::uint64_t id = 0;
    std::string spec;    ///< canonical spec text (deterministic recompute)
    bool started = false;  ///< an executor had picked it up
    std::uint64_t checkpoint_seq = 0;  ///< highest ckpt record seen
    std::string client = "anon";  ///< fairness lane / quota identity
    int priority = 1;             ///< shed order under brownout (0-2)
  };

  /// Everything replay reconstructs.
  struct Recovery {
    std::uint64_t next_id = 1;  ///< max(nextid record, admitted ids + 1)
    std::vector<RecoveredRun> incomplete;  ///< admitted, no terminal record
    /// Quarantine streaks alive at the crash (spec → consecutive crashes).
    std::vector<std::pair<std::string, std::size_t>> quarantine;
    std::uint64_t replayed = 0;  ///< valid records replayed
    std::uint64_t corrupt = 0;   ///< corrupt/torn tail records skipped
  };

  /// Creates `directory` if missing ("" disables the journal).  Throws
  /// SpecError when it cannot be created.  With `registry` the journal's
  /// counters (rdcn_journal_*) register there even while disabled, so a
  /// metrics scrape always exposes the families; without, they live in a
  /// private one.
  explicit Journal(std::string directory, obs::Registry* registry = nullptr);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool enabled() const noexcept { return !directory_.empty(); }

  /// Replays the log, compacts it to live state, and opens it for
  /// appends.  Call once, before any append.  `fallback_next_id` seeds
  /// the id counter when the log is empty/missing.  Never throws on
  /// corrupt contents — a journal too damaged to read is an empty one.
  Recovery recover(std::uint64_t fallback_next_id = 1);

  // Appends (no-ops while disabled).  terminal() and flush() fsync.
  void admitted(std::uint64_t id, const std::string& spec,
                const std::string& client = "anon", int priority = 1);
  void started(std::uint64_t id);
  void checkpoint(std::uint64_t id, std::uint64_t seq);
  void terminal(std::uint64_t id, const std::string& status);
  void quarantine_streak(const std::string& spec, std::size_t streak);
  void flush();

 private:
  void append(const std::string& payload, bool sync);

  const std::string directory_;
  std::unique_ptr<obs::Registry> own_registry_;  ///< when none was passed
  obs::Counter& appends_;
  obs::Counter& replayed_;
  obs::Counter& corrupt_;
  std::mutex mu_;
  int fd_ = -1;  ///< append handle; opened by recover()
};

}  // namespace rdcn::serve
