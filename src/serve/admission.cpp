#include "serve/admission.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/param_map.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace rdcn::serve {

bool is_valid_client_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void TokenBucket::refill(std::uint64_t now_ns) {
  if (last_ns_ == 0) {
    last_ns_ = now_ns;  // first sighting: the bucket starts full
    return;
  }
  if (now_ns <= last_ns_) return;
  tokens_ = std::min(
      burst_, tokens_ + static_cast<double>(now_ns - last_ns_) * 1e-9 * rate_);
  last_ns_ = now_ns;
}

bool TokenBucket::try_take(std::uint64_t now_ns, std::uint32_t* retry_ms) {
  if (unlimited()) return true;
  refill(now_ns);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  if (retry_ms != nullptr) {
    const double wait_s = (1.0 - tokens_) / rate_;
    const double ms = std::ceil(wait_s * 1000.0);
    *retry_ms = static_cast<std::uint32_t>(
        std::min(60'000.0, std::max(1.0, ms)));
  }
  return false;
}

double TokenBucket::tokens_at(std::uint64_t now_ns) {
  refill(now_ns);
  return tokens_;
}

namespace {

/// One "key=value" quota attribute; throws with position context.
void apply_quota_attr(QuotaSpec& quota, const std::string& token,
                      std::size_t line_no) {
  const std::size_t eq = token.find('=');
  const std::string key = token.substr(0, eq);
  const std::string value =
      eq == std::string::npos ? "" : token.substr(eq + 1);
  const auto bad = [&](const std::string& why) {
    throw SpecError("quota file line " + std::to_string(line_no) + ": " +
                    why + " in '" + token + "'");
  };
  if (eq == std::string::npos || value.empty()) bad("expected key=value");
  try {
    if (key == "rps") {
      quota.rps = std::stod(value);
    } else if (key == "burst") {
      quota.burst = std::stod(value);
    } else if (key == "concurrent") {
      quota.concurrent = static_cast<std::size_t>(std::stoull(value));
    } else {
      bad("unknown quota key '" + key + "'; known: rps, burst, concurrent");
    }
  } catch (const SpecError&) {
    throw;
  } catch (const std::exception&) {
    bad("unparseable value");
  }
  if (quota.rps < 0 || quota.burst < 0) bad("negative rate");
}

}  // namespace

QuotaTable QuotaTable::parse_text(const std::string& text,
                                  const QuotaSpec& defaults) {
  QuotaTable out(defaults);
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string client;
    if (!(fields >> client) || client.front() == '#') continue;
    if (client != "default" && client != "*" &&
        !is_valid_client_name(client))
      throw SpecError("quota file line " + std::to_string(line_no) +
                      ": invalid client name '" + client +
                      "' (1-64 chars from [A-Za-z0-9._-], or 'default')");
    QuotaSpec quota = defaults;
    std::string token;
    while (fields >> token) apply_quota_attr(quota, token, line_no);
    if (client == "default" || client == "*")
      out.default_ = quota;
    else
      out.set_override(client, quota);
  }
  return out;
}

QuotaTable QuotaTable::parse_file(const std::string& path,
                                  const QuotaSpec& defaults) {
  std::ifstream in(path);
  if (!in) throw SpecError("cannot read quota file '" + path + "'");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse_text(text, defaults);
}

std::uint64_t estimate_cost(const scenario::ScenarioSpec& spec) {
  const scenario::AlgorithmRegistry& registry =
      scenario::AlgorithmRegistry::instance();
  const double requests = static_cast<double>(spec.requests);
  const double b_count =
      static_cast<double>(std::max<std::size_t>(1, spec.cache_sizes.size()));
  const double trials =
      static_cast<double>(std::max<std::size_t>(1, spec.trials));
  double total = 0;
  for (const Spec& algorithm : spec.algorithms) {
    const scenario::AlgorithmEntry* entry = registry.find(algorithm.name);
    const double weight =
        entry != nullptr && entry->cost_weight > 0 ? entry->cost_weight : 1.0;
    const double reps = entry != nullptr && entry->randomized ? trials : 1.0;
    const double cols = entry != nullptr && entry->b_independent ? 1.0
                                                                 : b_count;
    total += weight * reps * cols * requests;
  }
  if (spec.algorithms.empty()) total = requests * b_count;
  // Saturate far below u64 max so queue-side arithmetic can't overflow.
  constexpr double kCap = 1e18;
  if (total > kCap) total = kCap;
  if (total < 1.0) total = 1.0;
  return static_cast<std::uint64_t>(total);
}

int Brownout::update(std::size_t queued, std::uint64_t rss_bytes) {
  const double q =
      queue_limit_ == 0
          ? 0.0
          : static_cast<double>(queued) / static_cast<double>(queue_limit_);
  const double r =
      (max_rss_ == 0 || rss_bytes == 0)
          ? 0.0
          : static_cast<double>(rss_bytes) / static_cast<double>(max_rss_);
  switch (level_) {
    case 0:
      if (q >= 0.875 || r >= 0.95)
        level_ = 2;
      else if (q >= 0.5 || r >= 0.80)
        level_ = 1;
      break;
    case 1:
      if (q >= 0.875 || r >= 0.95)
        level_ = 2;
      else if (q < 0.25 && r < 0.70)
        level_ = 0;
      break;
    default:  // 2
      if (q < 0.5 && r < 0.85) level_ = 1;
      break;
  }
  return level_;
}

std::uint32_t DrainEstimator::retry_ms(std::size_t queued,
                                       std::size_t executors,
                                       std::uint32_t fallback_ms) const {
  if (ewma_ns_ == 0) return fallback_ms;
  const double slots = executors == 0 ? 1.0 : static_cast<double>(executors);
  const double ms = static_cast<double>(ewma_ns_) / 1e6 *
                    (static_cast<double>(queued) + 1.0) / slots;
  return static_cast<std::uint32_t>(std::min(60'000.0, std::max(1.0, ms)));
}

std::uint64_t read_rss_bytes() {
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, 6, "VmRSS:") != 0) continue;
    std::istringstream fields(line.substr(6));
    std::uint64_t kb = 0;
    if (fields >> kb) return kb * 1024;
    return 0;
  }
#endif
  return 0;
}

}  // namespace rdcn::serve
